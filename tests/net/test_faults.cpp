// Unit coverage for the deterministic fault layer: error taxonomy, plan
// validation, per-stream PRF determinism, schedule digests, retry backoff
// math, and the fault-aware Network::try_transfer_ms. The end-to-end chaos
// load lives in tests/core/test_chaos.cpp; this file pins the primitives it
// relies on.
#include "net/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/simnet.hpp"
#include "obs/metrics.hpp"

namespace sp::net {
namespace {

TEST(ServeErrors, TransientVsTerminalClassification) {
  EXPECT_TRUE(is_transient(ServeError::kTimeout));
  EXPECT_TRUE(is_transient(ServeError::kSpUnavailable));
  EXPECT_TRUE(is_transient(ServeError::kDhMiss));
  EXPECT_TRUE(is_transient(ServeError::kCorruptedBlob));
  EXPECT_FALSE(is_transient(ServeError::kDeadlineExceeded));
}

TEST(ServeErrors, NamesAreStable) {
  // The strings land in logs and bench JSON; renames are a breaking change.
  EXPECT_STREQ(to_string(ServeError::kTimeout), "timeout");
  EXPECT_STREQ(to_string(ServeError::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(FaultKind::kTransferTimeout), "transfer_timeout");
  EXPECT_STREQ(to_string(FaultKind::kSpPartialReply), "sp_partial_reply");
  EXPECT_STREQ(to_string(FaultKind::kDhCorrupt), "dh_corrupt");
}

TEST(Expected, HoldsValueOrError) {
  const Expected<double> good(3.5);
  ASSERT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(good.value(), 3.5);

  const Expected<double> bad(ServeError::kDhMiss);
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_EQ(bad.error(), ServeError::kDhMiss);
}

TEST(FaultPlan, UniformSetsEveryClassAndValidatesRate) {
  const FaultPlan plan = FaultPlan::uniform(0.25, "unit");
  EXPECT_DOUBLE_EQ(plan.p_transfer_timeout, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_latency_spike, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_sp_error, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_sp_partial, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_dh_miss, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_dh_corrupt, 0.25);
  EXPECT_THROW((void)FaultPlan::uniform(-0.1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::uniform(1.1), std::invalid_argument);
}

TEST(FaultInjector, RejectsMalformedPlans) {
  FaultPlan out_of_range;
  out_of_range.p_sp_error = 1.5;
  EXPECT_THROW(FaultInjector{out_of_range}, std::invalid_argument);

  // The timeout/spike and miss/corrupt pairs partition one unit draw each,
  // so their probabilities must not sum past 1.
  FaultPlan transfer_sum;
  transfer_sum.p_transfer_timeout = 0.7;
  transfer_sum.p_latency_spike = 0.7;
  EXPECT_THROW(FaultInjector{transfer_sum}, std::invalid_argument);

  FaultPlan dh_sum;
  dh_sum.p_dh_miss = 0.6;
  dh_sum.p_dh_corrupt = 0.6;
  EXPECT_THROW(FaultInjector{dh_sum}, std::invalid_argument);
}

TEST(FaultInjector, NonePlanNeverFires) {
  const FaultInjector injector(FaultPlan::none());
  FaultStream tape = injector.stream_for_label("quiet");
  for (int i = 0; i < 100; ++i) {
    const auto transfer = tape.next_transfer();
    EXPECT_FALSE(transfer.fault.has_value());
    EXPECT_DOUBLE_EQ(transfer.extra_ms, 0.0);
    EXPECT_FALSE(tape.next_sp_error());
    EXPECT_EQ(tape.next_sp_partial(4), 0u);
    EXPECT_FALSE(tape.next_dh().has_value());
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, CertainProbabilitiesAlwaysFire) {
  FaultPlan plan;
  plan.p_transfer_timeout = 1.0;
  plan.p_sp_error = 1.0;
  plan.p_sp_partial = 1.0;
  plan.p_dh_miss = 1.0;
  const FaultInjector injector(plan);
  FaultStream tape = injector.stream_for_label("doomed");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(tape.next_transfer().fault, ServeError::kTimeout);
    EXPECT_TRUE(tape.next_sp_error());
    // partial_drop_frac 0.5 of 4 granted entries drops 2.
    EXPECT_EQ(tape.next_sp_partial(4), 2u);
    EXPECT_EQ(tape.next_dh(), ServeError::kDhMiss);
  }
  EXPECT_EQ(injector.injected(FaultKind::kTransferTimeout), 10u);
  EXPECT_EQ(injector.injected(FaultKind::kSpError), 10u);
  EXPECT_EQ(injector.injected(FaultKind::kSpPartialReply), 10u);
  EXPECT_EQ(injector.injected(FaultKind::kDhMiss), 10u);
  EXPECT_EQ(injector.injected_total(), 40u);
}

TEST(FaultInjector, PartialDropClampsToAtLeastOneAndAtMostAll) {
  FaultPlan plan;
  plan.p_sp_partial = 1.0;
  plan.partial_drop_frac = 0.01;  // floor(n * 0.01) == 0 -> clamped to 1
  {
    const FaultInjector injector(plan);
    FaultStream tape = injector.stream_for_label("clamp-low");
    EXPECT_EQ(tape.next_sp_partial(4), 1u);
    EXPECT_EQ(tape.next_sp_partial(0), 0u);  // nothing granted, nothing to drop
  }
  plan.partial_drop_frac = 1.0;
  {
    const FaultInjector injector(plan);
    FaultStream tape = injector.stream_for_label("clamp-high");
    EXPECT_EQ(tape.next_sp_partial(4), 4u);
  }
}

TEST(FaultInjector, SameSeedSameDecisionsDifferentSeedDifferentDigest) {
  const FaultPlan plan = FaultPlan::uniform(0.3, "replay-me");
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  FaultStream ta = a.stream_for_label("req");
  FaultStream tb = b.stream_for_label("req");
  for (int i = 0; i < 64; ++i) {
    const auto fa = ta.next_transfer();
    const auto fb = tb.next_transfer();
    EXPECT_EQ(fa.fault, fb.fault);
    EXPECT_DOUBLE_EQ(fa.extra_ms, fb.extra_ms);
    EXPECT_EQ(ta.next_sp_error(), tb.next_sp_error());
    EXPECT_EQ(ta.next_sp_partial(6), tb.next_sp_partial(6));
    EXPECT_EQ(ta.next_dh(), tb.next_dh());
    EXPECT_DOUBLE_EQ(ta.jitter_unit(static_cast<std::uint64_t>(i)),
                     tb.jitter_unit(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(a.schedule_digest("req", 8, 16), b.schedule_digest("req", 8, 16));

  const FaultInjector c(FaultPlan::uniform(0.3, "replay-me-not"));
  EXPECT_NE(a.schedule_digest("req", 8, 16), c.schedule_digest("req", 8, 16));
}

TEST(FaultInjector, RequestOrdinalsGiveRetriesFreshTapes) {
  const FaultPlan plan = FaultPlan::uniform(0.3, "ordinals");
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  // a's second stream for the same request key is a different tape than its
  // first; b (fresh ordinal map) replays a's first tape exactly.
  FaultStream a1 = a.stream(7, "post");
  FaultStream a2 = a.stream(7, "post");
  FaultStream b1 = b.stream(7, "post");
  EXPECT_DOUBLE_EQ(a1.jitter_unit(0), b1.jitter_unit(0));
  EXPECT_NE(a1.jitter_unit(0), a2.jitter_unit(0));
  // Distinct request keys are independent tapes too.
  FaultStream other = b.stream(8, "post");
  EXPECT_NE(b1.jitter_unit(1), other.jitter_unit(1));
}

TEST(FaultInjector, ScheduleDigestDoesNotCountAsInjected) {
  const FaultInjector injector(FaultPlan::uniform(0.5, "digest-probe"));
  auto& reg = obs::MetricsRegistry::global();
  auto& spikes = reg.counter("sp_faults_injected_total", "", {{"kind", "latency_spike"}});
  const auto spikes0 = spikes.value();
  (void)injector.schedule_digest("probe", 16, 16);
  EXPECT_EQ(injector.injected_total(), 0u);
  EXPECT_EQ(spikes.value(), spikes0);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithCapAndJitter) {
  RetryPolicy policy;  // 25ms base, x2, 1000ms cap, 25% jitter
  EXPECT_DOUBLE_EQ(policy.backoff_ms(0, 0.0), 25.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(2, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(20, 0.0), 1000.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_ms(0, 1.0), 25.0 * 1.25);
  EXPECT_THROW((void)policy.backoff_ms(-1, 0.0), std::invalid_argument);
}

TEST(Network, TryTransferWithoutStreamMatchesTransferMs) {
  const LinkProfile link{"test", 8.0, 10.0, 5.0, 0.0};  // zero jitter
  const Network n(link, crypto::Drbg("x"));
  const auto got = n.try_transfer_ms(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value(), n.transfer_ms(1000));
}

TEST(Network, TryTransferTimeoutMovesNoBytesAndNoMetrics) {
  auto& reg = obs::MetricsRegistry::global();
  auto& transfers = reg.counter("net_transfers_total");
  auto& bytes = reg.counter("net_bytes_total");
  const auto transfers0 = transfers.value();
  const auto bytes0 = bytes.value();

  FaultPlan plan;
  plan.p_transfer_timeout = 1.0;
  const FaultInjector injector(plan);
  FaultStream tape = injector.stream_for_label("timeouts");
  const Network n(LinkProfile{"test", 8.0, 10.0, 5.0, 0.0}, crypto::Drbg("x"));
  const auto got = n.try_transfer_ms(1000, 1, &tape);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), ServeError::kTimeout);
  // A lost exchange is not a completed transfer: the link series must not
  // count it (the caller charges the wasted wait to the ledger instead).
  EXPECT_EQ(transfers.value(), transfers0);
  EXPECT_EQ(bytes.value(), bytes0);
}

TEST(Network, TryTransferLatencySpikeAddsSurcharge) {
  FaultPlan plan;
  plan.p_latency_spike = 1.0;
  plan.latency_spike_ms = 123.0;
  const FaultInjector injector(plan);
  FaultStream tape = injector.stream_for_label("spikes");
  const Network n(LinkProfile{"test", 8.0, 10.0, 5.0, 0.0}, crypto::Drbg("x"));
  const auto got = n.try_transfer_ms(1000, 1, &tape);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value(), n.transfer_ms(1000) + 123.0);
  EXPECT_EQ(injector.injected(FaultKind::kLatencySpike), 1u);
}

TEST(CostLedger, WaitBucketAndMergeAccumulateAcrossAttempts) {
  CostLedger total(pc_profile());
  total.add_wait(400.0);

  CostLedger attempt(pc_profile());
  attempt.add_local_measured(3.0);
  attempt.add_network(7.0);
  attempt.add_wait(25.0);
  attempt.add_bytes(512);
  total.merge(attempt);

  EXPECT_DOUBLE_EQ(total.wait_ms(), 425.0);
  EXPECT_DOUBLE_EQ(total.local_ms(), 3.0);
  EXPECT_DOUBLE_EQ(total.network_ms(), 7.0);
  EXPECT_DOUBLE_EQ(total.total_ms(), 435.0);
  EXPECT_EQ(total.bytes_transferred(), 512u);
}

}  // namespace
}  // namespace sp::net
