#include "net/simnet.hpp"

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace sp::net {
namespace {

TEST(Network, ZeroJitterIsDeterministicLinear) {
  LinkProfile link{"test", 8.0, 10.0, 5.0, 0.0};  // 8 Mbps -> 1 ms per KB
  Network n(link, crypto::Drbg("x"));
  // 1000 bytes = 8000 bits at 8 Mbps = 1 ms payload + rtt + overhead.
  EXPECT_DOUBLE_EQ(n.transfer_ms(1000), 1.0 + 10.0 + 5.0);
  EXPECT_DOUBLE_EQ(n.transfer_ms(2000), 2.0 + 15.0);
  // Extra round trips charge rtt + overhead again.
  EXPECT_DOUBLE_EQ(n.transfer_ms(1000, 3), 1.0 + 3 * 15.0);
}

TEST(Network, JitterBoundedAndSeeded) {
  LinkProfile link{"test", 8.0, 10.0, 5.0, 0.2};
  Network a(link, crypto::Drbg("seed")), b(link, crypto::Drbg("seed"));
  for (int i = 0; i < 50; ++i) {
    const double base = 1.0 + 15.0;
    const double da = a.transfer_ms(1000);
    EXPECT_GE(da, base);
    EXPECT_LT(da, base * 1.2 + 1e-9);
    EXPECT_DOUBLE_EQ(da, b.transfer_ms(1000));  // same seed, same jitter
  }
}

TEST(Network, LargerPayloadsCostMore) {
  Network n(wlan_80211n_to_ec2(), crypto::Drbg("x"));
  // 600 KB (the paper's I2 upload) vs 2 KB (a C1 puzzle): payload time must
  // dominate the fixed RTT+overhead by a clear margin even with jitter.
  EXPECT_GT(n.transfer_ms(600 * 1024), 2 * n.transfer_ms(2 * 1024));
}

TEST(Network, RejectsZeroRoundTrips) {
  Network n(loopback(), crypto::Drbg("x"));
  EXPECT_THROW(n.transfer_ms(10, 0), std::invalid_argument);
}

TEST(DeviceProfiles, TabletSlowerThanPc) {
  EXPECT_EQ(pc_profile().cpu_scale, 1.0);
  EXPECT_GT(tablet_profile().cpu_scale, 1.0);
}

TEST(CostLedger, DecomposesAndScales) {
  CostLedger pc(pc_profile());
  pc.add_local_measured(10.0);
  pc.add_network(5.0);
  pc.add_bytes(123);
  EXPECT_DOUBLE_EQ(pc.local_ms(), 10.0);
  EXPECT_DOUBLE_EQ(pc.network_ms(), 5.0);
  EXPECT_DOUBLE_EQ(pc.total_ms(), 15.0);
  EXPECT_EQ(pc.bytes_transferred(), 123u);

  CostLedger tablet(tablet_profile());
  tablet.add_local_measured(10.0);
  EXPECT_DOUBLE_EQ(tablet.local_ms(), 10.0 * tablet_profile().cpu_scale);
}

TEST(CpuTimer, MeasuresElapsedTime) {
  CpuTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(t.elapsed_ms(), 0.0);
  const double first = t.elapsed_ms();
  t.reset();
  EXPECT_LE(t.elapsed_ms(), first + 1.0);
}

TEST(Network, MetricsCountTransfersBytesAndDelay) {
  // Process-wide link instruments (PR 4): assert deltas around two modeled
  // exchanges.
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& transfers = reg.counter("net_transfers_total");
  auto& bytes = reg.counter("net_bytes_total");
  auto& delay = reg.histogram("net_transfer_ms");
  const auto transfers0 = transfers.value();
  const auto bytes0 = bytes.value();
  const auto delay0 = delay.count();

  Network n(wlan_80211n_to_ec2(), crypto::Drbg("metrics"));
  const double a = n.transfer_ms(1000);
  const double b = n.transfer_ms(2500, 2);
  EXPECT_EQ(transfers.value(), transfers0 + 2);
  EXPECT_EQ(bytes.value(), bytes0 + 3500);
  EXPECT_EQ(delay.count(), delay0 + 2);
  EXPECT_GE(delay.sum_ms(), 0.9 * (a + b));  // fixed-point µs rounding slack
}

}  // namespace
}  // namespace sp::net
