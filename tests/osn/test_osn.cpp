#include <gtest/gtest.h>

#include <limits>

#include "obs/metrics.hpp"
#include "osn/service_provider.hpp"
#include "osn/social_graph.hpp"
#include "osn/storage_host.hpp"

namespace sp::osn {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

TEST(SocialGraph, SymmetricFriendship) {
  SocialGraph g;
  const UserId a = g.add_user("alice");
  const UserId b = g.add_user("bob");
  EXPECT_FALSE(g.are_friends(a, b));
  g.befriend(a, b);
  EXPECT_TRUE(g.are_friends(a, b));
  EXPECT_TRUE(g.are_friends(b, a));  // paper §IV-A: symmetric OSN
}

TEST(SocialGraph, FriendsOfListsNetwork) {
  SocialGraph g;
  const UserId s = g.add_user("sharer");
  std::vector<UserId> friends;
  for (int i = 0; i < 5; ++i) {
    friends.push_back(g.add_user("friend" + std::to_string(i)));
    g.befriend(s, friends.back());
  }
  EXPECT_EQ(g.friends_of(s), friends);
  EXPECT_EQ(g.friends_of(friends[0]), std::vector<UserId>{s});
}

TEST(SocialGraph, RejectsUnknownAndSelf) {
  SocialGraph g;
  const UserId a = g.add_user("alice");
  EXPECT_THROW(g.befriend(a, 999), std::out_of_range);
  EXPECT_THROW(g.befriend(a, a), std::invalid_argument);
  EXPECT_THROW((void)g.profile(999), std::out_of_range);
}

TEST(SocialGraph, FeedVisibilityIsFriendsOnly) {
  SocialGraph g;
  const UserId sharer = g.add_user("sharer");
  const UserId friend1 = g.add_user("friend");
  const UserId stranger = g.add_user("stranger");
  g.befriend(sharer, friend1);
  g.post(Post{sharer, "puzzle-1", "party pics"});

  EXPECT_EQ(g.feed_for(friend1).size(), 1u);
  EXPECT_EQ(g.feed_for(sharer).size(), 1u);  // own posts visible
  EXPECT_TRUE(g.feed_for(stranger).empty());
}

TEST(StorageHost, StoreFetchRoundTrip) {
  StorageHost dh;
  const Bytes blob = to_bytes("ciphertext bytes");
  const std::string url = dh.store(blob);
  EXPECT_TRUE(url.starts_with("dh://objects/"));
  EXPECT_EQ(dh.fetch(url), blob);
  EXPECT_TRUE(dh.exists(url));
  EXPECT_EQ(dh.object_count(), 1u);
  EXPECT_EQ(dh.bytes_stored(), blob.size());
}

TEST(StorageHost, DistinctUrlsForIdenticalContent) {
  StorageHost dh;
  const Bytes blob = to_bytes("same");
  EXPECT_NE(dh.store(blob), dh.store(blob));
}

TEST(StorageHost, UrlHashesCounterAndSize) {
  // The URL is H(counter || size): same store sequence on two hosts yields
  // the same URL (stability across deployments and shard layouts) …
  StorageHost a;
  StorageHost b;
  EXPECT_EQ(a.store(to_bytes("one")), b.store(to_bytes("two")));  // same counter, same size
  // … while the same counter with a different blob size yields a different
  // URL — the size really is part of the preimage.
  EXPECT_NE(a.store(to_bytes("same-counter")), b.store(to_bytes("different length here")));
}

TEST(StorageHost, UnknownUrlThrows) {
  StorageHost dh;
  EXPECT_THROW((void)dh.fetch("dh://objects/nope"), std::out_of_range);
  EXPECT_THROW(dh.remove("dh://objects/nope"), std::out_of_range);
  EXPECT_THROW(dh.tamper("dh://objects/nope", 0), std::out_of_range);
}

TEST(StorageHost, TamperFlipsOneByte) {
  StorageHost dh;
  const Bytes blob = to_bytes("sensitive ciphertext");
  const std::string url = dh.store(blob);
  dh.tamper(url, 3);
  const Bytes& now = dh.fetch(url);
  EXPECT_NE(now, blob);
  EXPECT_EQ(now.size(), blob.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) diffs += blob[i] != now[i];
  EXPECT_EQ(diffs, 1u);
}

TEST(StorageHost, RemoveDeletes) {
  StorageHost dh;
  const std::string url = dh.store(to_bytes("x"));
  dh.remove(url);
  EXPECT_FALSE(dh.exists(url));
}

TEST(ServiceProvider, RecordStoreAndRetrieve) {
  ServiceProvider sp;
  const std::string id = sp.store_record(to_bytes("puzzle record"));
  EXPECT_TRUE(sp.has_record(id));
  EXPECT_EQ(sp.record(id), to_bytes("puzzle record"));
  EXPECT_EQ(sp.record_count(), 1u);
  EXPECT_THROW((void)sp.record("puzzle-999"), std::out_of_range);
}

TEST(ServiceProvider, ObservationLogAccumulates) {
  ServiceProvider sp;
  sp.observe("verify", to_bytes("hash1"));
  sp.observe("verify", to_bytes("hash2"));
  ASSERT_EQ(sp.observations().size(), 2u);
  EXPECT_EQ(sp.observations()[0].channel, "verify");
}

TEST(ServiceProvider, ViewContainsScansEverything) {
  ServiceProvider sp;
  sp.store_record(to_bytes("record with NEEDLE inside"));
  sp.observe("ch", to_bytes("another HAYSTACK message"));
  EXPECT_TRUE(sp.view_contains(to_bytes("NEEDLE")));
  EXPECT_TRUE(sp.view_contains(to_bytes("HAYSTACK")));
  EXPECT_FALSE(sp.view_contains(to_bytes("plaintext-secret")));
  EXPECT_FALSE(sp.view_contains(to_bytes("")));  // empty needle never matches
}

TEST(ServiceProvider, TamperRewritesRecord) {
  ServiceProvider sp;
  const std::string id = sp.store_record(to_bytes("http://good.example/url"));
  sp.tamper_record(id, 7, to_bytes("evil"));
  EXPECT_EQ(crypto::to_string(sp.record(id)), "http://evil.example/url");
  EXPECT_THROW(sp.tamper_record(id, 100, to_bytes("x")), std::out_of_range);
}

TEST(ServiceProvider, TamperHugeOffsetRejected) {
  // Regression: the old bounds check computed `offset + replacement.size()`,
  // which wraps around for huge offsets and let the write through — an
  // out-of-bounds smash triggered by attacker-controlled input.
  ServiceProvider sp;
  const std::string id = sp.store_record(to_bytes("0123456789"));
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW(sp.tamper_record(id, kMax, to_bytes("x")), std::out_of_range);
  EXPECT_THROW(sp.tamper_record(id, kMax - 3, to_bytes("wrap")), std::out_of_range);
  // Boundary behavior stays exact: writing the last byte works, one past
  // the end does not.
  sp.tamper_record(id, 9, to_bytes("X"));
  EXPECT_EQ(crypto::to_string(sp.record(id)), "012345678X");
  EXPECT_THROW(sp.tamper_record(id, 10, to_bytes("x")), std::out_of_range);
}

// ---- observability (PR 4): front-end instruments move with the traffic ----
// The registry is process-wide, so all assertions are deltas.

TEST(ServiceProvider, MetricsCountRequestsAndSettleOnDestruction) {
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& stores = reg.counter("osn_sp_requests_total", "", {{"op", "store_record"}});
  auto& tamper_rejected = reg.counter("osn_sp_tamper_rejected_total");
  auto& records = reg.gauge("osn_sp_records");
  const auto stores0 = stores.value();
  const auto rejected0 = tamper_rejected.value();
  const auto records0 = records.value();
  {
    ServiceProvider sp;
    const std::string id = sp.store_record(to_bytes("0123456789"));
    sp.store_record(to_bytes("more"));
    EXPECT_EQ(stores.value(), stores0 + 2);
    EXPECT_EQ(records.value(), records0 + 2);
    EXPECT_THROW(sp.tamper_record(id, 10, to_bytes("x")), std::out_of_range);
    EXPECT_EQ(tamper_rejected.value(), rejected0 + 1);
  }
  // Destruction wipes the records and settles the process-wide gauge.
  EXPECT_EQ(records.value(), records0);
}

TEST(StorageHost, MetricsTrackObjectsBytesAndMisses) {
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& objects = reg.gauge("osn_dh_objects");
  auto& bytes_at_rest = reg.gauge("osn_dh_bytes");
  auto& misses = reg.counter("osn_dh_fetch_miss_total");
  const auto objects0 = objects.value();
  const auto bytes0 = bytes_at_rest.value();
  const auto misses0 = misses.value();
  {
    StorageHost dh;
    const std::string url = dh.store(to_bytes("0123456789"));
    const std::string url2 = dh.store(to_bytes("abc"));
    EXPECT_EQ(objects.value(), objects0 + 2);
    EXPECT_EQ(bytes_at_rest.value(), bytes0 + 13);
    EXPECT_THROW(dh.fetch("dh://objects/nonexistent"), std::out_of_range);
    EXPECT_EQ(misses.value(), misses0 + 1);
    dh.remove(url2);
    EXPECT_EQ(objects.value(), objects0 + 1);
    EXPECT_EQ(bytes_at_rest.value(), bytes0 + 10);
  }
  EXPECT_EQ(objects.value(), objects0);
  EXPECT_EQ(bytes_at_rest.value(), bytes0);
}

// ---- op-counter correctness sweep (PR 8 satellites): counters move only on
// the path actually taken, and the adversary surface agrees on its contracts.

TEST(StorageHost, RemoveCountsOnlySuccessfulRemovals) {
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& removes = reg.counter("osn_dh_requests_total", "", {{"op", "remove"}});
  StorageHost dh;
  const std::string url = dh.store(to_bytes("blob"));

  const auto removes0 = removes.value();
  EXPECT_THROW(dh.remove("dh://objects/nonexistent"), std::out_of_range);
  // The rejected call must not count as a performed removal.
  EXPECT_EQ(removes.value(), removes0);
  dh.remove(url);
  EXPECT_EQ(removes.value(), removes0 + 1);
}

TEST(StorageHost, TamperThrowsOutOfRangeLikeServiceProvider) {
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& rejected = reg.counter("osn_dh_tamper_rejected_total");
  StorageHost dh;
  const std::string url = dh.store(to_bytes("0123"));
  const auto rejected0 = rejected.value();

  // Out-of-bounds indices throw instead of silently wrapping modulo size —
  // the same contract as ServiceProvider::tamper_record.
  EXPECT_THROW(dh.tamper(url, 4), std::out_of_range);
  EXPECT_THROW(dh.tamper(url, std::numeric_limits<std::size_t>::max()), std::out_of_range);
  EXPECT_EQ(rejected.value(), rejected0 + 2);
  EXPECT_EQ(dh.fetch(url), to_bytes("0123"));  // a rejected tamper changes nothing

  // An empty blob has no valid index at all.
  const std::string empty_url = dh.store({});
  EXPECT_THROW(dh.tamper(empty_url, 0), std::out_of_range);

  // In range, exactly the requested byte flips.
  dh.tamper(url, 2);
  Bytes want = to_bytes("0123");
  want[2] ^= 0x01;
  EXPECT_EQ(dh.fetch(url), want);
  EXPECT_THROW(dh.tamper("dh://objects/nonexistent", 0), std::out_of_range);
}

TEST(StorageHost, InjectedMissCountsAsFetchAndMiss) {
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& fetches = reg.counter("osn_dh_requests_total", "", {{"op", "fetch"}});
  auto& misses = reg.counter("osn_dh_fetch_miss_total");
  StorageHost dh;
  const std::string url = dh.store(to_bytes("payload"));

  net::FaultPlan plan;
  plan.p_dh_miss = 1.0;
  const net::FaultInjector injector(plan);
  auto stream = injector.stream_for_label("miss-metrics");

  const auto fetches0 = fetches.value();
  const auto misses0 = misses.value();
  const auto result = dh.try_fetch(url, &stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), net::ServeError::kDhMiss);
  // An injected miss is still a fetch the host served, and it IS a miss from
  // the caller's point of view — both counters move.
  EXPECT_EQ(fetches.value(), fetches0 + 1);
  EXPECT_EQ(misses.value(), misses0 + 1);

  // Cross-check against the injector's own bookkeeping.
  EXPECT_EQ(injector.injected(net::FaultKind::kDhMiss), 1u);

  // Fault-free streams serve normally and do not touch the miss counter.
  const auto clean = dh.try_fetch(url, nullptr);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(fetches.value(), fetches0 + 2);
  EXPECT_EQ(misses.value(), misses0 + 1);
}

}  // namespace
}  // namespace sp::osn
