// Host- and session-level persistence round trips (PR 8 tentpole): a durable
// ServiceProvider / StorageHost closed cleanly and reopened on the same
// directory must serve exactly the state it acknowledged — records,
// observations, blobs, and the id counters that keep new ids from colliding
// with recovered ones.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>

#include "core/session.hpp"
#include "osn/service_provider.hpp"
#include "osn/storage_host.hpp"
#include "support/fixtures.hpp"

namespace sp::osn {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-persist-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

storage::DurableStore::Options fast_opts(const std::string& dir) {
  storage::DurableStore::Options opts;
  opts.dir = dir;
  opts.wal.fsync = storage::WalWriter::Fsync::kNever;  // tests: speed over power-loss
  return opts;
}

TEST(ServiceProviderPersistence, RecordsObservationsAndCounterSurviveReopen) {
  TempDir tmp;
  std::string id1;
  std::string id2;
  {
    ServiceProvider sp(fast_opts(tmp.str()));
    EXPECT_TRUE(sp.is_durable());
    id1 = sp.store_record(to_bytes("record-one"));
    id2 = sp.store_record(to_bytes("record-two"));
    sp.replace_record(id1, to_bytes("record-one-refreshed"));
    sp.observe("verify", to_bytes("answer traffic"));
    sp.observe("upload", to_bytes("puzzle upload"));
    sp.sync();
  }
  {
    ServiceProvider sp(fast_opts(tmp.str()));
    EXPECT_EQ(sp.recovery_stats().wal_records, 5u);  // 3 record puts + 2 observations
    EXPECT_EQ(sp.record_count(), 2u);
    EXPECT_EQ(sp.record(id1), to_bytes("record-one-refreshed"));
    EXPECT_EQ(sp.record(id2), to_bytes("record-two"));
    const auto obs = sp.observations();
    ASSERT_EQ(obs.size(), 2u);
    EXPECT_EQ(obs[0].channel, "verify");
    EXPECT_EQ(obs[1].channel, "upload");
    EXPECT_EQ(obs[1].data, to_bytes("puzzle upload"));
    // The id counter continues past recovered ids: no collision, no reuse.
    const std::string id3 = sp.store_record(to_bytes("record-three"));
    EXPECT_NE(id3, id1);
    EXPECT_NE(id3, id2);
    EXPECT_EQ(sp.record_count(), 3u);
  }
}

TEST(ServiceProviderPersistence, TamperedStateIsWhatPersists) {
  // A malicious-SP tamper is a durable mutation like any other: reopening
  // serves the tampered bytes, exactly what a receiver would then see.
  TempDir tmp;
  std::string id;
  {
    ServiceProvider sp(fast_opts(tmp.str()));
    id = sp.store_record(to_bytes("0123456789"));
    sp.tamper_record(id, 4, to_bytes("XY"));
  }
  ServiceProvider sp(fast_opts(tmp.str()));
  EXPECT_EQ(sp.record(id), to_bytes("0123XY6789"));
}

TEST(ServiceProviderPersistence, CheckpointCompactsWithoutDuplicatingObservations) {
  TempDir tmp;
  {
    ServiceProvider sp(fast_opts(tmp.str()));
    sp.store_record(to_bytes("a"));
    sp.observe("ch", to_bytes("before-checkpoint"));
    sp.checkpoint();
    // Post-checkpoint observations land in the new WAL; the pre-checkpoint
    // one lives in the segment. Recovery must not double-apply either.
    sp.observe("ch", to_bytes("after-checkpoint"));
    sp.store_record(to_bytes("b"));
    sp.sync();
  }
  ServiceProvider sp(fast_opts(tmp.str()));
  EXPECT_EQ(sp.record_count(), 2u);
  const auto obs = sp.observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].data, to_bytes("before-checkpoint"));
  EXPECT_EQ(obs[1].data, to_bytes("after-checkpoint"));
}

TEST(ServiceProviderPersistence, CounterSurvivesCheckpointOnlyHistory) {
  // After a checkpoint deletes the WAL that carried the id-counter seqs, the
  // segment's meta record must still restore monotonic id issuance.
  TempDir tmp;
  std::set<std::string> ids;
  {
    ServiceProvider sp(fast_opts(tmp.str()));
    for (int i = 0; i < 5; ++i) ids.insert(sp.store_record(to_bytes("r")));
    sp.checkpoint();
  }
  ServiceProvider sp(fast_opts(tmp.str()));
  for (int i = 0; i < 5; ++i) {
    const auto [_, fresh] = ids.insert(sp.store_record(to_bytes("r")));
    EXPECT_TRUE(fresh) << "recovered counter reissued an id";
  }
  EXPECT_EQ(sp.record_count(), 10u);
}

TEST(StorageHostPersistence, BlobsTamperRemoveAndCounterSurviveReopen) {
  TempDir tmp;
  std::string kept;
  std::string tampered;
  std::string removed;
  {
    StorageHost dh(fast_opts(tmp.str()));
    EXPECT_TRUE(dh.is_durable());
    kept = dh.store(to_bytes("kept-object"));
    tampered = dh.store(to_bytes("0123"));
    removed = dh.store(to_bytes("doomed"));
    dh.tamper(tampered, 1);
    dh.remove(removed);
    dh.sync();
  }
  {
    StorageHost dh(fast_opts(tmp.str()));
    EXPECT_EQ(dh.object_count(), 2u);
    EXPECT_EQ(dh.fetch(kept), to_bytes("kept-object"));
    Bytes want = to_bytes("0123");
    want[1] ^= 0x01;
    EXPECT_EQ(dh.fetch(tampered), want);
    EXPECT_FALSE(dh.exists(removed));
    // URL issuance continues: a new store never collides with live URLs.
    const std::string fresh = dh.store(to_bytes("new-object"));
    EXPECT_NE(fresh, kept);
    EXPECT_NE(fresh, tampered);
    EXPECT_EQ(dh.object_count(), 3u);
  }
}

TEST(StorageHostPersistence, MaybeCheckpointFiresOnWalGrowth) {
  TempDir tmp;
  auto opts = fast_opts(tmp.str());
  opts.checkpoint_wal_bytes = 2048;
  StorageHost dh(opts);
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) {
    dh.store(to_bytes("some blob payload " + std::to_string(i)));
    fired = dh.maybe_checkpoint();
  }
  EXPECT_TRUE(fired);
  ASSERT_NE(dh.durable(), nullptr);
  EXPECT_EQ(dh.durable()->epoch(), 1u);
  EXPECT_FALSE(fs::exists(storage::DurableStore::wal_path(tmp.str(), 0)));
}

TEST(SessionPersistence, HostsReopenWithSharedState) {
  // The session wires PersistenceConfig through to both hosts (SP under
  // dir/sp, DH under dir/dh). The puzzle *registry* is session memory — what
  // must survive is every byte the SP and DH acknowledged.
  TempDir tmp;
  std::string post_c1;
  std::string post_c2;
  std::size_t sp_records = 0;
  std::size_t dh_objects = 0;
  Bytes c1_record;

  core::SessionConfig cfg = testsupport::toy_config("persist-session");
  core::PersistenceConfig persist;
  persist.dir = tmp.str();
  persist.fsync = storage::WalWriter::Fsync::kNever;
  cfg.persistence = persist;
  {
    core::Session session(cfg);
    const auto sharer = session.register_user("sharer");
    const auto friend_id = session.register_user("friend");
    session.befriend(sharer, friend_id);
    const core::Context ctx = testsupport::party_context();
    post_c1 = session.share_c1(sharer, to_bytes("c1 object"), ctx, 2, 4, net::pc_profile()).post_id;
    post_c2 = session.share_c2(sharer, to_bytes("c2 object"), ctx, 2, net::pc_profile()).post_id;

    // A durable session still serves accesses end to end.
    const auto result =
        session.access(friend_id, post_c1, core::Knowledge::full(ctx), net::pc_profile());
    ASSERT_TRUE(result.success());

    sp_records = session.service_provider().record_count();
    dh_objects = session.storage_host().object_count();
    c1_record = session.service_provider().record(post_c1);
    EXPECT_GE(sp_records, 2u);
    EXPECT_GE(dh_objects, 2u);
  }
  {
    core::Session session(cfg);
    EXPECT_EQ(session.service_provider().record_count(), sp_records);
    EXPECT_EQ(session.storage_host().object_count(), dh_objects);
    EXPECT_EQ(session.service_provider().record(post_c1), c1_record);
    EXPECT_TRUE(session.service_provider().has_record(post_c2));
    EXPECT_GT(session.service_provider().recovery_stats().wal_records, 0u);
  }
  // In-memory sessions stay exactly as before: no directory, no recovery.
  core::Session ephemeral(testsupport::toy_config("persist-none"));
  EXPECT_FALSE(ephemeral.service_provider().is_durable());
  EXPECT_FALSE(ephemeral.storage_host().is_durable());
}

}  // namespace
}  // namespace sp::osn
