// Shared session/user/puzzle boilerplate for the integration suites
// (test_session, test_concurrency, test_observability, test_chaos). Every
// fixture builds a toy-preset Session so crypto stays fast; callers pick the
// seed, so suites keep the exact DRBG streams they had before the fixtures
// were factored out.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/session.hpp"

namespace sp::testsupport {

/// The running example context: four question/answer pairs about a party.
inline core::Context party_context() {
  return core::Context({{"Where did we meet?", "Paris"},
                        {"What did we eat?", "pizza"},
                        {"Who hosted?", "Alice"},
                        {"Which month?", "June"}});
}

/// Toy pairing preset + caller-chosen seed: the standard test session.
inline core::SessionConfig toy_config(const std::string& session_seed) {
  core::SessionConfig cfg;
  cfg.pairing_preset = ec::ParamPreset::kToy;
  cfg.seed = session_seed;
  return cfg;
}

/// One session with a sharer and one befriended receiver ("friend") — the
/// two-party setup most integration tests start from. Subclasses register
/// extra users in their own constructors (registration order determines user
/// ids, so append, don't prepend).
class SessionFixture : public ::testing::Test {
 protected:
  explicit SessionFixture(core::SessionConfig cfg)
      : session_(std::move(cfg)),
        sharer_(session_.register_user("sharer")),
        friend_(session_.register_user("friend")) {
    session_.befriend(sharer_, friend_);
  }

  core::Session session_;
  osn::UserId sharer_ = 0;
  osn::UserId friend_ = 0;
};

/// One sharer fanning out to `n_receivers` befriended receivers, with one C1
/// and one C2 post already shared — the setup the concurrency and chaos
/// hammers drive. Receiver i is meant to be driven by thread i: the fault
/// layer's determinism contract needs each (receiver, post) request series
/// issued from one thread in program order.
///
/// A plain struct (not a ::testing::Test) so replay tests can build two
/// same-config rigs inside one TEST body; FanoutSessionFixture below wraps
/// it for ordinary TEST_F suites.
struct FanoutRig {
  FanoutRig(core::SessionConfig cfg, std::size_t n_receivers)
      : session_(std::move(cfg)), sharer_(session_.register_user("sharer")) {
    for (std::size_t i = 0; i < n_receivers; ++i) {
      receivers_.push_back(session_.register_user("receiver-" + std::to_string(i)));
      session_.befriend(sharer_, receivers_.back());
    }
    ctx_ = party_context();
    c1_post_ = session_
                   .share_c1(sharer_, crypto::to_bytes("c1 object"), ctx_, 2, 4,
                             net::pc_profile())
                   .post_id;
    c2_post_ =
        session_.share_c2(sharer_, crypto::to_bytes("c2 object"), ctx_, 2, net::pc_profile())
            .post_id;
  }

  core::Session session_;
  osn::UserId sharer_ = 0;
  std::vector<osn::UserId> receivers_;
  core::Context ctx_;
  std::string c1_post_;
  std::string c2_post_;
};

class FanoutSessionFixture : public ::testing::Test, protected FanoutRig {
 protected:
  FanoutSessionFixture(core::SessionConfig cfg, std::size_t n_receivers)
      : FanoutRig(std::move(cfg), n_receivers) {}
};

}  // namespace sp::testsupport
