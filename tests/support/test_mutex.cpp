// Tests for the annotated lock capabilities in src/support/mutex.hpp: the
// wrappers must behave exactly like the std primitives they wrap (mutual
// exclusion, reader sharing, writer exclusion, condition wakeups) — the
// compile-time half of the contract (-Wthread-safety) is exercised by the
// SP_THREAD_SAFETY CI job, the runtime half here (and under TSan).
//
// A few helpers below probe the try_lock/unlock surface directly — the one
// shape the RAII guards cannot express — and carry
// SP_NO_THREAD_SAFETY_ANALYSIS with a justification each. Escapes are banned
// in src/core and src/osn, but tests of the lock layer itself are exactly
// what the escape hatch is for.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace {

struct GuardedCounter {
  sp::Mutex mu;
  int value SP_GUARDED_BY(mu) = 0;

  void bump() {
    const sp::MutexLock lock(mu);
    ++value;
  }
  int read() {
    const sp::MutexLock lock(mu);
    return value;
  }
};

TEST(Mutex, MutexLockProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.bump();
    });
  }
  for (std::thread& th : threads) th.join();
  // ++ under the lock never loses an update.
  EXPECT_EQ(counter.read(), kThreads * kIters);
}

// Deliberate TSA escape: asserting try_lock contention leaves the helper
// without the capability it "acquired false", which the analysis cannot
// model across EXPECT_* plumbing.
void expect_mutex_held_elsewhere(sp::Mutex& mu) SP_NO_THREAD_SAFETY_ANALYSIS {
  EXPECT_FALSE(mu.try_lock());
}

// Deliberate TSA escape: acquire-then-release across two statements is the
// raw surface under test; production code must use the RAII guards.
void expect_mutex_free(sp::Mutex& mu) SP_NO_THREAD_SAFETY_ANALYSIS {
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Mutex, TryLockContendsWhileGuardHeldAndFreesOnScopeExit) {
  sp::Mutex mu;
  {
    const sp::MutexLock lock(mu);
    // try_lock from another thread must fail while the guard is live (the
    // wrapper forwards to the same underlying mutex, and std::mutex makes
    // same-thread try_lock-while-held undefined, so probe cross-thread).
    std::thread prober([&mu] { expect_mutex_held_elsewhere(mu); });
    prober.join();
  }
  // The guard's destructor released the capability.
  std::thread prober([&mu] { expect_mutex_free(mu); });
  prober.join();
}

// Deliberate TSA escape: probes both acquisition modes and frees the shared
// one; the mixed result set has no RAII spelling.
void expect_readers_share_writers_blocked(sp::SharedMutex& mu) SP_NO_THREAD_SAFETY_ANALYSIS {
  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock_shared();
}

// Deliberate TSA escape: same as above for the writer-held state.
void expect_fully_blocked(sp::SharedMutex& mu) SP_NO_THREAD_SAFETY_ANALYSIS {
  EXPECT_FALSE(mu.try_lock_shared());
  EXPECT_FALSE(mu.try_lock());
}

TEST(SharedMutex, SharedLockAdmitsReadersAndBlocksWriters) {
  sp::SharedMutex mu;
  const sp::SharedLock reader(mu);
  std::thread prober([&mu] { expect_readers_share_writers_blocked(mu); });
  prober.join();
}

TEST(SharedMutex, UniqueLockExcludesEveryone) {
  sp::SharedMutex mu;
  {
    const sp::UniqueLock writer(mu);
    std::thread prober([&mu] { expect_fully_blocked(mu); });
    prober.join();
  }
  std::thread prober([&mu] { expect_readers_share_writers_blocked(mu); });
  prober.join();
}

struct GuardedLog {
  mutable sp::SharedMutex mu;
  std::vector<int> entries SP_GUARDED_BY(mu);

  void append(int v) {
    const sp::UniqueLock lock(mu);
    entries.push_back(v);
  }
  std::size_t size() const {
    const sp::SharedLock lock(mu);
    return entries.size();
  }
};

TEST(SharedMutex, ConcurrentReadersAndWritersStayCoherent) {
  GuardedLog log;
  constexpr int kWriters = 4;
  constexpr int kIters = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kIters; ++i) log.append(t * kIters + i);
    });
  }
  // Readers poll sizes while writers append: under the reader/writer guards
  // the size is always a valid snapshot (TSan proves the absence of races,
  // the monotonicity check proves reads are never torn).
  std::thread reader([&log, &stop] {
    std::size_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t now = log.size();
      EXPECT_GE(now, last);
      last = now;
    }
  });
  for (int t = 0; t < kWriters; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kWriters) * kIters);
}

struct Mailbox {
  sp::Mutex mu;
  sp::CondVar cv;
  bool ready SP_GUARDED_BY(mu) = false;
  int payload SP_GUARDED_BY(mu) = 0;
};

TEST(CondVar, WaitReleasesTheLockAndWakesOnNotify) {
  Mailbox box;
  std::thread producer([&box] {
    const sp::MutexLock lock(box.mu);
    box.payload = 42;
    box.ready = true;
    box.cv.notify_one();
  });
  int received = 0;
  {
    // Explicit while-loop wait (the sp::CondVar contract): the producer may
    // notify before the consumer first waits, and wakeups may be spurious.
    sp::MutexLock lock(box.mu);
    while (!box.ready) box.cv.wait(lock);
    received = box.payload;
  }
  producer.join();
  EXPECT_EQ(received, 42);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mailbox box;
  constexpr int kWaiters = 4;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&box, &woke] {
      sp::MutexLock lock(box.mu);
      while (!box.ready) box.cv.wait(lock);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    const sp::MutexLock lock(box.mu);
    box.ready = true;
  }
  box.cv.notify_all();
  for (std::thread& th : waiters) th.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

}  // namespace
