// Tracer hammers: concurrent producers, cross-thread span finishing and
// concurrent drains over the lock-free ring collector, plus the histogram
// exemplar seqlock. The *ConcurrencyHammer suite name puts these under the
// TSan CI job's filter alongside the serving-stack hammers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using sp::obs::ContextGuard;
using sp::obs::Span;
using sp::obs::SpanStatus;
using sp::obs::TraceContext;
using sp::obs::Tracer;
using sp::obs::TracerConfig;

class TraceConcurrencyHammer : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracer = Tracer::global();
    TracerConfig cfg;
    cfg.ring_slots = 64;
    cfg.kept_slots = 64;
    tracer.configure(cfg);
    tracer.set_enabled(true);
    (void)tracer.drain();
  }
  void TearDown() override {
    auto& tracer = Tracer::global();
    tracer.set_enabled(false);
    (void)tracer.drain();
  }
};

TEST_F(TraceConcurrencyHammer, ProducersAndDrainersRaceWithoutLossBeyondOverwrite) {
  auto& tracer = Tracer::global();
  constexpr int kProducers = 4;
  constexpr int kTracesPerProducer = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      drained.fetch_add(tracer.drain().size(), std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&tracer, p] {
      for (int i = 0; i < kTracesPerProducer; ++i) {
        Span root = tracer.start_trace("hammer");
        root.add_attr("producer", static_cast<std::int64_t>(p));
        {
          Span child(root.context(), "child");
          if (i % 7 == 0) child.set_status(SpanStatus::kTransientFault);
          child.end();
        }
        root.end();
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  drained.fetch_add(tracer.drain().size(), std::memory_order_relaxed);

  // Overwrites may recycle traces, but a drain can never fabricate more
  // than were produced.
  EXPECT_LE(drained.load(), static_cast<std::uint64_t>(kProducers) * kTracesPerProducer);
  EXPECT_GT(drained.load(), 0u);
}

TEST_F(TraceConcurrencyHammer, ManyThreadsFinishSpansOfOneTrace) {
  auto& tracer = Tracer::global();
  constexpr int kWorkers = 8;
  constexpr int kSpansPerWorker = 200;
  Span root = tracer.start_trace("shared");
  ASSERT_TRUE(root.recording());
  const TraceContext ctx = root.context();
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([ctx, w] {
      const ContextGuard guard(ctx);
      for (int i = 0; i < kSpansPerWorker; ++i) {
        Span s(Tracer::current(), "w" + std::to_string(w));
        s.end();
      }
    });
  }
  for (auto& t : workers) t.join();
  root.end();
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces.front().spans.size(),
            static_cast<std::size_t>(kWorkers) * kSpansPerWorker + 1);
}

TEST_F(TraceConcurrencyHammer, ExemplarSeqlockNeverTears) {
  sp::obs::MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1, 10, 100});
  std::atomic<bool> stop{false};
  // Writers always publish hi == lo, so any torn read shows up as hi != lo.
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&h, &stop, w] {
      std::uint64_t x = 0x1000u + static_cast<std::uint64_t>(w);
      while (!stop.load(std::memory_order_acquire)) {
        h.observe_exemplar(static_cast<double>(x % 97), x, x);
        ++x;
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    if (const auto ex = h.exemplar()) {
      ASSERT_EQ(ex->trace_hi, ex->trace_lo);
      ASSERT_NE(ex->trace_hi, 0u);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
}

}  // namespace
