// Unit tests for the span-tree tracer (src/obs/trace.hpp): sampling, span
// tree shape, attribute/status/link recording, the root-ends-last sealing
// rule, ring overwrite and the tail-based keep rules, plus the export and
// aggregation helpers in trace_sink.hpp.
//
// The tracer is process-global (like MetricsRegistry::global()), so every
// test that enables it drains and disables in TearDown — ordering between
// suites in this binary must not matter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"

namespace {

using sp::obs::ContextGuard;
using sp::obs::Span;
using sp::obs::SpanRecord;
using sp::obs::SpanStatus;
using sp::obs::TraceContext;
using sp::obs::TraceData;
using sp::obs::Tracer;
using sp::obs::TracerConfig;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracer = Tracer::global();
    tracer.configure(TracerConfig{});  // sample everything, default rings
    tracer.set_enabled(true);
    (void)tracer.drain();
  }
  void TearDown() override {
    auto& tracer = Tracer::global();
    tracer.set_enabled(false);
    (void)tracer.drain();
  }

  static const SpanRecord* find(const TraceData& trace, const std::string& name) {
    for (const auto& s : trace.spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  static bool has_attr(const SpanRecord& span, const std::string& key,
                       const std::string& value) {
    for (const auto& [k, v] : span.attrs) {
      if (k == key && v == value) return true;
    }
    return false;
  }
};

TEST_F(TraceTest, DisabledTracerIsInert) {
  auto& tracer = Tracer::global();
  tracer.set_enabled(false);
  Span root = tracer.start_trace("noop");
  EXPECT_FALSE(root.recording());
  EXPECT_FALSE(root.context().sampled());
  EXPECT_EQ(sp::obs::reserve_span_id(root.context()), 0u);
  // Every mutator must be a safe no-op on a non-recording span.
  root.set_status(SpanStatus::kTerminal);
  root.add_attr("k", "v");
  root.end();
  Span forced = tracer.start_trace_forced("noop");
  EXPECT_FALSE(forced.recording());
  tracer.set_enabled(true);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST_F(TraceTest, SpanTreeRecordsParentsAttrsAndStatus) {
  auto& tracer = Tracer::global();
  Span root = tracer.start_trace("request");
  ASSERT_TRUE(root.recording());
  root.add_attr("receiver", static_cast<std::int64_t>(7));
  {
    Span phase_a(root.context(), "phase.a");
    phase_a.add_attr("fault", "timeout");
    phase_a.set_status(SpanStatus::kTransientFault);
    Span leaf(phase_a.context(), "phase.a.leaf");
    leaf.add_attr("ratio", 0.5);
    leaf.end();
    phase_a.end();
  }
  Span phase_b(root.context(), "phase.b");
  phase_b.add_link(sp::obs::TraceId{1, 2}, 3);
  phase_b.end();
  root.end();

  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  const TraceData& t = traces.front();
  EXPECT_TRUE(t.id.valid());
  EXPECT_EQ(t.root_name, "request");
  EXPECT_TRUE(t.errored);  // phase.a ended transient-fault
  ASSERT_EQ(t.spans.size(), 4u);
  // Spans land in finish order, root last (the sealing rule).
  EXPECT_EQ(t.spans.back().name, "request");
  EXPECT_EQ(t.spans.back().parent_id, 0u);

  const SpanRecord* root_rec = find(t, "request");
  const SpanRecord* a = find(t, "phase.a");
  const SpanRecord* leaf = find(t, "phase.a.leaf");
  const SpanRecord* b = find(t, "phase.b");
  ASSERT_TRUE(root_rec != nullptr && a != nullptr && leaf != nullptr && b != nullptr);
  EXPECT_EQ(a->parent_id, root_rec->span_id);
  EXPECT_EQ(b->parent_id, root_rec->span_id);
  EXPECT_EQ(leaf->parent_id, a->span_id);
  EXPECT_EQ(a->status, SpanStatus::kTransientFault);
  EXPECT_TRUE(has_attr(*root_rec, "receiver", "7"));
  EXPECT_TRUE(has_attr(*a, "fault", "timeout"));
  ASSERT_EQ(b->links.size(), 1u);
  EXPECT_EQ(b->links[0].trace, (sp::obs::TraceId{1, 2}));
  EXPECT_EQ(b->links[0].span, 3u);
  for (const auto& s : t.spans) EXPECT_GE(s.end_ns, s.start_ns);
}

TEST_F(TraceTest, HeadSamplingZeroRecordsNothingButForcedBypasses) {
  auto& tracer = Tracer::global();
  TracerConfig cfg;
  cfg.sample_probability = 0.0;
  tracer.configure(cfg);
  for (int i = 0; i < 32; ++i) {
    Span s = tracer.start_trace("sampled-out");
    EXPECT_FALSE(s.recording());
    s.end();
  }
  Span forced = tracer.start_trace_forced("forced");
  EXPECT_TRUE(forced.recording());
  forced.end();
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces.front().root_name, "forced");
}

TEST_F(TraceTest, RootEndSealsTheTraceAndDropsStragglers) {
  auto& tracer = Tracer::global();
  Span root = tracer.start_trace("request");
  Span straggler(root.context(), "late");
  root.end();      // publishes the trace
  straggler.end();  // after the seal: dropped, not appended
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces.front().spans.size(), 1u);
  EXPECT_EQ(traces.front().spans.front().name, "request");
}

TEST_F(TraceTest, ReservedSpanIdMaterializesWithThatId) {
  auto& tracer = Tracer::global();
  Span root = tracer.start_trace("request");
  const TraceContext ctx = root.context();
  const std::uint64_t reserved = sp::obs::reserve_span_id(ctx);
  EXPECT_GT(reserved, 1u);
  const std::uint64_t start = Tracer::now_ns();
  Span job(ctx, "job", start, reserved);
  EXPECT_EQ(job.span_id(), reserved);
  job.end();
  root.end();
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  const SpanRecord* rec = find(traces.front(), "job");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->span_id, reserved);
  EXPECT_EQ(rec->start_ns, start);
}

TEST_F(TraceTest, ContextGuardInstallsAndRestores) {
  auto& tracer = Tracer::global();
  EXPECT_FALSE(Tracer::current().sampled());
  Span root = tracer.start_trace("request");
  {
    const ContextGuard outer(root.context());
    EXPECT_TRUE(Tracer::current().sampled());
    EXPECT_EQ(Tracer::current().span_id(), root.span_id());
    Span child(Tracer::current(), "child");
    {
      const ContextGuard inner(child.context());
      EXPECT_EQ(Tracer::current().span_id(), child.span_id());
    }
    EXPECT_EQ(Tracer::current().span_id(), root.span_id());
    child.end();
  }
  EXPECT_FALSE(Tracer::current().sampled());
  root.end();
  (void)tracer.drain();
}

TEST_F(TraceTest, ContextPropagatesAcrossThreads) {
  auto& tracer = Tracer::global();
  Span root = tracer.start_trace("request");
  const TraceContext ctx = root.context();
  std::thread worker([ctx] {
    const ContextGuard guard(ctx);
    Span remote(Tracer::current(), "remote");
    remote.end();
  });
  worker.join();
  root.end();
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  const SpanRecord* remote = find(traces.front(), "remote");
  const SpanRecord* root_rec = find(traces.front(), "request");
  ASSERT_TRUE(remote != nullptr && root_rec != nullptr);
  EXPECT_EQ(remote->parent_id, root_rec->span_id);
  EXPECT_NE(remote->thread, root_rec->thread);
}

TEST_F(TraceTest, DrainIsDestructive) {
  auto& tracer = Tracer::global();
  tracer.start_trace("one").end();
  EXPECT_EQ(tracer.drain().size(), 1u);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST_F(TraceTest, RecentRingKeepsNewestWhenWrapping) {
  auto& tracer = Tracer::global();
  TracerConfig cfg;
  cfg.ring_slots = 2;
  cfg.kept_slots = 2;
  cfg.keep_slow_min_count = 0;  // no slow-keeps: this test wants pure wrap
  tracer.configure(cfg);
  // Ring sizes bind at a thread's first publish, so produce from a fresh
  // thread — the main thread's rings were sized by earlier tests.
  std::thread producer([&tracer] {
    for (int i = 0; i < 6; ++i) {
      Span s = tracer.start_trace("t" + std::to_string(i));
      s.end();
    }
  });
  producer.join();
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 2u);
  std::vector<std::string> names;
  for (const auto& t : traces) names.push_back(t.root_name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"t4", "t5"}));
}

TEST_F(TraceTest, ErroredTraceSurvivesRingWrapInKeptRing) {
  auto& tracer = Tracer::global();
  TracerConfig cfg;
  cfg.ring_slots = 2;
  cfg.kept_slots = 2;
  cfg.keep_slow_min_count = 0;
  tracer.configure(cfg);
  std::thread producer([&tracer] {
    {
      Span bad = tracer.start_trace("errored");
      bad.set_status(SpanStatus::kTerminal);
      bad.end();
    }
    for (int i = 0; i < 8; ++i) {
      Span ok = tracer.start_trace("ok" + std::to_string(i));
      ok.end();
    }
  });
  producer.join();
  const auto traces = tracer.drain();
  const auto it = std::find_if(traces.begin(), traces.end(),
                               [](const TraceData& t) { return t.root_name == "errored"; });
  ASSERT_NE(it, traces.end()) << "errored trace evicted despite the kept ring";
  EXPECT_TRUE(it->errored);
}

TEST_F(TraceTest, SlowTraceTriggersTheKeepRule) {
  auto& tracer = Tracer::global();
  TracerConfig cfg;
  cfg.keep_slow_percentile = 0.5;
  cfg.keep_slow_min_count = 1;
  tracer.configure(cfg);
  // Seed the root-latency estimate with fast traces, then finish one that
  // is orders of magnitude above their p50.
  for (int i = 0; i < 8; ++i) tracer.start_trace("fast").end();
  auto& kept_slow = sp::obs::MetricsRegistry::global().counter("sp_traces_kept_total", "",
                                                               {{"reason", "slow"}});
  const std::uint64_t before = kept_slow.value();
  {
    Span slow = tracer.start_trace("slow");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    slow.end();
  }
  EXPECT_GT(kept_slow.value(), before);
}

TEST_F(TraceTest, TraceIdHexIs32LowercaseDigits) {
  const sp::obs::TraceId id{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = id.hex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  for (const char c : hex) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) != 0 &&
                std::isupper(static_cast<unsigned char>(c)) == 0);
  }
}

// ---------------------------------------------------------------------------
// trace_sink: export + aggregation
// ---------------------------------------------------------------------------

class TraceSinkTest : public TraceTest {
 protected:
  /// One two-level trace with a known slow child, drained to TraceData.
  std::vector<TraceData> make_traces() {
    auto& tracer = Tracer::global();
    Span root = tracer.start_trace("request");
    {
      Span child(root.context(), "work");
      child.add_attr("fault", "timeout");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      child.end();
    }
    root.end();
    return tracer.drain();
  }
};

TEST_F(TraceSinkTest, ChromeJsonHasCompleteEventsPerSpan) {
  const auto traces = make_traces();
  ASSERT_EQ(traces.size(), 1u);
  const std::string json = sp::obs::to_chrome_json(traces);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"timeout\""), std::string::npos);
}

TEST_F(TraceSinkTest, FoldedStacksAttributeSelfTime) {
  const auto traces = make_traces();
  const std::string folded = sp::obs::to_folded_stacks(traces);
  EXPECT_NE(folded.find("request;work "), std::string::npos);
  EXPECT_NE(folded.find("request "), std::string::npos);
}

TEST_F(TraceSinkTest, PhaseBreakdownSubtractsChildTimeFromSelf) {
  const auto traces = make_traces();
  const auto phases = sp::obs::phase_breakdown(traces);
  ASSERT_EQ(phases.size(), 2u);
  const auto* request = &phases[0];
  const auto* work = &phases[1];
  if (request->name != "request") std::swap(request, work);
  ASSERT_EQ(request->name, "request");
  ASSERT_EQ(work->name, "work");
  EXPECT_EQ(request->count, 1u);
  // The child slept ~2 ms; the root's self time excludes it.
  EXPECT_GE(work->self_ms, 1.0);
  EXPECT_LT(request->self_ms, request->total_ms);
  EXPECT_GE(request->total_ms, work->total_ms);
}

TEST_F(TraceSinkTest, SlowestTracesRanksByRootDuration) {
  auto& tracer = Tracer::global();
  {
    Span fast = tracer.start_trace("fast");
    fast.end();
  }
  {
    Span slow = tracer.start_trace("slow");
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    slow.end();
  }
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 2u);
  const auto order = sp::obs::slowest_traces(traces, 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(traces[order[0]].root_name, "slow");
  EXPECT_GE(traces[order[0]].duration_ms, traces[order[1]].duration_ms);
}

TEST_F(TraceSinkTest, FormatTraceTreeIndentsChildren) {
  const auto traces = make_traces();
  const std::string tree = sp::obs::format_trace_tree(traces.front());
  EXPECT_NE(tree.find("request"), std::string::npos);
  EXPECT_NE(tree.find("  work"), std::string::npos);
  EXPECT_NE(tree.find("fault=timeout"), std::string::npos);
}

}  // namespace
