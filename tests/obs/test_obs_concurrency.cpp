// Concurrency hammer for the observability instruments, aimed at the TSan CI
// job (suite name matches its -R "ThreadPool|ConcurrencyHammer|…" filter).
// Writers pound counters/gauges/histograms while readers scrape both
// exposition formats and other threads register new series — exactly the
// serving-vs-monitoring interleaving production sees. Counts must come out
// exact: striped relaxed atomics lose nothing, they only relax ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using sp::obs::MetricsRegistry;

constexpr std::size_t kWriters = 8;
constexpr std::size_t kItersPerWriter = 5000;

TEST(ObsConcurrencyHammer, CountsAreExactUnderContention) {
  MetricsRegistry reg;
  auto& counter = reg.counter("hammer_total", "");
  auto& gauge = reg.gauge("hammer_depth", "");
  auto& hist = reg.histogram("hammer_ms", "", {0.5, 1, 2});

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kItersPerWriter; ++i) {
        counter.inc();
        gauge.add(1);
        hist.observe(static_cast<double>((t + i) % 4));  // 0,1,2,3 -> all buckets
        gauge.sub(1);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(counter.value(), kWriters * kItersPerWriter);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), kWriters * kItersPerWriter);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : hist.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(ObsConcurrencyHammer, ScrapesRaceWritersAndRegistrations) {
  MetricsRegistry reg;
  auto& counter = reg.counter("hammer_total", "");
  auto& hist = reg.histogram("hammer_ms", "", {0.5, 1, 2});
  std::atomic<bool> stop{false};

  // Readers: scrape both formats and percentiles while everything churns.
  std::thread prometheus_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = reg.to_prometheus();
      EXPECT_FALSE(text.empty());
    }
  });
  std::thread json_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = reg.to_json();
      EXPECT_FALSE(json.empty());
      (void)hist.percentile(0.99);
    }
  });
  // Registrar: keeps taking the registry's write lock mid-scrape, and must
  // always get the same instrument back for the same (name, labels).
  std::thread registrar([&] {
    for (int round = 0; !stop.load(std::memory_order_relaxed); ++round) {
      const std::string op = "op" + std::to_string(round % 7);
      auto& a = reg.counter("hammer_labeled_total", "", {{"op", op}});
      auto& b = reg.counter("hammer_labeled_total", "", {{"op", op}});
      EXPECT_EQ(&a, &b);
      a.inc();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (std::size_t i = 0; i < kItersPerWriter; ++i) {
        counter.inc();
        hist.observe(0.25);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  prometheus_reader.join();
  json_reader.join();
  registrar.join();

  EXPECT_EQ(counter.value(), kWriters * kItersPerWriter);
  EXPECT_EQ(hist.count(), kWriters * kItersPerWriter);
  EXPECT_GE(reg.series_count(), 2u);
}

TEST(ObsConcurrencyHammer, EnableToggleRacesWriters) {
  // set_enabled flips mid-flight: totals land somewhere in [0, max] with no
  // torn state — this is the no-op-mode path the overhead bench leans on.
  MetricsRegistry reg;
  auto& counter = reg.counter("hammer_total", "");
  auto& hist = reg.histogram("hammer_ms", "", {1});
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      reg.set_enabled(false);
      reg.set_enabled(true);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (std::size_t i = 0; i < kItersPerWriter; ++i) {
        counter.inc();
        hist.observe(0.5);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  EXPECT_LE(counter.value(), kWriters * kItersPerWriter);
  EXPECT_LE(hist.count(), kWriters * kItersPerWriter);
}

TEST(ObsConcurrencyHammer, TraceSpansFromManyThreads) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("hammer_span_ms", "", {1000});
  struct LocalLedger {
    double total_ms = 0;
    void add_local_measured(double ms) { total_ms += ms; }
  };
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> ledger_nonzero{0};
  for (std::size_t t = 0; t < kWriters; ++t) {
    workers.emplace_back([&] {
      LocalLedger ledger;  // per-request (per-iteration owner = this thread)
      for (std::size_t i = 0; i < 500; ++i) {
        sp::obs::TraceSpan span(hist, ledger);
        span.stop();
      }
      if (ledger.total_ms >= 0) ledger_nonzero.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hist.count(), kWriters * 500);
  EXPECT_EQ(ledger_nonzero.load(), kWriters);
}

}  // namespace
