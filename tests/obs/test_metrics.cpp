// Unit tests for the observability instruments: counters, gauges, histogram
// bucket/percentile math, registration rules (the secret-hygiene charset),
// the no-op mode, TraceSpan, and both exposition formats.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using sp::obs::Histogram;
using sp::obs::MetricsRegistry;
using sp::obs::TraceSpan;

TEST(MetricsTest, CounterIncrementsAndMerges) {
  MetricsRegistry reg;
  auto& c = reg.counter("rq_total", "Requests");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeSetAddSub) {
  MetricsRegistry reg;
  auto& g = reg.gauge("queue_depth", "Tasks waiting");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
}

TEST(MetricsTest, RegistrationIsIdempotentPerLabelSet) {
  MetricsRegistry reg;
  auto& a = reg.counter("rq_total", "Requests", {{"op", "fetch"}});
  auto& b = reg.counter("rq_total", "", {{"op", "fetch"}});
  auto& c = reg.counter("rq_total", "", {{"op", "store"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsTest, KindAndBoundsConflictsThrow) {
  MetricsRegistry reg;
  reg.counter("rq_total", "Requests");
  EXPECT_THROW(reg.gauge("rq_total", ""), std::logic_error);
  reg.histogram("latency_ms", "", {1, 2, 5});
  EXPECT_THROW(reg.histogram("latency_ms", "", {1, 2}), std::logic_error);
  EXPECT_THROW(reg.counter("latency_ms", ""), std::logic_error);
}

TEST(MetricsTest, NameAndLabelValidationRejectsNonIdentifiers) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("", ""), std::invalid_argument);
  EXPECT_THROW(reg.counter("bad name", ""), std::invalid_argument);
  EXPECT_THROW(reg.counter("1starts_with_digit", ""), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok_total", "", {{"bad label", "x"}}), std::invalid_argument);
  // The secret-hygiene contract: label values are enum-like identifiers, so
  // anything that could carry payload bytes (spaces, quotes, length) is a
  // registration-time error.
  EXPECT_THROW(reg.counter("ok_total", "", {{"op", "has space"}}), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok_total", "", {{"op", "quo\"te"}}), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok_total", "", {{"op", std::string(65, 'a')}}),
               std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("ok_total", "", {{"phase", "c1.verify_hashes"}}));
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1, 2, 5});
  // Prometheus `le` semantics: a value equal to a bound lands in that bound's
  // bucket, strictly above goes to the next one.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.0001);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(5.0001);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.0001, 2.0
  EXPECT_EQ(counts[2], 1u);  // 5.0
  EXPECT_EQ(counts[3], 1u);  // 5.0001 -> +Inf
  EXPECT_EQ(h.count(), 6u);
}

TEST(MetricsTest, HistogramNegativeAndNanClampToZero) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1});
  h.observe(-3.0);
  h.observe(std::nan(""));
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.sum_ms(), 0.0);
}

TEST(MetricsTest, HistogramSumMaxAndEmptyPercentile) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1, 10});
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.observe(0.5);
  h.observe(7.25);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 7.75);
  EXPECT_DOUBLE_EQ(h.max_ms(), 7.25);
}

TEST(MetricsTest, HistogramPercentileInterpolates) {
  MetricsRegistry reg;
  // 100 uniform samples 0.5, 1.5, ..., 99.5 over 10-ms-wide buckets: the
  // interpolated pXX must land within one bucket width of the exact value.
  auto& h = reg.histogram("latency_ms", "", Histogram::linear_bounds(10, 10, 10));
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 10.0);
  EXPECT_LE(h.percentile(1.0), h.max_ms() + 1e-9);
  // Monotone in p.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(MetricsTest, HistogramOverflowBucketInterpolatesTowardMax) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1});
  h.observe(100.0);
  h.observe(200.0);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p99, 1.0);
  EXPECT_LE(p99, 200.0);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("h1_ms", "", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h2_ms", "", {1, 1}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h3_ms", "", {2, 1}), std::invalid_argument);
}

TEST(MetricsTest, DisabledRegistryIsNoOp) {
  MetricsRegistry reg;
  auto& c = reg.counter("rq_total", "");
  auto& g = reg.gauge("queue_depth", "");
  auto& h = reg.histogram("latency_ms", "", {1});
  reg.set_enabled(false);
  c.inc();
  g.set(5);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry reg;
  auto& c = reg.counter("rq_total", "");
  auto& h = reg.histogram("latency_ms", "", {1});
  c.inc(7);
  h.observe(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
}

TEST(MetricsTest, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  reg.counter("rq_total", "Requests served", {{"op", "fetch"}}).inc(3);
  reg.gauge("queue_depth", "Tasks waiting").set(2);
  auto& h = reg.histogram("latency_ms", "Request latency", {1, 2});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string expected =
      "# HELP latency_ms Request latency\n"
      "# TYPE latency_ms histogram\n"
      "latency_ms_bucket{le=\"1\"} 1\n"
      "latency_ms_bucket{le=\"2\"} 2\n"
      "latency_ms_bucket{le=\"+Inf\"} 3\n"
      "latency_ms_sum 11\n"
      "latency_ms_count 3\n"
      "# HELP queue_depth Tasks waiting\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2\n"
      "# HELP rq_total Requests served\n"
      "# TYPE rq_total counter\n"
      "rq_total{op=\"fetch\"} 3\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
}

TEST(MetricsTest, PrometheusLabelsComposeWithBucketLe) {
  MetricsRegistry reg;
  reg.histogram("phase_ms", "", {1}, {{"phase", "c1.interpolate"}}).observe(0.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("phase_ms_bucket{phase=\"c1.interpolate\",le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("phase_ms_count{phase=\"c1.interpolate\"} 1"), std::string::npos);
}

// Minimal JSON well-formedness checker: enough grammar to prove the snapshot
// parses (objects, arrays, strings with escapes, numbers, literals).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(MetricsTest, JsonSnapshotIsWellFormedAndComplete) {
  MetricsRegistry reg;
  reg.counter("rq_total", "Requests \"served\"", {{"op", "fetch"}}).inc(3);
  reg.gauge("queue_depth", "").set(-4);
  auto& h = reg.histogram("latency_ms", "", {1, 2});
  h.observe(0.5);
  h.observe(9.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"rq_total\""), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\": "), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("Requests \\\"served\\\""), std::string::npos);
}

/// Ledger stand-in: TraceSpan's template constructor only needs
/// add_local_measured(double).
struct FakeLedger {
  double total_ms = 0;
  void add_local_measured(double ms) { total_ms += ms; }
};

TEST(TraceSpanTest, FeedsHistogramAndLedger) {
  MetricsRegistry reg;
  auto& h = reg.histogram("phase_ms", "", {1000});
  FakeLedger ledger;
  {
    TraceSpan span(h, ledger);
    (void)span;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(ledger.total_ms, 0.0);
}

TEST(TraceSpanTest, StopIsIdempotentAndReturnsElapsed) {
  MetricsRegistry reg;
  auto& h = reg.histogram("phase_ms", "", {1000});
  TraceSpan span(h);
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(second, 0.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceSpanTest, DisabledRegistrySkipsHistogramButNotLedger) {
  MetricsRegistry reg;
  auto& h = reg.histogram("phase_ms", "", {1000});
  reg.set_enabled(false);
  {
    TraceSpan span(h);
    (void)span;
  }
  EXPECT_EQ(h.count(), 0u);
  // The ledger is protocol cost accounting, not metrics: it always times.
  FakeLedger ledger;
  {
    TraceSpan span(h, ledger);
    (void)span;
  }
  EXPECT_GT(ledger.total_ms, 0.0);
  EXPECT_EQ(h.count(), 0u);  // histogram still gated off
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

// ---------------------------------------------------------------------------
// Exposition escaping (PR 9 satellite): golden outputs for help strings that
// carry backslashes, quotes and newlines in both formats.
// ---------------------------------------------------------------------------

TEST(MetricsTest, PrometheusEscapesHelpBackslashAndNewline) {
  MetricsRegistry reg;
  reg.counter("esc_total", "line1\nline2 \"quoted\" back\\slash").inc();
  const std::string expected =
      "# HELP esc_total line1\\nline2 \"quoted\" back\\\\slash\n"
      "# TYPE esc_total counter\n"
      "esc_total 1\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
}

TEST(MetricsTest, JsonEscapesHelpControlCharsAndBackslash) {
  MetricsRegistry reg;
  reg.counter("esc_total", "tab\there\nback\\slash \"q\"").inc();
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("tab\\there\\nback\\\\slash \\\"q\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram exemplars: the seqlock slot keeping the largest observation's
// trace id, exposed as a Prometheus comment and a JSON object.
// ---------------------------------------------------------------------------

TEST(MetricsTest, ExemplarKeepsTheLargestObservation) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1, 10});
  EXPECT_FALSE(h.exemplar().has_value());
  h.observe_exemplar(2.0, 0xa, 0xb);
  h.observe_exemplar(7.0, 0xc, 0xd);
  h.observe_exemplar(3.0, 0xe, 0xf);
  const auto ex = h.exemplar();
  ASSERT_TRUE(ex.has_value());
  EXPECT_EQ(ex->trace_hi, 0xcu);
  EXPECT_EQ(ex->trace_lo, 0xdu);
  EXPECT_NEAR(ex->value_ms, 7.0, 1e-3);
  EXPECT_EQ(h.count(), 3u);  // observe_exemplar still feeds the buckets
}

TEST(MetricsTest, ExemplarIgnoresInvalidTraceIds) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1});
  h.observe_exemplar(9.0, 0, 0);  // untraced outlier: counted, not exemplified
  EXPECT_FALSE(h.exemplar().has_value());
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsTest, ExemplarAppearsInBothExpositions) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1, 10}, {{"op", "access"}});
  h.observe_exemplar(4.0, 0x0123456789abcdefull, 0xfedcba9876543210ull);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# exemplar latency_ms{op=\"access\"} "
                      "trace_id=0123456789abcdeffedcba9876543210 value_ms=4"),
            std::string::npos)
      << prom;
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"exemplar\": {\"trace_id\": "
                      "\"0123456789abcdeffedcba9876543210\""),
            std::string::npos)
      << json;
}

TEST(MetricsTest, ResetClearsTheExemplar) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency_ms", "", {1});
  h.observe_exemplar(5.0, 1, 2);
  reg.reset();
  EXPECT_FALSE(h.exemplar().has_value());
}

// ---------------------------------------------------------------------------
// Build identity metrics + scrape hooks (PR 9 satellite).
// ---------------------------------------------------------------------------

TEST(MetricsTest, BuildInfoFieldsAreSanitizedLabelValues) {
  const sp::obs::BuildInfo& info = sp::obs::build_info();
  for (const std::string* field :
       {&info.version, &info.git_sha, &info.compiler, &info.sanitizer}) {
    EXPECT_FALSE(field->empty());
    EXPECT_LE(field->size(), 64u);
    for (const char c : *field) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
                  c == '.' || c == '-' || c == '/' || c == ':')
          << *field;
    }
  }
}

TEST(MetricsTest, RegisterBuildMetricsExposesInfoAndUptime) {
  MetricsRegistry reg;
  sp::obs::register_build_metrics(reg);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("sp_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("compiler=\""), std::string::npos);
  EXPECT_NE(prom.find("git_sha=\""), std::string::npos);
  EXPECT_NE(prom.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(prom.find("version=\""), std::string::npos);
  EXPECT_NE(prom.find("} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("sp_uptime_seconds"), std::string::npos);
}

TEST(MetricsTest, BuildInfoSurvivesResetViaScrapeHook) {
  MetricsRegistry reg;
  sp::obs::register_build_metrics(reg);
  reg.reset();  // a bench-harness reset zeroes every series...
  const std::string prom = reg.to_prometheus();
  // ...but the scrape hook re-asserts the identity gauge at exposition time.
  EXPECT_NE(prom.find("} 1\n"), std::string::npos) << prom;
}

TEST(MetricsTest, ScrapeHooksRunOnBothExpositions) {
  MetricsRegistry reg;
  auto& g = reg.gauge("hooked_gauge", "");
  int runs = 0;
  reg.add_scrape_hook([&g, &runs] { g.set(++runs); });
  EXPECT_NE(reg.to_prometheus().find("hooked_gauge 1"), std::string::npos);
  EXPECT_NE(reg.to_json().find("\"value\": 2"), std::string::npos);
}

}  // namespace
