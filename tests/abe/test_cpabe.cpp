// End-to-end CP-ABE: setup → encrypt → keygen → decrypt across policies,
// plus the paper's Perturb/Reconstruct ciphertext flow.
#include "abe/cpabe.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <span>

namespace sp::abe {
namespace {

using crypto::Drbg;

std::vector<std::pair<std::string, std::string>> sample_qa() {
  return {{"q1", "a1"}, {"q2", "a2"}, {"q3", "a3"}, {"q4", "a4"}};
}

std::string attr(const std::string& q, const std::string& a) {
  return LeafAttribute{q, a, false}.canonical();
}

class CpAbeTest : public ::testing::Test {
 protected:
  CpAbeTest()
      : curve_(ec::preset_params(ec::ParamPreset::kToy)), scheme_(curve_), rng_("cpabe-tests") {}

  ec::Curve curve_;
  CpAbe scheme_;
  Drbg rng_;
};

TEST_F(CpAbeTest, DecryptWithSatisfyingAttributes) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q3", "a3")}, rng_);
  const auto recovered = scheme_.decrypt_key(pk, sk, ct);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, dem_key);
}

TEST_F(CpAbeTest, DecryptFailsBelowThreshold) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 3);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q2", "a2")}, rng_);
  EXPECT_FALSE(scheme_.decrypt_key(pk, sk, ct).has_value());
}

TEST_F(CpAbeTest, WrongAnswerAttributeDoesNotCount) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  // One right answer + one wrong answer: attribute string differs, so the
  // leaf is unmatched and the threshold unmet.
  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q2", "WRONG")}, rng_);
  EXPECT_FALSE(scheme_.decrypt_key(pk, sk, ct).has_value());
}

TEST_F(CpAbeTest, ThresholdOneAnyLeafSuffices) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 1);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  for (const auto& [q, a] : sample_qa()) {
    const PrivateKey sk = scheme_.keygen(mk, {attr(q, a)}, rng_);
    const auto recovered = scheme_.decrypt_key(pk, sk, ct);
    ASSERT_TRUE(recovered.has_value()) << q;
    EXPECT_EQ(*recovered, dem_key);
  }
}

TEST_F(CpAbeTest, AllLeavesThresholdN) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 4);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  std::vector<std::string> attrs;
  for (const auto& [q, a] : sample_qa()) attrs.push_back(attr(q, a));
  const PrivateKey all = scheme_.keygen(mk, attrs, rng_);
  ASSERT_TRUE(scheme_.decrypt_key(pk, all, ct).has_value());
  attrs.pop_back();
  const PrivateKey almost = scheme_.keygen(mk, attrs, rng_);
  EXPECT_FALSE(scheme_.decrypt_key(pk, almost, ct).has_value());
}

TEST_F(CpAbeTest, NestedPolicyDecrypts) {
  // (2 of [A, B, (1 of [C, D])]).
  AccessTree::Node inner;
  inner.threshold = 1;
  for (const char* a : {"c", "d"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    inner.children.push_back(leaf);
  }
  AccessTree::Node root;
  root.threshold = 2;
  for (const char* a : {"a", "b"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    root.children.push_back(leaf);
  }
  root.children.push_back(inner);
  const AccessTree policy{root};

  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  // A + D satisfies via the nested gate.
  const PrivateKey sk1 = scheme_.keygen(mk, {attr("q", "a"), attr("q", "d")}, rng_);
  const auto r1 = scheme_.decrypt_key(pk, sk1, ct);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, dem_key);

  // C + D does not (inner gate counts once).
  const PrivateKey sk2 = scheme_.keygen(mk, {attr("q", "c"), attr("q", "d")}, rng_);
  EXPECT_FALSE(scheme_.decrypt_key(pk, sk2, ct).has_value());
}

TEST_F(CpAbeTest, DepthThreePolicy) {
  // (2 of [ (2 of [a, b, (1 of [c, d])]), e ]) — exercises Lagrange
  // recombination across three levels of gates.
  auto leaf = [](const char* a) {
    AccessTree::Node n;
    n.leaf = LeafAttribute{"q", a, false};
    return n;
  };
  AccessTree::Node innermost;
  innermost.threshold = 1;
  innermost.children = {leaf("c"), leaf("d")};
  AccessTree::Node middle;
  middle.threshold = 2;
  middle.children = {leaf("a"), leaf("b"), innermost};
  AccessTree::Node root;
  root.threshold = 2;
  root.children = {middle, leaf("e")};
  const AccessTree policy{root};

  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  struct Case {
    std::vector<const char*> attrs;
    bool expect;
  };
  const Case cases[] = {
      {{"a", "b", "e"}, true},   // middle via a+b, root via middle+e
      {{"a", "d", "e"}, true},   // middle via a+innermost(d)
      {{"c", "b", "e"}, true},   // middle via innermost(c)+b
      {{"a", "b"}, false},       // middle satisfied, root needs e too
      {{"c", "d", "e"}, false},  // innermost counts once; middle unmet
      {{"e"}, false},
  };
  for (const Case& c : cases) {
    std::vector<std::string> attrs;
    for (const char* a : c.attrs) attrs.push_back(attr("q", a));
    const PrivateKey sk = scheme_.keygen(mk, attrs, rng_);
    const auto got = scheme_.decrypt_key(pk, sk, ct);
    EXPECT_EQ(got.has_value(), c.expect) << "attrs=" << c.attrs.size();
    if (got) {
      EXPECT_EQ(*got, dem_key);
    }
  }
}

TEST_F(CpAbeTest, DecryptShortCircuitKeepsLeafIdsAligned) {
  // Decrypt skips whole subtrees once a gate's threshold is met, advancing
  // the DFS id counter without pairing. This test forces both paths in one
  // tree: policy (2 of [A, (1 of [B, C]), D]).
  AccessTree::Node inner;
  inner.threshold = 1;
  for (const char* a : {"b", "c"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    inner.children.push_back(leaf);
  }
  AccessTree::Node root;
  root.threshold = 2;
  AccessTree::Node leaf_a;
  leaf_a.leaf = LeafAttribute{"q", "a", false};
  AccessTree::Node leaf_d;
  leaf_d.leaf = LeafAttribute{"q", "d", false};
  root.children.push_back(leaf_a);
  root.children.push_back(inner);
  root.children.push_back(leaf_d);
  const AccessTree policy{root};

  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  // Key {A, D}: the inner gate fails, D (after the skipped-over inner
  // subtree's ids) must still resolve to the right ciphertext component.
  const PrivateKey ad = scheme_.keygen(mk, {attr("q", "a"), attr("q", "d")}, rng_);
  auto r1 = scheme_.decrypt_key(pk, ad, ct);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, dem_key);

  // Key {A, C}: inner satisfied via its second child; D's subtree skipped.
  const PrivateKey ac = scheme_.keygen(mk, {attr("q", "a"), attr("q", "c")}, rng_);
  auto r2 = scheme_.decrypt_key(pk, ac, ct);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, dem_key);

  // Key {C, D}: first child A fails, both later children must still align.
  const PrivateKey cd = scheme_.keygen(mk, {attr("q", "c"), attr("q", "d")}, rng_);
  auto r3 = scheme_.decrypt_key(pk, cd, ct);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(*r3, dem_key);

  // Key {B} alone: inner satisfied but root threshold unmet.
  const PrivateKey b = scheme_.keygen(mk, {attr("q", "b")}, rng_);
  EXPECT_FALSE(scheme_.decrypt_key(pk, b, ct).has_value());
}

TEST_F(CpAbeTest, PerturbedCiphertextFlow) {
  // The paper's Construction 2: CT' carries the perturbed tree; a receiver
  // who knows >= k answers reconstructs and decrypts.
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  const Ciphertext ct_prime = CpAbe::swap_policy(ct, policy.perturb());

  // Receiver claims two correct answers.
  const auto [reconstructed, count] =
      ct_prime.policy.reconstruct({{"q1", "a1"}, {"q4", "a4"}});
  ASSERT_EQ(count, 2u);
  const Ciphertext ct_hat = CpAbe::swap_policy(ct_prime, reconstructed);
  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q4", "a4")}, rng_);
  const auto recovered = scheme_.decrypt_key(pk, sk, ct_hat);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, dem_key);

  // Without reconstruction the perturbed leaves never match — no decrypt.
  EXPECT_FALSE(scheme_.decrypt_key(pk, sk, ct_prime).has_value());
}

TEST_F(CpAbeTest, EncryptRejectsPerturbedPolicy) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree perturbed = AccessTree::puzzle_policy(sample_qa(), 2).perturb();
  EXPECT_THROW(scheme_.encrypt_key(pk, perturbed, rng_), std::invalid_argument);
}

TEST_F(CpAbeTest, KeygenRejectsEmptyAttributeSet) {
  auto [pk, mk] = scheme_.setup(rng_);
  EXPECT_THROW(scheme_.keygen(mk, {}, rng_), std::invalid_argument);
}

TEST_F(CpAbeTest, DistinctEncryptionsProduceDistinctKeys) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 1);
  auto [ct1, key1] = scheme_.encrypt_key(pk, policy, rng_);
  auto [ct2, key2] = scheme_.encrypt_key(pk, policy, rng_);
  EXPECT_NE(key1, key2);
}

TEST_F(CpAbeTest, CollusionOfTwoInsufficientKeysFails) {
  // Alice knows a1, Bob knows a2; threshold is 2. Pooling ciphertext
  // components across their *separate* keys must not work: the r-values
  // differ, so DecryptNode shares don't combine. We model the strongest
  // simple pooling attack: use Alice's key for leaf 1 and Bob's for leaf 2
  // by building a Frankenstein key holding both attributes from different
  // keygen runs.
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  const PrivateKey alice = scheme_.keygen(mk, {attr("q1", "a1")}, rng_);
  const PrivateKey bob = scheme_.keygen(mk, {attr("q2", "a2")}, rng_);
  PrivateKey franken = alice;
  franken.attrs.insert(bob.attrs.begin(), bob.attrs.end());

  const auto recovered = scheme_.decrypt_key(pk, franken, ct);
  // DecryptNode "succeeds" structurally but the mixed randomness yields a
  // wrong key — collusion resistance.
  if (recovered.has_value()) {
    EXPECT_NE(*recovered, dem_key);
  }
}

TEST_F(CpAbeTest, SerializationRoundTrips) {
  auto [pk, mk] = scheme_.setup(rng_);
  const AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q2", "a2")}, rng_);

  const PublicKey pk2 = scheme_.deserialize_public_key(scheme_.serialize(pk));
  const MasterKey mk2 = scheme_.deserialize_master_key(scheme_.serialize(mk));
  const PrivateKey sk2 = scheme_.deserialize_private_key(scheme_.serialize(sk));
  const Ciphertext ct2 = scheme_.deserialize_ciphertext(scheme_.serialize(ct));

  EXPECT_EQ(pk2.g, pk.g);
  EXPECT_EQ(pk2.h, pk.h);
  EXPECT_EQ(pk2.f, pk.f);
  EXPECT_EQ(pk2.e_gg_alpha, pk.e_gg_alpha);
  EXPECT_EQ(mk2.beta, mk.beta);
  EXPECT_EQ(mk2.g_alpha, mk.g_alpha);

  // Deserialized artifacts interoperate end to end.
  const auto recovered = scheme_.decrypt_key(pk2, sk2, ct2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, dem_key);
}

TEST_F(CpAbeTest, DeserializeRejectsTrailingBytes) {
  auto [pk, mk] = scheme_.setup(rng_);
  auto wire = scheme_.serialize(pk);
  wire.push_back(0);
  EXPECT_THROW(scheme_.deserialize_public_key(wire), std::invalid_argument);
}

TEST_F(CpAbeTest, CiphertextSizeGrowsLinearlyInLeaves) {
  // The paper's I2 network cost stems from ciphertext growth with N.
  auto [pk, mk] = scheme_.setup(rng_);
  std::vector<std::pair<std::string, std::string>> qa;
  std::size_t prev = 0;
  for (int n = 2; n <= 8; n += 2) {
    qa.clear();
    for (int i = 0; i < n; ++i) qa.emplace_back("q" + std::to_string(i), "a" + std::to_string(i));
    auto [ct, key] = scheme_.encrypt_key(pk, AccessTree::puzzle_policy(qa, 1), rng_);
    const std::size_t size = scheme_.serialize(ct).size();
    EXPECT_GT(size, prev);
    prev = size;
  }
}

// Threshold sweep: decrypt succeeds with exactly k attrs, fails with k-1.
class CpAbeThresholdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpAbeThresholdSweep, ExactBoundary) {
  const std::size_t k = GetParam();
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  const CpAbe scheme(curve);
  Drbg rng("cpabe-sweep-" + std::to_string(k));

  std::vector<std::pair<std::string, std::string>> qa;
  for (int i = 0; i < 6; ++i) qa.emplace_back("q" + std::to_string(i), "a" + std::to_string(i));
  auto [pk, mk] = scheme.setup(rng);
  auto [ct, dem_key] = scheme.encrypt_key(pk, AccessTree::puzzle_policy(qa, k), rng);

  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < k; ++i) attrs.push_back(attr(qa[i].first, qa[i].second));
  const PrivateKey enough = scheme.keygen(mk, attrs, rng);
  const auto ok = scheme.decrypt_key(pk, enough, ct);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, dem_key);

  if (k > 1) {
    attrs.pop_back();
    const PrivateKey short_one = scheme.keygen(mk, attrs, rng);
    EXPECT_FALSE(scheme.decrypt_key(pk, short_one, ct).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(K, CpAbeThresholdSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- PR 7: batched decrypt (multi-pairing) vs the reference recursion ---

/// decrypt_key (satisfiability pass + flattened Lagrange exponents + one
/// Pairing::product) must be byte-identical to decrypt_key_reference (the
/// BSW07 DecryptNode recursion) on every policy/keyset combination,
/// including denials.
TEST_F(CpAbeTest, BatchedDecryptMatchesReferenceAcrossKeysets) {
  AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  const std::vector<std::vector<std::string>> keysets = {
      {attr("q1", "a1"), attr("q2", "a2")},                      // exactly k
      {attr("q1", "a1"), attr("q2", "a2"), attr("q4", "a4")},    // above k
      {attr("q2", "a2"), attr("q3", "a3"), attr("q4", "a4")},    // different subset
      {attr("q1", "a1")},                                        // below k -> denial
      {attr("q1", "wrong"), attr("q2", "a2")},                   // wrong answer
  };
  for (const auto& attrs : keysets) {
    const PrivateKey sk = scheme_.keygen(mk, attrs, rng_);
    const auto batched = scheme_.decrypt_key(pk, sk, ct);
    const auto reference = scheme_.decrypt_key_reference(pk, sk, ct);
    ASSERT_EQ(batched.has_value(), reference.has_value());
    if (batched) {
      EXPECT_EQ(*batched, *reference);
      EXPECT_EQ(*batched, dem_key);
    }
  }
}

TEST_F(CpAbeTest, BatchedDecryptMatchesReferenceOnNestedPolicy) {
  // Root 2-of-3 over [a, b, (2 of [c, d, e])]: multiplies Lagrange
  // coefficients down two gate levels into the cumulative leaf exponents.
  AccessTree::Node inner;
  inner.threshold = 2;
  for (const char* a : {"c", "d", "e"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    inner.children.push_back(leaf);
  }
  AccessTree::Node root;
  root.threshold = 2;
  for (const char* a : {"a", "b"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    root.children.push_back(leaf);
  }
  root.children.push_back(inner);
  const AccessTree policy{root};

  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);

  const std::vector<std::vector<std::string>> keysets = {
      {attr("q", "a"), attr("q", "c"), attr("q", "d")},  // leaf + nested gate
      {attr("q", "a"), attr("q", "b")},                  // two root leaves
      {attr("q", "c"), attr("q", "d")},                  // nested alone: denial
  };
  for (const auto& attrs : keysets) {
    const PrivateKey sk = scheme_.keygen(mk, attrs, rng_);
    const auto batched = scheme_.decrypt_key(pk, sk, ct);
    const auto reference = scheme_.decrypt_key_reference(pk, sk, ct);
    ASSERT_EQ(batched.has_value(), reference.has_value());
    if (batched) {
      EXPECT_EQ(*batched, *reference);
      EXPECT_EQ(*batched, dem_key);
    }
  }
}

TEST_F(CpAbeTest, BatchedDecryptWithRunnerMatchesInline) {
  AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 3);
  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  const PrivateKey sk =
      scheme_.keygen(mk, {attr("q1", "a1"), attr("q2", "a2"), attr("q3", "a3")}, rng_);
  std::size_t jobs_seen = 0;
  const CpAbe::ParallelRunner runner =
      [&jobs_seen](std::span<const std::function<void()>> jobs) {
        jobs_seen += jobs.size();
        for (const auto& job : jobs) job();
      };
  const auto with_runner = scheme_.decrypt_key(pk, sk, ct, runner);
  ASSERT_TRUE(with_runner.has_value());
  EXPECT_EQ(*with_runner, dem_key);
  // 2 pairings per satisfied leaf + e(C, D): all routed through the runner.
  EXPECT_EQ(jobs_seen, 2u * 3u + 1u);
}

TEST_F(CpAbeTest, PerturbedLeavesExcludedFromBatchedSelection) {
  // Reconstruct-style flow: perturb, then swap in a tree where only SOME
  // leaves are answered — the satisfiability pass must skip perturbed
  // leaves exactly like the reference recursion does.
  AccessTree policy = AccessTree::puzzle_policy(sample_qa(), 2);
  auto [pk, mk] = scheme_.setup(rng_);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, policy, rng_);
  const AccessTree perturbed = policy.perturb();
  // Receiver knows q1/q2: un-perturb those two leaves only.
  const auto [tau_hat, recovered] =
      perturbed.reconstruct({{"q1", "a1"}, {"q2", "a2"}});
  ASSERT_EQ(recovered, 2u);
  const Ciphertext ct_hat = CpAbe::swap_policy(ct, tau_hat);
  const PrivateKey sk = scheme_.keygen(mk, {attr("q1", "a1"), attr("q2", "a2")}, rng_);
  const auto batched = scheme_.decrypt_key(pk, sk, ct_hat);
  const auto reference = scheme_.decrypt_key_reference(pk, sk, ct_hat);
  ASSERT_TRUE(batched.has_value());
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(*batched, *reference);
  EXPECT_EQ(*batched, dem_key);
}

}  // namespace
}  // namespace sp::abe
