#include "abe/access_tree.hpp"

#include <gtest/gtest.h>

namespace sp::abe {
namespace {

std::vector<std::pair<std::string, std::string>> sample_qa() {
  return {{"Where did we meet?", "paris"},
          {"What did we eat?", "pizza"},
          {"Who hosted?", "alice"},
          {"Which month?", "june"}};
}

TEST(LeafAttribute, CanonicalSeparatesFields) {
  const LeafAttribute a{"ab", "c", false};
  const LeafAttribute b{"a", "bc", false};
  EXPECT_NE(a.canonical(), b.canonical());
}

TEST(AccessTree, PuzzlePolicyShape) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 2);
  EXPECT_EQ(t.root().threshold, 2u);
  EXPECT_EQ(t.root().children.size(), 4u);
  EXPECT_EQ(t.leaf_count(), 4u);
  for (const auto& [id, leaf] : t.leaves()) {
    EXPECT_TRUE(leaf->is_leaf());
    EXPECT_FALSE(leaf->leaf->perturbed);
  }
}

TEST(AccessTree, PuzzlePolicyRejectsBadThreshold) {
  EXPECT_THROW(AccessTree::puzzle_policy(sample_qa(), 0), std::invalid_argument);
  EXPECT_THROW(AccessTree::puzzle_policy(sample_qa(), 5), std::invalid_argument);
  EXPECT_THROW(AccessTree::puzzle_policy({}, 1), std::invalid_argument);
}

TEST(AccessTree, ValidationRejectsMalformedNodes) {
  AccessTree::Node bad_leaf;
  bad_leaf.leaf = LeafAttribute{"q", "a", false};
  bad_leaf.threshold = 2;
  EXPECT_THROW(AccessTree{bad_leaf}, std::invalid_argument);

  AccessTree::Node empty_internal;
  empty_internal.threshold = 1;
  EXPECT_THROW(AccessTree{empty_internal}, std::invalid_argument);

  AccessTree::Node over_threshold;
  AccessTree::Node child;
  child.leaf = LeafAttribute{"q", "a", false};
  over_threshold.children.push_back(child);
  over_threshold.threshold = 2;
  EXPECT_THROW(AccessTree{over_threshold}, std::invalid_argument);
}

TEST(AccessTree, SatisfiedByThreshold) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 2);
  const std::string attr0 = LeafAttribute{"Where did we meet?", "paris", false}.canonical();
  const std::string attr1 = LeafAttribute{"What did we eat?", "pizza", false}.canonical();
  const std::string wrong = LeafAttribute{"Where did we meet?", "rome", false}.canonical();
  EXPECT_FALSE(t.satisfied_by({}));
  EXPECT_FALSE(t.satisfied_by({attr0}));
  EXPECT_FALSE(t.satisfied_by({attr0, wrong}));
  EXPECT_TRUE(t.satisfied_by({attr0, attr1}));
  EXPECT_TRUE(t.satisfied_by({attr0, attr1, wrong}));
}

TEST(AccessTree, NestedTreeSatisfaction) {
  // (2 of [leafA, leafB, (1 of [leafC, leafD])]) — general BSW07 policy.
  AccessTree::Node inner;
  inner.threshold = 1;
  for (const char* a : {"c", "d"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    inner.children.push_back(leaf);
  }
  AccessTree::Node root;
  root.threshold = 2;
  for (const char* a : {"a", "b"}) {
    AccessTree::Node leaf;
    leaf.leaf = LeafAttribute{"q", a, false};
    root.children.push_back(leaf);
  }
  root.children.push_back(inner);
  const AccessTree t(root);
  EXPECT_EQ(t.leaf_count(), 4u);

  auto attr = [](const char* a) { return LeafAttribute{"q", a, false}.canonical(); };
  EXPECT_TRUE(t.satisfied_by({attr("a"), attr("b")}));
  EXPECT_TRUE(t.satisfied_by({attr("a"), attr("c")}));
  EXPECT_TRUE(t.satisfied_by({attr("b"), attr("d")}));
  EXPECT_FALSE(t.satisfied_by({attr("c"), attr("d")}));  // inner counts once
  EXPECT_FALSE(t.satisfied_by({attr("a")}));
}

TEST(AccessTree, PerturbHidesAnswers) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 2);
  const AccessTree p = t.perturb();
  for (const auto& [id, leaf] : p.leaves()) {
    EXPECT_TRUE(leaf->leaf->perturbed);
    EXPECT_EQ(leaf->leaf->answer.size(), 64u);  // hex sha256
  }
  // Questions survive; answers do not appear anywhere.
  const auto wire = p.serialize();
  const std::string as_str(wire.begin(), wire.end());
  EXPECT_EQ(as_str.find("paris"), std::string::npos);
  EXPECT_NE(as_str.find("Where did we meet?"), std::string::npos);
  // Perturb is idempotent.
  EXPECT_EQ(p.perturb(), p);
}

TEST(AccessTree, ReconstructWithCorrectAnswers) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 2);
  const AccessTree p = t.perturb();
  const auto [rec, count] =
      p.reconstruct({{"Where did we meet?", "paris"}, {"What did we eat?", "pizza"}});
  EXPECT_EQ(count, 2u);
  std::size_t clear = 0;
  for (const auto& [id, leaf] : rec.leaves()) {
    if (!leaf->leaf->perturbed) ++clear;
  }
  EXPECT_EQ(clear, 2u);
}

TEST(AccessTree, ReconstructRejectsWrongAnswers) {
  const AccessTree p = AccessTree::puzzle_policy(sample_qa(), 2).perturb();
  const auto [rec, count] =
      p.reconstruct({{"Where did we meet?", "rome"}, {"Unknown question?", "x"}});
  EXPECT_EQ(count, 0u);
  for (const auto& [id, leaf] : rec.leaves()) EXPECT_TRUE(leaf->leaf->perturbed);
}

TEST(AccessTree, FullReconstructRoundTripsToOriginal) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 3);
  std::map<std::string, std::string> all;
  for (const auto& [q, a] : sample_qa()) all[q] = a;
  const auto [rec, count] = t.perturb().reconstruct(all);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(rec, t);
}

TEST(AccessTree, SerializeRoundTrip) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 3);
  EXPECT_EQ(AccessTree::deserialize(t.serialize()), t);
  const AccessTree p = t.perturb();
  EXPECT_EQ(AccessTree::deserialize(p.serialize()), p);
}

TEST(AccessTree, DeserializeRejectsGarbage) {
  EXPECT_THROW(AccessTree::deserialize(crypto::Bytes{}), std::invalid_argument);
  EXPECT_THROW(AccessTree::deserialize(crypto::Bytes{0, 0, 0}), std::invalid_argument);
  // Trailing bytes.
  auto wire = AccessTree::puzzle_policy(sample_qa(), 1).serialize();
  wire.push_back(0);
  EXPECT_THROW(AccessTree::deserialize(wire), std::invalid_argument);
}

TEST(AccessTree, LeafIdsAreStableAcrossPerturb) {
  const AccessTree t = AccessTree::puzzle_policy(sample_qa(), 2);
  const AccessTree perturbed = t.perturb();  // leaves() returns raw pointers into the tree
  const auto orig = t.leaves();
  const auto pert = perturbed.leaves();
  ASSERT_EQ(orig.size(), pert.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(orig[i].first, pert[i].first);
    EXPECT_EQ(orig[i].second->leaf->question, pert[i].second->leaf->question);
  }
}

}  // namespace
}  // namespace sp::abe
