#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "codec/records.hpp"
#include "crypto/bytes.hpp"
#include "storage/store.hpp"

namespace sp::storage {
namespace {

namespace fs = std::filesystem;
using codec::Envelope;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-store-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

Envelope put(int i) {
  return {Envelope::Op::kPut, 1, static_cast<std::uint64_t>(i), "id-" + std::to_string(i),
          to_bytes("value-" + std::to_string(i))};
}

Envelope erase(int i) { return {Envelope::Op::kErase, 1, 0, "id-" + std::to_string(i), {}}; }

/// Replays a directory into a map the way a host would.
std::map<std::string, Bytes> materialize(const std::string& dir,
                                         DurableStore::RecoveryStats* stats = nullptr) {
  DurableStore store({dir, {}, 64ull << 20});
  std::map<std::string, Bytes> state;
  const auto s = store.recover([&](const Envelope& env) {
    switch (env.op) {
      case Envelope::Op::kPut:
        state[env.id] = env.value;
        break;
      case Envelope::Op::kErase:
        state.erase(env.id);
        break;
      case Envelope::Op::kObserve:
        break;
    }
  });
  if (stats != nullptr) *stats = s;
  return state;
}

TEST(DurableStore, FreshDirectoryRecoversEmptyAndPersistsAppends) {
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    const auto stats = store.recover([](const Envelope&) { FAIL() << "fresh dir has no records"; });
    EXPECT_EQ(stats.segment_records, 0u);
    EXPECT_EQ(stats.wal_records, 0u);
    for (int i = 0; i < 100; ++i) store.append(put(i));
    store.append(erase(7));
  }
  DurableStore::RecoveryStats stats;
  const auto state = materialize(tmp.str(), &stats);
  EXPECT_EQ(stats.wal_records, 101u);
  EXPECT_EQ(state.size(), 99u);
  EXPECT_EQ(state.at("id-3"), to_bytes("value-3"));
  EXPECT_FALSE(state.contains("id-7"));
}

TEST(DurableStore, ReplayPreservesPutOverwriteOrder) {
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    store.append({Envelope::Op::kPut, 1, 0, "k", to_bytes("first")});
    store.append({Envelope::Op::kPut, 1, 0, "k", to_bytes("second")});
  }
  EXPECT_EQ(materialize(tmp.str()).at("k"), to_bytes("second"));
}

TEST(DurableStore, CheckpointCompactsAndDeletesOldEpochFiles) {
  TempDir tmp;
  std::map<std::string, Bytes> live;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    EXPECT_EQ(store.epoch(), 0u);
    for (int i = 0; i < 200; ++i) {
      store.append(put(i));
      live["id-" + std::to_string(i)] = to_bytes("value-" + std::to_string(i));
    }
    for (int i = 0; i < 200; i += 2) {
      store.append(erase(i));
      live.erase("id-" + std::to_string(i));
    }

    store.checkpoint([&](const DurableStore::Applier& emit) {
      for (const auto& [id, value] : live) emit({Envelope::Op::kPut, 1, 0, id, value});
    });
    EXPECT_EQ(store.epoch(), 1u);
    EXPECT_TRUE(fs::exists(DurableStore::segment_path(tmp.str(), 1)));
    EXPECT_TRUE(fs::exists(DurableStore::wal_path(tmp.str(), 1)));
    EXPECT_FALSE(fs::exists(DurableStore::wal_path(tmp.str(), 0)));
    EXPECT_EQ(store.wal_bytes(), 0u);  // post-rotation WAL starts empty

    // Appends after the checkpoint land in the new WAL.
    store.append(put(1000));
    live["id-1000"] = to_bytes("value-1000");
  }

  DurableStore::RecoveryStats stats;
  const auto state = materialize(tmp.str(), &stats);
  EXPECT_EQ(stats.segment_records, 100u);
  EXPECT_EQ(stats.wal_records, 1u);
  EXPECT_EQ(state.size(), live.size());
  for (const auto& [id, value] : live) {
    ASSERT_TRUE(state.contains(id)) << id;
    EXPECT_EQ(state.at(id), value);
  }
}

TEST(DurableStore, RecordInBothSegmentAndWalResolvesToWalVersion) {
  // The checkpoint protocol allows a record appended concurrently with the
  // snapshot scan to appear in both files; WAL replays after the segment, so
  // the (equal or newer) WAL version must win.
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    store.append({Envelope::Op::kPut, 1, 0, "k", to_bytes("old")});
    store.checkpoint([&](const DurableStore::Applier& emit) {
      emit({Envelope::Op::kPut, 1, 0, "k", to_bytes("snapshot")});
    });
    store.append({Envelope::Op::kPut, 1, 0, "k", to_bytes("newer")});
  }
  EXPECT_EQ(materialize(tmp.str()).at("k"), to_bytes("newer"));
}

TEST(DurableStore, MaybeCheckpointHonorsByteThreshold) {
  TempDir tmp;
  DurableStore store({tmp.str(), {}, /*checkpoint_wal_bytes=*/1024});
  store.recover([](const Envelope&) {});
  const auto scan = [](const DurableStore::Applier&) {};
  EXPECT_FALSE(store.maybe_checkpoint(scan));  // empty WAL, below threshold
  while (store.wal_bytes() <= 1024) store.append(put(0));
  EXPECT_TRUE(store.maybe_checkpoint(scan));
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_FALSE(store.maybe_checkpoint(scan));  // fresh WAL, below threshold again
}

TEST(DurableStore, RepeatedCheckpointsAdvanceEpochs) {
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    for (int e = 0; e < 3; ++e) {
      store.append(put(e));
      store.checkpoint([&](const DurableStore::Applier& emit) {
        for (int i = 0; i <= e; ++i) emit(put(i));
      });
    }
    EXPECT_EQ(store.epoch(), 3u);
    // Exactly one segment and one WAL remain.
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(tmp.str())) {
      ++files;
      (void)entry;
    }
    EXPECT_EQ(files, 2u);
  }
  EXPECT_EQ(materialize(tmp.str()).size(), 3u);
}

TEST(DurableStore, CorruptNewestSegmentFallsBackToWalHistory) {
  // A checkpoint that tore mid-rename (or a disk that lied) leaves a segment
  // that fails validation. Recovery must reject it and serve from what
  // remains rather than refuse to open.
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    store.append(put(1));
    store.checkpoint([&](const DurableStore::Applier& emit) { emit(put(1)); });
    store.append(put(2));
  }
  // Corrupt the epoch-1 segment.
  const std::string seg = DurableStore::segment_path(tmp.str(), 1);
  {
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(6);
    f.put(static_cast<char>(0xFF));
  }
  const auto state = materialize(tmp.str());
  // The segment is gone (deleted as corrupt); the epoch-1 WAL still replays.
  EXPECT_FALSE(fs::exists(seg));
  EXPECT_TRUE(state.contains("id-2"));
}

TEST(DurableStore, TornWalTailSurfacesInStats) {
  TempDir tmp;
  {
    DurableStore store({tmp.str(), {}, 64ull << 20});
    store.recover([](const Envelope&) {});
    for (int i = 0; i < 5; ++i) store.append(put(i));
  }
  {
    std::ofstream out(DurableStore::wal_path(tmp.str(), 0), std::ios::binary | std::ios::app);
    out.write("SPR1torn", 8);
  }
  DurableStore::RecoveryStats stats;
  const auto state = materialize(tmp.str(), &stats);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(state.size(), 5u);
}

}  // namespace
}  // namespace sp::storage
