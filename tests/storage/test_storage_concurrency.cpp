// Multi-thread hammers for the single-writer WAL queue and the durable
// hosts, named *ConcurrencyHammer so the TSan CI job's filter picks them up
// (.github/workflows/ci.yml). These are race detectors, not correctness
// oracles — the correctness assertions live in test_wal / test_store.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codec/records.hpp"
#include "crypto/bytes.hpp"
#include "osn/storage_host.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace sp::storage {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-storconc-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const { return (dir_ / name).string(); }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

Bytes record(int i) {
  return codec::encode_envelope({codec::Envelope::Op::kPut, 1, static_cast<std::uint64_t>(i),
                                 "id-" + std::to_string(i), to_bytes("v")});
}

TEST(WalConcurrencyHammer, MixedAppendAsyncFlushFromManyThreads) {
  TempDir tmp;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::uint64_t expected = 0;
  {
    WalWriter::Options opts;
    opts.fsync = WalWriter::Fsync::kNever;
    WalWriter wal(tmp.path("wal.log"), opts);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const int n = t * kPerThread + i;
          switch (i % 4) {
            case 0:
              wal.append(record(n));
              break;
            case 1:
              wal.append_async(record(n));
              break;
            case 2:
              wal.wait(wal.enqueue(record(n)));
              break;
            default:
              wal.append_async(record(n));
              if (i % 16 == 3) wal.flush();
              break;
          }
          (void)wal.current_file_bytes();
        }
      });
    }
    for (auto& th : threads) th.join();
    wal.flush();
    expected = kThreads * kPerThread;
  }
  std::uint64_t seen = 0;
  replay_wal(tmp.path("wal.log"), [&](const codec::Frame&) { ++seen; });
  EXPECT_EQ(seen, expected);
}

TEST(WalConcurrencyHammer, RotationRacesAppendsWithoutLoss) {
  TempDir tmp;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  constexpr int kRotations = 8;
  {
    WalWriter::Options opts;
    opts.fsync = WalWriter::Fsync::kNever;
    WalWriter wal(tmp.path("wal-0.log"), opts);
    std::atomic<bool> done{false};
    std::thread rotator([&] {
      for (int r = 1; r <= kRotations; ++r) {
        wal.rotate_to(tmp.path("wal-" + std::to_string(r) + ".log"));
      }
      done.store(true);
    });
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) wal.append(record(t * kPerThread + i));
      });
    }
    for (auto& th : threads) th.join();
    rotator.join();
    EXPECT_TRUE(done.load());
  }
  // Every record landed in exactly one of the rotation's files.
  std::uint64_t seen = 0;
  for (int r = 0; r <= kRotations; ++r) {
    replay_wal(tmp.path("wal-" + std::to_string(r) + ".log"),
               [&](const codec::Frame&) { ++seen; });
  }
  EXPECT_EQ(seen, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(DurableHostConcurrencyHammer, StoreFetchRemoveCheckpointMix) {
  TempDir tmp;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 150;
  std::atomic<std::uint64_t> stored{0};
  std::atomic<std::uint64_t> removed{0};
  {
    storage::DurableStore::Options opts;
    opts.dir = tmp.str() + "/dh";
    opts.wal.fsync = WalWriter::Fsync::kNever;
    osn::StorageHost dh(opts);
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string url = dh.store(to_bytes("blob-" + std::to_string(t * 1000 + i)));
          stored.fetch_add(1);
          (void)dh.fetch(url);
          if (i % 3 == 0) {
            dh.remove(url);
            removed.fetch_add(1);
          }
        }
      });
    }
    threads.emplace_back([&] {
      for (int c = 0; c < 25; ++c) {
        dh.checkpoint();
        std::this_thread::yield();
      }
    });
    for (auto& th : threads) th.join();
    dh.sync();
    EXPECT_EQ(dh.object_count(), stored.load() - removed.load());
  }
  // Reopen: the concurrent checkpoints must not have lost or duplicated
  // anything relative to the live map at close.
  storage::DurableStore::Options opts;
  opts.dir = tmp.str() + "/dh";
  opts.wal.fsync = WalWriter::Fsync::kNever;
  osn::StorageHost dh(opts);
  EXPECT_EQ(dh.object_count(), stored.load() - removed.load());
}

}  // namespace
}  // namespace sp::storage
