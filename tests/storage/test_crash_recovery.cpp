// The kCrash chaos layer's acceptance gate (ISSUE 8): a durable StorageHost
// is SIGKILLed at a PRF-scheduled WAL kill point and must recover with zero
// record loss for acknowledged writes — at the 100k-post scale, with a
// checkpoint in the history, and under concurrent writers.
//
// Structure: the test forks. The child serves real writes and reports each
// *acknowledged* store over a pipe (one line per ack, written only after
// store() returned, i.e. after the WAL write completed); the crash schedule
// kills it mid-batch via raise(SIGKILL). The parent drains the pipe, reaps
// the SIGKILL, reopens the directory and asserts every acked object is
// present and intact. fsync=kNever is sufficient against SIGKILL (the page
// cache survives process death), which keeps the 100k-post run fast.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "obs/metrics.hpp"
#include "osn/storage_host.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace sp::storage {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-crash-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

Bytes blob_for(std::uint64_t i) { return to_bytes("post-" + std::to_string(i) + "-payload"); }

/// Writes one full ack line to `fd`. A single write(2) per line keeps lines
/// atomic (<= PIPE_BUF) under concurrent writers, and nothing is buffered in
/// userspace — a SIGKILL can lose an ack (safe direction: we just check one
/// record fewer) but can never fabricate one.
void ack_line(int fd, std::uint64_t i, const std::string& url) {
  const std::string line = std::to_string(i) + " " + url + "\n";
  ASSERT_EQ(::write(fd, line.data(), line.size()), static_cast<ssize_t>(line.size()));
}

struct ChildOutcome {
  std::map<std::uint64_t, std::string> acked;  ///< index -> URL, full lines only
  bool phase1_done = false;
  int wait_status = 0;
};

/// Drains the ack pipe until EOF (child death closes it), then reaps.
ChildOutcome reap(int read_fd, pid_t child) {
  ChildOutcome out;
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(read_fd, buf, sizeof buf);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t nl = 0;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line == "PHASE1-DONE") {
        out.phase1_done = true;
        continue;
      }
      std::istringstream iss(line);
      std::uint64_t i = 0;
      std::string url;
      if (iss >> i >> url) out.acked[i] = url;
    }
  }
  ::close(read_fd);
  EXPECT_EQ(::waitpid(child, &out.wait_status, 0), child);
  return out;
}

DurableStore::Options host_opts(const std::string& dir, const net::FaultInjector* injector) {
  DurableStore::Options opts;
  opts.dir = dir;
  opts.wal.fsync = WalWriter::Fsync::kNever;
  if (injector != nullptr) {
    opts.wal.crash_injector = injector;
    opts.wal.crash_label = "dh-wal";
    opts.wal.on_crash = [] {
      ::raise(SIGKILL);
      ::pause();  // unreachable; satisfies "must not return"
    };
  }
  return opts;
}

void verify_recovery(const std::string& dir, const ChildOutcome& outcome,
                     std::uint64_t min_acked) {
  ASSERT_TRUE(WIFSIGNALED(outcome.wait_status))
      << "child should die at the kill point, status=" << outcome.wait_status;
  EXPECT_EQ(WTERMSIG(outcome.wait_status), SIGKILL);
  ASSERT_GE(outcome.acked.size(), min_acked);

  osn::StorageHost dh(host_opts(dir, nullptr));
  // Zero record loss for acknowledged writes: every acked URL is present
  // with exactly the bytes that were stored.
  for (const auto& [i, url] : outcome.acked) {
    ASSERT_TRUE(dh.exists(url)) << "acked post " << i << " lost (" << url << ")";
    EXPECT_EQ(dh.fetch(url), blob_for(i)) << "acked post " << i << " corrupted";
  }
  // Unacked records may or may not have reached the file; the torn crash
  // record itself must have been dropped cleanly, not half-applied.
  EXPECT_GE(dh.object_count(), outcome.acked.size());
  EXPECT_LE(dh.object_count(), outcome.acked.size() + 64);
}

TEST(CrashRecovery, HundredThousandPostsSurviveSigkillAtScheduledPoint) {
  constexpr std::uint64_t kPhase1Posts = 100'000;
  constexpr std::uint64_t kPhase2Cap = 100'000;

  TempDir tmp;
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    const int ack_fd = pipe_fds[1];
    // Phase 1: 100k acknowledged posts, with a checkpoint in the middle so
    // recovery exercises the segment + WAL path, then a clean close.
    {
      osn::StorageHost dh(host_opts(tmp.str(), nullptr));
      for (std::uint64_t i = 0; i < kPhase1Posts; ++i) {
        const std::string url = dh.store(blob_for(i));
        ack_line(ack_fd, i, url);
        if (i == kPhase1Posts / 2) dh.checkpoint();
      }
      dh.sync();
    }
    {
      const std::string done = "PHASE1-DONE\n";
      if (::write(ack_fd, done.data(), done.size()) != static_cast<ssize_t>(done.size())) {
        ::_Exit(3);
      }
    }
    // Phase 2: reopen with the crash schedule armed and write until the PRF
    // kill point fires (expected after ~5k records; the cap is a safety net
    // at ~20 expected crashes).
    net::FaultPlan plan;
    plan.p_crash = 2e-4;
    plan.seed = "crash-at-scale";
    const net::FaultInjector injector(plan);
    osn::StorageHost dh(host_opts(tmp.str(), &injector));
    for (std::uint64_t i = 0; i < kPhase2Cap; ++i) {
      const std::string url = dh.store(blob_for(kPhase1Posts + i));
      ack_line(ack_fd, kPhase1Posts + i, url);
    }
    ::_Exit(2);  // schedule never fired — the parent fails on !WIFSIGNALED
  }

  ::close(pipe_fds[1]);
  const ChildOutcome outcome = reap(pipe_fds[0], child);
  EXPECT_TRUE(outcome.phase1_done);
  verify_recovery(tmp.str(), outcome, kPhase1Posts);
}

TEST(CrashRecovery, ConcurrentWritersDieMidBatchAndRecover) {
  // Several threads in one group-commit batch when the kill point fires: the
  // batch prefix before the crash record must replay, the torn record must
  // not, and every *acked* write must survive regardless of which thread it
  // came from.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;

  TempDir tmp;
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    const int ack_fd = pipe_fds[1];
    net::FaultPlan plan;
    plan.p_crash = 5e-4;
    plan.seed = "crash-mid-batch";
    const net::FaultInjector injector(plan);
    osn::StorageHost dh(host_opts(tmp.str(), &injector));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&dh, ack_fd, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t n = static_cast<std::uint64_t>(t) * kPerThread + i;
          const std::string url = dh.store(blob_for(n));
          const std::string line = std::to_string(n) + " " + url + "\n";
          if (::write(ack_fd, line.data(), line.size()) < 0) return;
        }
      });
    }
    for (auto& th : threads) th.join();
    ::_Exit(2);  // schedule never fired
  }

  ::close(pipe_fds[1]);
  const ChildOutcome outcome = reap(pipe_fds[0], child);
  verify_recovery(tmp.str(), outcome, /*min_acked=*/1);
}

TEST(CrashRecovery, KillPointCountsIntoChaosMetrics) {
  // In-process arm of the chaos cross-check: override on_crash to abort the
  // writer without killing the test, then compare the injector's count and
  // the sp_faults_injected_total{kind="crash"} delta.
  auto& crash_metric = obs::MetricsRegistry::global().counter("sp_faults_injected_total", "",
                                                              {{"kind", "crash"}});
  const auto metric0 = crash_metric.value();

  TempDir tmp;
  fs::create_directories(tmp.str());
  net::FaultPlan plan;
  plan.p_crash = 0.02;
  plan.seed = "crash-metrics";
  const net::FaultInjector injector(plan);

  WalWriter::Options opts;
  opts.fsync = WalWriter::Fsync::kNever;
  opts.crash_injector = &injector;
  opts.crash_label = "metrics-wal";
  std::atomic<bool> crashed{false};
  opts.on_crash = [&crashed] {
    crashed.store(true);
    throw std::runtime_error("kill point");  // writer records the error; waiters rethrow
  };

  WalWriter wal(tmp.str() + "/wal.log", opts);
  bool saw_failure = false;
  for (int i = 0; i < 2000 && !saw_failure; ++i) {
    try {
      wal.append(codec::encode_envelope({codec::Envelope::Op::kPut, 1, 0, "k", to_bytes("v")}));
    } catch (const std::runtime_error&) {
      saw_failure = true;
    }
  }
  ASSERT_TRUE(saw_failure) << "p=0.02 over 2000 draws should fire";
  EXPECT_TRUE(crashed.load());
  EXPECT_GE(injector.injected(net::FaultKind::kCrash), 1u);
  EXPECT_EQ(crash_metric.value() - metric0, injector.injected(net::FaultKind::kCrash));
}

}  // namespace
}  // namespace sp::storage
