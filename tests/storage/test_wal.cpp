#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "codec/records.hpp"
#include "codec/wire.hpp"
#include "crypto/bytes.hpp"
#include "obs/metrics.hpp"
#include "storage/wal.hpp"

namespace sp::storage {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-wal-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

Bytes record(int i) {
  return codec::encode_envelope(
      {codec::Envelope::Op::kPut, 1, static_cast<std::uint64_t>(i),
       "id-" + std::to_string(i), to_bytes("value-" + std::to_string(i))});
}

TEST(WalWriter, AppendThenReplayRoundTrips) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  {
    WalWriter wal(path, {});
    for (int i = 0; i < 100; ++i) wal.append(record(i));
  }
  std::vector<codec::Envelope> seen;
  const WalReplayStats stats =
      replay_wal(path, [&](const codec::Frame& f) { seen.push_back(decode_envelope_payload(f)); });
  EXPECT_EQ(stats.records, 100u);
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].id, "id-" + std::to_string(i));
  }
}

TEST(WalWriter, EnqueueFixesReplayOrderWaitIsSeparate) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  {
    WalWriter wal(path, {});
    std::vector<WalWriter::Ticket> tickets;
    tickets.reserve(50);
    for (int i = 0; i < 50; ++i) tickets.push_back(wal.enqueue(record(i)));
    // Waiting out of order must not reorder the log.
    for (auto it = tickets.rbegin(); it != tickets.rend(); ++it) wal.wait(*it);
  }
  int next = 0;
  replay_wal(path, [&](const codec::Frame& f) {
    EXPECT_EQ(decode_envelope_payload(f).id, "id-" + std::to_string(next++));
  });
  EXPECT_EQ(next, 50);
}

TEST(WalWriter, AsyncAppendsStayOrderedWithSyncOnes) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  {
    WalWriter wal(path, {});
    for (int i = 0; i < 40; ++i) {
      if (i % 2 == 0) {
        wal.append_async(record(i));
      } else {
        wal.append(record(i));
      }
    }
    wal.flush();
  }
  int next = 0;
  replay_wal(path, [&](const codec::Frame& f) {
    EXPECT_EQ(decode_envelope_payload(f).id, "id-" + std::to_string(next++));
  });
  EXPECT_EQ(next, 40);
}

TEST(WalWriter, TornTailIsDetectedAndTruncated) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  {
    WalWriter wal(path, {});
    for (int i = 0; i < 10; ++i) wal.append(record(i));
  }
  // Simulate a crash mid-record: append half of an eleventh frame by hand.
  const Bytes torn = record(10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(torn.data()),
              static_cast<std::streamsize>(torn.size() / 2));
  }
  const std::uint64_t dirty_size = fs::file_size(path);

  std::size_t seen = 0;
  const WalReplayStats stats = replay_wal(path, [&](const codec::Frame&) { ++seen; });
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_LT(fs::file_size(path), dirty_size);  // truncated back to valid data

  // A second replay of the truncated file is clean.
  const WalReplayStats again = replay_wal(path, [](const codec::Frame&) {});
  EXPECT_EQ(again.records, 10u);
  EXPECT_FALSE(again.torn_tail);

  // And a writer reopened on it appends after the valid prefix.
  {
    WalWriter wal(path, {});
    wal.append(record(10));
  }
  const WalReplayStats final_stats = replay_wal(path, [](const codec::Frame&) {});
  EXPECT_EQ(final_stats.records, 11u);
  EXPECT_FALSE(final_stats.torn_tail);
}

TEST(WalWriter, CorruptMiddleRecordStopsReplayAtIt) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  std::uint64_t first_two = 0;
  {
    WalWriter wal(path, {});
    wal.append(record(0));
    wal.append(record(1));
    first_two = wal.current_file_bytes();
    wal.append(record(2));
  }
  // Flip a byte inside the third record.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(first_two) + 20);
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(first_two) + 20);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  std::size_t seen = 0;
  const WalReplayStats stats = replay_wal(path, [&](const codec::Frame&) { ++seen; });
  EXPECT_EQ(seen, 2u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(fs::file_size(path), first_two);
}

TEST(WalWriter, RotateDrainsOldFileThenSwitches) {
  TempDir tmp;
  const std::string a = tmp.path("wal-0.log");
  const std::string b = tmp.path("wal-1.log");
  {
    WalWriter wal(a, {});
    for (int i = 0; i < 5; ++i) wal.append_async(record(i));
    wal.rotate_to(b);
    EXPECT_EQ(wal.path(), b);
    EXPECT_EQ(wal.current_file_bytes(), 0u);
    for (int i = 5; i < 8; ++i) wal.append(record(i));
  }
  std::size_t in_a = 0;
  std::size_t in_b = 0;
  replay_wal(a, [&](const codec::Frame&) { ++in_a; });
  replay_wal(b, [&](const codec::Frame&) { ++in_b; });
  EXPECT_EQ(in_a, 5u);  // everything enqueued before the rotate landed in a
  EXPECT_EQ(in_b, 3u);
}

TEST(WalWriter, FileBytesTrackAppends) {
  TempDir tmp;
  WalWriter wal(tmp.path("wal.log"), {});
  EXPECT_EQ(wal.current_file_bytes(), 0u);
  const Bytes r = record(0);
  wal.append(r);
  EXPECT_EQ(wal.current_file_bytes(), r.size());
  // Reopening on the same file resumes the byte count (checkpoint trigger
  // must survive process restarts).
  const std::string path = wal.path();
  const std::uint64_t bytes = wal.current_file_bytes();
  {
    WalWriter reopened(path, {});
    EXPECT_EQ(reopened.current_file_bytes(), bytes);
  }
}

TEST(WalWriter, FsyncNeverAlsoDurableForReplay) {
  TempDir tmp;
  const std::string path = tmp.path("wal.log");
  {
    WalWriter::Options opts;
    opts.fsync = WalWriter::Fsync::kNever;
    WalWriter wal(path, opts);
    for (int i = 0; i < 20; ++i) wal.append(record(i));
  }
  std::size_t seen = 0;
  replay_wal(path, [&](const codec::Frame&) { ++seen; });
  EXPECT_EQ(seen, 20u);
}

TEST(WalWriter, GroupCommitBatchesConcurrentAppends) {
  // With 8 threads hammering one writer, the drain-everything policy must
  // produce far fewer batches (fsyncs) than records. The batch counter is
  // process-wide, so assert on deltas.
  auto& reg = sp::obs::MetricsRegistry::global();
  auto& appends = reg.counter("sp_storage_wal_appends_total");
  auto& batches = reg.counter("sp_storage_wal_batches_total");
  const auto appends0 = appends.value();
  const auto batches0 = batches.value();

  TempDir tmp;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    WalWriter wal(tmp.path("wal.log"), {});
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) wal.append(record(t * kPerThread + i));
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(appends.value() - appends0, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Single-threaded worst case would be one batch per record; with eight
  // concurrent producers at least *some* grouping must happen.
  EXPECT_LT(batches.value() - batches0, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(batches.value() - batches0, 0u);
}

}  // namespace
}  // namespace sp::storage
