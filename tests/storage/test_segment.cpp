#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "codec/records.hpp"
#include "crypto/bytes.hpp"
#include "storage/segment.hpp"

namespace sp::storage {
namespace {

namespace fs = std::filesystem;
using codec::Envelope;
using crypto::Bytes;
using crypto::to_bytes;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() / ("sp-seg-test-" + std::to_string(::getpid()) + "-" +
                                        std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path dir_;
};

Envelope env(std::uint8_t space, int i) {
  return {Envelope::Op::kPut, space, static_cast<std::uint64_t>(i), "id-" + std::to_string(i),
          to_bytes("value-" + std::to_string(i))};
}

std::string write_segment(const TempDir& tmp, int entries) {
  const std::string path = tmp.path("seg.spseg");
  SegmentWriter writer(path);
  for (int i = 0; i < entries; ++i) writer.add(env(1, i));
  writer.finish();
  return path;
}

TEST(Segment, WriteReadRoundTrip) {
  TempDir tmp;
  const std::string path = write_segment(tmp, 50);

  Segment seg(path);
  EXPECT_EQ(seg.entries(), 50u);
  EXPECT_EQ(seg.max_seq(), 49u);
  EXPECT_EQ(seg.file_bytes(), fs::file_size(path));

  for (int i = 0; i < 50; ++i) {
    const auto got = seg.get(1, "id-" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, env(1, i));
  }
  EXPECT_FALSE(seg.get(1, "missing").has_value());
  EXPECT_FALSE(seg.get(2, "id-0").has_value());  // same id, other keyspace

  std::vector<Envelope> order;
  seg.for_each([&](const Envelope& e) { order.push_back(e); });
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], env(1, i));
}

TEST(Segment, EmptySegmentIsValid) {
  TempDir tmp;
  const std::string path = write_segment(tmp, 0);
  Segment seg(path);
  EXPECT_EQ(seg.entries(), 0u);
  seg.for_each([](const Envelope&) { FAIL() << "no entries expected"; });
}

TEST(Segment, EveryBitFlipRejectsTheWholeSegment) {
  TempDir tmp;
  const std::string path = write_segment(tmp, 3);
  Bytes original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    Bytes bad = original;
    bad[i] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bad.data()), static_cast<std::streamsize>(bad.size()));
    out.close();
    EXPECT_THROW(Segment{path}, codec::CodecError) << "byte " << i;
  }
}

TEST(Segment, TruncationRejected) {
  TempDir tmp;
  const std::string path = write_segment(tmp, 3);
  Bytes original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  // Any proper prefix — a torn checkpoint never passes validation (the
  // atomic-rename protocol means we should never see one, but a disk that
  // lies about fsync can produce it).
  for (const double frac : {0.0, 0.3, 0.7, 0.99}) {
    const auto len = static_cast<std::size_t>(static_cast<double>(original.size()) * frac);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(original.data()), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW(Segment{path}, codec::CodecError) << "prefix " << len;
  }
}

TEST(Segment, TrailingDataAfterFooterRejected) {
  TempDir tmp;
  const std::string path = write_segment(tmp, 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put(0x00);
  }
  EXPECT_THROW(Segment{path}, codec::CodecError);
}

TEST(Segment, MissingFooterRejected) {
  // Envelope frames alone (a WAL file, say) are not a segment.
  TempDir tmp;
  const std::string path = tmp.path("nofooter.spseg");
  {
    std::ofstream out(path, std::ios::binary);
    const Bytes frame = codec::encode_envelope(env(1, 0));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  EXPECT_THROW(Segment{path}, codec::CodecError);
}

TEST(SegmentWriter, UnfinishedFileIsUnlinkedByDestructor) {
  TempDir tmp;
  const std::string path = tmp.path("abandoned.spseg");
  {
    SegmentWriter writer(path);
    writer.add(env(1, 0));
    // finish() never called — e.g. the scan callback threw mid-checkpoint.
  }
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace sp::storage
