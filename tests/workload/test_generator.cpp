// Property suite for the workload generator (PR 10 satellite): the
// generator is test infrastructure, so it gets the full treatment —
// byte-identical determinism, distribution-shape bounds, and lazy-vs-oracle
// agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "workload/driver.hpp"
#include "workload/generator.hpp"

namespace sp::workload {
namespace {

WorkloadConfig small_config(const std::string& seed) {
  WorkloadConfig cfg;
  cfg.graph.users = 5000;
  cfg.graph.seed = seed;
  cfg.catalog_posts = 500;
  return cfg;
}

// ---------------------------------------------------------- determinism

TEST(WorkloadGenerator, SameSeedByteIdenticalTrace) {
  TraceGenerator a(small_config("seed-A"));
  TraceGenerator b(small_config("seed-A"));
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(TraceGenerator::encode(a.next()), TraceGenerator::encode(b.next())) << "event " << i;
  }
}

TEST(WorkloadGenerator, DifferentSeedsDiverge) {
  TraceGenerator a(small_config("seed-A"));
  TraceGenerator b(small_config("seed-B"));
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = TraceGenerator::encode(a.next()) != TraceGenerator::encode(b.next());
  }
  EXPECT_TRUE(diverged);
}

TEST(WorkloadGenerator, GraphQueriesArePureFunctions) {
  const GraphConfig cfg{.users = 100000, .seed = "pure"};
  const LazyGraph g1(cfg);
  const LazyGraph g2(cfg);
  for (std::uint64_t u : {0ULL, 1ULL, 31337ULL, 99999ULL}) {
    ASSERT_EQ(g1.out_degree(u), g2.out_degree(u));
    ASSERT_EQ(g1.out_friends(u), g2.out_friends(u));
  }
}

// ----------------------------------------------------- degree distribution

// KS-style bound on the out-degree tail: the configured bounded Pareto has
// P(D >= d) = (min/d)^(gamma-1) well below the clip. With n = 20000 users
// the empirical CCDF at any fixed point has sd <= 0.0036, so |diff| < 0.02
// is a > 5-sigma bound — a real shape regression trips it, noise cannot.
TEST(WorkloadGenerator, DegreeDistributionMatchesPowerLawExponent) {
  GraphConfig cfg;
  cfg.users = 20000;
  cfg.gamma = 2.5;
  cfg.min_degree = 4;
  cfg.max_degree = 4096;
  cfg.seed = "degrees";
  const LazyGraph graph(cfg);
  const double alpha = cfg.gamma - 1.0;
  for (const double d : {8.0, 16.0, 32.0, 64.0}) {
    std::size_t at_least = 0;
    for (std::uint64_t u = 0; u < cfg.users; ++u) {
      if (static_cast<double>(graph.out_degree(u)) >= d) ++at_least;
    }
    const double empirical = static_cast<double>(at_least) / static_cast<double>(cfg.users);
    const double theoretical = std::pow(static_cast<double>(cfg.min_degree) / d, alpha);
    EXPECT_NEAR(empirical, theoretical, 0.02) << "CCDF at degree " << d;
  }
  // And the hard clip really is hard.
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    const std::uint64_t degree = graph.out_degree(u);
    ASSERT_GE(degree, cfg.min_degree);
    ASSERT_LE(degree, cfg.max_degree);
  }
}

// ------------------------------------------------------- zipf frequencies

TEST(WorkloadGenerator, ZipfFrequenciesWithinTolerance) {
  constexpr std::uint64_t kRanks = 1000;
  constexpr double kS = 1.2;
  constexpr std::size_t kSamples = 200000;
  ZipfSampler zipf(kRanks, kS);
  crypto::Drbg rng("zipf-freq");
  std::vector<std::size_t> counts(kRanks, 0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::uint64_t rank = zipf.sample(rng);
    ASSERT_LT(rank, kRanks);
    ++counts[rank];
  }
  double harmonic = 0;
  for (std::uint64_t r = 1; r <= kRanks; ++r) harmonic += std::pow(static_cast<double>(r), -kS);
  // Head ranks: empirical frequency within 5% relative of 1/(r^s H_n(s)).
  for (std::uint64_t r = 1; r <= 5; ++r) {
    const double expected = std::pow(static_cast<double>(r), -kS) / harmonic;
    const double actual = static_cast<double>(counts[r - 1]) / kSamples;
    EXPECT_NEAR(actual, expected, 0.05 * expected) << "rank " << r;
  }
  // Tail mass (beyond rank 100) within +/-0.01 absolute of theory.
  double tail_expected = 0;
  for (std::uint64_t r = 101; r <= kRanks; ++r) {
    tail_expected += std::pow(static_cast<double>(r), -kS) / harmonic;
  }
  std::size_t tail_count = 0;
  for (std::uint64_t r = 100; r < kRanks; ++r) tail_count += counts[r];
  EXPECT_NEAR(static_cast<double>(tail_count) / kSamples, tail_expected, 0.01);
}

TEST(WorkloadGenerator, ZipfSingleRankAndSteepSkewEdges) {
  crypto::Drbg rng("zipf-edge");
  ZipfSampler one(1, 1.1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(one.sample(rng), 0u);
  ZipfSampler steep(100, 3.0);
  std::size_t head = 0;
  for (int i = 0; i < 2000; ++i) head += steep.sample(rng) == 0 ? 1 : 0;
  // At s = 3, rank 0 holds ~83% of the mass.
  EXPECT_GT(head, 1500u);
}

// ------------------------------------------------- lazy vs oracle agreement

// Materialize the full symmetric adjacency of a small graph and check the
// lazy membership test agrees everywhere — the O(1)-RAM path must be the
// same graph, not an approximation of it.
TEST(WorkloadGenerator, LazyAdjacencyAgreesWithMaterializedOracle) {
  GraphConfig cfg;
  cfg.users = 300;
  cfg.min_degree = 2;
  cfg.max_degree = 32;
  cfg.seed = "oracle";
  const LazyGraph graph(cfg);
  std::vector<std::set<std::uint64_t>> oracle(cfg.users);
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    for (const std::uint64_t v : graph.out_friends(u)) {
      ASSERT_NE(u, v) << "self-edge";
      ASSERT_LT(v, cfg.users);
      oracle[u].insert(v);
      oracle[v].insert(u);
    }
  }
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    for (std::uint64_t v = 0; v < cfg.users; ++v) {
      ASSERT_EQ(graph.are_friends(u, v), oracle[u].count(v) == 1) << u << "~" << v;
    }
  }
}

TEST(WorkloadGenerator, ReceiverIsAlwaysAFriendOfTheSharer) {
  TraceGenerator gen(small_config("friends"));
  for (int i = 0; i < 500; ++i) {
    const Event event = gen.next();
    if (event.kind != Event::Kind::kAccess) continue;
    ASSERT_TRUE(gen.graph().are_friends(event.sharer, event.receiver))
        << "sharer " << event.sharer << " receiver " << event.receiver;
  }
}

TEST(WorkloadGenerator, ChurnFractionsRoughlyHonored) {
  WorkloadConfig cfg = small_config("churn");
  cfg.refresh_fraction = 0.10;
  cfg.revoke_fraction = 0.05;
  TraceGenerator gen(cfg);
  std::map<Event::Kind, std::size_t> kinds;
  constexpr int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) ++kinds[gen.next().kind];
  EXPECT_NEAR(static_cast<double>(kinds[Event::Kind::kRefresh]) / kEvents, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(kinds[Event::Kind::kRevoke]) / kEvents, 0.05, 0.01);
}

// ------------------------------------------------------ virtual-time driver

TEST(WorkloadDriver, SingleServerQueueingMatchesHandComputation) {
  // Two requests arriving 10ms apart, each 30ms of CPU: the second queues
  // 20ms behind the first. Overlap adds to latency but not to the queue.
  const std::vector<double> gaps = {1.0, 1.0};  // unit gaps at 100 rps = 10ms
  const std::vector<double> cpu = {30.0, 30.0};
  const std::vector<double> overlap = {5.0, 0.0};
  const SimPoint point = simulate_open_loop(gaps, cpu, overlap, 1, 100.0);
  EXPECT_EQ(point.completed, 2u);
  EXPECT_DOUBLE_EQ(point.max_ms, 50.0);   // queued 20 + cpu 30
  EXPECT_DOUBLE_EQ(point.p50_ms, 35.0);   // cpu 30 + overlap 5
}

TEST(WorkloadDriver, MoreServersNeverHurtLatency) {
  TraceGenerator gen(small_config("sim"));
  std::vector<double> gaps, cpu, overlap;
  for (int i = 0; i < 400; ++i) {
    const Event event = gen.next();
    gaps.push_back(event.interarrival_unit);
    cpu.push_back(event.c2 ? 12.0 : 4.0);
    overlap.push_back(20.0);
  }
  const SimPoint two = simulate_open_loop(gaps, cpu, overlap, 2, 300.0);
  const SimPoint eight = simulate_open_loop(gaps, cpu, overlap, 8, 300.0);
  EXPECT_LE(eight.p99_ms, two.p99_ms);
  EXPECT_LE(eight.p50_ms, two.p50_ms);
}

TEST(WorkloadDriver, CapacitySearchFindsTheKnee) {
  // Long trace: past saturation the backlog must have room to build, or the
  // finite run ends before the overload shows up in the p99.
  TraceGenerator gen(small_config("capacity"));
  std::vector<double> gaps, cpu, overlap;
  for (int i = 0; i < 5000; ++i) {
    const Event event = gen.next();
    gaps.push_back(event.interarrival_unit);
    cpu.push_back(8.0);
    overlap.push_back(10.0);
  }
  const CapacityResult result = find_capacity(gaps, cpu, overlap, 4, /*slo=*/100.0);
  ASSERT_GT(result.capacity_rps, 0.0);
  EXPECT_LE(result.at_capacity.p99_ms, 100.0);
  // The knee must sit below the theoretical service bound c/E[S] = 500 rps
  // and above a trivially safe 10% of it.
  EXPECT_LT(result.capacity_rps, 500.0);
  EXPECT_GT(result.capacity_rps, 50.0);
  // Just past capacity the SLO really breaks (the search is tight).
  const SimPoint beyond = simulate_open_loop(gaps, cpu, overlap, 4, result.capacity_rps * 1.10);
  EXPECT_GT(beyond.p99_ms, 100.0);
}

TEST(WorkloadDriver, DeterministicAcrossCalls) {
  TraceGenerator gen(small_config("replay"));
  std::vector<double> gaps, cpu, overlap;
  for (int i = 0; i < 200; ++i) {
    const Event event = gen.next();
    gaps.push_back(event.interarrival_unit);
    cpu.push_back(5.0 + static_cast<double>(event.post_rank % 7));
    overlap.push_back(15.0);
  }
  const SimPoint a = simulate_open_loop(gaps, cpu, overlap, 4, 200.0);
  const SimPoint b = simulate_open_loop(gaps, cpu, overlap, 4, 200.0);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_DOUBLE_EQ(a.achieved_rps, b.achieved_rps);
}

}  // namespace
}  // namespace sp::workload
