#include "sig/schnorr.hpp"

#include <gtest/gtest.h>

#include "ec/params.hpp"

namespace sp::sig {
namespace {

using crypto::Drbg;
using crypto::to_bytes;

class SchnorrTest : public ::testing::Test {
 protected:
  SchnorrTest()
      : curve_(ec::preset_params(ec::ParamPreset::kToy)),
        scheme_(curve_, curve_.hash_to_group(to_bytes("sp-schnorr-g"))),
        rng_("schnorr-tests") {}

  ec::Curve curve_;
  Schnorr scheme_;
  Drbg rng_;
};

TEST_F(SchnorrTest, SignVerifyRoundTrip) {
  const KeyPair kp = scheme_.keygen(rng_);
  const auto msg = to_bytes("https://dh.example/objects/42 | K_Z=abcdef");
  const Signature sig = scheme_.sign(kp, msg);
  EXPECT_TRUE(scheme_.verify(kp.public_key, msg, sig));
}

TEST_F(SchnorrTest, RejectsWrongMessage) {
  const KeyPair kp = scheme_.keygen(rng_);
  const Signature sig = scheme_.sign(kp, to_bytes("original URL"));
  EXPECT_FALSE(scheme_.verify(kp.public_key, to_bytes("tampered URL"), sig));
}

TEST_F(SchnorrTest, RejectsWrongKey) {
  const KeyPair kp = scheme_.keygen(rng_);
  const KeyPair other = scheme_.keygen(rng_);
  const auto msg = to_bytes("message");
  const Signature sig = scheme_.sign(kp, msg);
  EXPECT_FALSE(scheme_.verify(other.public_key, msg, sig));
}

TEST_F(SchnorrTest, RejectsMalleatedSignature) {
  const KeyPair kp = scheme_.keygen(rng_);
  const auto msg = to_bytes("message");
  Signature sig = scheme_.sign(kp, msg);
  sig.s = (sig.s + crypto::BigInt{1}).mod(curve_.order());
  EXPECT_FALSE(scheme_.verify(kp.public_key, msg, sig));
}

TEST_F(SchnorrTest, RejectsOutOfRangeS) {
  const KeyPair kp = scheme_.keygen(rng_);
  const auto msg = to_bytes("message");
  Signature sig = scheme_.sign(kp, msg);
  sig.s = sig.s + curve_.order();  // same residue, non-canonical encoding
  EXPECT_FALSE(scheme_.verify(kp.public_key, msg, sig));
}

TEST_F(SchnorrTest, DeterministicNonces) {
  // Same key + message → identical signature (RFC 6979 style); different
  // messages → different commitments (nonce reuse would leak the key).
  const KeyPair kp = scheme_.keygen(rng_);
  const Signature s1 = scheme_.sign(kp, to_bytes("m1"));
  const Signature s2 = scheme_.sign(kp, to_bytes("m1"));
  const Signature s3 = scheme_.sign(kp, to_bytes("m2"));
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_NE(s1.r, s3.r);
}

TEST_F(SchnorrTest, SerializeRoundTrip) {
  const KeyPair kp = scheme_.keygen(rng_);
  const auto msg = to_bytes("message");
  const Signature sig = scheme_.sign(kp, msg);
  const Signature back = scheme_.deserialize(scheme_.serialize(sig));
  EXPECT_EQ(back.r, sig.r);
  EXPECT_EQ(back.s, sig.s);
  EXPECT_TRUE(scheme_.verify(kp.public_key, msg, back));
}

TEST_F(SchnorrTest, DeserializeRejectsBadLength) {
  EXPECT_THROW(scheme_.deserialize(crypto::Bytes(7, 0)), std::invalid_argument);
}

TEST_F(SchnorrTest, RejectsInfinityGenerator) {
  EXPECT_THROW(Schnorr(curve_, ec::Point{}), std::invalid_argument);
}

TEST_F(SchnorrTest, EmptyMessageSignable) {
  const KeyPair kp = scheme_.keygen(rng_);
  const Signature sig = scheme_.sign(kp, {});
  EXPECT_TRUE(scheme_.verify(kp.public_key, {}, sig));
}

}  // namespace
}  // namespace sp::sig
