#include "field/fp.hpp"

#include <gtest/gtest.h>

namespace sp::field {
namespace {

using crypto::BigInt;
using crypto::Drbg;

FpCtxPtr small_field() { return make_fp(BigInt{23}); }  // 23 ≡ 3 (mod 4)

FpCtxPtr big_field() {
  // secp256k1 field prime, ≡ 3 (mod 4).
  return make_fp(BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
}

TEST(FpCtx, RejectsBadModulus) {
  EXPECT_THROW(make_fp(BigInt{4}), std::invalid_argument);   // even
  EXPECT_THROW(make_fp(BigInt{1}), std::invalid_argument);   // too small
  EXPECT_THROW(make_fp(BigInt{-7}), std::invalid_argument);  // negative
}

TEST(FpCtx, Properties) {
  auto f = small_field();
  EXPECT_EQ(f->p(), BigInt{23});
  EXPECT_EQ(f->byte_length(), 1u);
  EXPECT_TRUE(f->p_is_3_mod_4());
  EXPECT_FALSE(make_fp(BigInt{13})->p_is_3_mod_4());
}

TEST(Fp, CanonicalReduction) {
  auto f = small_field();
  EXPECT_EQ(Fp(f, BigInt{25}).value(), BigInt{2});
  EXPECT_EQ(Fp(f, BigInt{-1}).value(), BigInt{22});
  EXPECT_EQ(Fp(f, BigInt{23}).value(), BigInt{0});
}

TEST(Fp, ArithmeticSmall) {
  auto f = small_field();
  const Fp a(f, BigInt{17}), b(f, BigInt{9});
  EXPECT_EQ((a + b).value(), BigInt{3});
  EXPECT_EQ((a - b).value(), BigInt{8});
  EXPECT_EQ((b - a).value(), BigInt{15});
  EXPECT_EQ((a * b).value(), BigInt{153 % 23});
  EXPECT_EQ((-a).value(), BigInt{6});
  EXPECT_EQ((-Fp::zero(f)).value(), BigInt{0});
}

TEST(Fp, InverseAndPow) {
  auto f = big_field();
  Drbg rng("fp-inv");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::random_nonzero(f, rng);
    EXPECT_EQ(a * a.inv(), Fp::one(f));
    EXPECT_EQ(a.pow(f->p() - BigInt{1}), Fp::one(f));  // Fermat
    EXPECT_EQ(a.pow(BigInt{0}), Fp::one(f));
    EXPECT_EQ(a.pow(BigInt{-1}), a.inv());
  }
  EXPECT_THROW(Fp::zero(f).inv(), std::domain_error);
}

TEST(Fp, LegendreAndSqrt3Mod4) {
  auto f = big_field();
  Drbg rng("fp-sqrt");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::random_nonzero(f, rng);
    const Fp sq = a * a;
    EXPECT_EQ(sq.legendre(), 1);
    const Fp r = sq.sqrt();
    EXPECT_TRUE(r == a || r == -a);
    EXPECT_EQ(r * r, sq);
  }
}

TEST(Fp, SqrtNonResidueThrows) {
  auto f = small_field();
  // 5 is a non-residue mod 23 (residues: 1,2,3,4,6,8,9,12,13,16,18).
  EXPECT_EQ(Fp(f, BigInt{5}).legendre(), -1);
  EXPECT_THROW(Fp(f, BigInt{5}).sqrt(), std::domain_error);
}

TEST(Fp, TonelliShanksGeneralPrime) {
  // p = 13 ≡ 1 (mod 4) exercises the general Tonelli–Shanks path.
  auto f = make_fp(BigInt{13});
  for (int v = 1; v < 13; ++v) {
    const Fp a(f, BigInt{v});
    const Fp sq = a * a;
    const Fp r = sq.sqrt();
    EXPECT_EQ(r * r, sq) << "v=" << v;
  }
}

TEST(Fp, BytesRoundTrip) {
  auto f = big_field();
  Drbg rng("fp-bytes");
  const Fp a = Fp::random(f, rng);
  EXPECT_EQ(a.to_bytes().size(), 32u);
  EXPECT_EQ(Fp::from_bytes(f, a.to_bytes()), a);
}

TEST(Fp, MixedFieldOperationThrows) {
  const Fp a(small_field(), BigInt{1});
  const Fp b(big_field(), BigInt{1});
  EXPECT_THROW(a + b, std::logic_error);
  EXPECT_THROW(a * b, std::logic_error);
}

TEST(Fp, SameModulusDifferentCtxInstancesInterop) {
  // Two separately created contexts with equal p must interoperate.
  const Fp a(make_fp(BigInt{23}), BigInt{5});
  const Fp b(make_fp(BigInt{23}), BigInt{7});
  EXPECT_EQ((a + b).value(), BigInt{12});
}

TEST(Fp, RandomIsWellDistributed) {
  auto f = small_field();
  Drbg rng("fp-dist");
  bool seen[23] = {};
  for (int i = 0; i < 1000; ++i) seen[Fp::random(f, rng).value().low_u64()] = true;
  for (int v = 0; v < 23; ++v) EXPECT_TRUE(seen[v]) << v;
}

// Field axioms over random elements for each preset modulus size.
class FpAxioms : public ::testing::TestWithParam<const char*> {};

TEST_P(FpAxioms, Hold) {
  auto f = make_fp(BigInt::from_dec(GetParam()));
  Drbg rng(std::string("fp-axioms-") + GetParam());
  const Fp a = Fp::random(f, rng), b = Fp::random(f, rng), c = Fp::random(f, rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + (-a), Fp::zero(f));
  EXPECT_EQ(a * Fp::one(f), a);
}

INSTANTIATE_TEST_SUITE_P(Moduli, FpAxioms,
                         ::testing::Values("23", "1000000007", "998244353",
                                           "170141183460469231731687303715884105727"));

}  // namespace
}  // namespace sp::field
