#include "field/fp2.hpp"

#include <gtest/gtest.h>

namespace sp::field {
namespace {

using crypto::BigInt;
using crypto::Drbg;

FpCtxPtr f() { return make_fp(BigInt{23}); }

FpCtxPtr big() {
  return make_fp(BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
}

TEST(Fp2, ConstructionAndIdentity) {
  auto ctx = f();
  EXPECT_TRUE(Fp2::zero(ctx).is_zero());
  EXPECT_TRUE(Fp2::one(ctx).is_one());
  EXPECT_FALSE(Fp2::one(ctx).is_zero());
  EXPECT_FALSE(Fp2::zero(ctx).is_one());
}

TEST(Fp2, ISquaredIsMinusOne) {
  auto ctx = f();
  const Fp2 i(Fp::zero(ctx), Fp::one(ctx));
  EXPECT_EQ(i * i, Fp2(-Fp::one(ctx), Fp::zero(ctx)));
}

TEST(Fp2, KnownProduct) {
  auto ctx = f();
  // (2 + 3i)(4 + 5i) = 8 + 10i + 12i + 15i² = −7 + 22i = 16 + 22i (mod 23)
  const Fp2 a(Fp(ctx, BigInt{2}), Fp(ctx, BigInt{3}));
  const Fp2 b(Fp(ctx, BigInt{4}), Fp(ctx, BigInt{5}));
  const Fp2 prod = a * b;
  EXPECT_EQ(prod.re().value(), BigInt{16});
  EXPECT_EQ(prod.im().value(), BigInt{22});
}

TEST(Fp2, ConjAndNorm) {
  auto ctx = f();
  const Fp2 a(Fp(ctx, BigInt{2}), Fp(ctx, BigInt{3}));
  EXPECT_EQ(a.conj(), Fp2(Fp(ctx, BigInt{2}), Fp(ctx, BigInt{20})));
  EXPECT_EQ(a.norm().value(), BigInt{13});  // 4 + 9
  // a · conj(a) = norm(a) embedded in Fp2.
  EXPECT_EQ(a * a.conj(), Fp2(a.norm()));
}

TEST(Fp2, InverseRoundTrip) {
  auto ctx = big();
  Drbg rng("fp2-inv");
  for (int i = 0; i < 20; ++i) {
    Fp2 a = Fp2::random(ctx, rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), Fp2::one(ctx));
  }
  EXPECT_THROW(Fp2::zero(ctx).inv(), std::domain_error);
}

TEST(Fp2, PowMatchesRepeatedMul) {
  auto ctx = f();
  Drbg rng("fp2-pow");
  const Fp2 a = Fp2::random(ctx, rng);
  Fp2 acc = Fp2::one(ctx);
  for (int e = 0; e < 16; ++e) {
    EXPECT_EQ(a.pow(BigInt{e}), acc) << "e=" << e;
    acc = acc * a;
  }
}

TEST(Fp2, MultiplicativeGroupOrder) {
  // |F_{p²}*| = p² − 1; every nonzero element to that power is 1.
  auto ctx = big();
  Drbg rng("fp2-order");
  const BigInt p = ctx->p();
  const BigInt order = p * p - BigInt{1};
  for (int i = 0; i < 5; ++i) {
    Fp2 a = Fp2::random(ctx, rng);
    if (a.is_zero()) continue;
    EXPECT_TRUE(a.pow(order).is_one());
  }
}

TEST(Fp2, FrobeniusIsConjugation) {
  // For p ≡ 3 (mod 4): (a + bi)^p = a − bi. This identity is what the
  // pairing's final exponentiation relies on.
  auto ctx = big();
  Drbg rng("fp2-frob");
  for (int i = 0; i < 5; ++i) {
    const Fp2 a = Fp2::random(ctx, rng);
    EXPECT_EQ(a.pow(ctx->p()), a.conj());
  }
}

TEST(Fp2, BytesRoundTrip) {
  auto ctx = big();
  Drbg rng("fp2-bytes");
  const Fp2 a = Fp2::random(ctx, rng);
  const auto enc = a.to_bytes();
  EXPECT_EQ(enc.size(), 64u);
  EXPECT_EQ(Fp2::from_bytes(ctx, enc), a);
  EXPECT_THROW(Fp2::from_bytes(ctx, crypto::Bytes(63, 0)), std::invalid_argument);
}

TEST(Fp2, FieldAxioms) {
  auto ctx = big();
  Drbg rng("fp2-axioms");
  const Fp2 a = Fp2::random(ctx, rng), b = Fp2::random(ctx, rng), c = Fp2::random(ctx, rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + (-a), Fp2::zero(ctx));
}

}  // namespace
}  // namespace sp::field
