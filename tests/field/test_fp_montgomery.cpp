#include "field/fp.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace sp::field {
namespace {

using crypto::BigInt;
using crypto::Drbg;

// The FpCtx fast paths (Montgomery CIOS mul, fixed-window pow, Fermat
// inversion) against the Barrett oracle the rewrite kept alive. Mersenne
// primes give odd prime moduli at both preset-like widths without pulling
// in the ec parameter search.
FpCtxPtr field_127() { return make_fp((BigInt{1} << 127) - BigInt{1}); }
FpCtxPtr field_521() { return make_fp((BigInt{1} << 521) - BigInt{1}); }

TEST(FpMontgomery, ContextsExposeMontgomery) {
  EXPECT_TRUE(field_127()->mont().has_value());
  EXPECT_TRUE(field_521()->mont().has_value());
  // Wider than MontCtx's 1024-bit cap: still a valid field, Barrett-only.
  const FpCtxPtr wide = make_fp((BigInt{1} << 1279) - BigInt{1});
  EXPECT_FALSE(wide->mont().has_value());
  Drbg rng("fp-wide");
  const Fp a = Fp::random_nonzero(wide, rng);
  EXPECT_EQ((a * a.inv()).value(), BigInt{1});
}

TEST(FpMontgomery, MulModMatchesBarrett1k) {
  const FpCtxPtr ctx = field_127();
  Drbg rng("fp-mont-mul");
  for (int i = 0; i < 1000; ++i) {
    const BigInt a = Fp::random(ctx, rng).value();
    const BigInt b = Fp::random(ctx, rng).value();
    EXPECT_EQ(ctx->mul_mod(a, b), ctx->mul_mod_barrett(a, b))
        << "i=" << i << " a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

TEST(FpMontgomery, PowModMatchesBarrett) {
  const FpCtxPtr ctx = field_127();
  Drbg rng("fp-mont-pow");
  for (int i = 0; i < 100; ++i) {
    const BigInt base = Fp::random(ctx, rng).value();
    const BigInt exp = BigInt::from_bytes(rng.bytes(1 + i % 48));
    EXPECT_EQ(ctx->pow_mod(base, exp), ctx->pow_mod_barrett(base, exp)) << "i=" << i;
  }
}

TEST(FpMontgomery, PowModWideFieldSpotChecks) {
  const FpCtxPtr ctx = field_521();
  Drbg rng("fp-mont-pow-521");
  for (int i = 0; i < 10; ++i) {
    const BigInt base = Fp::random(ctx, rng).value();
    const BigInt exp = BigInt::from_bytes(rng.bytes(20));
    EXPECT_EQ(ctx->pow_mod(base, exp), ctx->pow_mod_barrett(base, exp)) << "i=" << i;
  }
}

TEST(FpMontgomery, FermatInversionMatchesEuclid) {
  const FpCtxPtr ctx = field_127();
  Drbg rng("fp-mont-inv");
  for (int i = 0; i < 200; ++i) {
    const Fp a = Fp::random_nonzero(ctx, rng);
    const BigInt inv = ctx->inv_mod(a.value());
    EXPECT_EQ(inv, BigInt::mod_inv(a.value(), ctx->p())) << "i=" << i;
    EXPECT_EQ(ctx->mul_mod(a.value(), inv), BigInt{1});
  }
  EXPECT_THROW(ctx->inv_mod(BigInt{0}), std::domain_error);
  EXPECT_THROW(ctx->inv_mod(ctx->p()), std::domain_error);  // ≡ 0 mod p
}

TEST(FpMontgomery, FpInvRoundTrips) {
  const FpCtxPtr ctx = field_127();
  Drbg rng("fp-inv-consistency");
  for (int i = 0; i < 100; ++i) {
    const Fp a = Fp::random_nonzero(ctx, rng);
    EXPECT_EQ((a * a.inv()).value(), BigInt{1});
  }
}

}  // namespace
}  // namespace sp::field
