// BigInt edge cases beyond the main suite: boundary shifts, aliasing-ish
// self-operations, width-boundary encodings, and division stress around
// limb boundaries.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/drbg.hpp"

namespace sp::crypto {
namespace {

TEST(BigIntEdges, ShiftByLimbsExactly) {
  const BigInt v = BigInt::from_hex("deadbeef");
  EXPECT_EQ((v << 64).to_hex(), "deadbeef0000000000000000");
  EXPECT_EQ(((v << 64) >> 64), v);
  EXPECT_EQ((v << 128) >> 128, v);
  EXPECT_EQ((v >> 64).to_hex(), "0");
  EXPECT_EQ(v << 0, v);
  EXPECT_EQ(v >> 0, v);
}

TEST(BigIntEdges, NegativeShiftsPreserveSign) {
  const BigInt v = BigInt::from_dec("-12345678901234567890");
  EXPECT_TRUE((v << 10).is_negative());
  EXPECT_TRUE((v >> 3).is_negative());
  // Shifting a negative to zero magnitude normalizes the sign.
  EXPECT_FALSE((BigInt{-1} >> 1).is_negative());
  EXPECT_TRUE((BigInt{-1} >> 1).is_zero());
}

TEST(BigIntEdges, SelfOperations) {
  BigInt v = BigInt::from_dec("98765432109876543210");
  EXPECT_EQ(v - v, BigInt{0});
  EXPECT_EQ((v + v).to_dec(), "197530864219753086420");
  const BigInt sq = v * v;
  EXPECT_EQ(sq / v, v);
  EXPECT_EQ(sq % v, BigInt{0});
}

TEST(BigIntEdges, PowerOfTwoBoundaries) {
  for (std::size_t bits : {63u, 64u, 65u, 127u, 128u, 129u}) {
    const BigInt p2 = BigInt{1} << bits;
    EXPECT_EQ(p2.bit_length(), bits + 1);
    EXPECT_EQ((p2 - BigInt{1}).bit_length(), bits);
    EXPECT_EQ(p2 / (p2 - BigInt{1}), BigInt{1});
    EXPECT_EQ(p2 % (p2 - BigInt{1}), BigInt{1});
    EXPECT_TRUE(p2.bit(bits));
    EXPECT_FALSE(p2.bit(bits - 1));
    EXPECT_FALSE(p2.bit(bits + 1));
  }
}

TEST(BigIntEdges, ToBytesWidthBoundaries) {
  const BigInt v{0xff};
  EXPECT_EQ(to_hex(v.to_bytes(1)), "ff");
  EXPECT_EQ(to_hex(v.to_bytes(2)), "00ff");
  EXPECT_EQ(to_hex(BigInt{0}.to_bytes()), "00");  // zero -> one zero byte
  const BigInt wide = BigInt{1} << 64;
  EXPECT_EQ(wide.to_bytes().size(), 9u);
  EXPECT_THROW(wide.to_bytes(8), std::invalid_argument);
}

TEST(BigIntEdges, DivisorOneAndSelf) {
  const BigInt v = BigInt::from_dec("123456789012345678901234567890");
  EXPECT_EQ(v / BigInt{1}, v);
  EXPECT_EQ(v % BigInt{1}, BigInt{0});
  EXPECT_EQ(v / v, BigInt{1});
  EXPECT_EQ(v / (v + BigInt{1}), BigInt{0});
  EXPECT_EQ(v % (v + BigInt{1}), v);
}

TEST(BigIntEdges, DivisionNearLimbBoundaries) {
  Drbg rng("limb-div");
  for (int trial = 0; trial < 100; ++trial) {
    // Divisors with top limb 0xffff... exercise the qhat clamp path.
    Bytes top(16, 0xff);
    Bytes rest = rng.bytes(8);
    top.insert(top.end(), rest.begin(), rest.end());
    const BigInt b = BigInt::from_bytes(top);
    const BigInt a = BigInt::from_bytes(rng.bytes(40));
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigIntEdges, ModPowEdge) {
  EXPECT_EQ(BigInt::mod_pow(BigInt{0}, BigInt{0}, BigInt{7}), BigInt{1});  // 0^0 := 1
  EXPECT_EQ(BigInt::mod_pow(BigInt{5}, BigInt{1}, BigInt{7}), BigInt{5});
  EXPECT_EQ(BigInt::mod_pow(BigInt{5}, BigInt{3}, BigInt{1}), BigInt{0});  // mod 1
  EXPECT_THROW(BigInt::mod_pow(BigInt{2}, BigInt{-1}, BigInt{7}), std::domain_error);
}

TEST(BigIntEdges, CompareMagnitudeVsLength) {
  // Same limb count, different top values; different limb counts.
  const BigInt a = BigInt::from_hex("ffffffffffffffff");
  const BigInt b = BigInt::from_hex("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(-a, -b);
  EXPECT_LT(-b, a);
}

TEST(BigIntEdges, HexDecCrossCheckRandom) {
  Drbg rng("hexdec");
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt v = BigInt::from_bytes(rng.bytes(1 + rng.uniform(48)));
    EXPECT_EQ(BigInt::from_dec(v.to_dec()), v);
    EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  }
}

}  // namespace
}  // namespace sp::crypto
