// MD5, Base64 and the GibberishAES envelope — including interop vectors
// produced with `openssl enc -aes-256-cbc -md md5` (the format the paper's
// browser implementation emits).
#include <gtest/gtest.h>

#include "crypto/base64.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gibberish.hpp"
#include "crypto/md5.hpp"

namespace sp::crypto {
namespace {

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(to_hex(Md5::hash(to_bytes(""))), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("abc"))), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("message digest"))), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes(
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890"))),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("GibberishAES interop payload spanning multiple updates");
  for (std::size_t split : {0u, 1u, 17u, 54u}) {
    Md5 h;
    h.update(std::span<const std::uint8_t>(msg.data(), split));
    h.update(std::span<const std::uint8_t>(msg.data() + split, msg.size() - split));
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Md5::hash(msg));
  }
}

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
  EXPECT_EQ(base64_decode("Zm9vYmFy"), to_bytes("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), to_bytes("f"));
}

TEST(Base64, RoundTripBinary) {
  Drbg rng("b64");
  for (std::size_t len : {1u, 2u, 3u, 4u, 57u, 256u, 1000u}) {
    const Bytes data = rng.bytes(len);
    EXPECT_EQ(base64_decode(base64_encode(data)), data) << len;
  }
}

TEST(Base64, ToleratesWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\nYmFy\n"), to_bytes("foobar"));
  EXPECT_EQ(base64_decode("  Zg = ="), to_bytes("f"));
}

TEST(Base64, RejectsGarbage) {
  EXPECT_THROW(base64_decode("Zm9"), std::invalid_argument);       // bad length
  EXPECT_THROW(base64_decode("Zm9!"), std::invalid_argument);      // bad char
  EXPECT_THROW(base64_decode("=m9v"), std::invalid_argument);      // pad first
  EXPECT_THROW(base64_decode("Zg==Zg=="), std::invalid_argument);  // data after pad
}

TEST(Base64, RejectsPadInNonFinalPositions) {
  EXPECT_THROW(base64_decode("Zm=v"), std::invalid_argument);      // pad mid-quantum
  EXPECT_THROW(base64_decode("Z=9v"), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zg==Zm9v"), std::invalid_argument);  // pad in non-final group
  EXPECT_THROW(base64_decode("Zm9vZg==Zm8="), std::invalid_argument);
}

TEST(Base64, RejectsNonCanonicalPaddingBits) {
  // RFC 4648 §3.5: the bits a padded quantum does not emit must be zero.
  // "Zg==" and "Zh==" would otherwise both decode to {0x66} — a malleable
  // encoding, which is exactly what a canonical wire format must refuse.
  EXPECT_THROW(base64_decode("Zh=="), std::invalid_argument);  // 2-pad, low 4 bits set
  EXPECT_THROW(base64_decode("QR=="), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zm9="), std::invalid_argument);  // 1-pad, low 2 bits set
  EXPECT_THROW(base64_decode("QUJD QR=="), std::invalid_argument);  // last quantum checked
  // The canonical spellings still decode.
  EXPECT_EQ(base64_decode("Zg=="), to_bytes("f"));
  EXPECT_EQ(base64_decode("Zm8="), to_bytes("fo"));
}

TEST(EvpBytesToKey, Deterministic48Bytes) {
  const Bytes salt = from_hex("0001020304050607");
  const Bytes kiv = evp_bytes_to_key_md5("hunter2", salt);
  EXPECT_EQ(kiv.size(), 48u);
  EXPECT_EQ(kiv, evp_bytes_to_key_md5("hunter2", salt));
  EXPECT_NE(kiv, evp_bytes_to_key_md5("hunter3", salt));
  EXPECT_THROW(evp_bytes_to_key_md5("x", Bytes(7, 0)), std::invalid_argument);
}

// Interop: ciphertexts below were produced with
//   printf '<msg>' | openssl enc -aes-256-cbc -md md5 -pass pass:<pw> -S <salt> -base64 -A
// (OpenSSL emits the raw ciphertext with -S; we wrap it in the Salted__
// envelope GibberishAES uses.)
std::string wrap(const char* salt_hex, const char* ct_b64) {
  Bytes env = to_bytes("Salted__");
  const Bytes salt = from_hex(salt_hex);
  env.insert(env.end(), salt.begin(), salt.end());
  const Bytes ct = base64_decode(ct_b64);
  env.insert(env.end(), ct.begin(), ct.end());
  return base64_encode(env);
}

TEST(Gibberish, OpenSslInteropDecrypt) {
  EXPECT_EQ(gibberish_decrypt("hunter2", wrap("0001020304050607", "dkCAJvjSsuREUvFgAUUq6w==")),
            to_bytes("attack at dawn"));
  EXPECT_EQ(gibberish_decrypt("x", wrap("ffeeddccbbaa9988", "HCWwQyZ7rERHu3Mum8jSzw==")),
            to_bytes(""));
  EXPECT_EQ(gibberish_decrypt(
                "social-puzzles",
                wrap("0011223344556677",
                     "2ACUlqUl8HN6njl4PhSpvxYbMWMmC3DnSLmZTQfLGeXzAwSnIVfq/i3Pr3uULC02")),
            to_bytes("The quick brown fox jumps over the lazy dog"));
}

TEST(Gibberish, EncryptDecryptRoundTrip) {
  Drbg rng("gibberish");
  const Bytes msg = to_bytes("a 100 character message body used in the paper's evaluation!");
  const std::string env = gibberish_encrypt("passphrase", msg, rng);
  EXPECT_EQ(gibberish_decrypt("passphrase", env), msg);
}

TEST(Gibberish, WrongPassphraseFailsOrGarbles) {
  Drbg rng("gibberish-wrong");
  const Bytes msg = to_bytes("secret");
  const std::string env = gibberish_encrypt("right", msg, rng);
  try {
    EXPECT_NE(gibberish_decrypt("wrong", env), msg);
  } catch (const std::runtime_error&) {
    SUCCEED();  // padding check rejected — the common case
  }
}

TEST(Gibberish, RejectsMalformedEnvelope) {
  EXPECT_THROW(gibberish_decrypt("pw", "not-base64!!"), std::invalid_argument);
  EXPECT_THROW(gibberish_decrypt("pw", base64_encode(to_bytes("NoHeader"))),
               std::invalid_argument);
  EXPECT_THROW(gibberish_decrypt("pw", base64_encode(to_bytes("Salted__"))),
               std::invalid_argument);
}

TEST(Gibberish, EnvelopeHasSaltedHeader) {
  Drbg rng("gibberish-hdr");
  const std::string env = gibberish_encrypt("pw", to_bytes("x"), rng);
  const Bytes raw = base64_decode(env);
  ASSERT_GE(raw.size(), 16u);
  EXPECT_EQ(std::string(raw.begin(), raw.begin() + 8), "Salted__");
}

}  // namespace
}  // namespace sp::crypto
