// AES-GCM against the NIST GCM reference test vectors (McGrew–Viega spec
// appendix B / SP 800-38D validation set), plus tamper sweeps.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"

namespace sp::crypto {
namespace {

TEST(AesGcm, NistTestCase1EmptyEverything) {
  const Bytes key(16, 0);
  const Bytes iv(12, 0);
  const Bytes out = aes_gcm_encrypt(key, iv, {}, {});
  EXPECT_EQ(to_hex(out), "58e2fccefa7e3061367f1d57a4e7455a");  // tag only
}

TEST(AesGcm, NistTestCase2SingleZeroBlock) {
  const Bytes key(16, 0);
  const Bytes iv(12, 0);
  const Bytes pt(16, 0);
  const Bytes out = aes_gcm_encrypt(key, iv, {}, pt);
  EXPECT_EQ(to_hex(out),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, NistTestCase3FourBlocks) {
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const Bytes out = aes_gcm_encrypt(key, iv, {}, pt);
  EXPECT_EQ(to_hex(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(AesGcm, NistTestCase4WithAad) {
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes out = aes_gcm_encrypt(key, iv, aad, pt);
  EXPECT_EQ(to_hex(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(AesGcm, RoundTripVariousLengthsAndKeys) {
  Drbg rng("gcm-roundtrip");
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    for (const std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
      const Bytes key = rng.bytes(key_len);
      const Bytes iv = rng.bytes(12);
      const Bytes aad = rng.bytes(len % 32);
      const Bytes pt = rng.bytes(len);
      const Bytes sealed = aes_gcm_encrypt(key, iv, aad, pt);
      EXPECT_EQ(sealed.size(), pt.size() + 16);
      EXPECT_EQ(aes_gcm_decrypt(key, iv, aad, sealed), pt) << key_len << "/" << len;
    }
  }
}

TEST(AesGcm, DetectsCiphertextTamper) {
  Drbg rng("gcm-tamper");
  const Bytes key = rng.bytes(16), iv = rng.bytes(12);
  Bytes sealed = aes_gcm_encrypt(key, iv, {}, to_bytes("authenticated payload"));
  for (std::size_t i = 0; i < sealed.size(); i += 5) {
    Bytes bad = sealed;
    bad[i] ^= 1;
    EXPECT_THROW(aes_gcm_decrypt(key, iv, {}, bad), std::runtime_error) << i;
  }
}

TEST(AesGcm, DetectsAadMismatch) {
  Drbg rng("gcm-aad");
  const Bytes key = rng.bytes(16), iv = rng.bytes(12);
  const Bytes sealed = aes_gcm_encrypt(key, iv, to_bytes("header-v1"), to_bytes("body"));
  EXPECT_THROW(aes_gcm_decrypt(key, iv, to_bytes("header-v2"), sealed), std::runtime_error);
  EXPECT_EQ(aes_gcm_decrypt(key, iv, to_bytes("header-v1"), sealed), to_bytes("body"));
}

TEST(AesGcm, RejectsBadInputs) {
  const Bytes key(16, 0);
  EXPECT_THROW(aes_gcm_encrypt(key, Bytes(11, 0), {}, {}), std::invalid_argument);
  EXPECT_THROW(aes_gcm_decrypt(key, Bytes(12, 0), {}, Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(aes_gcm_encrypt(Bytes(17, 0), Bytes(12, 0), {}, {}), std::invalid_argument);
}

TEST(AesGcm, DistinctIvsDistinctCiphertexts) {
  Drbg rng("gcm-iv");
  const Bytes key = rng.bytes(32);
  const Bytes pt = to_bytes("same message");
  const Bytes a = aes_gcm_encrypt(key, rng.bytes(12), {}, pt);
  const Bytes b = aes_gcm_encrypt(key, rng.bytes(12), {}, pt);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sp::crypto
