// Known-answer tests for SHA-1 / SHA-256 / SHA3-256 / HMAC / HKDF against
// FIPS 180-4, FIPS 202, RFC 4231 and RFC 5869 vectors.
#include <gtest/gtest.h>

#include "crypto/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha3.hpp"

namespace sp::crypto {
namespace {

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(msg.data(), split));
    h.update(std::span<const std::uint8_t>(msg.data() + split, msg.size() - split));
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(msg)) << "split " << split;
  }
}

TEST(Sha3_256, Fips202Vectors) {
  EXPECT_EQ(to_hex(Sha3_256::hash(to_bytes(""))),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
  EXPECT_EQ(to_hex(Sha3_256::hash(to_bytes("abc"))),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
  EXPECT_EQ(to_hex(Sha3_256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Sha3_256, RateBoundaryLengths) {
  // Exercise messages straddling the 136-byte rate.
  for (std::size_t len : {135u, 136u, 137u, 271u, 272u, 273u}) {
    const Bytes msg(len, 0x5a);
    Sha3_256 one_shot;
    one_shot.update(msg);
    auto a = one_shot.finish();
    Sha3_256 split;
    split.update(std::span<const std::uint8_t>(msg.data(), len / 2));
    split.update(std::span<const std::uint8_t>(msg.data() + len / 2, len - len / 2));
    auto b = split.finish();
    EXPECT_EQ(a, b) << "len " << len;
  }
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865");
}

TEST(Hkdf, EmptySaltUsesZeros) {
  // RFC 5869 case 3.
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandRejectsOversize) {
  const Bytes prk(32, 1);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

// Regression: update({}) used to pass the empty span's null data() to
// memcpy when a partial block was buffered — UB flagged by UBSan
// (sha256.cpp, sha1.cpp, md5.cpp). Empty updates must be no-ops at any
// point in the stream, including mid-block.
TEST(StreamingHash, EmptyUpdateMidStreamIsANoOp) {
  const Bytes part = to_bytes("abc");  // shorter than a block, so it buffers
  {
    Sha256 h;
    h.update(part);
    h.update({});  // hits the buffered-partial-block path
    h.update({});
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(part));
  }
  {
    Sha1 h;
    h.update(part);
    h.update({});
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha1::hash(part));
  }
  {
    Md5 h;
    h.update(part);
    h.update({});
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Md5::hash(part));
  }
  {
    Sha256 h;
    h.update({});  // empty before anything is buffered, too
    h.update(part);
    auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(part));
  }
}

TEST(Hkdf, DistinctInfoYieldsDistinctKeys) {
  const Bytes ikm = to_bytes("object secret M_O");
  EXPECT_NE(hkdf(ikm, {}, to_bytes("enc"), 32), hkdf(ikm, {}, to_bytes("mac"), 32));
}

}  // namespace
}  // namespace sp::crypto
