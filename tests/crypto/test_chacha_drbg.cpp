// ChaCha20 RFC 8439 vector + Drbg determinism/statistics.
#include <gtest/gtest.h>

#include <set>

#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"

namespace sp::crypto {
namespace {

TEST(ChaCha20, Rfc8439BlockVector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 c(key, nonce, 1);
  Bytes ks(64);
  c.keystream(ks);
  EXPECT_EQ(to_hex(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 section 2.4.2: full plaintext encryption test.
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  ChaCha20 c(key, nonce, 1);
  Bytes ks(pt.size());
  c.keystream(ks);
  Bytes ct(pt.size());
  for (std::size_t i = 0; i < pt.size(); ++i) ct[i] = pt[i] ^ ks[i];
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20, RejectsBadParams) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), std::invalid_argument);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), std::invalid_argument);
}

TEST(ChaCha20, StreamContinuity) {
  const Bytes key(32, 3), nonce(12, 4);
  ChaCha20 a(key, nonce);
  Bytes whole(100);
  a.keystream(whole);
  ChaCha20 b(key, nonce);
  Bytes part1(37), part2(63);
  b.keystream(part1);
  b.keystream(part2);
  Bytes stitched = part1;
  stitched.insert(stitched.end(), part2.begin(), part2.end());
  EXPECT_EQ(whole, stitched);
}

TEST(Drbg, DeterministicForSameSeed) {
  Drbg a("seed-x"), b("seed-x");
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Drbg, DistinctSeedsDiverge) {
  Drbg a("seed-x"), b("seed-y");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, UniformStaysInBounds) {
  Drbg d("bounds");
  for (int i = 0; i < 1000; ++i) EXPECT_LT(d.uniform(17), 17u);
  EXPECT_THROW(d.uniform(0), std::invalid_argument);
}

TEST(Drbg, UniformCoversSmallRange) {
  Drbg d("coverage");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(d.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Drbg, UniformRealInUnitInterval) {
  Drbg d("real");
  for (int i = 0; i < 1000; ++i) {
    const double v = d.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Drbg, ForkIndependence) {
  Drbg parent("parent");
  Drbg child1 = parent.fork("net");
  Drbg child2 = parent.fork("net");  // same label, later position -> distinct
  EXPECT_NE(child1.bytes(32), child2.bytes(32));
}

TEST(Drbg, ForkReproducibleFromSameParentState) {
  Drbg p1("parent"), p2("parent");
  Drbg c1 = p1.fork("crypto");
  Drbg c2 = p2.fork("crypto");
  EXPECT_EQ(c1.bytes(32), c2.bytes(32));
}

}  // namespace
}  // namespace sp::crypto
