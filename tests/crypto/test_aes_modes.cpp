// AES known-answer tests (FIPS 197 Appendix C) plus mode-level round trips
// and tamper detection for the seal/open envelope.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/modes.hpp"

namespace sp::crypto {
namespace {

Bytes encrypt_one(const Bytes& key, const Bytes& pt) {
  const Aes aes(key);
  Bytes ct(16);
  aes.encrypt_block(pt, ct);
  return ct;
}

Bytes decrypt_one(const Bytes& key, const Bytes& ct) {
  const Aes aes(key);
  Bytes pt(16);
  aes.decrypt_block(ct, pt);
  return pt;
}

const Bytes kFipsPlain = from_hex("00112233445566778899aabbccddeeff");

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes ct = encrypt_one(key, kFipsPlain);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(decrypt_one(key, ct), kFipsPlain);
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes ct = encrypt_one(key, kFipsPlain);
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(decrypt_one(key, ct), kFipsPlain);
}

TEST(Aes, Fips197Aes256) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes ct = encrypt_one(key, kFipsPlain);
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(decrypt_one(key, ct), kFipsPlain);
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33, 0)), std::invalid_argument);
}

TEST(Aes, RejectsBadBlockSize) {
  const Aes aes(Bytes(16, 0));
  Bytes small(15), out(16);
  EXPECT_THROW(aes.encrypt_block(small, out), std::invalid_argument);
  EXPECT_THROW(aes.decrypt_block(out, small), std::invalid_argument);
}

TEST(CbcMode, NistSp800_38aVector) {
  // NIST SP 800-38A F.2.1 CBC-AES128, first block (we add PKCS#7, so compare
  // the first 16 ciphertext bytes only).
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 16)), "7649abac8119b246cee98e9b12e9197d");
}

class CbcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundTrip, EncryptDecrypt) {
  Drbg d("cbc-roundtrip");
  const Bytes key = d.bytes(32);
  const Bytes iv = d.bytes(16);
  const Bytes pt = d.bytes(GetParam());
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());  // padding always added
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CbcRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100, 1000, 4096));

TEST(CbcMode, WrongKeyFailsOrGarbles) {
  Drbg d("cbc-wrongkey");
  const Bytes key = d.bytes(32);
  const Bytes wrong = d.bytes(32);
  const Bytes iv = d.bytes(16);
  const Bytes pt = to_bytes("a 100 character message body used in the paper's evaluation set");
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  try {
    const Bytes out = aes_cbc_decrypt(wrong, iv, ct);
    EXPECT_NE(out, pt);  // padding may accidentally validate; content must differ
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(CbcMode, RejectsNonBlockMultiple) {
  const Bytes key(16, 1), iv(16, 2);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes(17, 0)), std::runtime_error);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes{}), std::runtime_error);
}

class CtrRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CtrRoundTrip, SymmetricXor) {
  Drbg d("ctr-roundtrip");
  const Bytes key = d.bytes(16);
  const Bytes nonce = d.bytes(16);
  const Bytes pt = d.bytes(GetParam());
  const Bytes ct = aes_ctr_crypt(key, nonce, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_EQ(aes_ctr_crypt(key, nonce, ct), pt);
  if (!pt.empty()) {
    EXPECT_NE(ct, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CtrRoundTrip, ::testing::Values(1, 16, 17, 255, 4096));

TEST(CtrMode, CounterAdvancesAcrossBlocks) {
  const Bytes key(16, 7), nonce(16, 0);
  const Bytes zeros(48, 0);
  const Bytes ks = aes_ctr_crypt(key, nonce, zeros);
  // Three distinct keystream blocks.
  EXPECT_NE(Bytes(ks.begin(), ks.begin() + 16), Bytes(ks.begin() + 16, ks.begin() + 32));
  EXPECT_NE(Bytes(ks.begin() + 16, ks.begin() + 32), Bytes(ks.begin() + 32, ks.end()));
}

TEST(Envelope, SealOpenRoundTrip) {
  Drbg d("seal");
  const Bytes key = d.bytes(32);
  const Bytes iv = d.bytes(16);
  const Bytes pt = to_bytes("private event photo bytes");
  const Bytes env = seal(key, iv, pt);
  EXPECT_EQ(open(key, env), pt);
}

TEST(Envelope, DetectsTamper) {
  Drbg d("seal-tamper");
  const Bytes key = d.bytes(32);
  const Bytes iv = d.bytes(16);
  Bytes env = seal(key, iv, to_bytes("payload"));
  for (std::size_t i = 0; i < env.size(); i += 7) {
    Bytes mutated = env;
    mutated[i] ^= 0x01;
    EXPECT_THROW(open(key, mutated), std::runtime_error) << "byte " << i;
  }
}

TEST(Envelope, WrongKeyRejected) {
  Drbg d("seal-wrongkey");
  const Bytes env = seal(d.bytes(32), d.bytes(16), to_bytes("payload"));
  EXPECT_THROW(open(d.bytes(32), env), std::runtime_error);
}

TEST(Envelope, TruncatedRejected) {
  EXPECT_THROW(open(Bytes(32, 1), Bytes(47, 0)), std::runtime_error);
}

}  // namespace
}  // namespace sp::crypto
