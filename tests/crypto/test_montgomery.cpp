#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace sp::crypto {
namespace {

// Reference implementations the Montgomery path must agree with: schoolbook
// multiply + Knuth-D mod, and plain left-to-right square-and-multiply.
BigInt ref_mul(const BigInt& a, const BigInt& b, const BigInt& m) { return (a * b).mod(m); }

BigInt ref_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result{1};
  BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = ref_mul(result, result, m);
    if (exp.bit(i)) result = ref_mul(result, b, m);
  }
  return result;
}

BigInt random_odd(Drbg& rng, std::size_t bytes) {
  BigInt m = BigInt::from_bytes(rng.bytes(bytes));
  if (!m.is_odd()) m += BigInt{1};
  if (m <= BigInt{3}) m = BigInt{3};
  return m;
}

TEST(MontCtx, UsableRejectsBadModuli) {
  EXPECT_FALSE(MontCtx::usable(BigInt{0}));
  EXPECT_FALSE(MontCtx::usable(BigInt{1}));
  EXPECT_FALSE(MontCtx::usable(BigInt{2}));
  EXPECT_FALSE(MontCtx::usable(BigInt{100}));   // even
  EXPECT_FALSE(MontCtx::usable(BigInt{-7}));    // negative
  EXPECT_TRUE(MontCtx::usable(BigInt{3}));
  EXPECT_TRUE(MontCtx::usable(BigInt::from_hex("ffffffffffffffffffffffffffffff61")));
  // One limb past the 1024-bit cap.
  EXPECT_FALSE(MontCtx::usable((BigInt{1} << (64 * MontCtx::kMaxLimbs)) + BigInt{1}));
  EXPECT_THROW(MontCtx(BigInt{4}), std::invalid_argument);
}

TEST(MontCtx, DomainRoundTrip) {
  Drbg rng("mont-roundtrip");
  for (int i = 0; i < 50; ++i) {
    const BigInt m = random_odd(rng, 1 + i % 64);
    const MontCtx ctx(m);
    const BigInt x = BigInt::from_bytes(rng.bytes(1 + (i * 7) % 80)).mod(m);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x) << "m=" << m.to_hex();
  }
}

TEST(MontCtx, OneMontIsIdentity) {
  Drbg rng("mont-one");
  const BigInt m = random_odd(rng, 32);
  const MontCtx ctx(m);
  const BigInt x = BigInt::from_bytes(rng.bytes(32)).mod(m);
  EXPECT_EQ(ctx.mont_mul(ctx.to_mont(x), ctx.one_mont()), ctx.to_mont(x));
  EXPECT_EQ(ctx.from_mont(ctx.one_mont()), BigInt{1});
}

TEST(MontCtx, MulMatchesReference1k) {
  Drbg rng("mont-mul-equiv");
  for (int i = 0; i < 1000; ++i) {
    // Mix widths: 1 byte up to 128 bytes (the 1024-bit cap).
    const std::size_t mw = 1 + (i * 13) % 128;
    const BigInt m = random_odd(rng, mw);
    const MontCtx ctx(m);
    const BigInt a = BigInt::from_bytes(rng.bytes(1 + (i * 5) % 128)).mod(m);
    const BigInt b = BigInt::from_bytes(rng.bytes(1 + (i * 11) % 128)).mod(m);
    EXPECT_EQ(ctx.mul(a, b), ref_mul(a, b, m))
        << "i=" << i << " m=" << m.to_hex() << " a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

TEST(MontCtx, PowMatchesReference) {
  Drbg rng("mont-pow-equiv");
  for (int i = 0; i < 200; ++i) {
    const BigInt m = random_odd(rng, 1 + (i * 17) % 96);
    const MontCtx ctx(m);
    const BigInt base = BigInt::from_bytes(rng.bytes(1 + (i * 3) % 96));
    const BigInt exp = BigInt::from_bytes(rng.bytes(i % 40));
    EXPECT_EQ(ctx.pow(base.mod(m), exp), ref_pow(base, exp, m))
        << "i=" << i << " m=" << m.to_hex();
  }
}

TEST(MontCtx, PowEdgeCases) {
  const BigInt m = BigInt::from_hex("f43d29b8c7a11e5b00000000000000c1");
  ASSERT_TRUE(m.is_odd());
  const MontCtx ctx(m);
  EXPECT_EQ(ctx.pow(BigInt{0}, BigInt{0}), BigInt{1});  // 0^0 = 1, as mod_pow
  EXPECT_EQ(ctx.pow(BigInt{0}, BigInt{5}), BigInt{0});
  EXPECT_EQ(ctx.pow(BigInt{7}, BigInt{0}), BigInt{1});
  EXPECT_EQ(ctx.pow(BigInt{7}, BigInt{1}), BigInt{7});
  EXPECT_EQ(ctx.pow(m - BigInt{1}, BigInt{2}), BigInt{1});  // (-1)^2
  EXPECT_THROW(ctx.pow(BigInt{2}, BigInt{-1}), std::domain_error);
}

TEST(MontCtx, ModPowRoutesThroughMontgomery) {
  // BigInt::mod_pow must agree with the reference loop for odd moduli (the
  // rerouted fast path) and still work for even moduli (the fallback).
  Drbg rng("mont-modpow-route");
  for (int i = 0; i < 100; ++i) {
    BigInt m = BigInt::from_bytes(rng.bytes(1 + (i * 7) % 64));
    if (m <= BigInt{1}) m = BigInt{2} + m;
    const BigInt base = BigInt::from_bytes(rng.bytes(1 + (i * 3) % 64));
    const BigInt exp = BigInt::from_bytes(rng.bytes(i % 24));
    EXPECT_EQ(BigInt::mod_pow(base, exp, m), ref_pow(base, exp, m))
        << "i=" << i << " m=" << m.to_hex();
  }
}

TEST(MontCtx, WideModulusBeyondCapFallsBack) {
  // 1152-bit odd modulus: MontCtx::usable is false, mod_pow still correct.
  Drbg rng("mont-wide");
  BigInt m = BigInt::from_bytes(rng.bytes(144));
  if (!m.is_odd()) m += BigInt{1};
  ASSERT_FALSE(MontCtx::usable(m));
  const BigInt base = BigInt::from_bytes(rng.bytes(100));
  const BigInt exp = BigInt::from_bytes(rng.bytes(8));
  EXPECT_EQ(BigInt::mod_pow(base, exp, m), ref_pow(base, exp, m));
}

}  // namespace
}  // namespace sp::crypto
