// Tests for the secret-hygiene primitives: crypto::ct_equal edge cases,
// secure_wipe surviving optimisation, and the SecretBytes ownership contract.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>

#include "crypto/bytes.hpp"
#include "crypto/secret.hpp"

// The destructor test below deliberately reads a just-freed heap block to
// prove the wipe happened before the free. ASan (rightly) flags that read,
// so the test is compiled out under the sanitizer.
#if defined(__SANITIZE_ADDRESS__)
#define SP_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SP_TEST_ASAN 1
#endif
#endif
#ifndef SP_TEST_ASAN
#define SP_TEST_ASAN 0
#endif

namespace sp::crypto {
namespace {

// ---- ct_equal -------------------------------------------------------------

TEST(CtEqual, EmptySpansAreEqual) {
  const Bytes a, b;
  EXPECT_TRUE(ct_equal(a, b));
}

TEST(CtEqual, EmptyVsNonEmptyDiffers) {
  const Bytes a;
  const Bytes b{0x00};
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(b, a));
}

TEST(CtEqual, LengthMismatchAlwaysDiffers) {
  // Even when the shorter buffer is a prefix of the longer one.
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3, 4};
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(b, a));
}

TEST(CtEqual, EqualBuffers) {
  const Bytes a{0xde, 0xad, 0xbe, 0xef, 0x00, 0xff};
  Bytes b = a;
  EXPECT_TRUE(ct_equal(a, b));
}

TEST(CtEqual, SingleBitDifferenceAtEveryBytePosition) {
  constexpr std::size_t kLen = 32;
  const Bytes ref(kLen, 0xa5);
  for (std::size_t pos = 0; pos < kLen; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes other = ref;
      other[pos] = static_cast<std::uint8_t>(other[pos] ^ (1u << bit));
      EXPECT_FALSE(ct_equal(ref, other)) << "pos=" << pos << " bit=" << bit;
    }
  }
}

TEST(CtEqual, StringOverloadMatchesByteOverload) {
  EXPECT_TRUE(ct_equal(std::string_view{"paris"}, std::string_view{"paris"}));
  EXPECT_FALSE(ct_equal(std::string_view{"paris"}, std::string_view{"parid"}));
  EXPECT_FALSE(ct_equal(std::string_view{"paris"}, std::string_view{"pari"}));
  EXPECT_TRUE(ct_equal(std::string_view{}, std::string_view{}));
  // Embedded NULs participate in the comparison.
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_FALSE(ct_equal(std::string_view{a}, std::string_view{b}));
}

// ---- secure_wipe ----------------------------------------------------------

TEST(SecureWipe, ZeroesRawBuffer) {
  std::uint8_t buf[64];
  std::memset(buf, 0x5a, sizeof(buf));
  secure_wipe(buf, sizeof(buf));
  // Volatile read-back: force the compiler to load each byte from memory so
  // a dead-store-eliminated wipe would be observed as a failure here.
  const volatile std::uint8_t* p = buf;
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    EXPECT_EQ(p[i], 0u) << "byte " << i << " survived secure_wipe";
  }
}

TEST(SecureWipe, BytesOverloadWipesAndClears) {
  Bytes b(48, 0xcc);
  std::uint8_t* data = b.data();
  const std::size_t n = b.size();
  secure_wipe(b);
  EXPECT_TRUE(b.empty());
  // The vector's storage is cleared but not freed by clear(); the bytes the
  // buffer held must already be zero.
  const volatile std::uint8_t* p = data;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], 0u);
}

TEST(SecureWipe, StringOverloadWipesAndClears) {
  std::string s(40, 'q');  // > SSO so the heap buffer is the one wiped
  char* data = s.data();
  const std::size_t n = s.size();
  secure_wipe(s);
  EXPECT_TRUE(s.empty());
  const volatile char* p = data;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], '\0');
}

TEST(SecureWipe, ZeroLengthIsANoOp) {
  secure_wipe(nullptr, 0);  // must not crash
  Bytes empty;
  secure_wipe(empty);
  EXPECT_TRUE(empty.empty());
}

// ---- SecretBytes ----------------------------------------------------------

TEST(SecretBytes, TakesOwnershipAndExposesSpan) {
  SecretBytes s{Bytes{1, 2, 3, 4}};
  ASSERT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.span()[0], 1u);
  EXPECT_EQ(s.span()[3], 4u);
}

TEST(SecretBytes, MoveCtorClearsSource) {
  SecretBytes a{Bytes{9, 8, 7}};
  SecretBytes b{std::move(a)};
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): contract under test
}

// glibc's free() writes tcache/fastbin pointers into the first bytes of a
// released chunk, so the stale-read checks below skip that metadata region
// and inspect the tail of a 64-byte secret — those bytes are only zero if the
// wipe ran before the free.
constexpr std::size_t kHeapScribble = 32;
constexpr std::size_t kStaleLen = 64;

TEST(SecretBytes, MoveAssignWipesOldContents) {
  SecretBytes a{Bytes(kStaleLen, 0x11)};
  const std::uint8_t* old = a.span().data();
  a = SecretBytes{Bytes{2, 2}};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.span()[0], 2u);
#if !SP_TEST_ASAN
  const volatile std::uint8_t* p = old;
  for (std::size_t i = kHeapScribble; i < kStaleLen; ++i) EXPECT_EQ(p[i], 0u);
#else
  (void)old;
#endif
}

TEST(SecretBytes, CloneIsDeepAndExplicit) {
  SecretBytes a{Bytes{5, 6, 7}};
  SecretBytes b = a.clone();
  EXPECT_TRUE(a.ct_equals(b));
  b.mutable_span()[0] = 0x99;
  EXPECT_FALSE(a.ct_equals(b));
  EXPECT_EQ(a.span()[0], 5u);  // clone did not alias
}

TEST(SecretBytes, CtEqualsEdgeCases) {
  SecretBytes a{Bytes{1, 2, 3}};
  SecretBytes same{Bytes{1, 2, 3}};
  SecretBytes shorter{Bytes{1, 2}};
  SecretBytes differs{Bytes{1, 2, 4}};
  SecretBytes empty;
  EXPECT_TRUE(a.ct_equals(same));
  EXPECT_FALSE(a.ct_equals(shorter));
  EXPECT_FALSE(a.ct_equals(differs));
  EXPECT_FALSE(a.ct_equals(empty));
  EXPECT_TRUE(empty.ct_equals(SecretBytes{}));
  EXPECT_TRUE(a.ct_equals(Bytes{1, 2, 3}));
}

TEST(SecretBytes, ExplicitWipeEmptiesInPlace) {
  SecretBytes s{Bytes{0xff, 0xff}};
  const std::uint8_t* data = s.span().data();
  s.wipe();
  EXPECT_TRUE(s.empty());
  const volatile std::uint8_t* p = data;
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 0u);
}

TEST(SecretBytes, SizedCtorZeroInitialises) {
  SecretBytes s{16};
  ASSERT_EQ(s.size(), 16u);
  for (std::uint8_t v : s.span()) EXPECT_EQ(v, 0u);
}

TEST(SecretBytes, DestructorWipesBackingStore) {
  const std::uint8_t* data = nullptr;
  {
    SecretBytes s{Bytes(kStaleLen, 0xab)};
    data = s.span().data();
  }
  // Reading freed memory is UB in general; under glibc the block of a small
  // just-freed allocation is still mapped, which is exactly what lets this
  // test observe whether the destructor wiped before freeing.
#if !SP_TEST_ASAN
  const volatile std::uint8_t* p = data;
  for (std::size_t i = kHeapScribble; i < kStaleLen; ++i) EXPECT_EQ(p[i], 0u);
#else
  (void)data;
#endif
}

}  // namespace
}  // namespace sp::crypto
