#include "crypto/bytes.hpp"

#include <gtest/gtest.h>

namespace sp::crypto {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) { EXPECT_THROW(from_hex("abc"), std::invalid_argument); }

TEST(Bytes, HexRejectsNonHex) { EXPECT_THROW(from_hex("zz"), std::invalid_argument); }

TEST(Bytes, StringRoundTrip) {
  const std::string s = "social puzzle";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, XorCycleEqualLength) {
  const Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0x55};
  EXPECT_EQ(xor_cycle(a, b), (Bytes{0xf0, 0xf0, 0xff}));
}

TEST(Bytes, XorCycleIsInvolutionWithCycledKey) {
  // The paper blinds a share with an answer of different length; unblinding
  // must recover the share exactly.
  const Bytes share = from_hex("00112233445566778899aabbccddeeff0123456789");
  const Bytes answer = to_bytes("pizza");
  EXPECT_EQ(xor_cycle(xor_cycle(share, answer), answer), share);
}

TEST(Bytes, XorCycleEmptyKeyIsIdentity) {
  const Bytes a = {1, 2, 3};
  EXPECT_EQ(xor_cycle(a, Bytes{}), a);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(Bytes{1, 2}, Bytes{3}), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat(Bytes{}, Bytes{}), Bytes{});
}

}  // namespace
}  // namespace sp::crypto
