#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace sp::crypto {
namespace {

std::function<Bytes(std::size_t)> rng() {
  auto drbg = std::make_shared<Drbg>("bigint-tests");
  return [drbg](std::size_t n) { return drbg->bytes(n); };
}

TEST(BigInt, ZeroBasics) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigInt, SmallArithmetic) {
  EXPECT_EQ((BigInt{7} + BigInt{5}).to_dec(), "12");
  EXPECT_EQ((BigInt{7} - BigInt{5}).to_dec(), "2");
  EXPECT_EQ((BigInt{5} - BigInt{7}).to_dec(), "-2");
  EXPECT_EQ((BigInt{-7} * BigInt{5}).to_dec(), "-35");
  EXPECT_EQ((BigInt{-7} * BigInt{-5}).to_dec(), "35");
}

TEST(BigInt, Int64MinConstruction) {
  const BigInt v{INT64_MIN};
  EXPECT_EQ(v.to_dec(), "-9223372036854775808");
}

TEST(BigInt, DecHexRoundTrip) {
  const char* dec = "123456789012345678901234567890123456789";
  const BigInt v = BigInt::from_dec(dec);
  EXPECT_EQ(v.to_dec(), dec);
  EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  EXPECT_EQ(BigInt::from_dec("-42").to_dec(), "-42");
}

TEST(BigInt, ParseRejectsGarbage) {
  EXPECT_THROW(BigInt::from_dec(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("-"), std::invalid_argument);
}

TEST(BigInt, BytesRoundTrip) {
  const Bytes be = from_hex("01ffee00aabbccdd9988776655443322");
  const BigInt v = BigInt::from_bytes(be);
  EXPECT_EQ(v.to_bytes(16), be);
  EXPECT_EQ(v.to_bytes(), be);  // minimal width drops nothing here
  EXPECT_THROW(v.to_bytes(4), std::invalid_argument);
  // Zero-padding on the left for wider output.
  Bytes wide = v.to_bytes(20);
  EXPECT_EQ(wide.size(), 20u);
  EXPECT_EQ(Bytes(wide.begin() + 4, wide.end()), be);
}

TEST(BigInt, CompareTotalOrder) {
  EXPECT_LT(BigInt{-5}, BigInt{-1});
  EXPECT_LT(BigInt{-1}, BigInt{0});
  EXPECT_LT(BigInt{0}, BigInt{1});
  EXPECT_LT(BigInt{1}, BigInt::from_dec("18446744073709551616"));
  EXPECT_EQ(BigInt{0}, -BigInt{0});
}

TEST(BigInt, MultiplicationKnownLarge) {
  const BigInt a = BigInt::from_dec("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = BigInt::from_dec("18446744073709551616");                    // 2^64
  EXPECT_EQ((a * b).to_hex(), "1" + std::string(48, '0'));                      // 2^192
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt v = BigInt::from_hex("deadbeefcafebabe1234567890");
  for (std::size_t s : {1u, 7u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
}

TEST(BigInt, DivModEuclideanIdentity) {
  Drbg d("divmod");
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t an = 1 + d.uniform(40);
    const std::size_t bn = 1 + d.uniform(20);
    BigInt a = BigInt::from_bytes(d.bytes(an));
    BigInt b = BigInt::from_bytes(d.bytes(bn));
    if (b.is_zero()) b = BigInt{1};
    if (d.uniform(2)) a = -a;
    if (d.uniform(2)) b = -b;
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    // |r| < |b| and r has dividend sign (or is zero).
    BigInt abs_r = r.is_negative() ? -r : r;
    BigInt abs_b = b.is_negative() ? -b : b;
    EXPECT_LT(abs_r, abs_b);
    if (!r.is_zero()) {
      EXPECT_EQ(r.is_negative(), a.is_negative());
    }
  }
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigInt, KnuthAddBackCase) {
  // Crafted to exercise the rare D6 add-back branch: divisor with max top
  // limb, dividend forcing qhat overestimate.
  const BigInt a = BigInt::from_hex("7fffffffffffffff8000000000000000000000000000000000000000");
  const BigInt b = BigInt::from_hex("800000000000000080000000000000000000000000000001");
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigInt, ModCanonical) {
  const BigInt m{7};
  EXPECT_EQ((BigInt{-1}).mod(m).to_dec(), "6");
  EXPECT_EQ((BigInt{-14}).mod(m).to_dec(), "0");
  EXPECT_EQ((BigInt{15}).mod(m).to_dec(), "1");
  EXPECT_THROW(BigInt{3}.mod(BigInt{0}), std::domain_error);
  EXPECT_THROW(BigInt{3}.mod(BigInt{-5}), std::domain_error);
}

TEST(BigInt, ModPowKnown) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt::mod_pow(BigInt{2}, BigInt{10}, BigInt{1000}).to_dec(), "24");
  // Fermat: a^(p-1) = 1 mod p
  const BigInt p = BigInt::from_dec("1000000007");
  EXPECT_EQ(BigInt::mod_pow(BigInt{123456}, p - BigInt{1}, p).to_dec(), "1");
}

TEST(BigInt, ModPowLargePrimeFermat) {
  // 256-bit prime (secp256k1 field prime).
  const BigInt p = BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  Drbg d("fermat");
  for (int i = 0; i < 5; ++i) {
    const BigInt a = BigInt::from_bytes(d.bytes(31)) + BigInt{2};
    EXPECT_EQ(BigInt::mod_pow(a, p - BigInt{1}, p), BigInt{1});
  }
}

TEST(BigInt, ModInvRoundTrip) {
  const BigInt p = BigInt::from_dec("1000000007");
  Drbg d("modinv");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::from_bytes(d.bytes(12)).mod(p - BigInt{1}) + BigInt{1};
    const BigInt inv = BigInt::mod_inv(a, p);
    EXPECT_EQ(BigInt::mod_mul(a, inv, p), BigInt{1});
  }
}

TEST(BigInt, ModInvNotInvertibleThrows) {
  EXPECT_THROW(BigInt::mod_inv(BigInt{6}, BigInt{9}), std::domain_error);
  EXPECT_THROW(BigInt::mod_inv(BigInt{0}, BigInt{7}), std::domain_error);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt{48}, BigInt{36}).to_dec(), "12");
  EXPECT_EQ(BigInt::gcd(BigInt{-48}, BigInt{36}).to_dec(), "12");
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{0}).to_dec(), "17");
}

TEST(BigInt, RandomBelowInRange) {
  const BigInt bound = BigInt::from_dec("1000000000000000000000");
  auto r = rng();
  for (int i = 0; i < 100; ++i) {
    const BigInt v = BigInt::random_below(bound, r);
    EXPECT_FALSE(v.is_negative());
    EXPECT_LT(v, bound);
  }
}

TEST(BigInt, RandomBelowSmallBoundHitsAllResidues) {
  auto r = rng();
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[BigInt::random_below(BigInt{5}, r).low_u64()] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(BigInt, MillerRabinKnownPrimes) {
  auto r = rng();
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt{2}, 10, r));
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt{97}, 10, r));
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt::from_dec("1000000007"), 20, r));
  const BigInt p256 = BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  EXPECT_TRUE(BigInt::is_probable_prime(p256, 10, r));
}

TEST(BigInt, MillerRabinKnownComposites) {
  auto r = rng();
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt{1}, 10, r));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt{561}, 20, r));   // Carmichael
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt{8911}, 20, r));  // Carmichael
  EXPECT_FALSE(BigInt::is_probable_prime(
      BigInt::from_dec("1000000007") * BigInt::from_dec("998244353"), 20, r));
}

// Property sweep: ring axioms on random operands of assorted widths.
class BigIntRingProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntRingProperty, AxiomsHold) {
  Drbg d("ring-" + std::to_string(GetParam()));
  const std::size_t width = static_cast<std::size_t>(GetParam());
  BigInt a = BigInt::from_bytes(d.bytes(width));
  BigInt b = BigInt::from_bytes(d.bytes(width / 2 + 1));
  BigInt c = BigInt::from_bytes(d.bytes(width + 3));
  if (d.uniform(2)) a = -a;
  if (d.uniform(2)) b = -b;

  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, BigInt{0});
  EXPECT_EQ(a + BigInt{0}, a);
  EXPECT_EQ(a * BigInt{1}, a);
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntRingProperty, ::testing::Values(1, 2, 7, 8, 9, 16, 17, 31,
                                                                       32, 33, 48, 64, 65, 100));

}  // namespace
}  // namespace sp::crypto
