// Chaos trace-propagation tests (PR 9): the span-tree tracer must follow a
// request through the retry loop, the access-parallel thread pool, the
// cross-request verify queue and the WAL writer — under seeded fault
// injection, and deterministically enough that a same-seed replay produces
// the same protocol-layer span tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "codec/trace_records.hpp"
#include "core/session.hpp"
#include "obs/trace.hpp"
#include "support/fixtures.hpp"

namespace {

using sp::core::Knowledge;
using sp::obs::SpanRecord;
using sp::obs::SpanStatus;
using sp::obs::TraceData;
using sp::obs::Tracer;
using sp::obs::TracerConfig;
using sp::testsupport::FanoutRig;
using sp::testsupport::toy_config;

/// RAII: tracer on at full sampling for one test, drained and off after.
class TracerOn {
 public:
  TracerOn() {
    auto& tracer = Tracer::global();
    tracer.configure(TracerConfig{});
    tracer.set_enabled(true);
    (void)tracer.drain();
  }
  ~TracerOn() {
    auto& tracer = Tracer::global();
    tracer.set_enabled(false);
    (void)tracer.drain();
  }
  TracerOn(const TracerOn&) = delete;
  TracerOn& operator=(const TracerOn&) = delete;
};

std::vector<const SpanRecord*> spans_named(const TraceData& trace, const std::string& name) {
  std::vector<const SpanRecord*> out;
  for (const auto& s : trace.spans) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

const SpanRecord* span_by_id(const TraceData& trace, std::uint64_t id) {
  for (const auto& s : trace.spans) {
    if (s.span_id == id) return &s;
  }
  return nullptr;
}

std::optional<std::string> attr(const SpanRecord& span, const std::string& name) {
  for (const auto& [k, v] : span.attrs) {
    if (k == name) return v;
  }
  return std::nullopt;
}

/// The deterministic protocol-layer shape of a trace: sorted (name,
/// parent-name) pairs, excluding pool.* spans — which worker picked a task
/// up (and therefore how many pool hops a batch took) is scheduling, not
/// protocol, and legitimately varies between same-seed runs.
std::vector<std::pair<std::string, std::string>> tree_shape(const TraceData& trace) {
  std::map<std::uint64_t, std::string> names;
  for (const auto& s : trace.spans) names[s.span_id] = s.name;
  std::vector<std::pair<std::string, std::string>> shape;
  for (const auto& s : trace.spans) {
    if (s.name.rfind("pool.", 0) == 0) continue;
    shape.emplace_back(s.name, s.parent_id == 0 ? "" : names[s.parent_id]);
  }
  std::sort(shape.begin(), shape.end());
  return shape;
}

TEST(TracePropagation, EveryRetryAttemptIsAChildSpanWithItsFaultAttr) {
  sp::core::SessionConfig cfg = toy_config("trace-retry");
  sp::net::FaultPlan plan;  // transient-only schedule: timeouts, no corruption
  plan.p_transfer_timeout = 0.5;
  plan.seed = "trace-retry-faults";
  cfg.faults = plan;
  FanoutRig rig(cfg, 2);
  const TracerOn tracer_on;
  auto& tracer = Tracer::global();

  bool saw_retry = false;
  for (int i = 0; i < 12 && !saw_retry; ++i) {
    const auto result = rig.session_.access_with_retries(
        rig.receivers_[i % 2], rig.c1_post_, Knowledge::full(rig.ctx_), sp::net::pc_profile());
    const auto traces = tracer.drain();
    ASSERT_EQ(traces.size(), 1u) << "one sequential request must yield one trace";
    const TraceData& t = traces.front();
    EXPECT_EQ(t.root_name, "sp.request");

    const auto attempts = spans_named(t, "sp.attempt");
    ASSERT_EQ(attempts.size(), static_cast<std::size_t>(result.attempts));
    const SpanRecord* root = span_by_id(t, 1);
    ASSERT_NE(root, nullptr);
    for (const SpanRecord* a : attempts) {
      EXPECT_EQ(a->parent_id, root->span_id);
      EXPECT_TRUE(attr(*a, "attempt").has_value());
      // Each attempt carries exactly one sp.access child.
      std::size_t accesses = 0;
      for (const auto& s : t.spans) {
        if (s.name == "sp.access" && s.parent_id == a->span_id) ++accesses;
      }
      EXPECT_EQ(accesses, 1u);
      if (a->status == SpanStatus::kTransientFault) {
        const auto fault = attr(*a, "fault");
        ASSERT_TRUE(fault.has_value());
        EXPECT_EQ(*fault, "timeout");  // the plan only schedules timeouts
      }
    }
    if (result.attempts > 1) {
      saw_retry = true;
      EXPECT_TRUE(t.errored);  // a transient attempt marks the trace
    }
  }
  EXPECT_TRUE(saw_retry) << "fault plan never fired across 12 requests";
}

TEST(TracePropagation, ErroredRequestExportsItsFullRetryChain) {
  sp::core::SessionConfig cfg = toy_config("trace-errored");
  sp::net::FaultPlan plan;
  plan.p_transfer_timeout = 0.98;  // nearly every exchange times out
  plan.seed = "trace-errored-faults";
  cfg.faults = plan;
  cfg.retry.max_attempts = 3;
  FanoutRig rig(cfg, 1);
  const TracerOn tracer_on;
  auto& tracer = Tracer::global();

  std::optional<TraceData> errored;
  int attempts_spent = 0;
  for (int i = 0; i < 8 && !errored; ++i) {
    const auto result = rig.session_.access_with_retries(
        rig.receivers_[0], rig.c1_post_, Knowledge::full(rig.ctx_), sp::net::pc_profile());
    auto traces = tracer.drain();
    ASSERT_EQ(traces.size(), 1u);
    if (result.error) {
      errored = std::move(traces.front());
      attempts_spent = result.attempts;
    }
  }
  ASSERT_TRUE(errored.has_value()) << "0.98 timeout rate never exhausted the retry budget";

  // The acceptance bar checks the chain on the *exported* trace: encode the
  // dump, decode it back, and walk the decoded tree.
  const std::vector<TraceData> dumped = {*errored};
  const auto decoded = sp::codec::decode_trace_dump(sp::codec::encode_trace_dump(dumped));
  ASSERT_EQ(decoded.size(), 1u);
  const TraceData& t = decoded.front();
  EXPECT_TRUE(t.errored);
  EXPECT_EQ(t.root_name, "sp.request");
  EXPECT_EQ(t.spans, errored->spans);

  const SpanRecord* root = span_by_id(t, 1);
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->status, SpanStatus::kOk);
  const auto attempts = spans_named(t, "sp.attempt");
  ASSERT_EQ(attempts.size(), static_cast<std::size_t>(attempts_spent));
  ASSERT_GE(attempts.size(), 2u);
  for (const SpanRecord* a : attempts) {
    EXPECT_EQ(a->parent_id, root->span_id);
    EXPECT_NE(a->status, SpanStatus::kOk);
    EXPECT_TRUE(attr(*a, "fault").has_value() || attr(*a, "deadline").has_value());
  }
}

TEST(TracePropagation, SameSeedReplayYieldsIdenticalSpanTreeShape) {
  auto run = [](const std::string& tag) {
    sp::core::SessionConfig cfg = toy_config("trace-replay");
    cfg.faults = sp::net::FaultPlan::uniform(0.3, "trace-replay-faults");
    FanoutRig rig(cfg, 2);
    auto& tracer = Tracer::global();
    std::vector<std::vector<std::pair<std::string, std::string>>> shapes;
    sp::crypto::Drbg krng("trace-replay-knowledge-" + tag);
    // Same single-threaded request series: the fault layer's determinism
    // contract (per-(receiver, post) streams in program order) must make
    // every retry/redraw decision — and so every span — replay identically.
    for (int i = 0; i < 6; ++i) {
      const auto& post = (i % 2 == 0) ? rig.c1_post_ : rig.c2_post_;
      const Knowledge knowledge = (i == 4)
                                      ? Knowledge::partial(rig.ctx_, 1, krng)
                                      : Knowledge::full(rig.ctx_);
      (void)rig.session_.access_with_retries(rig.receivers_[i % 2], post, knowledge,
                                             sp::net::pc_profile());
      auto traces = tracer.drain();
      EXPECT_EQ(traces.size(), 1u);
      for (const auto& t : traces) shapes.push_back(tree_shape(t));
    }
    return shapes;
  };

  const TracerOn tracer_on;
  // The knowledge DRBG is re-seeded identically for both runs; everything
  // else (session seed, fault schedule) comes from the config.
  const auto first = run("x");
  const auto second = run("x");
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "request " << i << " replayed a different tree";
  }
}

TEST(TracePropagation, ParallelAccessPropagatesThroughPoolAndVerifyQueue) {
  sp::core::SessionConfig cfg = toy_config("trace-parallel");
  FanoutRig rig(cfg, 3);
  const TracerOn tracer_on;
  auto& tracer = Tracer::global();

  std::vector<sp::core::Session::AccessRequest> batch;
  for (int i = 0; i < 6; ++i) {
    sp::core::Session::AccessRequest req;
    req.receiver = rig.receivers_[i % 3];
    req.post_id = (i % 2 == 0) ? rig.c1_post_ : rig.c2_post_;
    req.knowledge = Knowledge::full(rig.ctx_);
    batch.push_back(std::move(req));
  }
  const auto results = rig.session_.access_parallel(batch, 3);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) EXPECT_TRUE(r.success());

  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 6u);
  for (const TraceData& t : traces) {
    EXPECT_EQ(t.root_name, "sp.request");
    // Submit-time roots: the pool's queue wait lands inside the request.
    EXPECT_FALSE(spans_named(t, "pool.wait").empty());
    EXPECT_FALSE(spans_named(t, "pool.task").empty());
    EXPECT_FALSE(spans_named(t, "sp.access").empty());
    EXPECT_FALSE(spans_named(t, "verify.job").empty());
    const auto waits = spans_named(t, "verify.wait");
    ASSERT_FALSE(waits.empty());
    bool some_wait_links = false;
    for (const SpanRecord* w : waits) {
      some_wait_links = some_wait_links || !w->links.empty();
    }
    EXPECT_TRUE(some_wait_links) << "verify.wait never linked its batch jobs";
    // Tree integrity: every parent id resolves inside the same trace.
    for (const auto& s : t.spans) {
      if (s.parent_id != 0) {
        EXPECT_NE(span_by_id(t, s.parent_id), nullptr)
            << s.name << " has a dangling parent";
      }
    }
    EXPECT_EQ(t.spans.back().parent_id, 0u) << "root must finish last";
  }
}

TEST(TracePropagation, WalGroupCommitLinksBackToTheOriginRequest) {
  sp::core::SessionConfig cfg = toy_config("trace-wal");
  sp::core::PersistenceConfig persist;
  persist.dir = ::testing::TempDir() + "/sp-trace-wal";
  cfg.persistence = persist;
  sp::core::Session session(cfg);
  const auto sharer = session.register_user("sharer");
  const auto receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  const TracerOn tracer_on;
  auto& tracer = Tracer::global();
  const sp::core::Context ctx = sp::testsupport::party_context();
  sp::obs::TraceId origin_trace_id;
  {
    sp::obs::Span root = Tracer::global().start_trace("test.share");
    ASSERT_TRUE(root.recording());
    origin_trace_id = root.context().trace_id();
    const sp::obs::ContextGuard guard(root.context());
    (void)session.share_c1(sharer, sp::crypto::to_bytes("durable object"), ctx, 2, 4,
                           sp::net::pc_profile());
  }

  // The group-commit span finishes on the WAL writer thread shortly after
  // the durable wait unblocks — poll the collector briefly.
  std::vector<TraceData> collected;
  const TraceData* origin = nullptr;
  const TraceData* commit = nullptr;
  for (int i = 0; i < 100 && (origin == nullptr || commit == nullptr); ++i) {
    auto drained = tracer.drain();
    for (auto& t : drained) collected.push_back(std::move(t));
    for (const auto& t : collected) {
      if (t.root_name == "test.share") origin = &t;
      if (t.root_name == "wal.group_commit") commit = &t;
    }
    if (origin == nullptr || commit == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_NE(origin, nullptr);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(origin->id, origin_trace_id);

  const auto enqueues = spans_named(*origin, "wal.enqueue");
  ASSERT_FALSE(enqueues.empty()) << "share never tagged a WAL record with its trace";
  const SpanRecord* commit_root = span_by_id(*commit, 1);
  ASSERT_NE(commit_root, nullptr);
  ASSERT_FALSE(commit_root->links.empty());
  bool linked_to_origin = false;
  for (const auto& link : commit_root->links) {
    if (link.trace == origin_trace_id) {
      linked_to_origin = true;
      const bool matches_enqueue =
          std::any_of(enqueues.begin(), enqueues.end(),
                      [&](const SpanRecord* e) { return e->span_id == link.span; });
      EXPECT_TRUE(matches_enqueue) << "batch link does not point at a wal.enqueue span";
    }
  }
  EXPECT_TRUE(linked_to_origin);
}

}  // namespace
