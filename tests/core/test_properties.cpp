// Property-based round-trip coverage: for seeded random (N, k, m) cases —
// context size, threshold, and number of correctly known answers — access
// must be granted iff m >= k, for Construction 1, Construction 2, and the
// trivial all-answers baseline (where the implicit threshold is N). Small
// shapes are swept exhaustively so the k = 1 and k = N edges are always
// exercised; random larger shapes extend the sweep to a few hundred cases
// per scheme.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "core/trivial_scheme.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Drbg;
using crypto::to_bytes;

/// A context with `n` distinct question/answer pairs, text varied by `mark`
/// so no two cases share hash preimages.
Context random_context(std::size_t n, const std::string& mark) {
  std::vector<ContextPair> pairs;
  pairs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    pairs.push_back({"q-" + mark + "-" + std::to_string(j), "v-" + mark + "-" + std::to_string(j)});
  }
  return Context(std::move(pairs));
}

/// Exhaustive small shapes first (every k and m for n <= `exhaustive_n`,
/// covering k = 1 and k = n), then `extra` random shapes with n up to
/// `max_n`. Each case is (n, k, m).
std::vector<std::array<std::size_t, 3>> make_cases(std::size_t exhaustive_n, std::size_t max_n,
                                                   std::size_t extra, Drbg& rng) {
  std::vector<std::array<std::size_t, 3>> cases;
  for (std::size_t n = 2; n <= exhaustive_n; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      for (std::size_t m = 0; m <= n; ++m) cases.push_back({n, k, m});
    }
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const std::size_t n = 2 + rng.uniform(max_n - 1);
    const std::size_t k = 1 + rng.uniform(n);
    const std::size_t m = rng.uniform(n + 1);
    cases.push_back({n, k, m});
  }
  return cases;
}

Knowledge knowledge_with(const Context& ctx, std::size_t correct, Drbg& rng) {
  return correct == ctx.size() ? Knowledge::full(ctx) : Knowledge::partial(ctx, correct, rng);
}

TEST(PropertyRoundTrip, C1GrantsIffThresholdAnswersKnown) {
  Session session(testsupport::toy_config("property-c1"));
  const osn::UserId sharer = session.register_user("sharer");
  const osn::UserId receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  Drbg rng("property-c1-cases");
  const auto cases = make_cases(/*exhaustive_n=*/4, /*max_n=*/8, /*extra=*/150, rng);
  std::size_t index = 0;
  for (const auto& [n, k, m] : cases) {
    const std::string mark = "c1-" + std::to_string(index++);
    const Context ctx = random_context(n, mark);
    const Bytes object = to_bytes("object-" + mark);
    const auto receipt = session.share_c1(sharer, object, ctx, k, n, net::pc_profile());
    const Knowledge knows = knowledge_with(ctx, m, rng);
    // DisplayPuzzle draws a random question subset, so a receiver who knows
    // enough answers overall can still draw an uncovered challenge; a large
    // draw budget makes the m >= k direction effectively deterministic
    // (every full-size draw grants, and draws are seeded).
    const auto result = session.access_with_retries(receiver, receipt.post_id, knows,
                                                    net::pc_profile(),
                                                    /*max_draws=*/m >= k ? 300 : 4);
    if (m >= k) {
      ASSERT_TRUE(result.success()) << "n=" << n << " k=" << k << " m=" << m;
      EXPECT_EQ(*result.object, object);
    } else {
      EXPECT_FALSE(result.granted) << "n=" << n << " k=" << k << " m=" << m;
      EXPECT_FALSE(result.object.has_value());
      EXPECT_FALSE(result.error.has_value());  // a clean denial, not a fault
    }
  }
}

TEST(PropertyRoundTrip, C2GrantsIffThresholdAnswersKnown) {
  Session session(testsupport::toy_config("property-c2"));
  const osn::UserId sharer = session.register_user("sharer");
  const osn::UserId receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  Drbg rng("property-c2-cases");
  const auto cases = make_cases(/*exhaustive_n=*/4, /*max_n=*/7, /*extra=*/60, rng);
  std::size_t index = 0;
  for (const auto& [n, k, m] : cases) {
    const std::string mark = "c2-" + std::to_string(index++);
    const Context ctx = random_context(n, mark);
    const Bytes object = to_bytes("object-" + mark);
    const auto receipt = session.share_c2(sharer, object, ctx, k, net::pc_profile());
    const Knowledge knows = knowledge_with(ctx, m, rng);
    // C2 displays every question, so one access decides.
    const auto result = session.access(receiver, receipt.post_id, knows, net::pc_profile());
    if (m >= k) {
      ASSERT_TRUE(result.success()) << "n=" << n << " k=" << k << " m=" << m;
      EXPECT_EQ(*result.object, object);
    } else {
      EXPECT_FALSE(result.success()) << "n=" << n << " k=" << k << " m=" << m;
      EXPECT_FALSE(result.object.has_value());
      EXPECT_FALSE(result.error.has_value());
    }
  }
}

TEST(PropertyRoundTrip, TrivialSchemeGrantsIffEveryAnswerKnown) {
  // The §I baseline has no threshold parameter: it is the k = N edge by
  // construction, so the property collapses to m == N.
  Drbg rng("property-trivial-cases");
  Drbg share_rng("property-trivial-material");
  const auto cases = make_cases(/*exhaustive_n=*/6, /*max_n=*/10, /*extra=*/200, rng);
  std::size_t index = 0;
  for (const auto& [n, k, m] : cases) {
    (void)k;  // no threshold to vary
    const std::string mark = "triv-" + std::to_string(index++);
    const Context ctx = random_context(n, mark);
    const Bytes object = to_bytes("object-" + mark);
    const auto shared = TrivialScheme::share(object, ctx, share_rng);
    const Knowledge knows = knowledge_with(ctx, m, rng);
    const auto got = TrivialScheme::access(shared, knows);
    if (m >= n) {
      ASSERT_TRUE(got.has_value()) << "n=" << n << " m=" << m;
      EXPECT_EQ(*got, object);
    } else {
      EXPECT_FALSE(got.has_value()) << "n=" << n << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace sp::core
