// Hammer tests for the concurrent serving core. Every test here throws
// multiple threads at shared SP/DH/graph/session state; they are the
// workload the CI ThreadSanitizer job (SP_SANITIZE=thread) runs to prove
// the sharded stores and the const access path are race-free, and they
// assert functional invariants (counts, round-trips, grant decisions) so
// they catch logic torn by concurrency even in non-TSan builds.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "core/thread_pool.hpp"
#include "core/verify_queue.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::size_t kThreads = 8;

/// Runs `fn(thread_index)` on kThreads threads and joins them.
template <typename Fn>
void run_threads(Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) threads.emplace_back(fn, t);
  for (std::thread& th : threads) th.join();
}

TEST(ThreadPool, RunsEverySubmittedTaskWithBoundedQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4, 2);  // queue far smaller than the task count
    for (int i = 0; i < 200; ++i) {
      pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), 200);
    // The pool is reusable after wait_idle.
    pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
  }
  EXPECT_EQ(executed.load(), 201);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2, 4);
  std::atomic<int> executed{0};
  pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
  pool.shutdown();
  EXPECT_EQ(executed.load(), 1);  // shutdown drains what was accepted
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, IntrospectionCountsQueuedAndExecuting) {
  ThreadPool pool(2, 8);
  EXPECT_EQ(pool.num_threads(), 2u);
  EXPECT_EQ(pool.thread_count(), 2u);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);

  std::atomic<bool> gate{false};
  std::atomic<int> started{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      started.fetch_add(1, std::memory_order_relaxed);
      while (!gate.load(std::memory_order_relaxed)) std::this_thread::yield();
    });
  }
  // Both workers hold a task at the gate; the other two tasks must be queued.
  while (started.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  EXPECT_EQ(pool.in_flight(), 2u);
  EXPECT_EQ(pool.queue_depth(), 2u);

  gate.store(true, std::memory_order_relaxed);
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, ShutdownWakesBlockedSubmitterToFailLoudly) {
  ThreadPool pool(1, 1);
  std::atomic<bool> gate{false};
  std::atomic<int> executed{0};
  // Occupy the single worker, then fill the queue: the next submit blocks.
  pool.submit([&] {
    while (!gate.load(std::memory_order_relaxed)) std::this_thread::yield();
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  while (pool.in_flight() != 1) std::this_thread::yield();
  pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });

  std::atomic<bool> rejected{false};
  std::thread submitter([&] {
    try {
      pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    } catch (const std::runtime_error&) {
      rejected.store(true, std::memory_order_relaxed);
    }
  });
  // Let the submitter reach its full-queue wait, then shut down concurrently:
  // it must be woken to throw (pre-PR4 the task would have been dropped on
  // the floor; a hang here is the other failure mode this test guards).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread closer([&pool] { pool.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.store(true, std::memory_order_relaxed);  // release the worker so shutdown can join
  closer.join();
  submitter.join();

  EXPECT_TRUE(rejected.load());
  EXPECT_EQ(executed.load(), 2);  // accepted work ran; rejected work did not
}

TEST(ThreadPool, ConcurrentShutdownsAllBlockUntilWorkersJoin) {
  std::atomic<int> executed{0};
  std::atomic<bool> gate{false};
  ThreadPool pool(2, 8);
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      while (!gate.load(std::memory_order_relaxed)) std::this_thread::yield();
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Two racing shutdowns. Before the join handshake fix, the one that lost
  // the race returned immediately while the winner was still joining — its
  // caller could then destroy state that tasks were actively touching. Both
  // callers must observe every accepted task completed when shutdown returns.
  std::atomic<int> returned{0};
  auto closer = [&] {
    pool.shutdown();
    EXPECT_EQ(executed.load(std::memory_order_relaxed), 4);
    returned.fetch_add(1, std::memory_order_relaxed);
  };
  std::thread a(closer);
  std::thread b(closer);
  // With the workers gated, neither shutdown can have finished joining.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(returned.load(), 0);
  gate.store(true, std::memory_order_relaxed);
  a.join();
  b.join();
  EXPECT_EQ(returned.load(), 2);
  pool.shutdown();  // still idempotent after the concurrent pair
  EXPECT_EQ(executed.load(), 4);
}

TEST(ConcurrencyHammer, ServiceProviderStoreRecordObserveTamper) {
  osn::ServiceProvider sp;
  constexpr int kIters = 40;
  run_threads([&sp](std::size_t t) {
    for (int i = 0; i < kIters; ++i) {
      const std::string id =
          sp.store_record(to_bytes("record-" + std::to_string(t) + "-" + std::to_string(i)));
      EXPECT_TRUE(sp.has_record(id));
      EXPECT_FALSE(sp.record(id).empty());
      sp.observe("hammer-" + std::to_string(t), to_bytes("observation"));
      sp.replace_record(id, to_bytes("replaced-" + std::to_string(t)));
      sp.tamper_record(id, 0, to_bytes("T"));
      (void)sp.view_contains(to_bytes("replaced-" + std::to_string(t)));
      (void)sp.record_count();
    }
  });
  EXPECT_EQ(sp.record_count(), kThreads * kIters);
  EXPECT_EQ(sp.observations().size(), kThreads * kIters);
  // Every record was tampered to start with 'T'.
  for (const auto& obs : sp.observations()) EXPECT_FALSE(obs.channel.empty());
}

TEST(ConcurrencyHammer, StorageHostStoreFetchRemove) {
  osn::StorageHost dh;
  constexpr int kIters = 40;
  std::atomic<std::size_t> removed{0};
  run_threads([&](std::size_t t) {
    std::vector<std::string> mine;
    for (int i = 0; i < kIters; ++i) {
      const Bytes blob = to_bytes("blob-" + std::to_string(t) + "-" + std::to_string(i));
      const std::string url = dh.store(blob);
      mine.push_back(url);
      EXPECT_EQ(dh.fetch(url), blob);
      EXPECT_TRUE(dh.exists(url));
      (void)dh.bytes_stored();
      (void)dh.object_count();
      if (i % 4 == 3) {
        dh.tamper(url, 1);
        dh.remove(url);
        mine.pop_back();
        removed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (const std::string& url : mine) EXPECT_TRUE(dh.exists(url));
  });
  EXPECT_EQ(dh.object_count(), kThreads * kIters - removed.load());
}

TEST(ConcurrencyHammer, SocialGraphRegisterBefriendFeed) {
  osn::SocialGraph g;
  const osn::UserId hub = g.add_user("hub");
  g.post(osn::Post{hub, "puzzle-hub", "pinned"});
  run_threads([&g, hub](std::size_t t) {
    for (int i = 0; i < 20; ++i) {
      const osn::UserId u = g.add_user("user-" + std::to_string(t) + "-" + std::to_string(i));
      g.befriend(hub, u);
      EXPECT_TRUE(g.are_friends(u, hub));
      g.post(osn::Post{u, "puzzle-" + std::to_string(u), "hi"});
      // Reader mix: feeds and profiles while other threads write. The feed
      // contains at least u's own post and the hub's (friend) post.
      EXPECT_GE(g.feed_for(u).size(), 2u);
      (void)g.friends_of(hub);
      (void)g.profile(u);
      (void)g.user_count();
    }
  });
  EXPECT_EQ(g.user_count(), 1 + kThreads * 20);
  EXPECT_EQ(g.friends_of(hub).size(), kThreads * 20);
}

class SessionConcurrencyTest : public testsupport::FanoutSessionFixture {
 protected:
  SessionConcurrencyTest()
      : FanoutSessionFixture(testsupport::toy_config("concurrency-tests"), kThreads) {}
};

TEST_F(SessionConcurrencyTest, AccessParallelMixedC1C2Batch) {
  std::vector<Session::AccessRequest> batch;
  for (std::size_t i = 0; i < 4 * kThreads; ++i) {
    Session::AccessRequest req;
    req.receiver = receivers_[i % receivers_.size()];
    req.post_id = (i % 4 == 0) ? c2_post_ : c1_post_;  // 25% heavy C2 traffic
    req.knowledge = Knowledge::full(ctx_);
    req.device = net::pc_profile();
    batch.push_back(std::move(req));
  }
  const auto results = session_.access_parallel(batch, kThreads);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].granted) << "request " << i;
    ASSERT_TRUE(results[i].success()) << "request " << i;
    EXPECT_EQ(*results[i].object,
              (i % 4 == 0) ? to_bytes("c2 object") : to_bytes("c1 object"));
    EXPECT_GT(results[i].cost.total_ms(), 0.0);
  }
}

TEST_F(SessionConcurrencyTest, AccessParallelPropagatesRequestErrors) {
  std::vector<Session::AccessRequest> batch(3);
  batch[0] = {receivers_[0], c1_post_, Knowledge::full(ctx_), net::pc_profile()};
  batch[1] = {receivers_[1], "puzzle-does-not-exist", Knowledge::full(ctx_), net::pc_profile()};
  batch[2] = {receivers_[2], c1_post_, Knowledge::full(ctx_), net::pc_profile()};
  EXPECT_THROW((void)session_.access_parallel(batch, 2), std::out_of_range);
}

TEST_F(SessionConcurrencyTest, ConcurrentAccessSharingAndRefresh) {
  // The full serving mix: readers hammer both posts while the sharer-side
  // paths (fresh shares and a §VI-C refresh of the C1 post) run against
  // them. Every access must see a coherent puzzle — granted with the right
  // plaintext, or (for refresh races) a cleanly denied attempt; never torn
  // state or a crash.
  std::atomic<int> denied{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Knowledge knows = Knowledge::full(ctx_);
      for (int i = 0; i < 6; ++i) {
        if (t == 0 && i == 3) {
          // One refresh mid-run: new M_O, new K_Z, new URL, same post id.
          session_.refresh(sharer_, c1_post_, to_bytes("c1 object v2"), ctx_,
                            net::pc_profile());
          continue;
        }
        if (t == 1) {
          session_.share_c1(sharer_, to_bytes("extra"), ctx_, 2, 4, net::pc_profile());
        }
        const std::string& post = (i % 2 == 0) ? c1_post_ : c2_post_;
        const auto result = session_.access_with_retries(receivers_[t], post, knows,
                                                          net::pc_profile(), 4);
        if (!result.success()) {
          denied.fetch_add(1);
          continue;
        }
        const Bytes& obj = *result.object;
        EXPECT_TRUE(obj == to_bytes("c1 object") || obj == to_bytes("c1 object v2") ||
                    obj == to_bytes("c2 object"));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // With full knowledge, C1/C2 grants are deterministic: nothing is denied.
  EXPECT_EQ(denied.load(), 0);
  // After the dust settles the refreshed post serves v2.
  const auto after = session_.access_with_retries(receivers_[0], c1_post_,
                                                   Knowledge::full(ctx_), net::pc_profile());
  ASSERT_TRUE(after.success());
  EXPECT_EQ(*after.object, to_bytes("c1 object v2"));
}

TEST(ConcurrencyHammer, VerifyQueueEightThreadsShareOneQueue) {
  // PR 7: eight request threads funnel their check sets through ONE
  // VerifyQueue (the Session topology). Every batch must complete with
  // exactly its own jobs, with waiters help-draining whatever mix of
  // batches is in flight.
  VerifyQueue queue(4);
  std::array<std::atomic<int>, kThreads> ran{};
  run_threads([&](std::size_t t) {
    for (int round = 0; round < 25; ++round) {
      VerifyQueue::Batch batch = queue.batch();
      const int jobs = 1 + static_cast<int>((t + round) % 7);
      for (int j = 0; j < jobs; ++j) {
        batch.add([&ran, t] { ran[t].fetch_add(1, std::memory_order_relaxed); });
      }
      batch.wait();
      // All of THIS thread's jobs so far have run once wait() returns;
      // per-thread counters make that checkable despite the shared queue.
      int expected = 0;
      for (int r = 0; r <= round; ++r) expected += 1 + static_cast<int>((t + r) % 7);
      EXPECT_EQ(ran[t].load(), expected) << "thread " << t << " round " << round;
    }
  });
  EXPECT_EQ(queue.queue_depth(), 0u);
}

TEST(ConcurrencyHammer, VerifyQueueInjectedFaultFailsOnlyItsOwnBatch) {
  // The satellite contract: a transient fault inside one batch's job must
  // surface from that batch's wait() and nowhere else. Odd threads inject a
  // throw into every third batch; even threads run clean and must never see
  // an error.
  VerifyQueue queue(4);
  std::array<std::atomic<int>, kThreads> clean_ran{};
  std::atomic<int> faults_thrown{0};
  std::atomic<int> faults_caught{0};
  run_threads([&](std::size_t t) {
    for (int round = 0; round < 20; ++round) {
      VerifyQueue::Batch batch = queue.batch();
      const bool faulty = (t % 2 == 1) && (round % 3 == 0);
      for (int j = 0; j < 4; ++j) {
        batch.add([&clean_ran, t] { clean_ran[t].fetch_add(1, std::memory_order_relaxed); });
      }
      if (faulty) {
        batch.add([&faults_thrown] {
          faults_thrown.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("transient verification fault");
        });
      }
      try {
        batch.wait();
        EXPECT_FALSE(faulty) << "thread " << t << " round " << round
                             << ": faulty batch completed cleanly";
      } catch (const std::runtime_error&) {
        EXPECT_TRUE(faulty) << "thread " << t << " round " << round
                            << ": clean batch caught a neighbour's fault";
        faults_caught.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Every injected fault was thrown, and each was caught by its own batch.
  EXPECT_EQ(faults_thrown.load(), 4 * 7);  // 4 odd threads x ceil(20/3) rounds
  EXPECT_EQ(faults_caught.load(), faults_thrown.load());
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(clean_ran[t].load(), 20 * 4) << "thread " << t;
  }
}

}  // namespace
}  // namespace sp::core
