// VerifyQueue unit semantics: batch completion, cross-batch failure
// isolation, help-draining, and the runner() adapter. The multi-thread
// hammers live in test_concurrency.cpp (TSan label) and the end-to-end
// fault-isolation load in test_chaos.cpp (chaos label).
#include "core/verify_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sp::core {
namespace {

TEST(VerifyQueue, RunsEveryJobOfABatch) {
  VerifyQueue queue(2);
  std::atomic<int> ran{0};
  VerifyQueue::Batch batch = queue.batch();
  for (int i = 0; i < 16; ++i) batch.add([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(batch.size(), 16u);
  batch.wait();
  EXPECT_EQ(ran.load(), 16);
}

TEST(VerifyQueue, EmptyBatchWaitReturnsImmediately) {
  VerifyQueue queue(1);
  VerifyQueue::Batch batch = queue.batch();
  batch.wait();  // nothing queued; must not hang
  EXPECT_EQ(batch.size(), 0u);
}

TEST(VerifyQueue, WaitRethrowsFirstJobError) {
  VerifyQueue queue(1);
  VerifyQueue::Batch batch = queue.batch();
  batch.add([] { throw std::runtime_error("injected"); });
  batch.add([] {});  // later jobs still run; first error wins
  EXPECT_THROW(batch.wait(), std::runtime_error);
}

TEST(VerifyQueue, ThrowingJobFailsOnlyItsOwnBatch) {
  VerifyQueue queue(1);
  std::atomic<int> healthy_ran{0};
  VerifyQueue::Batch bad = queue.batch();
  VerifyQueue::Batch good = queue.batch();
  bad.add([] { throw std::runtime_error("transient fault"); });
  for (int i = 0; i < 8; ++i) good.add([&healthy_ran] { healthy_ran.fetch_add(1); });
  bad.add([] { throw std::logic_error("second error, must not mask the first"); });
  // The healthy batch completes untouched by its queue-mate's faults.
  good.wait();
  EXPECT_EQ(healthy_ran.load(), 8);
  EXPECT_THROW(bad.wait(), std::runtime_error);
}

TEST(VerifyQueue, WaiterHelpDrainsWithBusyWorkers) {
  // One worker, parked on a slow job; the waiting thread must drain its own
  // batch instead of queueing behind the slowpoke.
  VerifyQueue queue(1);
  std::atomic<bool> release{false};
  VerifyQueue::Batch slow = queue.batch();
  slow.add([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  // Make sure the WORKER owns the slow job (queue drained) before adding
  // ours — otherwise our own wait() could help-drain the slow job and spin
  // on a flag only released after it returns.
  while (queue.queue_depth() != 0) std::this_thread::yield();
  std::atomic<int> ran{0};
  VerifyQueue::Batch mine = queue.batch();
  for (int i = 0; i < 4; ++i) mine.add([&ran] { ran.fetch_add(1); });
  mine.wait();  // completes while the worker is still blocked
  EXPECT_EQ(ran.load(), 4);
  release.store(true);
  slow.wait();
}

TEST(VerifyQueue, RunExecutesJobSpanAsOneBatch) {
  VerifyQueue queue(2);
  std::atomic<int> ran{0};
  std::vector<VerifyQueue::Job> jobs;
  for (int i = 0; i < 5; ++i) jobs.emplace_back([&ran] { ran.fetch_add(1); });
  queue.run(jobs);
  EXPECT_EQ(ran.load(), 5);
}

TEST(VerifyQueue, RunnerAdapterMatchesPairingRunnerShape) {
  VerifyQueue queue(2);
  const auto runner = queue.runner();
  std::atomic<int> ran{0};
  std::vector<VerifyQueue::Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.emplace_back([&ran] { ran.fetch_add(1); });
  runner(jobs);
  EXPECT_EQ(ran.load(), 3);
}

TEST(VerifyQueue, QueueDepthDrainsToZero) {
  VerifyQueue queue(2);
  VerifyQueue::Batch batch = queue.batch();
  for (int i = 0; i < 8; ++i) batch.add([] {});
  batch.wait();
  EXPECT_EQ(queue.queue_depth(), 0u);
}

TEST(VerifyQueue, MetricsRecordBatchesAndJobs) {
  auto& reg = obs::MetricsRegistry::global();
  const auto jobs_before =
      reg.counter("sp_verify_jobs_total", "Verification jobs executed through the queue").value();
  const auto batches_before =
      reg.counter("sp_verify_batches_total", "Request batches waited on").value();
  VerifyQueue queue(1);
  std::vector<VerifyQueue::Job> jobs(6, [] {});
  queue.run(jobs);
  EXPECT_EQ(reg.counter("sp_verify_jobs_total", "").value(), jobs_before + 6);
  EXPECT_EQ(reg.counter("sp_verify_batches_total", "").value(), batches_before + 1);
}

}  // namespace
}  // namespace sp::core
