// Picture-based puzzles (paper §VIII future work): image-choice questions
// reduced to the string-answer machinery, end-to-end through Construction 1.
#include "core/picture_puzzle.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::Drbg;
using crypto::to_bytes;

std::vector<Bytes> images(int n, const char* tag) {
  Drbg rng(std::string("images-") + tag);
  std::vector<Bytes> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.bytes(512));
  return out;
}

TEST(PictureQuestion, Validation) {
  const auto imgs = images(3, "v");
  EXPECT_THROW(PictureQuestion("", imgs, 0), std::invalid_argument);
  EXPECT_THROW(PictureQuestion("q", {imgs[0]}, 0), std::invalid_argument);
  EXPECT_THROW(PictureQuestion("q", imgs, 3), std::invalid_argument);
  std::vector<Bytes> dup = {imgs[0], imgs[0]};
  EXPECT_THROW(PictureQuestion("q", dup, 0), std::invalid_argument);
  std::vector<Bytes> with_empty = {imgs[0], Bytes{}};
  EXPECT_THROW(PictureQuestion("q", with_empty, 0), std::invalid_argument);
}

TEST(PictureQuestion, AnswerIsImageHash) {
  const auto imgs = images(3, "hash");
  const PictureQuestion pq("Which cake?", imgs, 1);
  const ContextPair pair = pq.to_context_pair();
  EXPECT_EQ(pair.question, "Which cake?");
  EXPECT_EQ(pair.answer, PictureQuestion::answer_for_image(imgs[1]));
  EXPECT_TRUE(pair.answer.starts_with("img:"));
}

TEST(PictureQuestion, ChooseMapsToCandidates) {
  const auto imgs = images(3, "choose");
  const PictureQuestion pq("Which cake?", imgs, 2);
  const auto [q, right] = pq.choose(2);
  const auto [q2, wrong] = pq.choose(0);
  EXPECT_EQ(q, "Which cake?");
  EXPECT_EQ(right, pq.to_context_pair().answer);
  EXPECT_NE(wrong, right);
  EXPECT_THROW(pq.choose(3), std::invalid_argument);
}

TEST(PicturePuzzle, MixedContextBuilds) {
  const PictureQuestion pq("Which cake?", images(3, "mix"), 0);
  const Context ctx = build_picture_context({pq}, {{"Who hosted?", "alice"}});
  EXPECT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx.pairs()[1].answer, "alice");
}

TEST(PicturePuzzle, EndToEndThroughConstruction1) {
  // Two picture questions + one text question, threshold 2.
  const auto cakes = images(4, "cakes");
  const auto venues = images(3, "venues");
  const PictureQuestion cake_q("Which cake was at the party?", cakes, 2);
  const PictureQuestion venue_q("Which rooftop was it?", venues, 0);
  const Context ctx =
      build_picture_context({cake_q, venue_q}, {{"Who hosted?", "Sarah"}});

  SessionConfig cfg;
  cfg.pairing_preset = ec::ParamPreset::kToy;
  cfg.seed = "picture-e2e";
  Session session(cfg);
  const auto sharer = session.register_user("sharer");
  const auto guest = session.register_user("guest");
  const auto gatecrasher = session.register_user("gatecrasher");
  session.befriend(sharer, guest);
  session.befriend(sharer, gatecrasher);

  const Bytes album = to_bytes("the album bytes");
  const auto receipt = session.share_c1(sharer, album, ctx, 2, 3, net::pc_profile());

  // The guest remembers the right cake and the right rooftop.
  Knowledge guest_knows;
  guest_knows.learn(cake_q.choose(2).first, cake_q.choose(2).second);
  guest_knows.learn(venue_q.choose(0).first, venue_q.choose(0).second);
  AccessResult r1;
  for (int attempt = 0; attempt < 10 && !r1.success(); ++attempt) {
    r1 = session.access(guest, receipt.post_id, guest_knows, net::pc_profile());
  }
  ASSERT_TRUE(r1.success());
  EXPECT_EQ(*r1.object, album);

  // The gatecrasher picks wrong images.
  Knowledge crash_knows;
  crash_knows.learn(cake_q.choose(0).first, cake_q.choose(0).second);
  crash_knows.learn(venue_q.choose(1).first, venue_q.choose(1).second);
  const auto r2 = session.access(gatecrasher, receipt.post_id, crash_knows, net::pc_profile());
  EXPECT_FALSE(r2.granted);
}

TEST(PicturePuzzle, WorksThroughConstruction2) {
  const auto cakes = images(3, "c2-cakes");
  const PictureQuestion cake_q("Which cake?", cakes, 1);
  const Context ctx = build_picture_context({cake_q}, {{"Who hosted?", "Sarah"}});

  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  const Construction2 c2(curve);
  Drbg rng("picture-c2");
  const auto up = c2.upload(to_bytes("obj"), ctx, 2, rng);

  Knowledge knows;
  knows.learn(cake_q.choose(1).first, cake_q.choose(1).second);
  knows.learn("Who hosted?", "sarah");
  const auto got = c2.access(up.ciphertext, up.public_key, up.master_key, knows, rng);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("obj"));
}

}  // namespace
}  // namespace sp::core
