// Negative-path coverage for every ServeError kind at both constructions:
// each fault is forced with probability 1 in its op class, and the tests
// assert the error is surfaced on the result (never a silent empty object)
// and that the ledger still carries what the failed attempts cost. The
// statistical mixed-fault load lives in test_chaos.cpp.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::to_bytes;

SessionConfig faulted_config(const std::string& label, std::optional<net::FaultPlan> plan,
                             net::RetryPolicy retry = {}) {
  SessionConfig cfg = testsupport::toy_config(label);
  cfg.faults = std::move(plan);
  cfg.retry = retry;
  return cfg;
}

/// A two-user session with one C1 and one C2 post, under a caller-chosen
/// fault plan. k = 2 of the party context's 4 questions for both posts.
struct FaultRig {
  explicit FaultRig(const std::string& label, std::optional<net::FaultPlan> plan,
                    net::RetryPolicy retry = {})
      : session(faulted_config(label, std::move(plan), retry)),
        sharer(session.register_user("sharer")),
        receiver(session.register_user("receiver")),
        ctx(testsupport::party_context()) {
    session.befriend(sharer, receiver);
    c1_post = session.share_c1(sharer, to_bytes("c1 object"), ctx, 2, 4, net::pc_profile())
                  .post_id;
    c2_post = session.share_c2(sharer, to_bytes("c2 object"), ctx, 2, net::pc_profile())
                  .post_id;
  }

  Session session;
  osn::UserId sharer;
  osn::UserId receiver;
  Context ctx;
  std::string c1_post;
  std::string c2_post;
};

net::FaultPlan only(double net::FaultPlan::* prob) {
  net::FaultPlan plan;
  plan.*prob = 1.0;
  return plan;
}

// ---------------------------------------------------------------- timeout

TEST(ServeErrorPaths, TimeoutSurfacesAndChargesWaitNotNetwork) {
  FaultRig rig("serve-err-timeout", only(&net::FaultPlan::p_transfer_timeout));
  for (const std::string& post : {rig.c1_post, rig.c2_post}) {
    const auto result =
        rig.session.access(rig.receiver, post, Knowledge::full(rig.ctx), net::pc_profile());
    EXPECT_FALSE(result.granted);
    EXPECT_FALSE(result.object.has_value());
    EXPECT_EQ(result.error, net::ServeError::kTimeout);
    // The very first exchange (challenge download) is lost: the wasted wait
    // is charged, but no payload moved and no modeled network delay accrued.
    EXPECT_DOUBLE_EQ(result.cost.wait_ms(), 400.0);
    EXPECT_DOUBLE_EQ(result.cost.network_ms(), 0.0);
    EXPECT_EQ(result.cost.bytes_transferred(), 0u);
  }
}

TEST(ServeErrorPaths, RetriesExhaustAttemptsAndMergeEveryAttemptsCost) {
  FaultRig rig("serve-err-timeout-retry", only(&net::FaultPlan::p_transfer_timeout));
  const auto result = rig.session.access_with_retries(rig.receiver, rig.c1_post,
                                                      Knowledge::full(rig.ctx), net::pc_profile());
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.error, net::ServeError::kTimeout);
  EXPECT_EQ(result.attempts, net::RetryPolicy{}.max_attempts);
  // 4 lost exchanges at 400 ms each plus three backoffs (25/50/100 ms, each
  // jittered by at most +25%).
  EXPECT_GE(result.cost.wait_ms(), 4 * 400.0 + 175.0);
  EXPECT_LE(result.cost.wait_ms(), 4 * 400.0 + 175.0 * 1.25 + 1e-9);
}

TEST(ServeErrorPaths, DeadlineExceededIsTerminalAndCounted) {
  net::RetryPolicy tight;
  tight.deadline_ms = 100.0;  // below even one attempt's 400 ms wasted wait
  FaultRig rig("serve-err-deadline", only(&net::FaultPlan::p_transfer_timeout), tight);
  auto& deadline_total =
      obs::MetricsRegistry::global().counter("sp_deadline_exceeded_total");
  const auto deadline0 = deadline_total.value();

  const auto result = rig.session.access_with_retries(rig.receiver, rig.c2_post,
                                                      Knowledge::full(rig.ctx), net::pc_profile());
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.error, net::ServeError::kDeadlineExceeded);
  EXPECT_FALSE(net::is_transient(net::ServeError::kDeadlineExceeded));
  EXPECT_EQ(result.attempts, 1);  // budget died before a second attempt
  EXPECT_EQ(deadline_total.value(), deadline0 + 1);
}

// ---------------------------------------------------------------- SP errors

TEST(ServeErrorPaths, SpOutageSurfacesAndStillChargesTheUpload) {
  FaultRig rig("serve-err-sp", only(&net::FaultPlan::p_sp_error));
  for (const std::string& post : {rig.c1_post, rig.c2_post}) {
    const auto result =
        rig.session.access(rig.receiver, post, Knowledge::full(rig.ctx), net::pc_profile());
    EXPECT_FALSE(result.granted);
    EXPECT_FALSE(result.object.has_value());
    EXPECT_EQ(result.error, net::ServeError::kSpUnavailable);
    // The receiver downloaded the challenge and uploaded a response into the
    // void before learning the SP was down — both are real paid traffic.
    EXPECT_GT(result.cost.network_ms(), 0.0);
    EXPECT_GT(result.cost.bytes_transferred(), 0u);
  }
}

TEST(ServeErrorPaths, PartialReplyBelowThresholdIsUnserviceable) {
  net::FaultPlan plan = only(&net::FaultPlan::p_sp_partial);
  plan.partial_drop_frac = 1.0;  // the SP reply loses every granted entry
  FaultRig rig("serve-err-partial-all", plan);
  const auto result = rig.session.access(rig.receiver, rig.c1_post, Knowledge::full(rig.ctx),
                                         net::pc_profile());
  EXPECT_FALSE(result.granted);
  EXPECT_FALSE(result.object.has_value());
  EXPECT_EQ(result.error, net::ServeError::kSpUnavailable);
}

TEST(ServeErrorPaths, PartialReplyAboveThresholdDegradesGracefully) {
  net::FaultPlan plan = only(&net::FaultPlan::p_sp_partial);
  plan.partial_drop_frac = 0.01;  // clamps to exactly one lost entry
  net::RetryPolicy patient;
  patient.max_attempts = 8;  // a 2-question challenge minus one entry retries
  FaultRig rig("serve-err-partial-one", plan, patient);
  const auto result = rig.session.access_with_retries(rig.receiver, rig.c1_post,
                                                      Knowledge::full(rig.ctx), net::pc_profile());
  // Access only needs k = 2 of the surviving entries: losing one from a
  // 3-or-4-question challenge still reconstructs and decrypts.
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, to_bytes("c1 object"));
  EXPECT_FALSE(result.error.has_value());
}

// ---------------------------------------------------------------- DH faults

TEST(ServeErrorPaths, DhMissSurfacesAfterGrant) {
  FaultRig rig("serve-err-dh-miss", only(&net::FaultPlan::p_dh_miss));
  for (const std::string& post : {rig.c1_post, rig.c2_post}) {
    const auto result =
        rig.session.access(rig.receiver, post, Knowledge::full(rig.ctx), net::pc_profile());
    // The SP granted — the failure is purely the storage host's.
    EXPECT_TRUE(result.granted);
    EXPECT_FALSE(result.success());
    EXPECT_FALSE(result.object.has_value());
    EXPECT_EQ(result.error, net::ServeError::kDhMiss);
  }
}

TEST(ServeErrorPaths, DhMissRetriesStillChargeEveryAttempt) {
  FaultRig rig("serve-err-dh-miss-retry", only(&net::FaultPlan::p_dh_miss));
  const auto single = rig.session.access(rig.receiver, rig.c1_post, Knowledge::full(rig.ctx),
                                         net::pc_profile());
  const auto retried = rig.session.access_with_retries(
      rig.receiver, rig.c1_post, Knowledge::full(rig.ctx), net::pc_profile());
  EXPECT_EQ(retried.error, net::ServeError::kDhMiss);
  EXPECT_EQ(retried.attempts, net::RetryPolicy{}.max_attempts);
  // Four attempts' worth of real traffic plus backoff waits. (Byte counts
  // vary per attempt with the drawn challenge size, so the bound is loose.)
  EXPECT_GT(retried.cost.network_ms(), 2.5 * single.cost.network_ms());
  EXPECT_GT(retried.cost.bytes_transferred(), single.cost.bytes_transferred());
  EXPECT_GT(retried.cost.wait_ms(), 0.0);
}

TEST(ServeErrorPaths, CorruptedBlobNeverDecryptsSilently) {
  FaultRig rig("serve-err-corrupt", only(&net::FaultPlan::p_dh_corrupt));
  for (const std::string& post : {rig.c1_post, rig.c2_post}) {
    const auto result =
        rig.session.access(rig.receiver, post, Knowledge::full(rig.ctx), net::pc_profile());
    EXPECT_TRUE(result.granted);  // grant happened; delivery was poisoned
    EXPECT_FALSE(result.object.has_value());
    EXPECT_EQ(result.error, net::ServeError::kCorruptedBlob);
  }
}

// ---------------------------------------------------------------- denials

TEST(ServeErrorPaths, CleanDenialCarriesNoError) {
  // No fault plan at all: a denial for lack of knowledge is not a fault and
  // must not look like one.
  FaultRig rig("serve-err-clean", std::nullopt);
  crypto::Drbg rng("serve-err-clean-knowledge");
  const Knowledge thin = Knowledge::partial(rig.ctx, 1, rng);  // k - 1 correct
  for (const std::string& post : {rig.c1_post, rig.c2_post}) {
    const auto result = rig.session.access_with_retries(rig.receiver, post, thin,
                                                        net::pc_profile(), /*max_draws=*/3);
    EXPECT_FALSE(result.granted);
    EXPECT_FALSE(result.object.has_value());
    EXPECT_FALSE(result.error.has_value());
  }
}

}  // namespace
}  // namespace sp::core
