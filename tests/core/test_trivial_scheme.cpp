// The §I trivial all-answers baseline: exact-knowledge receivers decrypt,
// everyone else fails — quantifying why the threshold constructions exist.
#include "core/trivial_scheme.hpp"

#include <gtest/gtest.h>

namespace sp::core {
namespace {

using crypto::Drbg;
using crypto::to_bytes;

Context ctx4() {
  return Context({{"q1", "a1"}, {"q2", "a2"}, {"q3", "a3"}, {"q4", "a4"}});
}

TEST(TrivialScheme, FullKnowledgeDecrypts) {
  Drbg rng("trivial");
  const auto object = to_bytes("the object");
  const auto shared = TrivialScheme::share(object, ctx4(), rng);
  const auto got = TrivialScheme::access(shared, Knowledge::full(ctx4()));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, object);
}

TEST(TrivialScheme, NormalizationApplies) {
  Drbg rng("trivial-norm");
  Context ctx(std::vector<ContextPair>{{"q", "Pizza"}, {"r", "PARIS"}});
  const auto shared = TrivialScheme::share(to_bytes("x"), ctx, rng);
  Knowledge k;
  k.learn("q", "  pizza ");
  k.learn("r", "paris");
  EXPECT_TRUE(TrivialScheme::access(shared, k).has_value());
}

TEST(TrivialScheme, AnySingleWrongAnswerFails) {
  Drbg rng("trivial-wrong");
  const auto shared = TrivialScheme::share(to_bytes("x"), ctx4(), rng);
  for (int wrong = 0; wrong < 4; ++wrong) {
    Knowledge k = Knowledge::full(ctx4());
    k.learn("q" + std::to_string(wrong + 1), "nope");
    EXPECT_FALSE(TrivialScheme::access(shared, k).has_value()) << wrong;
  }
}

TEST(TrivialScheme, MissingAnswerFails) {
  Drbg rng("trivial-missing");
  const auto shared = TrivialScheme::share(to_bytes("x"), ctx4(), rng);
  Knowledge k;
  k.learn("q1", "a1");
  k.learn("q2", "a2");
  k.learn("q3", "a3");  // three of four — no partial credit
  EXPECT_FALSE(TrivialScheme::access(shared, k).has_value());
}

TEST(TrivialScheme, EmptyContextRejected) {
  Drbg rng("trivial-empty");
  EXPECT_THROW(TrivialScheme::share(to_bytes("x"), Context{}, rng), std::invalid_argument);
}

TEST(TrivialScheme, PartialKnowledgeSuccessRateIsAllOrNothing) {
  // The measurement behind bench_baseline_success: with N = 4, success
  // probability is 1 iff correct == 4, else 0 — versus C1/C2's threshold.
  Drbg rng("trivial-rate");
  const auto shared = TrivialScheme::share(to_bytes("x"), ctx4(), rng);
  for (std::size_t correct = 0; correct <= 4; ++correct) {
    int successes = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const Knowledge k = Knowledge::partial(ctx4(), correct, rng);
      successes += TrivialScheme::access(shared, k).has_value() ? 1 : 0;
    }
    EXPECT_EQ(successes, correct == 4 ? 10 : 0) << "correct=" << correct;
  }
}

TEST(TrivialScheme, WireSizeAccounts) {
  Drbg rng("trivial-size");
  const auto shared = TrivialScheme::share(to_bytes("x"), ctx4(), rng);
  EXPECT_GT(shared.wire_size(), shared.ciphertext.size());
}

}  // namespace
}  // namespace sp::core
