// Executable renditions of the paper's §VI security analysis:
//  - semi-honest SP never sees the object plaintext or context answers
//  - semi-honest DH never sees the object plaintext or context answers
//  - collusion among below-threshold users fails without SP help
//  - the documented weakness (malicious SP leaking per-answer verification
//    bits to colluding users) is reproduced as a regression test
//  - C2's perturbed tree hides answers from both hosts
#include <gtest/gtest.h>

#include "core/session.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

// Deliberately distinctive strings so a substring scan over host views is
// meaningful.
const char* kSecretObject = "OBJECT-PLAINTEXT-7f3a-THE-PARTY-PHOTO";

Context secret_context() {
  return Context({{"Where did we meet?", "ANSWER-PARIS-91c2"},
                  {"What did we eat?", "ANSWER-PIZZA-55e1"},
                  {"Who hosted?", "ANSWER-ALICE-c0de"},
                  {"Which month?", "ANSWER-JUNE-b00b"}});
}

SessionConfig toy_config(const std::string& seed) {
  SessionConfig cfg;
  cfg.pairing_preset = ec::ParamPreset::kToy;
  cfg.seed = seed;
  return cfg;
}

/// Normalized answer bytes as they'd appear in any leaked buffer.
Bytes norm(const std::string& answer) {
  return to_bytes(Context::normalize_answer(answer));
}

class SurveillanceTest : public ::testing::Test {
 protected:
  SurveillanceTest() : session_(toy_config("security-tests")) {
    sharer_ = session_.register_user("sharer");
    friend_ = session_.register_user("friend");
    session_.befriend(sharer_, friend_);
  }

  /// Scans the DH's complete view for a needle.
  bool dh_sees(std::span<const std::uint8_t> needle) {
    for (const auto& [url, blob] : session_.storage_host().observed_blobs()) {
      if (needle.size() <= blob.size() &&
          std::search(blob.begin(), blob.end(), needle.begin(), needle.end()) != blob.end()) {
        return true;
      }
    }
    return false;
  }

  Session session_;
  osn::UserId sharer_ = 0, friend_ = 0;
};

TEST_F(SurveillanceTest, C1SpViewContainsNoPlaintextOrAnswers) {
  const Context ctx = secret_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes(kSecretObject), ctx, 2, 4, net::pc_profile());
  // Run a full successful access so the SP also observes receiver traffic.
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());

  auto& sp = session_.service_provider();
  EXPECT_FALSE(sp.view_contains(to_bytes(kSecretObject)));
  for (const auto& p : ctx.pairs()) {
    EXPECT_FALSE(sp.view_contains(to_bytes(p.answer))) << p.answer;
    EXPECT_FALSE(sp.view_contains(norm(p.answer))) << p.answer;
    // Questions ARE visible to the SP by design (it displays them).
    EXPECT_TRUE(sp.view_contains(to_bytes(p.question))) << p.question;
  }
}

TEST_F(SurveillanceTest, C1DhViewContainsNoPlaintextOrAnswers) {
  const Context ctx = secret_context();
  session_.share_c1(sharer_, to_bytes(kSecretObject), ctx, 2, 4, net::pc_profile());
  EXPECT_FALSE(dh_sees(to_bytes(kSecretObject)));
  for (const auto& p : ctx.pairs()) {
    EXPECT_FALSE(dh_sees(to_bytes(p.answer)));
    EXPECT_FALSE(dh_sees(norm(p.answer)));
    EXPECT_FALSE(dh_sees(to_bytes(p.question)));  // DH sees only ciphertext
  }
}

TEST_F(SurveillanceTest, C2SpViewContainsNoPlaintextOrAnswers) {
  const Context ctx = secret_context();
  const auto receipt =
      session_.share_c2(sharer_, to_bytes(kSecretObject), ctx, 2, net::pc_profile());
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());

  auto& sp = session_.service_provider();
  EXPECT_FALSE(sp.view_contains(to_bytes(kSecretObject)));
  for (const auto& p : ctx.pairs()) {
    EXPECT_FALSE(sp.view_contains(to_bytes(p.answer)));
    EXPECT_FALSE(sp.view_contains(norm(p.answer)));
    EXPECT_TRUE(sp.view_contains(to_bytes(p.question)));
  }
}

TEST_F(SurveillanceTest, C2DhViewContainsNoPlaintextOrAnswers) {
  const Context ctx = secret_context();
  session_.share_c2(sharer_, to_bytes(kSecretObject), ctx, 2, net::pc_profile());
  EXPECT_FALSE(dh_sees(to_bytes(kSecretObject)));
  for (const auto& p : ctx.pairs()) {
    EXPECT_FALSE(dh_sees(norm(p.answer)));
  }
  // In C2 the DH stores CT' whose perturbed tree includes questions — the
  // paper accepts this (questions are public); answers stay hidden.
}

TEST_F(SurveillanceTest, SpCannotDecryptFromItsView) {
  // The strongest semi-honest SP: it holds the puzzle record AND the DH blob
  // (co-located deployment). Without context answers, Shamir's
  // information-theoretic guarantee keeps M_O unreachable; operationally,
  // an SP replaying the protocol with empty knowledge gets nothing.
  const Context ctx = secret_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes(kSecretObject), ctx, 2, 4, net::pc_profile());

  // SP "becomes a receiver" with no knowledge (it knows all hashes, but
  // hashes don't answer the puzzle).
  session_.befriend(session_.register_user("sp-as-user"), sharer_);
  const auto sp_user = session_.graph().user_count();  // last registered id
  const auto result =
      session_.access(sp_user, receipt.post_id, Knowledge{}, net::pc_profile());
  EXPECT_FALSE(result.granted);
}

TEST_F(SurveillanceTest, BelowThresholdUsersCannotCombineWithoutSp) {
  // §VI-C: users in S_T − R_O colluding among themselves. Two friends each
  // knowing 1 answer (k = 2). Verify tells them nothing (no grant), so
  // pooling their knowledge *through the protocol* still fails unless they
  // literally merge knowledge — which the model forbids for distinct
  // partial-context users colluding via the SP's responses alone.
  const Context ctx = secret_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes(kSecretObject), ctx, 2, 4, net::pc_profile());

  Knowledge only_first;
  only_first.learn(ctx.pairs()[0].question, ctx.pairs()[0].answer);
  Knowledge only_second;
  only_second.learn(ctx.pairs()[1].question, ctx.pairs()[1].answer);

  const auto r1 = session_.access(friend_, receipt.post_id, only_first, net::pc_profile());
  EXPECT_FALSE(r1.granted);  // each alone is denied — and learns nothing

  const auto u2 = session_.register_user("friend2");
  session_.befriend(sharer_, u2);
  const auto r2 = session_.access(u2, receipt.post_id, only_second, net::pc_profile());
  EXPECT_FALSE(r2.granted);

  // The documented weakness (§VI-C): if a MALICIOUS SP leaks which
  // individual hashes verified, the two colluders can pool correct answers
  // and then satisfy the threshold. We reproduce that explicitly:
  Knowledge pooled;
  pooled.learn(ctx.pairs()[0].question, ctx.pairs()[0].answer);
  pooled.learn(ctx.pairs()[1].question, ctx.pairs()[1].answer);
  // DisplayPuzzle shows a random r-subset of questions; retry until a draw
  // includes both known questions (each access is a fresh draw).
  bool pooled_succeeded = false;
  for (int attempt = 0; attempt < 30 && !pooled_succeeded; ++attempt) {
    pooled_succeeded =
        session_.access(friend_, receipt.post_id, pooled, net::pc_profile()).success();
  }
  EXPECT_TRUE(pooled_succeeded);  // the scheme is NOT secure against this — by design
}

// Regression for the unblinded-share leak: Construction 1 blinds each Shamir
// share by XOR-cycling it with the normalized answer, and xor_cycle with an
// empty key is the identity. Before the fix, an answer of "   " normalized
// to "" and the SP's public puzzle record carried that share in cleartext —
// handing the semi-honest SP one free share toward M_O.
TEST_F(SurveillanceTest, WhitespaceAnswerIsRejectedBeforeItCanLeakAShare) {
  // Pre-fix both of these constructed successfully (the test fails there).
  EXPECT_THROW(Context({{"Where did we meet?", "ANSWER-PARIS-91c2"}, {"Trick question?", "   "}}),
               std::invalid_argument);
  Context ctx;
  ctx.add("Where did we meet?", "ANSWER-PARIS-91c2");
  EXPECT_THROW(ctx.add("Trick question?", " \t\n "), std::invalid_argument);

  // Nothing reached the hosts while the poisoned context was being rejected.
  EXPECT_EQ(session_.service_provider().record_count(), 0u);
  EXPECT_EQ(session_.storage_host().object_count(), 0u);
}

TEST_F(SurveillanceTest, SpViewContainsSharesOnlyInBlindedForm) {
  // For a valid share, reconstruct each entry's UNBLINDED share wire the way
  // a knowledgeable receiver does (blinded ⊕ normalized answer) and scan the
  // SP's complete view for it: it must appear nowhere — the record holds
  // only the blinded form. Pre-fix, an empty-normalized answer made blinded
  // == unblinded and this scan would find the raw share.
  const Context ctx = secret_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes(kSecretObject), ctx, 2, 4, net::pc_profile());

  const Puzzle stored = Puzzle::deserialize(session_.service_provider().record(receipt.post_id));
  ASSERT_EQ(stored.entries.size(), ctx.size());
  for (std::size_t i = 0; i < stored.entries.size(); ++i) {
    const auto answer = ctx.answer_of(stored.entries[i].question);
    ASSERT_TRUE(answer.has_value());
    const Bytes raw_share = crypto::xor_cycle(stored.entries[i].blinded_share, norm(*answer));
    EXPECT_NE(raw_share, stored.entries[i].blinded_share) << "entry " << i << " is unblinded";
    EXPECT_FALSE(session_.service_provider().view_contains(raw_share))
        << "unblinded share of entry " << i << " visible to the SP";
  }
}

TEST_F(SurveillanceTest, EncryptedObjectIsHighEntropy) {
  // Sanity: a highly redundant plaintext leaves no statistical fingerprint
  // in the stored ciphertext (quick chi-square-ish check on byte counts).
  const Context ctx = secret_context();
  const Bytes redundant(32 * 1024, 0x41);  // 32 KB of 'A'
  session_.share_c1(sharer_, redundant, ctx, 2, 4, net::pc_profile());
  ASSERT_EQ(session_.storage_host().object_count(), 1u);
  // observed_blobs() is a point-in-time snapshot — copy the blob out.
  const Bytes blob = session_.storage_host().observed_blobs().begin()->second;
  std::array<std::size_t, 256> counts{};
  for (std::uint8_t b : blob) ++counts[b];
  const double expect = static_cast<double>(blob.size()) / 256.0;
  for (std::size_t v = 0; v < 256; ++v) {
    EXPECT_LT(counts[v], expect * 2.0) << "byte value " << v << " over-represented";
  }
}

}  // namespace
}  // namespace sp::core
