// Construction 1 protocol-level tests: every subroutine of paper §V-A, the
// happy path, below-threshold failure, wrong answers, and DoS detection.
#include "core/construction1.hpp"

#include <gtest/gtest.h>

#include "ec/params.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::Drbg;
using crypto::to_bytes;

Context party_context() {
  return Context({{"Where did we meet?", "Paris"},
                  {"What did we eat?", "pizza"},
                  {"Who hosted?", "Alice"},
                  {"Which month?", "June"},
                  {"What did we drink?", "mojito"}});
}

class Construction1Test : public ::testing::Test {
 protected:
  Construction1Test()
      : curve_(ec::preset_params(ec::ParamPreset::kToy)),
        c1_(curve_.fp(), curve_),
        schnorr_(curve_, curve_.hash_to_group(to_bytes("sp-schnorr-g"))),
        rng_("c1-tests"),
        keys_(schnorr_.keygen(rng_)) {}

  /// Runs Upload and patches in a fake DH URL, as the session layer would.
  Construction1::UploadResult do_upload(const Context& ctx, std::size_t k, std::size_t n,
                                        std::span<const std::uint8_t> object) {
    auto result = c1_.upload(object, ctx, k, n, keys_, rng_);
    result.puzzle.url = "dh://objects/test";
    c1_.sign_puzzle(result.puzzle, keys_);
    return result;
  }

  /// Full receiver flow against the given knowledge; returns the plaintext.
  std::optional<Bytes> run_receiver(const Construction1::UploadResult& up,
                                    const Knowledge& knowledge) {
    const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
    const auto response = Construction1::answer_puzzle(challenge, knowledge);
    const auto reply = Construction1::verify(up.puzzle, challenge, response.hashes);
    return c1_.access(up.puzzle, challenge, reply, knowledge, up.encrypted_object);
  }

  ec::Curve curve_;
  Construction1 c1_;
  sig::Schnorr schnorr_;
  Drbg rng_;
  sig::KeyPair keys_;
};

TEST_F(Construction1Test, UploadBuildsWellFormedPuzzle) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("the secret photo");
  const auto up = do_upload(ctx, 2, 4, object);

  EXPECT_EQ(up.puzzle.n(), 4u);
  EXPECT_EQ(up.puzzle.threshold, 2u);
  EXPECT_EQ(up.puzzle.puzzle_key.size(), 16u);
  EXPECT_FALSE(up.encrypted_object.empty());
  EXPECT_NE(up.encrypted_object, object);
  for (const auto& e : up.puzzle.entries) {
    EXPECT_FALSE(e.question.empty());
    EXPECT_EQ(e.answer_hash.size(), 32u);
    EXPECT_FALSE(e.blinded_share.empty());
  }
  EXPECT_TRUE(c1_.verify_puzzle_signature(up.puzzle));
}

TEST_F(Construction1Test, UploadParameterValidation) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("x");
  EXPECT_THROW(c1_.upload(object, ctx, 0, 3, keys_, rng_), std::invalid_argument);
  EXPECT_THROW(c1_.upload(object, ctx, 4, 3, keys_, rng_), std::invalid_argument);
  EXPECT_THROW(c1_.upload(object, ctx, 2, 6, keys_, rng_), std::invalid_argument);  // n > N
  EXPECT_THROW(c1_.upload(object, ctx, 1, 0, keys_, rng_), std::invalid_argument);
}

TEST_F(Construction1Test, EndToEndWithFullKnowledge) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("a 100 character message body matching the paper's workload!");
  const auto up = do_upload(ctx, 3, 5, object);
  const auto got = run_receiver(up, Knowledge::full(ctx));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, object);
}

TEST_F(Construction1Test, EndToEndWithExactThresholdKnowledge) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("payload");
  const auto up = do_upload(ctx, 2, 5, object);
  Drbg krng("exact-k");
  for (int trial = 0; trial < 10; ++trial) {
    const Knowledge k = Knowledge::partial(ctx, 2, krng);
    const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
    const auto response = Construction1::answer_puzzle(challenge, k);
    const auto reply = Construction1::verify(up.puzzle, challenge, response.hashes);
    if (!reply.granted) {
      // The 2 known answers may not all be among the r displayed questions;
      // that is correct protocol behaviour, not a failure.
      continue;
    }
    const auto got = c1_.access(up.puzzle, challenge, reply, k, up.encrypted_object);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, object);
  }
}

TEST_F(Construction1Test, BelowThresholdDeniedByVerify) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 3, 5, to_bytes("secret"));
  Drbg krng("below-k");
  for (int trial = 0; trial < 10; ++trial) {
    const Knowledge k = Knowledge::partial(ctx, 2, krng);  // 2 < 3
    const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
    const auto response = Construction1::answer_puzzle(challenge, k);
    const auto reply = Construction1::verify(up.puzzle, challenge, response.hashes);
    EXPECT_FALSE(reply.granted);
    EXPECT_TRUE(reply.shares.empty());  // SP "does not send anything"
    EXPECT_TRUE(reply.url.empty());
  }
}

TEST_F(Construction1Test, ZeroKnowledgeDenied) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 1, 5, to_bytes("secret"));
  Drbg krng("zero-k");
  const Knowledge k = Knowledge::partial(ctx, 0, krng);  // all answers wrong
  const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
  const auto response = Construction1::answer_puzzle(challenge, k);
  const auto reply = Construction1::verify(up.puzzle, challenge, response.hashes);
  EXPECT_FALSE(reply.granted);
}

TEST_F(Construction1Test, DisplayPuzzleShowsBetweenKAndNQuestions) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  std::set<std::size_t> sizes;
  for (int i = 0; i < 50; ++i) {
    const auto ch = Construction1::display_puzzle(up.puzzle, rng_);
    EXPECT_GE(ch.questions.size(), 2u);
    EXPECT_LE(ch.questions.size(), 5u);
    EXPECT_EQ(ch.questions.size(), ch.indices.size());
    sizes.insert(ch.questions.size());
    // Indices are distinct and in range.
    std::set<std::size_t> uniq(ch.indices.begin(), ch.indices.end());
    EXPECT_EQ(uniq.size(), ch.indices.size());
    for (std::size_t idx : ch.indices) EXPECT_LT(idx, 5u);
  }
  EXPECT_GT(sizes.size(), 1u);  // r actually varies
}

TEST_F(Construction1Test, AnswerPuzzleAlwaysFullLength) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
  Knowledge sparse;  // knows nothing
  const auto response = Construction1::answer_puzzle(challenge, sparse);
  EXPECT_EQ(response.hashes.size(), challenge.questions.size());
  for (const auto& h : response.hashes) EXPECT_EQ(h.size(), 32u);
}

TEST_F(Construction1Test, VerifyRejectsLengthMismatch) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  const auto challenge = Construction1::display_puzzle(up.puzzle, rng_);
  std::vector<Bytes> short_response{Bytes(32, 0)};
  EXPECT_THROW(Construction1::verify(up.puzzle, challenge, short_response),
               std::invalid_argument);
}

TEST_F(Construction1Test, TamperedObjectDetected) {
  // Malicious DH (paper §VI-B): flipping ciphertext bits must not yield a
  // wrong plaintext silently.
  const Context ctx = party_context();
  auto up = do_upload(ctx, 2, 5, to_bytes("valuable object"));
  up.encrypted_object[up.encrypted_object.size() / 2] ^= 0x01;
  const auto got = run_receiver(up, Knowledge::full(ctx));
  EXPECT_FALSE(got.has_value());
}

TEST_F(Construction1Test, TamperedPuzzleKeyBreaksSignature) {
  // Malicious SP modifies K_Z (paper §VI-A): receivers detect it via the
  // sharer's signature.
  const Context ctx = party_context();
  auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  EXPECT_TRUE(c1_.verify_puzzle_signature(up.puzzle));
  up.puzzle.puzzle_key[0] ^= 0x01;
  EXPECT_FALSE(c1_.verify_puzzle_signature(up.puzzle));
}

TEST_F(Construction1Test, TamperedUrlBreaksSignature) {
  const Context ctx = party_context();
  auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  up.puzzle.url = "dh://objects/evil";
  EXPECT_FALSE(c1_.verify_puzzle_signature(up.puzzle));
}

TEST_F(Construction1Test, SignatureFromWrongSharerRejected) {
  const Context ctx = party_context();
  auto up = do_upload(ctx, 2, 5, to_bytes("x"));
  const sig::KeyPair mallory = schnorr_.keygen(rng_);
  c1_.sign_puzzle(up.puzzle, mallory);
  // Signature verifies against Mallory's embedded key...
  EXPECT_TRUE(c1_.verify_puzzle_signature(up.puzzle));
  // ...but a receiver comparing against the sharer's known key sees the swap.
  EXPECT_NE(up.puzzle.sharer_public_key, schnorr_.serialize_public(keys_.public_key));
}

TEST_F(Construction1Test, PuzzleSerializationRoundTrip) {
  const Context ctx = party_context();
  const auto up = do_upload(ctx, 2, 4, to_bytes("x"));
  const Puzzle back = Puzzle::deserialize(up.puzzle.serialize());
  EXPECT_EQ(back, up.puzzle);
  EXPECT_TRUE(c1_.verify_puzzle_signature(back));
}

TEST_F(Construction1Test, PuzzleDeserializeRejectsGarbage) {
  EXPECT_THROW(Puzzle::deserialize(Bytes{1, 2, 3}), std::invalid_argument);
  auto wire = do_upload(party_context(), 1, 2, to_bytes("x")).puzzle.serialize();
  wire.push_back(0);
  EXPECT_THROW(Puzzle::deserialize(wire), std::invalid_argument);
}

TEST_F(Construction1Test, AnswerHashDependsOnKeyAndAnswer) {
  const Bytes key1(16, 1), key2(16, 2);
  EXPECT_EQ(Construction1::answer_hash("pizza", key1), Construction1::answer_hash("Pizza ", key1));
  EXPECT_NE(Construction1::answer_hash("pizza", key1), Construction1::answer_hash("pasta", key1));
  EXPECT_NE(Construction1::answer_hash("pizza", key1), Construction1::answer_hash("pizza", key2));
}

TEST_F(Construction1Test, LargeBinaryObjectRoundTrips) {
  // Non-textual data support (paper future work): a 100 KB synthetic photo.
  const Context ctx = party_context();
  Drbg blob_rng("photo");
  const Bytes photo = blob_rng.bytes(100 * 1024);
  const auto up = do_upload(ctx, 2, 5, photo);
  const auto got = run_receiver(up, Knowledge::full(ctx));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, photo);
}

// Sweep (k, n) over the paper's operational range.
class Construction1Sweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Construction1Sweep, ThresholdBoundaryHolds) {
  const auto [k, n] = GetParam();
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  Construction1 c1(curve.fp(), curve);
  sig::Schnorr schnorr(curve, curve.hash_to_group(to_bytes("sp-schnorr-g")));
  Drbg rng("c1-sweep");
  const sig::KeyPair keys = schnorr.keygen(rng);

  Context ctx;
  for (std::size_t i = 0; i < n; ++i) {
    ctx.add("q" + std::to_string(i), "answer" + std::to_string(i));
  }
  const crypto::Bytes object = to_bytes("obj");
  auto up = c1.upload(object, ctx, k, n, keys, rng);
  up.puzzle.url = "dh://objects/sweep";
  c1.sign_puzzle(up.puzzle, keys);

  // Knowledge of exactly k answers: must succeed whenever Verify grants.
  const Knowledge enough = Knowledge::partial(ctx, k, rng);
  bool any_grant = false;
  for (int trial = 0; trial < 20 && !any_grant; ++trial) {
    const auto ch = Construction1::display_puzzle(up.puzzle, rng);
    const auto resp = Construction1::answer_puzzle(ch, enough);
    const auto reply = Construction1::verify(up.puzzle, ch, resp.hashes);
    if (reply.granted) {
      any_grant = true;
      const auto got = c1.access(up.puzzle, ch, reply, enough, up.encrypted_object);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, object);
    }
  }
  EXPECT_TRUE(any_grant) << "verify never granted across 20 display draws";

  // Knowledge of k-1: never granted.
  if (k > 1) {
    const Knowledge short_one = Knowledge::partial(ctx, k - 1, rng);
    for (int trial = 0; trial < 10; ++trial) {
      const auto ch = Construction1::display_puzzle(up.puzzle, rng);
      const auto resp = Construction1::answer_puzzle(ch, short_one);
      EXPECT_FALSE(Construction1::verify(up.puzzle, ch, resp.hashes).granted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KN, Construction1Sweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                                           std::pair<std::size_t, std::size_t>{1, 10},
                                           std::pair<std::size_t, std::size_t>{2, 4},
                                           std::pair<std::size_t, std::size_t>{3, 6},
                                           std::pair<std::size_t, std::size_t>{5, 5},
                                           std::pair<std::size_t, std::size_t>{4, 10},
                                           std::pair<std::size_t, std::size_t>{10, 10}));

}  // namespace
}  // namespace sp::core
