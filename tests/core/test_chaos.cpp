// Chaos layer: seeded fault injection under concurrent load. Eight threads
// drive a mixed C1/C2 access mix (receiver i pinned to thread i, as the
// fault determinism contract requires) at 1% and 10% uniform fault rates,
// asserting the run never crashes, every request is accounted for
// (granted + denied + deadline-exceeded == issued), the process-wide
// sp_faults_injected_total deltas match the injector's own counters, and two
// same-seed runs are byte-identical in both fault schedule and outcomes.
// These tests carry the ChaosHammer name the TSan CI filter selects.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "core/verify_queue.hpp"
#include "crypto/drbg.hpp"
#include "obs/metrics.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::to_bytes;

constexpr std::size_t kThreads = 8;
constexpr int kRequestsPerThread = 12;
constexpr int kIssued = static_cast<int>(kThreads) * kRequestsPerThread;

SessionConfig chaos_config(double rate, const std::string& schedule) {
  SessionConfig cfg = testsupport::toy_config("chaos-tests");
  net::FaultPlan plan = net::FaultPlan::uniform(rate, schedule);
  // Drop whole replies rather than a fraction: a fractional drop's outcome
  // depends on the drawn challenge size, whose RNG fork order is
  // scheduling-dependent under 8 threads. With frac = 1 every outcome is a
  // pure function of the fault schedule, so same-seed runs match exactly.
  // (Fractional partial replies are covered single-threaded in
  // test_serve_errors.cpp.)
  plan.partial_drop_frac = 1.0;
  cfg.faults = std::move(plan);
  cfg.retry.max_attempts = 5;
  return cfg;
}

struct Outcome {
  int granted = 0;
  int denied = 0;
  int deadline = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

/// The 8-thread mixed load: thread t drives receiver t, alternating the C1
/// and C2 posts, with retries. Returns the summed outcome tally.
Outcome run_chaos_load(testsupport::FanoutRig& rig) {
  std::array<Outcome, kThreads> per_thread{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rig, &per_thread, t] {
      const Knowledge knows = Knowledge::full(rig.ctx_);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const bool is_c1 = i % 2 == 0;
        const std::string& post = is_c1 ? rig.c1_post_ : rig.c2_post_;
        const auto result = rig.session_.access_with_retries(rig.receivers_[t], post, knows,
                                                             net::pc_profile(), /*max_draws=*/4);
        if (result.success()) {
          ++per_thread[t].granted;
          // A grant under chaos must still deliver the right plaintext.
          EXPECT_EQ(*result.object, is_c1 ? to_bytes("c1 object") : to_bytes("c2 object"));
        } else if (result.error == net::ServeError::kDeadlineExceeded) {
          ++per_thread[t].deadline;
        } else {
          ++per_thread[t].denied;
          // Full knowledge never cleanly denies C2, and C1 redraws cover it;
          // any non-deadline failure here must name its fault.
          EXPECT_TRUE(result.error.has_value());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  Outcome total;
  for (const Outcome& o : per_thread) {
    total.granted += o.granted;
    total.denied += o.denied;
    total.deadline += o.deadline;
  }
  return total;
}

TEST(ChaosHammer, TenPercentMixedLoadAccountsForEveryRequest) {
  testsupport::FanoutRig rig(chaos_config(0.10, "chaos-ten"), kThreads);
  const Outcome tally = run_chaos_load(rig);
  EXPECT_EQ(tally.granted + tally.denied + tally.deadline, kIssued);
  // At 10% per op class something must both fail and be saved by a retry.
  ASSERT_NE(rig.session_.fault_injector(), nullptr);
  EXPECT_GT(rig.session_.fault_injector()->injected_total(), 0u);
  EXPECT_GT(tally.granted, 0);
}

TEST(ChaosHammer, OnePercentMixedLoadMostlySucceeds) {
  testsupport::FanoutRig rig(chaos_config(0.01, "chaos-one"), kThreads);
  const Outcome tally = run_chaos_load(rig);
  EXPECT_EQ(tally.granted + tally.denied + tally.deadline, kIssued);
  // With a 5-attempt retry budget, a 1% fault rate should be almost fully
  // absorbed (the bench's acceptance bar is a 99.5% success rate; the tally
  // here is deterministic per seed, so this bound is stable).
  EXPECT_GE(tally.granted, kIssued - 2);
}

TEST(ChaosHammer, MetricsDeltasMatchInjectorCounts) {
  auto& reg = obs::MetricsRegistry::global();
  std::array<obs::Counter*, net::kFaultKindCount> counters{};
  std::array<std::uint64_t, net::kFaultKindCount> before{};
  for (std::size_t i = 0; i < net::kFaultKindCount; ++i) {
    counters[i] = &reg.counter("sp_faults_injected_total", "",
                               {{"kind", to_string(static_cast<net::FaultKind>(i))}});
    before[i] = counters[i]->value();
  }

  testsupport::FanoutRig rig(chaos_config(0.10, "chaos-metrics"), kThreads);
  (void)run_chaos_load(rig);

  const net::FaultInjector* injector = rig.session_.fault_injector();
  ASSERT_NE(injector, nullptr);
  for (std::size_t i = 0; i < net::kFaultKindCount; ++i) {
    EXPECT_EQ(counters[i]->value() - before[i],
              injector->injected(static_cast<net::FaultKind>(i)))
        << to_string(static_cast<net::FaultKind>(i));
  }
}

TEST(ChaosHammer, SameSeedRunsAreByteIdentical) {
  // Two rigs built from the same config replay the same universe: identical
  // schedule digests, identical per-kind injected-fault counts, identical
  // outcome tallies — even though each run interleaves 8 threads freely.
  testsupport::FanoutRig first(chaos_config(0.10, "chaos-replay"), kThreads);
  const Outcome tally_a = run_chaos_load(first);

  testsupport::FanoutRig second(chaos_config(0.10, "chaos-replay"), kThreads);
  const Outcome tally_b = run_chaos_load(second);

  const net::FaultInjector* ia = first.session_.fault_injector();
  const net::FaultInjector* ib = second.session_.fault_injector();
  ASSERT_NE(ia, nullptr);
  ASSERT_NE(ib, nullptr);
  EXPECT_EQ(ia->schedule_digest("replay-probe", 16, 8), ib->schedule_digest("replay-probe", 16, 8));
  for (std::size_t i = 0; i < net::kFaultKindCount; ++i) {
    EXPECT_EQ(ia->injected(static_cast<net::FaultKind>(i)),
              ib->injected(static_cast<net::FaultKind>(i)))
        << to_string(static_cast<net::FaultKind>(i));
  }
  EXPECT_TRUE(tally_a == tally_b);

  // A different schedule string is a different universe.
  testsupport::FanoutRig other(chaos_config(0.10, "chaos-replay-b"), kThreads);
  const net::FaultInjector* ic = other.session_.fault_injector();
  ASSERT_NE(ic, nullptr);
  EXPECT_NE(ia->schedule_digest("replay-probe", 16, 8), ic->schedule_digest("replay-probe", 16, 8));
}

// ---- PR 7: verify-queue fault isolation under seeded chaos -------------

struct QueueChaosTally {
  int batches_ok = 0;
  int batches_failed = 0;
  int clean_jobs_ran = 0;

  friend bool operator==(const QueueChaosTally&, const QueueChaosTally&) = default;
};

/// Eight threads share one VerifyQueue; each thread's fault schedule is a
/// seeded Drbg stream (~10% of batches get a throwing job injected), so two
/// same-seed runs face the identical fault universe. Returns the summed
/// tally.
QueueChaosTally run_queue_chaos(const std::string& seed) {
  VerifyQueue queue(4);
  std::array<QueueChaosTally, kThreads> per_thread{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&queue, &per_thread, &seed, t] {
      crypto::Drbg rng(seed + "-verify-chaos-" + std::to_string(t));
      std::atomic<int> ran{0};
      for (int round = 0; round < 30; ++round) {
        const bool faulty = rng.bytes(1)[0] < 26;  // ~10% of batches
        VerifyQueue::Batch batch = queue.batch();
        for (int j = 0; j < 3; ++j) batch.add([&ran] { ran.fetch_add(1); });
        if (faulty) batch.add([] { throw std::runtime_error("chaos verify fault"); });
        try {
          batch.wait();
          EXPECT_FALSE(faulty) << "faulted batch must not complete cleanly";
          ++per_thread[t].batches_ok;
        } catch (const std::runtime_error&) {
          EXPECT_TRUE(faulty) << "clean batch caught a fault from another request";
          ++per_thread[t].batches_failed;
        }
      }
      per_thread[t].clean_jobs_ran = ran.load();
    });
  }
  for (std::thread& th : threads) th.join();
  QueueChaosTally total;
  for (const QueueChaosTally& o : per_thread) {
    total.batches_ok += o.batches_ok;
    total.batches_failed += o.batches_failed;
    total.clean_jobs_ran += o.clean_jobs_ran;
  }
  return total;
}

TEST(ChaosHammer, VerifyQueueFaultsStayInTheirOwnBatch) {
  const QueueChaosTally tally = run_queue_chaos("queue-chaos");
  // Every batch is accounted for, and a failed wait() never loses the
  // batch's healthy jobs: all 3 clean jobs per batch ran regardless.
  EXPECT_EQ(tally.batches_ok + tally.batches_failed, static_cast<int>(kThreads) * 30);
  EXPECT_EQ(tally.clean_jobs_ran, static_cast<int>(kThreads) * 30 * 3);
  // At ~10% a seeded run has both failures and survivors.
  EXPECT_GT(tally.batches_failed, 0);
  EXPECT_GT(tally.batches_ok, tally.batches_failed);
  // Same-seed replay is outcome-identical; a different seed is a different
  // fault universe (same totals, but only by coincidence would the split
  // match — assert just the replay half, which is the contract).
  EXPECT_TRUE(run_queue_chaos("queue-chaos") == tally);
}

TEST(ChaosHammer, SessionVerifyPathSurvivesChaosThroughTheQueue) {
  // End-to-end: the Session routes every C1/C2 verify through its private
  // VerifyQueue. Under a 10% net-fault plan the earlier accounting tests
  // already pin totals; here we pin the queue-level metrics — every served
  // request contributed at least one verify batch, and the queue drained.
  auto& reg = obs::MetricsRegistry::global();
  const auto batches_before =
      reg.counter("sp_verify_batches_total", "Request batches waited on").value();
  testsupport::FanoutRig rig(chaos_config(0.10, "chaos-queue-e2e"), kThreads);
  const Outcome tally = run_chaos_load(rig);
  EXPECT_EQ(tally.granted + tally.denied + tally.deadline, kIssued);
  const auto batches_after = reg.counter("sp_verify_batches_total", "").value();
  // Grants verify at least once (retries and C2's AND of SP+C2 checks can
  // add more), so the delta is bounded below by the grant count.
  EXPECT_GE(batches_after - batches_before, static_cast<std::uint64_t>(tally.granted));
}

}  // namespace
}  // namespace sp::core
