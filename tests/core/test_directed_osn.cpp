// Directed-OSN (Twitter-style) mode: follow edges, public-post feeds, and
// puzzle-only access control for public posts (paper §I).
#include <gtest/gtest.h>

#include "core/session.hpp"

namespace sp::core {
namespace {

using crypto::to_bytes;

Context show_context() {
  return Context({{"Opening song?", "Static Hearts"},
                  {"Wristband color?", "orange"},
                  {"Drummer threw?", "a cowbell"}});
}

class DirectedOsnTest : public ::testing::Test {
 protected:
  DirectedOsnTest() : session_({ec::ParamPreset::kToy, net::wlan_80211n_to_ec2(), "directed"}) {
    band_ = session_.register_user("band");
    follower_ = session_.register_user("follower");
    outsider_ = session_.register_user("outsider");
    session_.follow(follower_, band_);
  }

  Session session_;
  osn::UserId band_ = 0, follower_ = 0, outsider_ = 0;
};

TEST_F(DirectedOsnTest, FollowIsDirected) {
  const auto& g = session_.graph();
  EXPECT_TRUE(g.is_following(follower_, band_));
  EXPECT_FALSE(g.is_following(band_, follower_));
  EXPECT_FALSE(g.are_friends(follower_, band_));  // follow != friendship
  EXPECT_EQ(g.followers_of(band_), std::vector<osn::UserId>{follower_});
}

TEST_F(DirectedOsnTest, SelfFollowRejected) {
  EXPECT_THROW(session_.follow(band_, band_), std::invalid_argument);
}

TEST_F(DirectedOsnTest, PublicPostVisibleToFollowersOnly) {
  const Context ctx = show_context();
  session_.share_c1(band_, to_bytes("x"), ctx, 1, 3, net::pc_profile(),
                    osn::Visibility::kPublic);
  EXPECT_EQ(session_.feed_of(follower_).size(), 1u);
  EXPECT_TRUE(session_.feed_of(outsider_).empty());  // not in feed...
}

TEST_F(DirectedOsnTest, PublicPostAccessibleWithoutFriendship) {
  const Context ctx = show_context();
  const auto receipt = session_.share_c1(band_, to_bytes("afterparty"), ctx, 2, 3,
                                         net::pc_profile(), osn::Visibility::kPublic);
  // ...but the public hyperlink is reachable by anyone, follower or not.
  const auto r = session_.access(outsider_, receipt.post_id, Knowledge::full(ctx),
                                 net::pc_profile());
  ASSERT_TRUE(r.success());
  EXPECT_EQ(*r.object, to_bytes("afterparty"));
}

TEST_F(DirectedOsnTest, PublicPostStillGatedByContext) {
  const Context ctx = show_context();
  const auto receipt = session_.share_c1(band_, to_bytes("afterparty"), ctx, 2, 3,
                                         net::pc_profile(), osn::Visibility::kPublic);
  crypto::Drbg krng("directed-partial");
  const Knowledge one = Knowledge::partial(ctx, 1, krng);
  const auto r = session_.access(follower_, receipt.post_id, one, net::pc_profile());
  EXPECT_FALSE(r.granted);
}

TEST_F(DirectedOsnTest, FriendsOnlyPostStillBlocksNonFriends) {
  const Context ctx = show_context();
  const auto receipt =
      session_.share_c1(band_, to_bytes("private"), ctx, 1, 3, net::pc_profile());
  // Default visibility unchanged: followers are NOT friends.
  EXPECT_THROW(session_.access(follower_, receipt.post_id, Knowledge::full(ctx),
                               net::pc_profile()),
               std::logic_error);
}

TEST_F(DirectedOsnTest, PublicC2PostWorks) {
  const Context ctx = show_context();
  const auto receipt = session_.share_c2(band_, to_bytes("abe-broadcast"), ctx, 2,
                                         net::pc_profile(), osn::Visibility::kPublic);
  const auto r = session_.access(outsider_, receipt.post_id, Knowledge::full(ctx),
                                 net::pc_profile());
  ASSERT_TRUE(r.success());
  EXPECT_EQ(*r.object, to_bytes("abe-broadcast"));
}

}  // namespace
}  // namespace sp::core
