// Serving-cache invariants (PR 10): the standalone LRU/admission/invalidation
// semantics, then the Session integration contract — a cache hit may only
// shortcut work the SP already granted, churn (refresh/revoke) must evict,
// and the sp_cache_* metric deltas must match the per-instance counters.
#include "core/serve_cache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;
using testsupport::party_context;
using testsupport::toy_config;
using Kind = ServeCache::Kind;

constexpr auto kSig = static_cast<std::size_t>(Kind::kC1Sig);
constexpr auto kDem = static_cast<std::size_t>(Kind::kC2Dem);
constexpr auto kNeg = static_cast<std::size_t>(Kind::kDhNegative);

// ------------------------------------------------------------- standalone

TEST(ServeCacheTest, KeySegmentsAreDistinct) {
  // Epoch, class and suffix each rotate the key; no pair may collide.
  const std::string a = ServeCache::key("post-1", 0, Kind::kC1Sig);
  EXPECT_NE(a, ServeCache::key("post-1", 1, Kind::kC1Sig));
  EXPECT_NE(a, ServeCache::key("post-1", 0, Kind::kC2Dem));
  EXPECT_NE(a, ServeCache::key("post-1", 0, Kind::kC1Sig, "url"));
  // Post ids embedding other ids must not prefix-collide after the
  // separator: "post-1" vs "post-10".
  EXPECT_NE(ServeCache::key("post-10", 0, Kind::kC1Sig), a);
}

TEST(ServeCacheTest, GetPutRoundTripAndStats) {
  ServeCache cache(CacheConfig{.capacity = 16, .shards = 2});
  const std::string key = ServeCache::key("p", 0, Kind::kC2Dem);
  EXPECT_FALSE(cache.get(key, Kind::kC2Dem).has_value());
  cache.put(key, Kind::kC2Dem, to_bytes("dem-key"));
  const auto hit = cache.get(key, Kind::kC2Dem);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, to_bytes("dem-key"));
  const auto s = cache.stats();
  EXPECT_EQ(s.misses[kDem], 1u);
  EXPECT_EQ(s.hits[kDem], 1u);
  EXPECT_EQ(s.insertions[kDem], 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServeCacheTest, PutRefreshesInPlace) {
  ServeCache cache(CacheConfig{.capacity = 8, .shards = 1});
  const std::string key = ServeCache::key("p", 0, Kind::kC2Dem);
  cache.put(key, Kind::kC2Dem, to_bytes("old"));
  cache.put(key, Kind::kC2Dem, to_bytes("new"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(key, Kind::kC2Dem), to_bytes("new"));
}

TEST(ServeCacheTest, CapacityBoundNeverExceededAndLruEvicts) {
  ServeCache cache(CacheConfig{.capacity = 8, .shards = 1, .admission = false});
  for (int i = 0; i < 50; ++i) {
    cache.put(ServeCache::key("p" + std::to_string(i), 0, Kind::kC1Sig), Kind::kC1Sig, Bytes{1});
    ASSERT_LE(cache.size(), cache.capacity());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, cache.capacity());
  EXPECT_EQ(s.evictions, 50u - cache.capacity());
  // Oldest entries are gone, newest survive.
  EXPECT_FALSE(cache.get(ServeCache::key("p0", 0, Kind::kC1Sig), Kind::kC1Sig).has_value());
  EXPECT_TRUE(cache.get(ServeCache::key("p49", 0, Kind::kC1Sig), Kind::kC1Sig).has_value());
}

TEST(ServeCacheTest, LruRecencyProtectsTouchedEntries) {
  ServeCache cache(CacheConfig{.capacity = 2, .shards = 1, .admission = false});
  const std::string a = ServeCache::key("a", 0, Kind::kC1Sig);
  const std::string b = ServeCache::key("b", 0, Kind::kC1Sig);
  cache.put(a, Kind::kC1Sig, Bytes{1});
  cache.put(b, Kind::kC1Sig, Bytes{1});
  ASSERT_TRUE(cache.get(a, Kind::kC1Sig).has_value());  // a is now most recent
  cache.put(ServeCache::key("c", 0, Kind::kC1Sig), Kind::kC1Sig, Bytes{1});
  EXPECT_TRUE(cache.get(a, Kind::kC1Sig).has_value());
  EXPECT_FALSE(cache.get(b, Kind::kC1Sig).has_value());  // b was the LRU victim
}

TEST(ServeCacheTest, AdmissionRejectsColdNewcomerKeepsHotResident) {
  ServeCache cache(CacheConfig{.capacity = 1, .shards = 1, .admission = true});
  const std::string hot = ServeCache::key("hot", 0, Kind::kC2Dem);
  cache.put(hot, Kind::kC2Dem, to_bytes("v"));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(cache.get(hot, Kind::kC2Dem).has_value());
  // A one-hit wonder arrives at a full shard: its sketch estimate (1-2
  // touches) is below the resident's, so it must be turned away.
  cache.put(ServeCache::key("cold", 0, Kind::kC2Dem), Kind::kC2Dem, to_bytes("w"));
  EXPECT_TRUE(cache.get(hot, Kind::kC2Dem).has_value());
  EXPECT_GE(cache.stats().admission_rejected, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ServeCacheTest, NegativeCacheFifoBound) {
  ServeCache cache(CacheConfig{.negative_capacity = 4, .shards = 1});
  for (int i = 0; i < 20; ++i) {
    cache.negative_put(ServeCache::key("p" + std::to_string(i), 0, Kind::kDhNegative, "url"));
    ASSERT_LE(cache.negative_size(), cache.negative_capacity());
  }
  EXPECT_EQ(cache.stats().negative_evictions, 20u - cache.negative_capacity());
  // FIFO: earliest markers rolled out, latest are live.
  EXPECT_FALSE(cache.negative_hit(ServeCache::key("p0", 0, Kind::kDhNegative, "url")));
  EXPECT_TRUE(cache.negative_hit(ServeCache::key("p19", 0, Kind::kDhNegative, "url")));
}

TEST(ServeCacheTest, NegativePutIsIdempotent) {
  ServeCache cache(CacheConfig{.negative_capacity = 4, .shards = 1});
  const std::string key = ServeCache::key("p", 0, Kind::kDhNegative, "url");
  cache.negative_put(key);
  cache.negative_put(key);
  EXPECT_EQ(cache.negative_size(), 1u);
}

TEST(ServeCacheTest, InvalidatePostSweepsAllClassesEpochsAndSuffixes) {
  ServeCache cache(CacheConfig{.capacity = 64, .shards = 4});
  cache.put(ServeCache::key("doomed", 0, Kind::kC1Sig, "url-a"), Kind::kC1Sig, Bytes{1});
  cache.put(ServeCache::key("doomed", 1, Kind::kC1Sig, "url-b"), Kind::kC1Sig, Bytes{1});
  cache.put(ServeCache::key("doomed", 1, Kind::kC2Dem), Kind::kC2Dem, to_bytes("k"));
  cache.negative_put(ServeCache::key("doomed", 2, Kind::kDhNegative, "url-c"));
  cache.put(ServeCache::key("doomed-sibling", 0, Kind::kC1Sig), Kind::kC1Sig, Bytes{1});
  EXPECT_EQ(cache.invalidate_post("doomed"), 4u);
  EXPECT_EQ(cache.size(), 1u);  // the sibling post (prefix-distinct) survives
  EXPECT_EQ(cache.negative_size(), 0u);
  EXPECT_EQ(cache.stats().invalidated, 4u);
  EXPECT_EQ(cache.invalidate_post("doomed"), 0u);  // idempotent
}

TEST(ServeCacheTest, ClearWipesEverything) {
  ServeCache cache(CacheConfig{.capacity = 16, .shards = 2});
  cache.put(ServeCache::key("a", 0, Kind::kC1Sig), Kind::kC1Sig, Bytes{1});
  cache.negative_put(ServeCache::key("b", 0, Kind::kDhNegative, "u"));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.negative_size(), 0u);
}

// ------------------------------------------------------ session integration

SessionConfig cached_config(const std::string& seed) {
  SessionConfig cfg = toy_config(seed);
  cfg.cache = CacheConfig{};
  return cfg;
}

class CachedSessionTest : public testsupport::SessionFixture {
 protected:
  CachedSessionTest() : SessionFixture(cached_config("serve-cache-tests")) {}
};

TEST_F(CachedSessionTest, RepeatC1AccessHitsSignatureMemo) {
  const Context ctx = party_context();
  const auto receipt = session_.share_c1(sharer_, to_bytes("c1 obj"), ctx, 2, 4, net::pc_profile());
  ServeCache* cache = session_.serve_cache();
  ASSERT_NE(cache, nullptr);

  const auto first = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(first.success());
  const auto after_first = cache->stats();
  EXPECT_EQ(after_first.insertions[kSig], 1u);
  EXPECT_EQ(after_first.hits[kSig], 0u);

  const auto second = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(second.success());
  EXPECT_EQ(*second.object, *first.object);
  EXPECT_EQ(cache->stats().hits[kSig], after_first.hits[kSig] + 1);
}

TEST_F(CachedSessionTest, RepeatC2AccessHitsDemMemoAndSkipsKeyFileDownloads) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("abe object under cache");
  const auto receipt = session_.share_c2(sharer_, object, ctx, 2, net::pc_profile());
  ServeCache* cache = session_.serve_cache();

  const auto cold = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(cold.success());
  EXPECT_EQ(cache->stats().insertions[kDem], 1u);

  const auto warm = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(warm.success());
  EXPECT_EQ(*warm.object, object);
  EXPECT_EQ(cache->stats().hits[kDem], 1u);
  // The hit path skips the PK/MK exchanges: strictly fewer bytes moved.
  EXPECT_LT(warm.cost.bytes_transferred(), cold.cost.bytes_transferred());
}

TEST_F(CachedSessionTest, DeniedRequestNeverFillsTheCache) {
  // The cache sits behind the SP's Verify: a denial must leave no trace that
  // could later shortcut anything.
  const Context ctx = party_context();
  const auto receipt = session_.share_c2(sharer_, to_bytes("obj"), ctx, 3, net::pc_profile());
  crypto::Drbg krng("cache-denied");
  const Knowledge weak = Knowledge::partial(ctx, 1, krng);
  const auto result = session_.access(friend_, receipt.post_id, weak, net::pc_profile());
  EXPECT_FALSE(result.granted);
  EXPECT_EQ(session_.serve_cache()->size(), 0u);
}

TEST_F(CachedSessionTest, RevocationAlwaysEvicts) {
  // THE correctness invariant of this PR: no cached grant survives
  // revocation. If this test fails the cache is serving revoked objects —
  // treat as a release blocker, not a flake.
  const Context ctx = party_context();
  const Bytes object = to_bytes("to be revoked");
  const auto receipt = session_.share_c2(sharer_, object, ctx, 2, net::pc_profile());
  ServeCache* cache = session_.serve_cache();

  ASSERT_TRUE(session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile()).success());
  ASSERT_GE(cache->size(), 1u);
  const std::uint64_t epoch_before = session_.puzzle_epoch(receipt.post_id);
  const std::string dem_key = ServeCache::key(receipt.post_id, epoch_before, Kind::kC2Dem);

  session_.revoke(sharer_, receipt.post_id);
  // Belt: the epoch rotated, so the old key is unreachable from the serving
  // path. Suspenders: the entry itself is gone.
  EXPECT_EQ(session_.puzzle_epoch(receipt.post_id), epoch_before + 1);
  EXPECT_FALSE(cache->get(dem_key, Kind::kC2Dem).has_value());
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_GE(cache->stats().invalidated, 1u);

  const auto after = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_FALSE(after.success());
  EXPECT_EQ(after.error, net::ServeError::kDhMiss);
}

TEST_F(CachedSessionTest, RefreshEvictsAndOldEpochKeysAreUnreachable) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("refresh target");
  const auto receipt = session_.share_c2(sharer_, object, ctx, 2, net::pc_profile());
  ServeCache* cache = session_.serve_cache();

  ASSERT_TRUE(session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile()).success());
  ASSERT_GE(cache->size(), 1u);
  session_.refresh(sharer_, receipt.post_id, object, ctx, net::pc_profile());
  EXPECT_EQ(cache->size(), 0u);

  // Post still serves (fresh fill under the new epoch), and the re-access
  // is a miss, not a stale hit.
  const auto before = cache->stats();
  const auto result = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, object);
  EXPECT_EQ(cache->stats().hits[kDem], before.hits[kDem]);
  EXPECT_EQ(cache->stats().insertions[kDem], before.insertions[kDem] + 1);
}

TEST_F(CachedSessionTest, NegativeCacheFillsAfterRevokeAndExpiresOnReupload) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("negative lifecycle");
  const auto receipt = session_.share_c1(sharer_, object, ctx, 2, 4, net::pc_profile());
  ServeCache* cache = session_.serve_cache();
  session_.revoke(sharer_, receipt.post_id);

  // First post-revoke access pays the DH round trip and records the
  // authoritative miss; the second fails fast off the marker.
  const auto miss1 = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_EQ(miss1.error, net::ServeError::kDhMiss);
  EXPECT_EQ(cache->negative_size(), 1u);
  const auto neg_hits_before = cache->stats().hits[kNeg];
  const auto miss2 = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_EQ(miss2.error, net::ServeError::kDhMiss);
  EXPECT_EQ(cache->stats().hits[kNeg], neg_hits_before + 1);

  // The restoring re-upload must clear the marker — a successful refresh
  // that still fails fast would be the negative-cache staleness bug.
  session_.refresh(sharer_, receipt.post_id, object, ctx, net::pc_profile());
  EXPECT_EQ(cache->negative_size(), 0u);
  const auto restored = session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(restored.success());
  EXPECT_EQ(*restored.object, object);
}

TEST_F(CachedSessionTest, RevokeIsIdempotentAndSharerOnly) {
  const Context ctx = party_context();
  const auto receipt = session_.share_c1(sharer_, to_bytes("obj"), ctx, 2, 4, net::pc_profile());
  EXPECT_THROW(session_.revoke(friend_, receipt.post_id), std::logic_error);
  const std::uint64_t e0 = session_.puzzle_epoch(receipt.post_id);
  session_.revoke(sharer_, receipt.post_id);
  session_.revoke(sharer_, receipt.post_id);  // second revoke is a no-op
  EXPECT_EQ(session_.puzzle_epoch(receipt.post_id), e0 + 1);
  EXPECT_THROW(session_.revoke(sharer_, "puzzle-999"), std::out_of_range);
}

TEST_F(CachedSessionTest, GlobalMetricDeltasMatchInstanceStats) {
  // The sp_cache_* series aggregate across instances; around a driven load
  // on one session their deltas must equal the instance's own counters.
  auto& reg = obs::MetricsRegistry::global();
  auto& dem_hit = reg.counter("sp_cache_requests_total", "",
                              {{"class", "c2_dem"}, {"result", "hit"}});
  auto& dem_miss = reg.counter("sp_cache_requests_total", "",
                               {{"class", "c2_dem"}, {"result", "miss"}});
  auto& dem_ins = reg.counter("sp_cache_insertions_total", "", {{"class", "c2_dem"}});
  auto& invalidated = reg.counter("sp_cache_invalidated_total", "");

  const Context ctx = party_context();
  const auto receipt = session_.share_c2(sharer_, to_bytes("metric obj"), ctx, 2, net::pc_profile());
  ServeCache* cache = session_.serve_cache();
  const auto s0 = cache->stats();
  const auto g0_hit = dem_hit.value();
  const auto g0_miss = dem_miss.value();
  const auto g0_ins = dem_ins.value();
  const auto g0_inv = invalidated.value();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile())
            .success());
  }
  session_.revoke(sharer_, receipt.post_id);

  const auto s1 = cache->stats();
  EXPECT_EQ(s1.hits[kDem] - s0.hits[kDem], 2u);
  EXPECT_EQ(dem_hit.value() - g0_hit, s1.hits[kDem] - s0.hits[kDem]);
  EXPECT_EQ(dem_miss.value() - g0_miss, s1.misses[kDem] - s0.misses[kDem]);
  EXPECT_EQ(dem_ins.value() - g0_ins, s1.insertions[kDem] - s0.insertions[kDem]);
  EXPECT_EQ(invalidated.value() - g0_inv, s1.invalidated - s0.invalidated);
}

TEST(CachedSessionEquivalence, CacheOnAndOffServeIdenticalResults) {
  // The cache is a pure accelerator: with the same seed, cache-on and
  // cache-off sessions must agree on every grant, denial and object byte.
  testsupport::FanoutRig with(cached_config("cache-ab"), 2);
  testsupport::FanoutRig without(toy_config("cache-ab"), 2);
  const Knowledge knows = Knowledge::full(with.ctx_);
  crypto::Drbg weak_rng("cache-ab-weak");
  const Knowledge weak = Knowledge::partial(with.ctx_, 1, weak_rng);

  for (int round = 0; round < 3; ++round) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (const bool c1 : {true, false}) {
        const std::string& post_a = c1 ? with.c1_post_ : with.c2_post_;
        const std::string& post_b = c1 ? without.c1_post_ : without.c2_post_;
        const Knowledge& k = round == 2 ? weak : knows;
        const auto a = with.session_.access(with.receivers_[r], post_a, k, net::pc_profile());
        const auto b =
            without.session_.access(without.receivers_[r], post_b, k, net::pc_profile());
        ASSERT_EQ(a.granted, b.granted);
        ASSERT_EQ(a.object.has_value(), b.object.has_value());
        if (a.object) EXPECT_EQ(*a.object, *b.object);
        EXPECT_EQ(a.error, b.error);
        // Modeled network time may legitimately differ (hits skip
        // exchanges) — the contract is outcomes, not cost.
      }
    }
  }
  EXPECT_GT(with.session_.serve_cache()->stats().hits[kSig] +
                with.session_.serve_cache()->stats().hits[kDem],
            0u);
}

}  // namespace
}  // namespace sp::core
