// Integration tests: both constructions end-to-end over the simulated OSN
// (social graph + SP + DH + network model), exercising the same flow the
// paper's Facebook prototype implements.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;
using testsupport::party_context;
using testsupport::toy_config;

class SessionTest : public testsupport::SessionFixture {
 protected:
  SessionTest() : SessionFixture(toy_config("session-tests")) {
    stranger_ = session_.register_user("stranger");
  }

  osn::UserId stranger_ = 0;
};

TEST_F(SessionTest, C1ShareAndAccessByKnowledgeableFriend) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("event photo bytes");
  const auto receipt = session_.share_c1(sharer_, object, ctx, 2, 4, net::pc_profile());
  EXPECT_FALSE(receipt.post_id.empty());
  EXPECT_GT(receipt.cost.total_ms(), 0.0);
  EXPECT_GT(receipt.cost.network_ms(), 0.0);

  // Friend sees the post in their feed.
  const auto feed = session_.feed_of(friend_);
  ASSERT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed[0].puzzle_id, receipt.post_id);

  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_TRUE(result.granted);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, object);
  EXPECT_GT(result.cost.local_ms(), 0.0);
  EXPECT_GT(result.cost.network_ms(), 0.0);
}

TEST_F(SessionTest, C1IgnorantFriendDenied) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("obj"), ctx, 2, 4, net::pc_profile());
  crypto::Drbg krng("ignorant");
  const Knowledge none = Knowledge::partial(ctx, 0, krng);
  const auto result = session_.access(friend_, receipt.post_id, none, net::pc_profile());
  EXPECT_FALSE(result.granted);
  EXPECT_FALSE(result.success());
}

TEST_F(SessionTest, StrangerBlockedByOsnAcl) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("obj"), ctx, 2, 4, net::pc_profile());
  // Paper: protection against non-friends is delegated to the OSN ACL.
  EXPECT_THROW(
      session_.access(stranger_, receipt.post_id, Knowledge::full(ctx), net::pc_profile()),
      std::logic_error);
  EXPECT_TRUE(session_.feed_of(stranger_).empty());
}

TEST_F(SessionTest, C2ShareAndAccessByKnowledgeableFriend) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("abe-protected object");
  const auto receipt = session_.share_c2(sharer_, object, ctx, 2, net::pc_profile());
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_TRUE(result.granted);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, object);
}

TEST_F(SessionTest, C2BelowThresholdDenied) {
  const Context ctx = party_context();
  const auto receipt = session_.share_c2(sharer_, to_bytes("obj"), ctx, 3, net::pc_profile());
  crypto::Drbg krng("c2-below");
  const Knowledge k2 = Knowledge::partial(ctx, 2, krng);
  const auto result = session_.access(friend_, receipt.post_id, k2, net::pc_profile());
  EXPECT_FALSE(result.granted);
  EXPECT_FALSE(result.success());
}

TEST_F(SessionTest, UnknownPostThrows) {
  EXPECT_THROW(session_.access(friend_, "puzzle-999", Knowledge{}, net::pc_profile()),
               std::out_of_range);
}

TEST_F(SessionTest, SharerCanAccessOwnPost) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("mine"), ctx, 1, 4, net::pc_profile());
  const auto result =
      session_.access(sharer_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_TRUE(result.success());
}

TEST_F(SessionTest, C2CostsMoreThanC1) {
  // The headline of Fig. 10(a)/(b): I2's four-file exchange and pairing
  // workload dominate I1 on both axes. Network/byte costs are modeled and
  // deterministic; local_ms is a wall-clock measurement, so when ctest -j
  // oversubscribes a small machine a preemption mid-share can flip a single
  // sample — compare best-of-N instead of one draw.
  const Context ctx = party_context();
  const Bytes object = to_bytes("same 100-char object for both constructions, padded a bit!!");
  const auto r1 = session_.share_c1(sharer_, object, ctx, 1, 4, net::pc_profile());
  const auto r2 = session_.share_c2(sharer_, object, ctx, 1, net::pc_profile());
  EXPECT_GT(r2.cost.network_ms(), r1.cost.network_ms());
  EXPECT_GT(r2.cost.bytes_transferred(), r1.cost.bytes_transferred());

  double c1_best = r1.cost.local_ms();
  double c2_best = r2.cost.local_ms();
  for (int attempt = 0; attempt < 4 && c2_best <= c1_best; ++attempt) {
    c1_best = std::min(
        c1_best,
        session_.share_c1(sharer_, object, ctx, 1, 4, net::pc_profile()).cost.local_ms());
    c2_best = std::min(
        c2_best,
        session_.share_c2(sharer_, object, ctx, 1, net::pc_profile()).cost.local_ms());
  }
  EXPECT_GT(c2_best, c1_best);
}

TEST_F(SessionTest, TabletScalesLocalTimeOnly) {
  // Identical seeds -> identical crypto; tablet local time is the same wall
  // measurement scaled up 5x. A preemption during the PC share can still
  // inflate one sample past the scaled tablet one on an oversubscribed
  // machine, so compare best-of-N (bytes stay deterministic, checked once).
  const Context ctx = party_context();
  const Bytes object = to_bytes("obj");
  Session pc_session(toy_config("device-compare"));
  const auto pc_sharer = pc_session.register_user("s");
  Session tab_session(toy_config("device-compare"));
  const auto tab_sharer = tab_session.register_user("s");

  const auto pc = pc_session.share_c1(pc_sharer, object, ctx, 2, 4, net::pc_profile());
  const auto tab = tab_session.share_c1(tab_sharer, object, ctx, 2, 4, net::tablet_profile());
  EXPECT_EQ(tab.cost.bytes_transferred(), pc.cost.bytes_transferred());

  double pc_best = pc.cost.local_ms();
  double tab_best = tab.cost.local_ms();
  for (int attempt = 0; attempt < 4 && tab_best <= pc_best; ++attempt) {
    pc_best = std::min(
        pc_best,
        pc_session.share_c1(pc_sharer, object, ctx, 2, 4, net::pc_profile()).cost.local_ms());
    tab_best = std::min(tab_best, tab_session
                                      .share_c1(tab_sharer, object, ctx, 2, 4,
                                                net::tablet_profile())
                                      .cost.local_ms());
  }
  EXPECT_GT(tab_best, pc_best);
}

TEST_F(SessionTest, MultipleSharesCoexist) {
  const Context ctx1 = party_context();
  Context ctx2;
  ctx2.add("Project codename?", "falcon");
  ctx2.add("Team room?", "b42");

  const auto r1 = session_.share_c1(sharer_, to_bytes("one"), ctx1, 1, 4, net::pc_profile());
  const auto r2 = session_.share_c2(sharer_, to_bytes("two"), ctx2, 2, net::pc_profile());
  EXPECT_NE(r1.post_id, r2.post_id);
  EXPECT_EQ(session_.feed_of(friend_).size(), 2u);

  const auto a1 = session_.access(friend_, r1.post_id, Knowledge::full(ctx1), net::pc_profile());
  const auto a2 = session_.access(friend_, r2.post_id, Knowledge::full(ctx2), net::pc_profile());
  ASSERT_TRUE(a1.success());
  ASSERT_TRUE(a2.success());
  EXPECT_EQ(*a1.object, to_bytes("one"));
  EXPECT_EQ(*a2.object, to_bytes("two"));
}

TEST_F(SessionTest, AccessWithRetriesEventuallyGrantsPartialKnowledge) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("obj"), ctx, 2, 4, net::pc_profile());
  crypto::Drbg krng("retries");
  const Knowledge k2 = Knowledge::partial(ctx, 2, krng);
  // A single draw can miss the known questions; 20 draws all but surely hit.
  const auto result =
      session_.access_with_retries(friend_, receipt.post_id, k2, net::pc_profile(), 20);
  EXPECT_TRUE(result.success());

  // Below-threshold knowledge never succeeds, however many draws.
  const Knowledge k1 = Knowledge::partial(ctx, 1, krng);
  const auto denied =
      session_.access_with_retries(friend_, receipt.post_id, k1, net::pc_profile(), 10);
  EXPECT_FALSE(denied.granted);
  EXPECT_THROW(
      session_.access_with_retries(friend_, receipt.post_id, k2, net::pc_profile(), 0),
      std::invalid_argument);
}

TEST_F(SessionTest, RefreshC1RotatesSecretsButKeepsPostId) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("originally shared object");
  const auto receipt =
      session_.share_c1(sharer_, object, ctx, 2, 4, net::pc_profile());
  ASSERT_EQ(session_.storage_host().object_count(), 1u);
  const std::string old_url = session_.storage_host().observed_blobs().begin()->first;

  const Bytes updated = to_bytes("updated object after refresh");
  const auto refreshed =
      session_.refresh(sharer_, receipt.post_id, updated, ctx, net::pc_profile());
  EXPECT_EQ(refreshed.post_id, receipt.post_id);  // hyperlink unchanged
  // Old ciphertext is gone; a new one exists at a new URL.
  EXPECT_FALSE(session_.storage_host().exists(old_url));
  EXPECT_EQ(session_.storage_host().object_count(), 1u);

  // Receivers keep working through the same post id.
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, updated);
}

TEST_F(SessionTest, RefreshC2Works) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c2(sharer_, to_bytes("v1"), ctx, 2, net::pc_profile());
  const auto refreshed =
      session_.refresh(sharer_, receipt.post_id, to_bytes("v2"), ctx, net::pc_profile());
  EXPECT_EQ(refreshed.post_id, receipt.post_id);
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.object, to_bytes("v2"));
}

TEST_F(SessionTest, RefreshRejectsNonSharerAndUnknownPost) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("obj"), ctx, 2, 4, net::pc_profile());
  EXPECT_THROW(session_.refresh(friend_, receipt.post_id, to_bytes("x"), ctx, net::pc_profile()),
               std::logic_error);
  EXPECT_THROW(session_.refresh(sharer_, "puzzle-999", to_bytes("x"), ctx, net::pc_profile()),
               std::out_of_range);
}

TEST_F(SessionTest, MaliciousDhTamperCausesDetectedFailure) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("obj"), ctx, 1, 4, net::pc_profile());
  // Tamper every stored object (there is exactly one).
  for (const auto& [url, blob] : session_.storage_host().observed_blobs()) {
    session_.storage_host().tamper(url, blob.size() / 2);
  }
  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  EXPECT_TRUE(result.granted);           // Verify succeeded at the SP
  EXPECT_FALSE(result.object.has_value());  // but decryption detected tampering
}

}  // namespace
}  // namespace sp::core
