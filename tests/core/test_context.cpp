#include "core/context.hpp"

#include <gtest/gtest.h>

#include "core/context_recommender.hpp"

namespace sp::core {
namespace {

Context party_context() {
  return Context({{"Where did we meet?", "Paris"},
                  {"What did we eat?", "pizza"},
                  {"Who hosted?", "Alice"},
                  {"Which month?", "June"}});
}

TEST(Context, BasicAccessors) {
  const Context ctx = party_context();
  EXPECT_EQ(ctx.size(), 4u);
  EXPECT_FALSE(ctx.empty());
  EXPECT_EQ(ctx.answer_of("Who hosted?"), "Alice");
  EXPECT_EQ(ctx.answer_of("Unknown?"), std::nullopt);
}

TEST(Context, RejectsEmptyQuestion) {
  Context ctx;
  EXPECT_THROW(ctx.add("", "a"), std::invalid_argument);
  EXPECT_THROW(Context(std::vector<ContextPair>{{"", "a"}}), std::invalid_argument);
}

TEST(Context, NormalizeAnswer) {
  EXPECT_EQ(Context::normalize_answer("  Pizza "), "pizza");
  EXPECT_EQ(Context::normalize_answer("PARIS"), "paris");
  EXPECT_EQ(Context::normalize_answer(""), "");
  EXPECT_EQ(Context::normalize_answer("  "), "");
  EXPECT_EQ(Context::normalize_answer("two words"), "two words");
}

TEST(Knowledge, LearnAndRecall) {
  Knowledge k;
  k.learn("q", "a");
  EXPECT_EQ(k.recall("q"), "a");
  EXPECT_EQ(k.recall("other"), std::nullopt);
}

TEST(Knowledge, CorrectCountNormalizes) {
  const Context ctx = party_context();
  Knowledge k;
  k.learn("Where did we meet?", "  paris");  // case/space-insensitive match
  k.learn("What did we eat?", "sushi");      // wrong
  EXPECT_EQ(k.correct_count(ctx), 1u);
}

TEST(Knowledge, FullKnowsEverything) {
  const Context ctx = party_context();
  EXPECT_EQ(Knowledge::full(ctx).correct_count(ctx), ctx.size());
}

TEST(Knowledge, PartialHasExactCorrectCount) {
  const Context ctx = party_context();
  crypto::Drbg rng("partial");
  for (std::size_t correct = 0; correct <= ctx.size(); ++correct) {
    const Knowledge k = Knowledge::partial(ctx, correct, rng);
    EXPECT_EQ(k.correct_count(ctx), correct);
    // Partial knowledge answers *every* question (some wrongly) — receivers
    // always respond, they just fail verification.
    EXPECT_EQ(k.answers().size(), ctx.size());
  }
  EXPECT_THROW(Knowledge::partial(ctx, 5, rng), std::invalid_argument);
}

TEST(Knowledge, PartialSelectionVaries) {
  const Context ctx = party_context();
  crypto::Drbg rng("vary");
  // With 2 of 4 correct there are 6 possible subsets; 32 draws should see
  // more than one (deterministic given the seed).
  std::set<std::string> signatures;
  for (int i = 0; i < 32; ++i) {
    const Knowledge k = Knowledge::partial(ctx, 2, rng);
    std::string sig;
    for (const auto& p : ctx.pairs()) {
      sig += (Context::normalize_answer(*k.recall(p.question)) ==
              Context::normalize_answer(p.answer))
                 ? '1'
                 : '0';
    }
    signatures.insert(sig);
  }
  EXPECT_GT(signatures.size(), 1u);
}

TEST(ContextRecommender, RecommendsFromPopulatedFields) {
  EventRecord event;
  event.title = "Sarah's birthday";
  event.venue = "Luigi's";
  event.city = "Wichita";
  event.month = "June";
  event.host = "Sarah";
  event.participants = {"Tom", "Ana"};
  event.activities = {"karaoke"};
  event.food = "lasagna";

  const auto recs = ContextRecommender::recommend(event);
  EXPECT_GE(recs.size(), 7u);
  // Sorted weakest-guessability first.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].guessability, recs[i].guessability);
  }
  // The hardest-to-guess suggestion should not be the city.
  EXPECT_EQ(recs.back().pair.answer, "Wichita");
}

TEST(ContextRecommender, SkipsEmptyFields) {
  EventRecord event;
  event.title = "t";
  event.city = "Rome";
  const auto recs = ContextRecommender::recommend(event);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].pair.answer, "Rome");
}

TEST(ContextRecommender, BuildContextPicksHardest) {
  EventRecord event;
  event.title = "trip";
  event.city = "Rome";
  event.month = "May";
  event.food = "carbonara";
  event.activities = {"hiking"};
  const Context ctx = ContextRecommender::build_context(event, 2);
  EXPECT_EQ(ctx.size(), 2u);
  // Hardest two are the activity and the food, not city/month.
  for (const auto& p : ctx.pairs()) {
    EXPECT_NE(p.answer, "Rome");
    EXPECT_NE(p.answer, "May");
  }
  EXPECT_THROW(ContextRecommender::build_context(event, 10), std::invalid_argument);
}

}  // namespace
}  // namespace sp::core
