// Chaos coverage for the cached serving path (PR 10): the PR 5 fault plans
// driven through a cache-enabled session. Invariants: a fault during a fill
// never caches a partial or poisoned entry (corrupted blobs must not mint
// DEM-key entries; injected misses on live blobs must not mint negative
// markers), and same-seed fault runs stay byte-identical with the cache on.
// The ChaosHammer suite name keeps these inside the TSan CI filter.
#include <gtest/gtest.h>

#include <string>

#include "core/serve_cache.hpp"
#include "core/session.hpp"
#include "crypto/drbg.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::to_bytes;
using Kind = ServeCache::Kind;

constexpr auto kDem = static_cast<std::size_t>(Kind::kC2Dem);
constexpr auto kNeg = static_cast<std::size_t>(Kind::kDhNegative);

SessionConfig cached_fault_config(const std::string& seed, net::FaultPlan plan) {
  SessionConfig cfg = testsupport::toy_config(seed);
  cfg.cache = CacheConfig{};
  plan.partial_drop_frac = 1.0;  // whole-reply drops: outcomes are schedule-pure
  cfg.faults = std::move(plan);
  cfg.retry.max_attempts = 3;
  return cfg;
}

TEST(CacheChaosHammer, CorruptedFillNeverCachesDemKey) {
  // Every CT download corrupts: Construction 2's GCM open fails on every
  // attempt, so no DEM key was ever authenticated — the cache must stay
  // empty of kC2Dem entries. One poisoned entry here would replay a
  // corrupted key to every later request.
  net::FaultPlan plan;
  plan.p_dh_corrupt = 1.0;
  plan.seed = "cache-chaos-corrupt";
  testsupport::FanoutRig rig(cached_fault_config("cache-chaos-corrupt", plan), 2);
  const Knowledge knows = Knowledge::full(rig.ctx_);
  for (int i = 0; i < 4; ++i) {
    const auto result = rig.session_.access_with_retries(rig.receivers_[i % 2], rig.c2_post_,
                                                         knows, net::pc_profile(), 2);
    EXPECT_FALSE(result.success());
  }
  const auto stats = rig.session_.serve_cache()->stats();
  EXPECT_EQ(stats.insertions[kDem], 0u);
  EXPECT_EQ(stats.hits[kDem], 0u);
}

TEST(CacheChaosHammer, InjectedMissOnLiveBlobNeverCachesNegative) {
  // p_dh_miss = 1 makes every fetch *look* like a missing blob, but the blob
  // is alive — only authoritative absence may mint a negative marker, or a
  // transient fault would turn into a persistent fast-fail.
  net::FaultPlan plan;
  plan.p_dh_miss = 1.0;
  plan.seed = "cache-chaos-miss";
  testsupport::FanoutRig rig(cached_fault_config("cache-chaos-miss", plan), 2);
  const Knowledge knows = Knowledge::full(rig.ctx_);
  for (int i = 0; i < 4; ++i) {
    const auto result = rig.session_.access_with_retries(rig.receivers_[i % 2], rig.c2_post_,
                                                         knows, net::pc_profile(), 2);
    EXPECT_FALSE(result.success());
  }
  const auto stats = rig.session_.serve_cache()->stats();
  EXPECT_EQ(stats.insertions[kNeg], 0u);
  EXPECT_EQ(rig.session_.serve_cache()->negative_size(), 0u);
}

TEST(CacheChaosHammer, FaultsDelayButNeverWrongBytes) {
  // 10% mixed faults through the cached path: whatever is granted must be
  // the true plaintext — transient faults may cost retries, never bytes.
  testsupport::FanoutRig rig(cached_fault_config(
                                 "cache-chaos-mixed",
                                 net::FaultPlan::uniform(0.10, "cache-chaos-mixed-plan")),
                             4);
  const Knowledge knows = Knowledge::full(rig.ctx_);
  std::size_t granted = 0;
  for (int i = 0; i < 24; ++i) {
    const bool is_c1 = i % 2 == 0;
    const auto result = rig.session_.access_with_retries(
        rig.receivers_[i % 4], is_c1 ? rig.c1_post_ : rig.c2_post_, knows, net::pc_profile(), 4);
    if (result.success()) {
      ++granted;
      EXPECT_EQ(*result.object, is_c1 ? to_bytes("c1 object") : to_bytes("c2 object"));
    }
  }
  EXPECT_GT(granted, 0u);
  const auto stats = rig.session_.serve_cache()->stats();
  EXPECT_GT(stats.hits[kDem] + stats.hits[static_cast<std::size_t>(Kind::kC1Sig)], 0u);
}

TEST(CacheChaosHammer, SameSeedFaultReplayIsByteIdenticalWithCacheOn) {
  // Two rigs, same seed, same fault plan, cache on: identical grant/deny/
  // error streams, identical object bytes, identical cache counters. The
  // cache must not introduce scheduling- or address-dependent behavior into
  // the deterministic replay contract PR 5 established.
  const auto build = [] {
    return testsupport::FanoutRig(
        cached_fault_config("cache-chaos-replay",
                            net::FaultPlan::uniform(0.15, "cache-chaos-replay-plan")),
        2);
  };
  testsupport::FanoutRig a = build();
  testsupport::FanoutRig b = build();
  const Knowledge knows = Knowledge::full(a.ctx_);
  for (int i = 0; i < 16; ++i) {
    const bool is_c1 = i % 2 == 0;
    const auto ra = a.session_.access_with_retries(
        a.receivers_[i % 2], is_c1 ? a.c1_post_ : a.c2_post_, knows, net::pc_profile(), 4);
    const auto rb = b.session_.access_with_retries(
        b.receivers_[i % 2], is_c1 ? b.c1_post_ : b.c2_post_, knows, net::pc_profile(), 4);
    ASSERT_EQ(ra.granted, rb.granted) << "request " << i;
    ASSERT_EQ(ra.error, rb.error) << "request " << i;
    ASSERT_EQ(ra.attempts, rb.attempts) << "request " << i;
    ASSERT_EQ(ra.object.has_value(), rb.object.has_value()) << "request " << i;
    if (ra.object) ASSERT_EQ(*ra.object, *rb.object) << "request " << i;
    // Modeled network cost is schedule-pure, so it must replay exactly too.
    ASSERT_DOUBLE_EQ(ra.cost.network_ms(), rb.cost.network_ms()) << "request " << i;
  }
  const auto sa = a.session_.serve_cache()->stats();
  const auto sb = b.session_.serve_cache()->stats();
  for (std::size_t k = 0; k < ServeCache::kKindCount; ++k) {
    EXPECT_EQ(sa.hits[k], sb.hits[k]) << "kind " << k;
    EXPECT_EQ(sa.misses[k], sb.misses[k]) << "kind " << k;
    EXPECT_EQ(sa.insertions[k], sb.insertions[k]) << "kind " << k;
  }
  EXPECT_EQ(sa.entries, sb.entries);
  EXPECT_EQ(sa.negative_entries, sb.negative_entries);
}

}  // namespace
}  // namespace sp::core
