// Golden-value pins for the Montgomery/wNAF substrate rewrite: the seeded
// DRBG streams below were run against the original Barrett/double-and-add
// code and the SHA-256 digests of every wire artifact recorded. The
// optimized substrate must keep each byte identical — the algorithms
// changed, the values must not. A failure here means the rewrite altered
// semantics (or consumed DRBG bytes differently), not just performance.
#include <gtest/gtest.h>

#include "core/construction1.hpp"
#include "core/construction2.hpp"
#include "crypto/sha256.hpp"
#include "ec/pairing.hpp"
#include "ec/params.hpp"
#include "sig/schnorr.hpp"

namespace sp::core {
namespace {

using crypto::BigInt;
using crypto::Bytes;

std::string hex_hash(const Bytes& b) {
  const Bytes d = crypto::Sha256::hash(b);
  std::string out;
  constexpr char digits[] = "0123456789abcdef";
  for (auto c : d) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 15]);
  }
  return out;
}

TEST(SubstrateFixtures, Construction2ToyUploadBitIdentical) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  Construction2 c2(curve);
  crypto::Drbg rng("sp-fixture-c2-v1");
  const Context ctx({{"Where did we meet?", "Paris"},
                     {"What did we eat?", "pizza"},
                     {"Who hosted?", "Alice"},
                     {"Which month?", "June"}});
  const auto up = c2.upload(crypto::to_bytes("fixture object payload"), ctx, 2, rng);
  EXPECT_EQ(hex_hash(up.public_key),
            "d8be39e91990e0b32ed48c7fb56be68f38409fb99f3a0f8a8db1e0752571d8a6");
  EXPECT_EQ(hex_hash(up.master_key),
            "ffe4776a1a1c974057ae7552a73c7f187c8ca514614c2fa97a203b9c4ea03193");
  EXPECT_EQ(hex_hash(up.ciphertext),
            "305a15d88888c2553ec48c30dca5cc7f4ed0da5fdb9517ee883daba49147fe87");
  EXPECT_EQ(hex_hash(up.perturbed_tree.serialize()),
            "80b4c7e4c3b849f3ab3c3dba29c82a0a06fa662004791e540fb85c0e72f854dc");
}

TEST(SubstrateFixtures, Construction2TestPresetUploadBitIdentical) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kTest));
  Construction2 c2(curve);
  crypto::Drbg rng("sp-fixture-c2-test-v1");
  const Context ctx({{"q0", "a0"}, {"q1", "a1"}, {"q2", "a2"}});
  const auto up = c2.upload(crypto::to_bytes("second fixture"), ctx, 1, rng);
  EXPECT_EQ(hex_hash(up.ciphertext),
            "9c61ea1a851def00a4bb1169f37215af8a49bc453e5153af297b78ea3ab4b991");
}

TEST(SubstrateFixtures, Construction1ToyPuzzleBitIdentical) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  Construction1 c1(curve.fp(), curve);
  crypto::Drbg rng("sp-fixture-c1-v1");
  crypto::Drbg krng("sp-fixture-c1-keys-v1");
  const sig::Schnorr schnorr(curve, curve.hash_to_group(crypto::to_bytes("sp-fixture-gen")));
  const auto keys = schnorr.keygen(krng);
  const Context ctx({{"q0", "a0"}, {"q1", "a1"}, {"q2", "a2"}, {"q3", "a3"}});
  auto up = c1.upload(crypto::to_bytes("c1 fixture object"), ctx, 2, 4, keys, rng);
  up.puzzle.url = "dh://fixture/c1";
  c1.sign_puzzle(up.puzzle, keys);
  EXPECT_EQ(hex_hash(up.puzzle.serialize()),
            "7ceac7db36651d930959075a935667d74f2ce4b8a6e2583a4a770a34cef02807");
  EXPECT_EQ(hex_hash(up.encrypted_object),
            "a6bb55ef5942d9ffae1649c1973100c9a3a1a119afafe243c470c21f11a34465");
}

struct PresetGolden {
  ec::ParamPreset preset;
  const char* name;
  const char* pairing;
  const char* scalarmul;
  const char* powmod;
};

class SubstrateFixturesPreset : public ::testing::TestWithParam<PresetGolden> {};

TEST_P(SubstrateFixturesPreset, PrimitiveOutputsBitIdentical) {
  const auto& golden = GetParam();
  const ec::Curve curve(ec::preset_params(golden.preset));
  const ec::Pairing pairing(curve);
  crypto::Drbg rng(std::string("sp-fixture-pairing-") + golden.name);
  const auto g = curve.random_group_element(rng);
  const auto h = curve.random_group_element(rng);
  EXPECT_EQ(hex_hash(pairing(g, h).to_bytes()), golden.pairing);
  const auto k = BigInt::from_bytes(rng.bytes(20));
  EXPECT_EQ(hex_hash(curve.serialize(curve.mul(g, k))), golden.scalarmul);
  const auto base = BigInt::from_bytes(rng.bytes(40)).mod(curve.fp()->p());
  const auto e = BigInt::from_bytes(rng.bytes(32));
  EXPECT_EQ(hex_hash(curve.fp()->pow_mod(base, e).to_bytes(curve.fp()->byte_length())),
            golden.powmod);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, SubstrateFixturesPreset,
    ::testing::Values(
        PresetGolden{ec::ParamPreset::kToy, "toy",
                     "4eeeae9e2c70351893ee48d875ca5a4513f27cf9d71806b6a583eea74d2cc090",
                     "cfd21261d3229834855d62c6649938c03c3588dfb6759cd8d09fcb29b27d55cc",
                     "28bcf7369701d934af53944c25537c19bb0be33c60c27ab0f2e04464f3c5ddd7"},
        PresetGolden{ec::ParamPreset::kTest, "test",
                     "e3863dac9df9ef136e6346b0046c3947ba36b3151d4aeca9116862deaa986d57",
                     "8dc39a4d7c030c92beecdf1ec1de72d8a462d1e004254938e0c1eb4f1fa9f822",
                     "168d8d1e730f09403139e022e188107c83512b11e375b2630f90b72a73f954d4"},
        PresetGolden{ec::ParamPreset::kFull, "full",
                     "2b097bee38408279ce52fda21a306cbd4c8a209d2040d3dd2b8a1abc28c15764",
                     "2f8abbc55b0c3bb0979b165b111f6b758baa9f0350a79bd29afb3a1be68f7bb3",
                     "d71615d79d67ca86ded87751068b052af514ea31e0cd33eaceecaeb18d7294ed"}),
    [](const ::testing::TestParamInfo<PresetGolden>& info) { return info.param.name; });

}  // namespace
}  // namespace sp::core
