// Cost-accounting invariants: the Fig. 10 decomposition must be internally
// consistent — these pin down the measurement harness itself, so figure
// regressions can be traced to protocol changes rather than ledger bugs.
#include <gtest/gtest.h>

#include "core/session.hpp"

namespace sp::core {
namespace {

using crypto::to_bytes;

Context ctx4() {
  return Context({{"q1", "a1"}, {"q2", "a2"}, {"q3", "a3"}, {"q4", "a4"}});
}

SessionConfig cfg(const std::string& seed, net::LinkProfile link = net::wlan_80211n_to_ec2()) {
  SessionConfig c;
  c.pairing_preset = ec::ParamPreset::kToy;
  c.link = link;
  c.seed = seed;
  return c;
}

TEST(CostAccounting, TotalsAreSumOfParts) {
  Session session(cfg("cost-sum"));
  const auto s = session.register_user("s");
  const auto r = session.register_user("r");
  session.befriend(s, r);
  const auto receipt = session.share_c1(s, to_bytes("obj"), ctx4(), 2, 4, net::pc_profile());
  EXPECT_DOUBLE_EQ(receipt.cost.total_ms(),
                   receipt.cost.local_ms() + receipt.cost.network_ms());
  const auto result = session.access(r, receipt.post_id, Knowledge::full(ctx4()),
                                     net::pc_profile());
  EXPECT_DOUBLE_EQ(result.cost.total_ms(), result.cost.local_ms() + result.cost.network_ms());
}

TEST(CostAccounting, LoopbackLinkZerosNetworkDelayButNotBytes) {
  Session session(cfg("cost-loopback", net::loopback()));
  const auto s = session.register_user("s");
  const auto r = session.register_user("r");
  session.befriend(s, r);
  const auto receipt = session.share_c1(s, to_bytes("obj"), ctx4(), 1, 4, net::pc_profile());
  EXPECT_LT(receipt.cost.network_ms(), 1.0);  // only the tiny payload term
  EXPECT_GT(receipt.cost.bytes_transferred(), 0u);
  EXPECT_GT(receipt.cost.local_ms(), 0.0);
}

TEST(CostAccounting, DeniedAccessChargesNoObjectDownload) {
  Session session(cfg("cost-denied"));
  const auto s = session.register_user("s");
  const auto r = session.register_user("r");
  session.befriend(s, r);
  const auto receipt = session.share_c1(s, to_bytes("obj"), ctx4(), 2, 4, net::pc_profile());

  const auto denied = session.access(r, receipt.post_id, Knowledge{}, net::pc_profile());
  const auto granted =
      session.access(r, receipt.post_id, Knowledge::full(ctx4()), net::pc_profile());
  ASSERT_FALSE(denied.granted);
  ASSERT_TRUE(granted.success());
  // A denied run stops at Verify: strictly fewer bytes than a full run.
  EXPECT_LT(denied.cost.bytes_transferred(), granted.cost.bytes_transferred());
}

TEST(CostAccounting, BiggerObjectsMoveMoreBytes) {
  Session session(cfg("cost-size"));
  const auto s = session.register_user("s");
  crypto::Drbg rng("blobs");
  const auto small = session.share_c1(s, rng.bytes(100), ctx4(), 1, 4, net::pc_profile());
  const auto large = session.share_c1(s, rng.bytes(100 * 1024), ctx4(), 1, 4, net::pc_profile());
  EXPECT_GT(large.cost.bytes_transferred(), small.cost.bytes_transferred() + 90 * 1024);
}

TEST(CostAccounting, C2MovesMasterKeyAndPublicKeyToReceiver) {
  Session session(cfg("cost-c2"));
  const auto s = session.register_user("s");
  const auto r = session.register_user("r");
  session.befriend(s, r);
  const auto receipt = session.share_c2(s, to_bytes("obj"), ctx4(), 1, net::pc_profile());
  const auto result =
      session.access(r, receipt.post_id, Knowledge::full(ctx4()), net::pc_profile());
  ASSERT_TRUE(result.success());
  // Receiver traffic includes CT + PK + MK: comfortably above the C1
  // receiver's few hundred bytes for the same object.
  EXPECT_GT(result.cost.bytes_transferred(), 1000u);
}

TEST(CostAccounting, DeterministicAcrossIdenticalSessions) {
  auto run = [] {
    Session session(cfg("cost-repro"));
    const auto s = session.register_user("s");
    const auto r = session.register_user("r");
    session.befriend(s, r);
    const auto receipt = session.share_c1(s, to_bytes("obj"), ctx4(), 2, 4, net::pc_profile());
    const auto result =
        session.access(r, receipt.post_id, Knowledge::full(ctx4()), net::pc_profile());
    return std::make_pair(receipt.cost.network_ms(), result.cost.network_ms());
  };
  const auto a = run();
  const auto b = run();
  // Network delay is fully modeled (seeded jitter): bit-for-bit repeatable.
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace sp::core
