// Wire-format robustness: deserializers face attacker-controlled bytes (the
// SP relays them, a malicious SP can rewrite them). DRBG-driven mutation and
// truncation sweeps must never crash — every malformed input either throws
// std::invalid_argument or yields a value that fails downstream checks.
#include <gtest/gtest.h>

#include "abe/cpabe.hpp"
#include "core/construction1.hpp"
#include "core/puzzle.hpp"
#include "ec/params.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::Drbg;
using crypto::to_bytes;

Bytes sample_puzzle_wire() {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  Construction1 c1(curve.fp(), curve);
  sig::Schnorr schnorr(curve, curve.hash_to_group(to_bytes("sp-schnorr-g")));
  Drbg rng("wire-puzzle");
  const sig::KeyPair keys = schnorr.keygen(rng);
  Context ctx;
  for (int i = 0; i < 4; ++i) ctx.add("q" + std::to_string(i), "a" + std::to_string(i));
  auto up = c1.upload(to_bytes("obj"), ctx, 2, 4, keys, rng);
  up.puzzle.url = "dh://objects/x";
  c1.sign_puzzle(up.puzzle, keys);
  return up.puzzle.serialize();
}

TEST(WireRobustness, PuzzleSurvivesSingleByteMutations) {
  const Bytes wire = sample_puzzle_wire();
  Drbg rng("mutate-puzzle");
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      const Puzzle p = Puzzle::deserialize(mutated);
      ++parsed;  // structurally valid; the signature layer catches the rest
      (void)p;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300);
  EXPECT_GT(rejected, 0);  // length-prefix corruption must be caught
}

TEST(WireRobustness, PuzzleSurvivesTruncation) {
  const Bytes wire = sample_puzzle_wire();
  for (std::size_t len = 0; len < wire.size(); len += 3) {
    EXPECT_THROW(Puzzle::deserialize(std::span<const std::uint8_t>(wire.data(), len)),
                 std::invalid_argument)
        << "length " << len;
  }
}

TEST(WireRobustness, PuzzleSurvivesRandomGarbage) {
  Drbg rng("garbage-puzzle");
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes junk = rng.bytes(1 + rng.uniform(300));
    try {
      (void)Puzzle::deserialize(junk);
    } catch (const std::invalid_argument&) {
      // expected for nearly all inputs
    }
  }
}

TEST(WireRobustness, AccessTreeSurvivesMutationAndTruncation) {
  std::vector<std::pair<std::string, std::string>> qa;
  for (int i = 0; i < 5; ++i) qa.emplace_back("q" + std::to_string(i), "a" + std::to_string(i));
  const Bytes wire = abe::AccessTree::puzzle_policy(qa, 2).serialize();
  Drbg rng("mutate-tree");
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      (void)abe::AccessTree::deserialize(mutated);
    } catch (const std::invalid_argument&) {
    }
  }
  for (std::size_t len = 0; len < wire.size(); len += 2) {
    EXPECT_THROW(abe::AccessTree::deserialize(std::span<const std::uint8_t>(wire.data(), len)),
                 std::invalid_argument);
  }
}

TEST(WireRobustness, CpAbeArtifactsSurviveMutation) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  const abe::CpAbe scheme(curve);
  Drbg rng("mutate-abe");
  auto [pk, mk] = scheme.setup(rng);
  std::vector<std::pair<std::string, std::string>> qa = {{"q0", "a0"}, {"q1", "a1"}};
  auto [ct, key] = scheme.encrypt_key(pk, abe::AccessTree::puzzle_policy(qa, 1), rng);

  const Bytes pk_wire = scheme.serialize(pk);
  const Bytes ct_wire = scheme.serialize(ct);
  for (int trial = 0; trial < 150; ++trial) {
    Bytes m1 = pk_wire;
    m1[rng.uniform(m1.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      (void)scheme.deserialize_public_key(m1);
    } catch (const std::invalid_argument&) {
    }
    Bytes m2 = ct_wire;
    m2[rng.uniform(m2.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      (void)scheme.deserialize_ciphertext(m2);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(WireRobustness, HugeLengthPrefixRejectedNotAllocated) {
  // A 0xFFFFFFFF length prefix must throw, not attempt a 4 GiB allocation.
  Bytes evil = {0xff, 0xff, 0xff, 0xff, 0x00};
  EXPECT_THROW(Puzzle::deserialize(evil), std::invalid_argument);
  EXPECT_THROW(abe::AccessTree::deserialize(evil), std::invalid_argument);
}

}  // namespace
}  // namespace sp::core
