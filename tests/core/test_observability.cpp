// End-to-end checks that the serving stack reports into the global
// MetricsRegistry: access outcome counters and latency series, the
// access_with_retries counters, and the per-phase histograms (the paper's
// Fig. 10 decomposition). The registry is process-wide and shared across
// tests, so every assertion is on deltas around the operation under test.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;
using testsupport::party_context;

obs::Counter& counter(const char* name, const obs::Labels& labels = {}) {
  return obs::MetricsRegistry::global().counter(name, "", labels);
}

obs::Histogram& phase_hist(const char* phase) {
  return obs::MetricsRegistry::global().histogram(
      "sp_phase_latency_ms", "", obs::Histogram::default_latency_bounds_ms(),
      {{"phase", phase}});
}

obs::Histogram& outcome_hist(const char* scheme, const char* result) {
  return obs::MetricsRegistry::global().histogram(
      "sp_access_latency_ms", "", obs::Histogram::default_latency_bounds_ms(),
      {{"result", result}, {"scheme", scheme}});
}

class ObservabilityTest : public testsupport::SessionFixture {
 protected:
  ObservabilityTest() : SessionFixture(testsupport::toy_config("observability-tests")) {}
};

TEST_F(ObservabilityTest, DeniedRetriesCountAndStayOutOfSuccessSeries) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("object"), ctx, /*k=*/2, /*n=*/4, net::pc_profile());

  auto& denied_total = counter("sp_access_denied_total");
  auto& granted_total = counter("sp_access_granted_total");
  auto& retried_total = counter("sp_access_retried_total");
  auto& denied_requests = counter("sp_access_requests_total",
                                  {{"result", "denied"}, {"scheme", "c1"}});
  auto& granted_hist = outcome_hist("c1", "granted");
  auto& denied_hist = outcome_hist("c1", "denied");
  const auto denied0 = denied_total.value();
  const auto granted0 = granted_total.value();
  const auto retried0 = retried_total.value();
  const auto denied_req0 = denied_requests.value();
  const auto granted_hist0 = granted_hist.count();
  const auto denied_hist0 = denied_hist.count();

  // k - 1 correct answers: every draw must deny, so all 3 draws are spent.
  crypto::Drbg rng("obs-partial");
  const auto result = session_.access_with_retries(
      friend_, receipt.post_id, Knowledge::partial(ctx, 1, rng), net::pc_profile(),
      /*max_draws=*/3);
  EXPECT_FALSE(result.granted);

  EXPECT_EQ(denied_total.value(), denied0 + 1);    // one exhausted call
  EXPECT_EQ(retried_total.value(), retried0 + 2);  // draws 2 and 3
  EXPECT_EQ(granted_total.value(), granted0);
  EXPECT_EQ(denied_requests.value(), denied_req0 + 3);  // every draw denied
  // The secret-hygiene of the outcome split: a denied receiver must never
  // appear in the success latency series.
  EXPECT_EQ(granted_hist.count(), granted_hist0);
  EXPECT_EQ(denied_hist.count(), denied_hist0 + 3);
}

TEST_F(ObservabilityTest, GrantedC1AccessPopulatesOutcomeAndPhaseSeries) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c1(sharer_, to_bytes("object"), ctx, 2, 4, net::pc_profile());

  auto& granted_total = counter("sp_access_granted_total");
  auto& granted_requests = counter("sp_access_requests_total",
                                   {{"result", "granted"}, {"scheme", "c1"}});
  auto& granted_hist = outcome_hist("c1", "granted");
  auto& answer_phase = phase_hist("c1.answer_hashes");
  auto& verify_phase = phase_hist("sp.verify");
  auto& fetch_phase = phase_hist("dh.fetch");
  auto& interpolate_phase = phase_hist("c1.interpolate");
  const auto granted0 = granted_total.value();
  const auto requests0 = granted_requests.value();
  const auto hist0 = granted_hist.count();
  const auto answer0 = answer_phase.count();
  const auto verify0 = verify_phase.count();
  const auto fetch0 = fetch_phase.count();
  const auto interpolate0 = interpolate_phase.count();

  const auto result = session_.access_with_retries(friend_, receipt.post_id,
                                                    Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());

  EXPECT_EQ(granted_total.value(), granted0 + 1);
  EXPECT_EQ(granted_requests.value(), requests0 + 1);
  EXPECT_EQ(granted_hist.count(), hist0 + 1);
  EXPECT_EQ(answer_phase.count(), answer0 + 1);
  EXPECT_EQ(verify_phase.count(), verify0 + 1);
  EXPECT_EQ(fetch_phase.count(), fetch0 + 1);
  EXPECT_EQ(interpolate_phase.count(), interpolate0 + 1);
  EXPECT_GT(granted_hist.sum_ms(), 0.0);
}

TEST_F(ObservabilityTest, C2AccessPopulatesAbePhasesAndPairingHistogram) {
  const Context ctx = party_context();
  const auto receipt =
      session_.share_c2(sharer_, to_bytes("object"), ctx, 2, net::pc_profile());

  auto& upload_phase = phase_hist("c2.upload");
  auto& keygen_phase = phase_hist("c2.keygen");
  auto& decrypt_phase = phase_hist("c2.decrypt");
  auto& access_phase = phase_hist("c2.access");
  auto& multi_hist = obs::MetricsRegistry::global().histogram("crypto_multi_pairing_ms");
  auto& pairs_total = obs::MetricsRegistry::global().counter(
      "crypto_multi_pairing_pairs_total", "Pairs folded into multi-pairing products");
  EXPECT_GE(upload_phase.count(), 1u);  // the share above already ran
  const auto keygen0 = keygen_phase.count();
  const auto decrypt0 = decrypt_phase.count();
  const auto access0 = access_phase.count();
  const auto multi0 = multi_hist.count();
  const auto pairs0 = pairs_total.value();

  const auto result =
      session_.access(friend_, receipt.post_id, Knowledge::full(ctx), net::pc_profile());
  ASSERT_TRUE(result.success());

  EXPECT_EQ(keygen_phase.count(), keygen0 + 1);
  EXPECT_EQ(decrypt_phase.count(), decrypt0 + 1);
  EXPECT_EQ(access_phase.count(), access0 + 1);
  // Since PR 7 a decrypt is ONE multi-pairing product folding 2k+1 pairs
  // (k satisfied leaves: num + den each, plus the blinding pair e(C, D)).
  EXPECT_EQ(multi_hist.count(), multi0 + 1);
  EXPECT_GE(pairs_total.value(), pairs0 + 3);
}

TEST_F(ObservabilityTest, ShareAndRefreshCountersIncrement) {
  const Context ctx = party_context();
  auto& shares_c1 = counter("sp_share_requests_total", {{"scheme", "c1"}});
  auto& refreshes = counter("sp_refresh_requests_total");
  const auto shares0 = shares_c1.value();
  const auto refreshes0 = refreshes.value();

  const auto receipt =
      session_.share_c1(sharer_, to_bytes("object"), ctx, 2, 4, net::pc_profile());
  EXPECT_EQ(shares_c1.value(), shares0 + 1);

  session_.refresh(sharer_, receipt.post_id, to_bytes("object v2"), ctx, net::pc_profile());
  EXPECT_EQ(refreshes.value(), refreshes0 + 1);
  EXPECT_EQ(shares_c1.value(), shares0 + 1);  // refresh is not a share
}

}  // namespace
}  // namespace sp::core
