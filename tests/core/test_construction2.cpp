// Construction 2 protocol-level tests (paper §V-B): upload file set,
// DisplayPuzzle/Verify on the perturbed tree, receiver Reconstruct + KeyGen
// + Decrypt, and failure paths.
#include "core/construction2.hpp"

#include <gtest/gtest.h>

#include "ec/params.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::Drbg;
using crypto::to_bytes;

Context party_context() {
  return Context({{"Where did we meet?", "Paris"},
                  {"What did we eat?", "pizza"},
                  {"Who hosted?", "Alice"},
                  {"Which month?", "June"}});
}

class Construction2Test : public ::testing::Test {
 protected:
  Construction2Test()
      : curve_(ec::preset_params(ec::ParamPreset::kToy)), c2_(curve_), rng_("c2-tests") {}

  std::optional<Bytes> run_receiver(const Construction2::UploadResult& up,
                                    const Knowledge& knowledge, const std::string& url) {
    const auto challenge = Construction2::display_puzzle(up.perturbed_tree, up.threshold);
    const auto response = Construction2::answer_puzzle(challenge, knowledge);
    const auto reply =
        Construction2::verify(up.perturbed_tree, up.threshold, challenge, response, url);
    if (!reply.granted) return std::nullopt;
    return c2_.access(up.ciphertext, up.public_key, up.master_key, knowledge, rng_);
  }

  ec::Curve curve_;
  Construction2 c2_;
  Drbg rng_;
};

TEST_F(Construction2Test, UploadProducesFourArtifacts) {
  const auto up = c2_.upload(to_bytes("object"), party_context(), 2, rng_);
  EXPECT_FALSE(up.public_key.empty());
  EXPECT_FALSE(up.master_key.empty());
  EXPECT_FALSE(up.ciphertext.empty());
  EXPECT_EQ(up.threshold, 2u);
  EXPECT_EQ(up.perturbed_tree.leaf_count(), 4u);
  EXPECT_GT(up.sp_upload_size(), 0u);
  // Every leaf of the uploaded tree is perturbed — answers never leave the
  // sharer in the clear.
  for (const auto& [id, leaf] : up.perturbed_tree.leaves()) {
    EXPECT_TRUE(leaf->leaf->perturbed);
  }
}

TEST_F(Construction2Test, UploadParameterValidation) {
  EXPECT_THROW(c2_.upload(to_bytes("x"), party_context(), 0, rng_), std::invalid_argument);
  EXPECT_THROW(c2_.upload(to_bytes("x"), party_context(), 5, rng_), std::invalid_argument);
  // Paper: CP-ABE evaluation starts at N = 2.
  const Context single(std::vector<ContextPair>{{"q", "a"}});
  EXPECT_THROW(c2_.upload(to_bytes("x"), single, 1, rng_), std::invalid_argument);
}

TEST_F(Construction2Test, EndToEndWithFullKnowledge) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("a 100 character message body matching the paper's workload!");
  const auto up = c2_.upload(object, ctx, 2, rng_);
  const auto got = run_receiver(up, Knowledge::full(ctx), "dh://objects/c2");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, object);
}

TEST_F(Construction2Test, EndToEndWithExactThreshold) {
  const Context ctx = party_context();
  const Bytes object = to_bytes("payload");
  const auto up = c2_.upload(object, ctx, 2, rng_);
  Drbg krng("c2-exact");
  const Knowledge k2 = Knowledge::partial(ctx, 2, krng);
  const auto got = run_receiver(up, k2, "dh://objects/c2");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, object);
}

TEST_F(Construction2Test, BelowThresholdDenied) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("secret"), ctx, 3, rng_);
  Drbg krng("c2-below");
  const Knowledge k2 = Knowledge::partial(ctx, 2, krng);
  EXPECT_FALSE(run_receiver(up, k2, "u").has_value());
}

TEST_F(Construction2Test, AccessAloneFailsBelowThresholdEvenBypassingVerify) {
  // Even if a malicious SP skipped Verify and handed over all files, the
  // CP-ABE layer itself enforces the threshold.
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("secret"), ctx, 3, rng_);
  Drbg krng("c2-bypass");
  const Knowledge k2 = Knowledge::partial(ctx, 2, krng);
  EXPECT_FALSE(c2_.access(up.ciphertext, up.public_key, up.master_key, k2, rng_).has_value());
}

TEST_F(Construction2Test, DisplayPuzzleListsAllQuestions) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("x"), ctx, 2, rng_);
  const auto ch = Construction2::display_puzzle(up.perturbed_tree, up.threshold);
  EXPECT_EQ(ch.questions.size(), 4u);
  EXPECT_EQ(ch.threshold, 2u);
  for (const auto& p : ctx.pairs()) {
    EXPECT_NE(std::find(ch.questions.begin(), ch.questions.end(), p.question),
              ch.questions.end());
  }
}

TEST_F(Construction2Test, VerifyCountsOnlyCorrectHashes) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("x"), ctx, 2, rng_);
  const auto ch = Construction2::display_puzzle(up.perturbed_tree, up.threshold);

  Knowledge one_right;
  one_right.learn("Where did we meet?", "paris");
  one_right.learn("What did we eat?", "sushi");  // wrong
  const auto resp = Construction2::answer_puzzle(ch, one_right);
  const auto reply = Construction2::verify(up.perturbed_tree, up.threshold, ch, resp, "u");
  EXPECT_FALSE(reply.granted);
  EXPECT_TRUE(reply.url.empty());
}

TEST_F(Construction2Test, VerifyRejectsLengthMismatch) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("x"), ctx, 2, rng_);
  const auto ch = Construction2::display_puzzle(up.perturbed_tree, up.threshold);
  Construction2::Response bad;
  bad.answer_hashes = {"deadbeef"};
  EXPECT_THROW(Construction2::verify(up.perturbed_tree, up.threshold, ch, bad, "u"),
               std::invalid_argument);
}

TEST_F(Construction2Test, AnswerNormalizationMatches) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("obj"), ctx, 2, rng_);
  Knowledge sloppy;
  sloppy.learn("Where did we meet?", "  PARIS ");
  sloppy.learn("What did we eat?", "Pizza");
  const auto got = run_receiver(up, sloppy, "u");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("obj"));
}

TEST_F(Construction2Test, CorruptedFilesRejectedGracefully) {
  const Context ctx = party_context();
  const auto up = c2_.upload(to_bytes("obj"), ctx, 2, rng_);
  const Knowledge know = Knowledge::full(ctx);

  Bytes bad_ct = up.ciphertext;
  bad_ct.resize(bad_ct.size() / 2);
  EXPECT_FALSE(c2_.access(bad_ct, up.public_key, up.master_key, know, rng_).has_value());

  Bytes bad_pk = up.public_key;
  bad_pk.pop_back();
  EXPECT_FALSE(c2_.access(up.ciphertext, bad_pk, up.master_key, know, rng_).has_value());

  Bytes bad_mk = up.master_key;
  bad_mk.push_back(0);
  EXPECT_FALSE(c2_.access(up.ciphertext, up.public_key, bad_mk, know, rng_).has_value());
}

TEST_F(Construction2Test, TamperedCiphertextPayloadDetected) {
  const Context ctx = party_context();
  auto up = c2_.upload(to_bytes("obj"), ctx, 2, rng_);
  // Flip a byte in the sealed-object tail (the DEM envelope).
  up.ciphertext[up.ciphertext.size() - 5] ^= 1;
  EXPECT_FALSE(
      c2_.access(up.ciphertext, up.public_key, up.master_key, Knowledge::full(ctx), rng_)
          .has_value());
}

TEST_F(Construction2Test, SpUploadSizeGrowsWithN) {
  std::size_t prev = 0;
  for (std::size_t n = 2; n <= 8; n += 2) {
    Context ctx;
    for (std::size_t i = 0; i < n; ++i) ctx.add("q" + std::to_string(i), "a" + std::to_string(i));
    const auto up = c2_.upload(to_bytes("x"), ctx, 1, rng_);
    const std::size_t total = up.sp_upload_size() + up.ciphertext.size();
    EXPECT_GT(total, prev);
    prev = total;
  }
}

// Threshold boundary sweep, mirroring the C1 sweep.
class Construction2Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Construction2Sweep, ThresholdBoundaryHolds) {
  const std::size_t k = GetParam();
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kToy));
  const Construction2 c2(curve);
  Drbg rng("c2-sweep-" + std::to_string(k));
  Context ctx;
  for (std::size_t i = 0; i < 5; ++i) ctx.add("q" + std::to_string(i), "a" + std::to_string(i));
  const Bytes object = to_bytes("obj");
  const auto up = c2.upload(object, ctx, k, rng);

  const Knowledge enough = Knowledge::partial(ctx, k, rng);
  const auto got = c2.access(up.ciphertext, up.public_key, up.master_key, enough, rng);
  ASSERT_TRUE(got.has_value()) << "k=" << k;
  EXPECT_EQ(*got, object);

  if (k > 1) {
    const Knowledge short_one = Knowledge::partial(ctx, k - 1, rng);
    EXPECT_FALSE(
        c2.access(up.ciphertext, up.public_key, up.master_key, short_one, rng).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(K, Construction2Sweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sp::core
