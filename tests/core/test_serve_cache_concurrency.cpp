// Serving-cache hammers (PR 10): 8 threads on the sharded LRU directly, then
// through the full Session serving path with refresh/revoke churn racing the
// readers. The *ConcurrencyHammer name puts this suite in the TSan CI job's
// filter; invariants here are the ones a data race would break first —
// get-or-compute linearizability (a hit is always a value some put stored
// whole), hard capacity bounds, and no stale grant after churn.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/serve_cache.hpp"
#include "core/session.hpp"
#include "support/fixtures.hpp"

namespace sp::core {
namespace {

using crypto::Bytes;
using crypto::to_bytes;
using Kind = ServeCache::Kind;

constexpr std::size_t kThreads = 8;

/// The deterministic "compute" a cache slot memoizes: value bytes are a pure
/// function of the key, so a torn or cross-wired entry is detectable.
Bytes value_for(const std::string& key) {
  Bytes v(32);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(h >> ((i % 8) * 8));
  }
  return v;
}

TEST(ServeCacheConcurrencyHammer, GetOrComputeIsLinearizable) {
  ServeCache cache(CacheConfig{.capacity = 64, .shards = 4});
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      for (int i = 0; i < 4000; ++i) {
        // 32 keys over a 64-slot cache: heavy same-key contention, no
        // eviction pressure — every hit must be the key's own value, whole.
        const std::string key = ServeCache::key(
            "post-" + std::to_string((i * 7 + static_cast<int>(t)) % 32), 0, Kind::kC2Dem);
        if (const auto hit = cache.get(key, Kind::kC2Dem)) {
          if (*hit != value_for(key)) wrong.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.put(key, Kind::kC2Dem, value_for(key));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0u);
  const auto s = cache.stats();
  EXPECT_GT(s.hits[static_cast<std::size_t>(Kind::kC2Dem)], 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ServeCacheConcurrencyHammer, BoundsHoldUnderMixedChurn) {
  // Writers flood a small cache, a churn thread invalidates whole posts and
  // periodically clears, negative writers race FIFO evictions — the hard
  // bounds must hold at every sampled instant, not just at the end.
  ServeCache cache(CacheConfig{.capacity = 32, .negative_capacity = 16, .shards = 4});
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> over_bound{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads - 2; ++t) {
    threads.emplace_back([&cache, &stop, &over_bound, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 6000; ++i) {
        const std::string post = "post-" + std::to_string((i + static_cast<int>(t) * 11) % 40);
        cache.put(ServeCache::key(post, i % 3, Kind::kC1Sig, "u"), Kind::kC1Sig, Bytes{1});
        cache.negative_put(ServeCache::key(post, i % 3, Kind::kDhNegative, "u"));
        if (cache.size() > cache.capacity() ||
            cache.negative_size() > cache.negative_capacity()) {
          over_bound.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&cache, &stop] {
    for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 2000; ++i) {
      cache.invalidate_post("post-" + std::to_string(i % 40));
      if (i % 500 == 499) cache.clear();
    }
  });
  threads.emplace_back([&cache, &stop] {
    for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 6000; ++i) {
      (void)cache.get(ServeCache::key("post-" + std::to_string(i % 40), i % 3, Kind::kC1Sig, "u"),
                      Kind::kC1Sig);
      (void)cache.negative_hit(
          ServeCache::key("post-" + std::to_string(i % 40), i % 3, Kind::kDhNegative, "u"));
    }
  });
  for (std::thread& th : threads) th.join();
  stop.store(true);
  EXPECT_EQ(over_bound.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_LE(cache.negative_size(), cache.negative_capacity());
}

class CachedFanoutHammer : public testsupport::FanoutSessionFixture {
 protected:
  CachedFanoutHammer()
      : FanoutSessionFixture(
            [] {
              SessionConfig cfg = testsupport::toy_config("serve-cache-hammer");
              cfg.cache = CacheConfig{};
              return cfg;
            }(),
            kThreads) {}
};

TEST_F(CachedFanoutHammer, CachedServingPathUnderRefreshChurn) {
  // 8 receiver threads hammer the C1/C2 posts through the full serving path
  // while the sharer refreshes both posts; every grant must return the
  // current object bytes — a stale cached grant would surface here as the
  // wrong plaintext.
  const Knowledge knows = Knowledge::full(ctx_);
  std::atomic<std::size_t> wrong_bytes{0};
  std::atomic<std::size_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &knows, &wrong_bytes, &granted, t] {
      for (int i = 0; i < 10; ++i) {
        const bool is_c1 = i % 2 == 0;
        const auto result = session_.access_with_retries(
            receivers_[t], is_c1 ? c1_post_ : c2_post_, knows, net::pc_profile(), 4);
        if (result.success()) {
          granted.fetch_add(1, std::memory_order_relaxed);
          // Refresh re-uploads the same plaintext, so any epoch's grant
          // decrypts to the same bytes — unless a stale DEM key/URL leaked
          // across epochs, which corrupts or fails the open.
          if (*result.object != (is_c1 ? to_bytes("c1 object") : to_bytes("c2 object"))) {
            wrong_bytes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // The churn writer: refresh serializes on the registry's exclusive lock
  // against the in-flight reads above.
  for (int round = 0; round < 6; ++round) {
    session_.refresh(sharer_, c1_post_, to_bytes("c1 object"), ctx_, net::pc_profile());
    session_.refresh(sharer_, c2_post_, to_bytes("c2 object"), ctx_, net::pc_profile());
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(wrong_bytes.load(), 0u);
  EXPECT_GT(granted.load(), 0u);
  ASSERT_NE(session_.serve_cache(), nullptr);
  EXPECT_LE(session_.serve_cache()->size(), session_.serve_cache()->capacity());
}

}  // namespace
}  // namespace sp::core
