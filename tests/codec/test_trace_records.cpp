// Trace-dump codec tests (src/codec/trace_records.hpp): span round trips,
// dump grouping, WAL-style torn-tail tolerance, and rejection of wrong
// record types / malformed payloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/records.hpp"
#include "codec/trace_records.hpp"
#include "codec/wire.hpp"

namespace {

using sp::codec::decode_trace_dump;
using sp::codec::decode_trace_span;
using sp::codec::encode_trace_dump;
using sp::codec::encode_trace_span;
using sp::crypto::Bytes;
using sp::obs::SpanRecord;
using sp::obs::SpanStatus;
using sp::obs::TraceData;
using sp::obs::TraceId;

SpanRecord make_span(std::uint64_t id, std::uint64_t parent, const std::string& name) {
  SpanRecord s;
  s.span_id = id;
  s.parent_id = parent;
  s.name = name;
  s.start_ns = 1000 * id;
  s.end_ns = 1000 * id + 500;
  s.thread = 0xbeef;
  return s;
}

TraceData make_trace(TraceId id) {
  TraceData t;
  t.id = id;
  SpanRecord child = make_span(2, 1, "child");
  child.status = SpanStatus::kTransientFault;
  child.attrs = {{"fault", "timeout"}, {"backoff_ms", "27.5"}};
  child.links = {{TraceId{7, 8}, 9}};
  SpanRecord root = make_span(1, 0, "request");
  root.end_ns = 9000;
  t.spans = {child, root};
  t.root_name = "request";
  t.duration_ms = root.duration_ms();
  t.errored = true;
  return t;
}

TEST(TraceRecordsTest, SingleSpanRoundTrip) {
  const TraceId id{0x1111, 0x2222};
  SpanRecord span = make_span(5, 1, "dh.fetch");
  span.attrs = {{"receiver", "3"}};
  span.status = SpanStatus::kTerminal;
  const Bytes frame = encode_trace_span(id, span);
  const auto decoded = decode_trace_span(frame);
  EXPECT_EQ(decoded.trace, id);
  EXPECT_EQ(decoded.span, span);
}

TEST(TraceRecordsTest, DumpRoundTripPreservesTraceGroupingAndOrder) {
  const std::vector<TraceData> traces = {make_trace(TraceId{1, 2}), make_trace(TraceId{3, 4})};
  const Bytes dump = encode_trace_dump(traces);
  const auto decoded = decode_trace_dump(dump);
  ASSERT_EQ(decoded.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded[i].id, traces[i].id);
    EXPECT_EQ(decoded[i].spans, traces[i].spans);
    // Root fields are re-derived, not stored.
    EXPECT_EQ(decoded[i].root_name, "request");
    EXPECT_TRUE(decoded[i].errored);
    EXPECT_DOUBLE_EQ(decoded[i].duration_ms, traces[i].duration_ms);
  }
}

TEST(TraceRecordsTest, TornTailLosesOnlyTheLastPartialFrame) {
  const std::vector<TraceData> traces = {make_trace(TraceId{1, 2})};
  Bytes dump = encode_trace_dump(traces);
  dump.resize(dump.size() - 3);  // tear the final frame
  const auto decoded = decode_trace_dump(dump);
  ASSERT_EQ(decoded.size(), 1u);
  ASSERT_EQ(decoded[0].spans.size(), 1u);
  EXPECT_EQ(decoded[0].spans[0].name, "child");
}

TEST(TraceRecordsTest, WrongRecordTypeThrows) {
  // A structurally valid frame of another record type must not silently
  // decode as a span.
  const Bytes payload = {1, 2, 3};
  const Bytes framed =
      sp::codec::frame(static_cast<std::uint8_t>(sp::codec::RecordType::kC1Puzzle), payload);
  EXPECT_THROW((void)decode_trace_span(framed), sp::codec::CodecError);
  EXPECT_THROW((void)decode_trace_dump(framed), sp::codec::CodecError);
}

TEST(TraceRecordsTest, InvalidStatusByteThrows) {
  sp::codec::Writer w;
  w.u64(1);  // trace hi
  w.u64(2);  // trace lo
  w.u64(1);  // span id
  w.u64(0);  // parent
  w.str("request");
  w.u64(10);
  w.u64(20);
  w.u32(0);
  w.u8(9);  // not a SpanStatus
  w.u16(0);
  w.u16(0);
  const Bytes framed =
      sp::codec::frame(static_cast<std::uint8_t>(sp::codec::RecordType::kTraceSpan), w.take());
  EXPECT_THROW((void)decode_trace_span(framed), sp::codec::CodecError);
}

TEST(TraceRecordsTest, TruncatedPayloadThrows) {
  const Bytes frame = encode_trace_span(TraceId{1, 2}, make_span(1, 0, "request"));
  // Rebuild a *valid* frame around a truncated payload: the codec layer must
  // reject it structurally, not via CRC luck.
  const auto parsed = sp::codec::unframe(frame);
  Bytes short_payload(parsed.payload.begin(), parsed.payload.end() - 4);
  const Bytes reframed =
      sp::codec::frame(static_cast<std::uint8_t>(sp::codec::RecordType::kTraceSpan),
                       short_payload);
  EXPECT_THROW((void)decode_trace_span(reframed), sp::codec::CodecError);
}

}  // namespace
