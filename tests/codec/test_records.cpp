#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "abe/access_tree.hpp"
#include "codec/records.hpp"
#include "codec/wire.hpp"
#include "core/construction2.hpp"
#include "core/puzzle.hpp"
#include "crypto/bytes.hpp"

namespace sp::codec {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

// Deterministic pseudo-random object factories. Property style: for every
// seeded draw, encode -> decode -> re-encode must be byte-identical, and the
// decoded object must equal the original.

Bytes random_bytes(std::mt19937& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<int> byte(0, 255);
  Bytes out(len(rng));
  for (auto& b : out) b = static_cast<std::uint8_t>(byte(rng));
  return out;
}

std::string random_string(std::mt19937& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<int> ch(32, 126);
  std::string out(len(rng), ' ');
  for (auto& c : out) c = static_cast<char>(ch(rng));
  return out;
}

Envelope random_envelope(std::mt19937& rng) {
  std::uniform_int_distribution<int> op(1, 3);
  std::uniform_int_distribution<int> small(0, 255);
  Envelope env;
  env.op = static_cast<Envelope::Op>(op(rng));
  env.space = static_cast<std::uint8_t>(small(rng));
  env.seq = std::uniform_int_distribution<std::uint64_t>()(rng);
  env.id = random_string(rng, 48);
  env.value = random_bytes(rng, 256);
  return env;
}

core::Puzzle random_puzzle(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> n_dist(0, 12);
  core::Puzzle p;
  const std::size_t n = n_dist(rng);
  for (std::size_t i = 0; i < n; ++i) {
    core::PuzzleEntry e;
    e.question = random_string(rng, 40);
    e.answer_hash = random_bytes(rng, 32);
    e.blinded_share = random_bytes(rng, 64);
    p.entries.push_back(std::move(e));
  }
  p.threshold = n == 0 ? 0 : std::uniform_int_distribution<std::size_t>(1, n)(rng);
  p.puzzle_key = random_bytes(rng, 32);
  p.url = "dh://objects/" + random_string(rng, 24);
  p.sharer_public_key = random_bytes(rng, 65);
  p.signature = random_bytes(rng, 64);
  return p;
}

abe::AccessTree random_height1_tree(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> n_dist(1, 8);
  const std::size_t n = n_dist(rng);
  std::vector<std::pair<std::string, std::string>> qa;
  for (std::size_t i = 0; i < n; ++i) {
    qa.emplace_back("q" + std::to_string(i) + random_string(rng, 12),
                    "a" + std::to_string(i) + random_string(rng, 12));
  }
  const std::size_t k = std::uniform_int_distribution<std::size_t>(1, n)(rng);
  return abe::AccessTree::puzzle_policy(qa, k);
}

// ---------------------------------------------------------------- envelopes

TEST(RecordCodecs, EnvelopeRoundTripProperty) {
  std::mt19937 rng(0xC0DEC);
  for (int i = 0; i < 200; ++i) {
    const Envelope env = random_envelope(rng);
    const Bytes encoded = encode_envelope(env);
    const Envelope decoded = decode_envelope(encoded);
    EXPECT_EQ(decoded, env);
    EXPECT_EQ(encode_envelope(decoded), encoded);  // canonical re-encode
  }
}

TEST(RecordCodecs, EnvelopeRejectsBadOp) {
  Envelope env;
  env.id = "k1";
  Bytes encoded = encode_envelope(env);
  // Payload starts right after the 10-byte header; op is its first byte.
  Bytes payload(encoded.begin() + 10, encoded.end() - 4);
  payload[0] = 99;
  const Bytes reframed = frame(static_cast<std::uint8_t>(RecordType::kEnvelope), payload);
  EXPECT_THROW((void)decode_envelope(reframed), CodecError);
}

// ---------------------------------------------------------------- puzzles

TEST(RecordCodecs, C1PuzzleRoundTripProperty) {
  std::mt19937 rng(0x51);
  for (int i = 0; i < 60; ++i) {
    const core::Puzzle p = random_puzzle(rng);
    const Bytes encoded = encode_c1_puzzle(p);
    const core::Puzzle decoded = decode_c1_puzzle(encoded);
    EXPECT_EQ(decoded, p);
    EXPECT_EQ(encode_c1_puzzle(decoded), encoded);
  }
}

TEST(RecordCodecs, AccessTreeRoundTripProperty) {
  std::mt19937 rng(0x7EE);
  for (int i = 0; i < 60; ++i) {
    const abe::AccessTree tree = random_height1_tree(rng);
    const Bytes encoded = encode_access_tree(tree);
    const abe::AccessTree decoded = decode_access_tree(encoded);
    EXPECT_EQ(decoded, tree);
    EXPECT_EQ(encode_access_tree(decoded), encoded);
    // Perturbed trees (hashed leaves) round-trip too.
    const abe::AccessTree perturbed = tree.perturb();
    EXPECT_EQ(decode_access_tree(encode_access_tree(perturbed)), perturbed);
  }
}

TEST(RecordCodecs, C2FileSetRoundTripProperty) {
  std::mt19937 rng(0xC2);
  for (int i = 0; i < 40; ++i) {
    core::Construction2::UploadResult files;
    files.perturbed_tree = random_height1_tree(rng).perturb();
    files.public_key = random_bytes(rng, 128);
    files.master_key = random_bytes(rng, 128);
    files.ciphertext = random_bytes(rng, 512);
    files.threshold = std::uniform_int_distribution<std::size_t>(1, 8)(rng);

    const Bytes encoded = encode_c2_file_set(files);
    const core::Construction2::UploadResult decoded = decode_c2_file_set(encoded);
    EXPECT_EQ(decoded.perturbed_tree, files.perturbed_tree);
    EXPECT_EQ(decoded.public_key, files.public_key);
    EXPECT_EQ(decoded.master_key, files.master_key);
    EXPECT_EQ(decoded.ciphertext, files.ciphertext);
    EXPECT_EQ(decoded.threshold, files.threshold);
    EXPECT_EQ(encode_c2_file_set(decoded), encoded);
  }
}

TEST(RecordCodecs, ObservationAndDhBlobRoundTrip) {
  std::mt19937 rng(0x0B5);
  for (int i = 0; i < 60; ++i) {
    const std::string channel = random_string(rng, 32);
    const Bytes data = random_bytes(rng, 200);
    const Bytes obs_encoded = encode_observation(channel, data);
    const ObservationRecord obs_rec = decode_observation(obs_encoded);
    EXPECT_EQ(obs_rec.channel, channel);
    EXPECT_EQ(obs_rec.data, data);
    EXPECT_EQ(encode_observation(obs_rec.channel, obs_rec.data), obs_encoded);

    const std::string url = "dh://objects/" + random_string(rng, 24);
    const Bytes blob = random_bytes(rng, 200);
    const Bytes blob_encoded = encode_dh_blob(url, blob);
    const DhBlobRecord blob_rec = decode_dh_blob(blob_encoded);
    EXPECT_EQ(blob_rec.url, url);
    EXPECT_EQ(blob_rec.blob, blob);
    EXPECT_EQ(encode_dh_blob(blob_rec.url, blob_rec.blob), blob_encoded);
  }
}

// ------------------------------------------------- rejection, every type

TEST(RecordCodecs, EveryRecordTypeRejectsTruncationAndBitFlips) {
  std::mt19937 rng(0xBAD);
  const core::Puzzle puzzle = random_puzzle(rng);
  const abe::AccessTree tree = random_height1_tree(rng);
  core::Construction2::UploadResult files;
  files.perturbed_tree = tree.perturb();
  files.public_key = random_bytes(rng, 64);
  files.master_key = random_bytes(rng, 64);
  files.ciphertext = random_bytes(rng, 128);
  files.threshold = 2;
  Envelope env = random_envelope(rng);

  struct Sample {
    const char* name;
    Bytes encoded;
    std::function<void(std::span<const std::uint8_t>)> decode;
  };
  const std::vector<Sample> samples = {
      {"envelope", encode_envelope(env), [](auto d) { (void)decode_envelope(d); }},
      {"c1_puzzle", encode_c1_puzzle(puzzle), [](auto d) { (void)decode_c1_puzzle(d); }},
      {"access_tree", encode_access_tree(tree), [](auto d) { (void)decode_access_tree(d); }},
      {"c2_file_set", encode_c2_file_set(files), [](auto d) { (void)decode_c2_file_set(d); }},
      {"observation", encode_observation("chan", to_bytes("data")),
       [](auto d) { (void)decode_observation(d); }},
      {"dh_blob", encode_dh_blob("dh://objects/abc", to_bytes("blob")),
       [](auto d) { (void)decode_dh_blob(d); }},
  };

  for (const Sample& s : samples) {
    // Truncation at every prefix length.
    for (std::size_t len = 0; len < s.encoded.size(); ++len) {
      EXPECT_THROW(s.decode(std::span(s.encoded).subspan(0, len)), CodecError)
          << s.name << " truncated to " << len;
    }
    // A flipped bit in every byte position.
    for (std::size_t i = 0; i < s.encoded.size(); ++i) {
      Bytes bad = s.encoded;
      bad[i] ^= 0x10;
      EXPECT_THROW(s.decode(bad), CodecError) << s.name << " flipped byte " << i;
    }
    // Trailing garbage.
    Bytes padded = s.encoded;
    padded.push_back(0x00);
    EXPECT_THROW(s.decode(padded), CodecError) << s.name << " with trailing byte";
  }
}

TEST(RecordCodecs, WrongRecordTypeRejected) {
  const Bytes obs_frame = encode_observation("chan", to_bytes("data"));
  EXPECT_THROW((void)decode_dh_blob(obs_frame), CodecError);
  EXPECT_THROW((void)decode_c1_puzzle(obs_frame), CodecError);
  EXPECT_THROW((void)decode_envelope(obs_frame), CodecError);
}

TEST(RecordCodecs, FutureVersionRejectedByTypedDecoders) {
  // Same payload, future format-version byte: the frame parses (so streaming
  // replay can skip it) but every typed decoder refuses to interpret it.
  const Bytes current = encode_observation("chan", to_bytes("data"));
  const Frame f = unframe(current);
  const Bytes future =
      frame(f.type, f.payload, kWireVersion + 1);
  EXPECT_THROW((void)decode_observation(future), CodecError);
}

TEST(RecordCodecs, HostileTreeFanOutRejected) {
  // Hand-craft an internal node claiming 2^20 children with a near-empty
  // payload: the decoder must refuse before reserving anything.
  Writer w;
  w.u32(2);        // threshold
  w.u8(0);         // internal node
  w.u32(1u << 20); // children count far beyond the remaining bytes
  const Bytes reframed = frame(static_cast<std::uint8_t>(RecordType::kAccessTree), w.view());
  EXPECT_THROW((void)decode_access_tree(reframed), CodecError);
}

}  // namespace
}  // namespace sp::codec
