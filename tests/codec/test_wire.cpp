#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "codec/wire.hpp"
#include "crypto/bytes.hpp"

namespace sp::codec {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

// ------------------------------------------------------------------ CRC32C

TEST(Crc32c, KnownVectors) {
  // The iSCSI check value (RFC 3720 appendix / every CRC catalogue).
  EXPECT_EQ(crc32c(to_bytes("123456789")), 0xE3069283u);
  // Empty input: init and final inversion cancel.
  EXPECT_EQ(crc32c(Bytes{}), 0x00000000u);
  // 32 zero bytes (RFC 3720 §B.4 test pattern).
  EXPECT_EQ(crc32c(Bytes(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(crc32c(Bytes(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = crc32c(std::span(data).subspan(0, split));
    const std::uint32_t chained = crc32c(std::span(data).subspan(split), first);
    EXPECT_EQ(chained, crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  Bytes data = to_bytes("payload under test");
  const std::uint32_t good = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(data), good) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

// ------------------------------------------------------------ writer/reader

TEST(WireFields, LittleEndianLayout) {
  Writer w;
  w.u8(0x01);
  w.u16(0x2345);
  w.u32(0x6789ABCD);
  w.u64(0x1122334455667788ull);
  const Bytes out = w.take();
  const Bytes want = {0x01, 0x45, 0x23, 0xCD, 0xAB, 0x89, 0x67,
                      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  EXPECT_EQ(out, want);
}

TEST(WireFields, RoundTripAllFieldKinds) {
  Writer w;
  w.u8(200);
  w.u16(60000);
  w.u32(4000000000u);
  w.u64(0xFEDCBA9876543210ull);
  w.blob(to_bytes("blob contents"));
  w.str("a string field");
  w.blob({});  // empty blob is legal
  const Bytes out = w.take();

  Reader r(out);
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u16(), 60000);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 0xFEDCBA9876543210ull);
  EXPECT_EQ(r.blob(), to_bytes("blob contents"));
  EXPECT_EQ(r.str(), "a string field");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_NO_THROW(r.expect_done("test"));
}

TEST(WireFields, ReaderRejectsTruncation) {
  Writer w;
  w.u64(42);
  w.blob(to_bytes("abcdef"));
  const Bytes out = w.take();
  // Chop at every prefix length: no prefix may decode cleanly.
  for (std::size_t len = 0; len < out.size(); ++len) {
    Reader r{std::span(out).subspan(0, len)};
    EXPECT_THROW(
        {
          (void)r.u64();
          (void)r.blob();
          r.expect_done("truncated");
        },
        CodecError)
        << "prefix " << len;
  }
}

TEST(WireFields, ReaderRejectsOversizedLengthPrefix) {
  Writer w;
  w.u32(0xFFFFFFFFu);  // a length prefix far beyond the input
  const Bytes out = w.take();
  Reader r(out);
  EXPECT_THROW((void)r.blob(), CodecError);
}

TEST(WireFields, TrailingBytesRejected) {
  Writer w;
  w.u32(7);
  Bytes out = w.take();
  out.push_back(0x00);
  Reader r(out);
  (void)r.u32();
  EXPECT_THROW(r.expect_done("trailing"), CodecError);
}

// ---------------------------------------------------------------- framing

TEST(Framing, RoundTrip) {
  const Bytes payload = to_bytes("framed payload");
  const Bytes framed = frame(3, payload);
  EXPECT_EQ(framed.size(), payload.size() + kFrameOverhead);
  const Frame f = unframe(framed);
  EXPECT_EQ(f.version, kWireVersion);
  EXPECT_EQ(f.type, 3);
  EXPECT_EQ(Bytes(f.payload.begin(), f.payload.end()), payload);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  const Bytes framed = frame(9, {});
  const Frame f = unframe(framed);
  EXPECT_EQ(f.type, 9);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Framing, EveryBitFlipRejected) {
  const Bytes framed = frame(5, to_bytes("integrity"));
  for (std::size_t i = 0; i < framed.size(); ++i) {
    Bytes bad = framed;
    bad[i] ^= 0x01;
    EXPECT_THROW((void)unframe(bad), CodecError) << "byte " << i;
  }
}

TEST(Framing, EveryTruncationRejected) {
  const Bytes framed = frame(5, to_bytes("truncate me"));
  for (std::size_t len = 0; len < framed.size(); ++len) {
    EXPECT_THROW((void)unframe(std::span(framed).subspan(0, len)), CodecError) << "len " << len;
  }
}

TEST(Framing, TrailingBytesRejected) {
  Bytes framed = frame(1, to_bytes("x"));
  framed.push_back(0xAA);
  EXPECT_THROW((void)unframe(framed), CodecError);
}

TEST(Framing, UnknownVersionRejected) {
  // Re-frame with a future version byte: CRC is valid, version is not ours.
  const Bytes framed = frame(1, to_bytes("versioned"), kWireVersion + 1);
  const Frame f = unframe(framed);  // unframe surfaces the version...
  EXPECT_EQ(f.version, kWireVersion + 1);
  // ...and the typed decoders reject it (see test_records.cpp).
}

TEST(Framing, StreamingParserWalksConcatenatedFrames) {
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    const Bytes f = frame(static_cast<std::uint8_t>(i + 1), to_bytes(std::to_string(i)));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  std::size_t off = 0;
  int seen = 0;
  while (off < stream.size()) {
    const auto f = try_unframe_prefix(stream, off);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, seen + 1);
    ++seen;
  }
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(off, stream.size());
}

TEST(Framing, StreamingParserStopsAtTornTail) {
  Bytes stream = frame(1, to_bytes("complete"));
  const Bytes torn = frame(2, to_bytes("torn record"));
  stream.insert(stream.end(), torn.begin(), torn.end() - 3);  // lose the CRC tail

  std::size_t off = 0;
  const auto first = try_unframe_prefix(stream, off);
  ASSERT_TRUE(first.has_value());
  const std::size_t valid = off;
  const auto second = try_unframe_prefix(stream, off);
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(off, valid);  // a torn tail must not advance the cursor
}

TEST(Framing, StreamingParserStopsAtCorruptFrame) {
  Bytes stream = frame(1, to_bytes("one"));
  Bytes second = frame(2, to_bytes("two"));
  second[second.size() - 1] ^= 0xFF;  // corrupt the second frame's CRC
  const std::size_t first_len = stream.size();
  stream.insert(stream.end(), second.begin(), second.end());

  std::size_t off = 0;
  ASSERT_TRUE(try_unframe_prefix(stream, off).has_value());
  EXPECT_FALSE(try_unframe_prefix(stream, off).has_value());
  EXPECT_EQ(off, first_len);
}

}  // namespace
}  // namespace sp::codec
