#include "ec/curve.hpp"

#include <gtest/gtest.h>

#include "ec/params.hpp"

namespace sp::ec {
namespace {

using crypto::BigInt;
using crypto::Drbg;

const Curve& toy_curve() {
  static const Curve c(preset_params(ParamPreset::kToy));
  return c;
}

TEST(Params, ToyParamsSatisfyInvariants) {
  const CurveParams& p = preset_params(ParamPreset::kToy);
  Drbg rng("params-check");
  auto rb = [&rng](std::size_t n) { return rng.bytes(n); };
  EXPECT_TRUE(BigInt::is_probable_prime(p.fp->p(), 20, rb));
  EXPECT_TRUE(BigInt::is_probable_prime(p.q, 20, rb));
  EXPECT_EQ(p.h * p.q, p.fp->p() + BigInt{1});
  EXPECT_TRUE(p.fp->p_is_3_mod_4());
}

TEST(Params, DeterministicGeneration) {
  const CurveParams a = generate_params(32, 80, "same-seed");
  const CurveParams b = generate_params(32, 80, "same-seed");
  EXPECT_EQ(a.fp->p(), b.fp->p());
  EXPECT_EQ(a.q, b.q);
  const CurveParams c = generate_params(32, 80, "other-seed");
  EXPECT_NE(c.fp->p(), a.fp->p());
}

TEST(Params, RejectsBadSizes) {
  EXPECT_THROW(generate_params(32, 33, "x"), std::invalid_argument);
}

TEST(Curve, RejectsInconsistentParams) {
  CurveParams p = preset_params(ParamPreset::kToy);
  p.h = p.h + BigInt{1};
  EXPECT_THROW(Curve{p}, std::invalid_argument);
}

TEST(Curve, GroupElementsAreOnCurveAndInSubgroup) {
  const Curve& c = toy_curve();
  Drbg rng("curve-sub");
  for (int i = 0; i < 10; ++i) {
    const Point g = c.random_group_element(rng);
    EXPECT_FALSE(g.is_infinity());
    EXPECT_TRUE(c.on_curve(g));
    EXPECT_TRUE(c.mul(g, c.order()).is_infinity());  // order divides q
  }
}

TEST(Curve, AdditionGroupLaws) {
  const Curve& c = toy_curve();
  Drbg rng("curve-laws");
  const Point g = c.random_group_element(rng);
  const Point h = c.random_group_element(rng);
  const Point k = c.random_group_element(rng);
  // Commutativity and associativity.
  EXPECT_EQ(c.add(g, h), c.add(h, g));
  EXPECT_EQ(c.add(c.add(g, h), k), c.add(g, c.add(h, k)));
  // Identity and inverse.
  EXPECT_EQ(c.add(g, Point{}), g);
  EXPECT_TRUE(c.add(g, c.negate(g)).is_infinity());
  // Doubling consistency.
  EXPECT_EQ(c.dbl(g), c.add(g, g));
}

TEST(Curve, ScalarMulMatchesRepeatedAddition) {
  const Curve& c = toy_curve();
  Drbg rng("curve-mul");
  const Point g = c.random_group_element(rng);
  Point acc;  // infinity
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(c.mul(g, BigInt{k}), acc) << "k=" << k;
    acc = c.add(acc, g);
  }
}

TEST(Curve, ScalarMulDistributes) {
  const Curve& c = toy_curve();
  Drbg rng("curve-dist");
  const Point g = c.random_group_element(rng);
  const BigInt a = BigInt::random_below(c.order(), [&](std::size_t n) { return rng.bytes(n); });
  const BigInt b = BigInt::random_below(c.order(), [&](std::size_t n) { return rng.bytes(n); });
  EXPECT_EQ(c.add(c.mul(g, a), c.mul(g, b)), c.mul(g, (a + b).mod(c.order())));
  EXPECT_EQ(c.mul(c.mul(g, a), b), c.mul(g, BigInt::mod_mul(a, b, c.order())));
}

TEST(Curve, NegativeScalar) {
  const Curve& c = toy_curve();
  Drbg rng("curve-neg");
  const Point g = c.random_group_element(rng);
  EXPECT_EQ(c.mul(g, BigInt{-3}), c.negate(c.mul(g, BigInt{3})));
}

TEST(Curve, HashToGroupDeterministicAndDistinct) {
  const Curve& c = toy_curve();
  const Point a = c.hash_to_group(crypto::to_bytes("attribute:location=paris"));
  const Point b = c.hash_to_group(crypto::to_bytes("attribute:location=paris"));
  const Point d = c.hash_to_group(crypto::to_bytes("attribute:location=rome"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, d);
  EXPECT_TRUE(c.on_curve(a));
  EXPECT_TRUE(c.mul(a, c.order()).is_infinity());
}

TEST(Curve, SerializeRoundTrip) {
  const Curve& c = toy_curve();
  Drbg rng("curve-ser");
  const Point g = c.random_group_element(rng);
  EXPECT_EQ(c.deserialize(c.serialize(g)), g);
  EXPECT_TRUE(c.deserialize(c.serialize(Point{})).is_infinity());
}

TEST(Curve, DeserializeRejectsGarbage) {
  const Curve& c = toy_curve();
  EXPECT_THROW(c.deserialize(crypto::Bytes{}), std::invalid_argument);
  EXPECT_THROW(c.deserialize(crypto::Bytes{0x05, 1, 2}), std::invalid_argument);
  // Valid length but point not on curve.
  crypto::Bytes bogus(1 + 2 * c.fp()->byte_length(), 0x02);
  bogus[0] = 0x04;
  EXPECT_THROW(c.deserialize(bogus), std::invalid_argument);
}

TEST(Curve, OnCurveRejectsOffCurvePoint) {
  const Curve& c = toy_curve();
  Drbg rng("curve-off");
  const Point g = c.random_group_element(rng);
  const Point bogus(g.x(), g.y() + field::Fp::one(c.fp()));
  EXPECT_FALSE(c.on_curve(bogus));
}

}  // namespace
}  // namespace sp::ec
