#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/drbg.hpp"
#include "ec/pairing.hpp"
#include "ec/params.hpp"

namespace sp::ec {
namespace {

using crypto::BigInt;
using crypto::Drbg;

const Curve& toy_curve() {
  static const Curve curve(preset_params(ParamPreset::kToy));
  return curve;
}

TEST(ScalarMul, WnafMatchesBinaryRandomized) {
  const Curve& curve = toy_curve();
  Drbg rng("wnaf-vs-binary");
  for (int i = 0; i < 50; ++i) {
    const Point p = curve.random_group_element(rng);
    const BigInt k = BigInt::from_bytes(rng.bytes(1 + (i * 7) % 20));
    EXPECT_EQ(curve.mul(p, k), curve.mul_binary(p, k)) << "i=" << i << " k=" << k.to_hex();
  }
}

TEST(ScalarMul, WnafEdgeScalars) {
  const Curve& curve = toy_curve();
  Drbg rng("wnaf-edges");
  const Point p = curve.random_group_element(rng);
  for (const auto& k : {BigInt{0}, BigInt{1}, BigInt{2}, BigInt{3}, BigInt{15}, BigInt{16},
                        BigInt{17}, curve.order() - BigInt{1}, curve.order(),
                        curve.order() + BigInt{1}}) {
    EXPECT_EQ(curve.mul(p, k), curve.mul_binary(p, k)) << "k=" << k.to_dec();
  }
  // Negative scalars negate the point.
  EXPECT_EQ(curve.mul(p, BigInt{-5}), curve.mul_binary(p, BigInt{-5}));
  EXPECT_EQ(curve.mul(Point{}, BigInt{7}), Point{});
}

TEST(ScalarMul, FixedBaseMatchesGeneric) {
  const Curve& curve = toy_curve();
  Drbg rng("fixed-base-equiv");
  const Point base = curve.random_group_element(rng);
  EXPECT_FALSE(curve.has_fixed_base(base));
  curve.precompute_fixed_base(base);
  ASSERT_TRUE(curve.has_fixed_base(base));
  for (int i = 0; i < 50; ++i) {
    const BigInt k = BigInt::from_bytes(rng.bytes(1 + (i * 5) % 12)).mod(curve.order());
    EXPECT_EQ(curve.mul(base, k), curve.mul_binary(base, k)) << "i=" << i;
  }
  // Edge scalars through the table path too.
  for (const auto& k : {BigInt{0}, BigInt{1}, BigInt{15}, BigInt{16}, curve.order() - BigInt{1}}) {
    EXPECT_EQ(curve.mul(base, k), curve.mul_binary(base, k)) << "k=" << k.to_dec();
  }
  // q·B = O exercises the cancellation inside the table accumulation.
  EXPECT_TRUE(curve.mul(base, curve.order()).is_infinity());
}

TEST(ScalarMul, FixedBaseSharedAcrossCurveInstances) {
  // The registry is keyed by (p, base), not by Curve identity: a second
  // Curve over the same preset sees the first one's table.
  const Curve& curve = toy_curve();
  Drbg rng("fixed-base-shared");
  const Point base = curve.random_group_element(rng);
  curve.precompute_fixed_base(base);
  const Curve other(preset_params(ParamPreset::kToy));
  EXPECT_TRUE(other.has_fixed_base(base));
  const BigInt k = BigInt::from_bytes(rng.bytes(10)).mod(curve.order());
  EXPECT_EQ(other.mul(base, k), curve.mul_binary(base, k));
}

TEST(ScalarMul, JacobianPairingMatchesAffineReference) {
  const Curve& curve = toy_curve();
  const Pairing pairing(curve);
  Drbg rng("pairing-vs-reference");
  for (int i = 0; i < 10; ++i) {
    const Point p = curve.random_group_element(rng);
    const Point q = curve.random_group_element(rng);
    EXPECT_EQ(pairing(p, q), pairing.reference(p, q)) << "i=" << i;
  }
  const Point p = curve.random_group_element(rng);
  EXPECT_EQ(pairing(p, p), pairing.reference(p, p));  // self-pairing (T=P branch)
  EXPECT_EQ(pairing(p, Point{}), pairing.one());
}

TEST(ScalarMul, PresetParamsConcurrentFirstUse) {
  // preset_params is a magic static; hammer it (and the fixed-base registry)
  // from several threads and check every caller agrees.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<const CurveParams*> seen(kThreads, nullptr);
  std::vector<Point> products(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &products] {
      const CurveParams& params = preset_params(ParamPreset::kToy);
      seen[t] = &params;
      const Curve curve(params);
      Drbg rng("preset-concurrency");  // same seed in every thread
      const Point base = curve.random_group_element(rng);
      curve.precompute_fixed_base(base);
      products[t] = curve.mul(base, BigInt{123456789});
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "preset cache returned distinct objects";
    EXPECT_EQ(products[t], products[0]);
  }
}

}  // namespace
}  // namespace sp::ec
