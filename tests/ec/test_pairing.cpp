// Pairing correctness: bilinearity, non-degeneracy, and the BSW07 identities
// CP-ABE depends on, across toy and test parameter sizes.
#include "ec/pairing.hpp"

#include <gtest/gtest.h>

#include "ec/params.hpp"

namespace sp::ec {
namespace {

using crypto::BigInt;
using crypto::Drbg;
using field::Fp2;

class PairingTest : public ::testing::TestWithParam<ParamPreset> {
 protected:
  PairingTest() : curve_(preset_params(GetParam())), pairing_(curve_), rng_("pairing-tests") {}

  BigInt rand_scalar() {
    return BigInt::random_below(curve_.order(), [this](std::size_t n) { return rng_.bytes(n); });
  }

  Curve curve_;
  Pairing pairing_;
  Drbg rng_;
};

TEST_P(PairingTest, NonDegenerateSelfPairing) {
  const Point g = curve_.random_group_element(rng_);
  const Fp2 e = pairing_(g, g);
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
  // Target group element has order dividing q.
  EXPECT_TRUE(e.pow(curve_.order()).is_one());
}

TEST_P(PairingTest, InfinityMapsToOne) {
  const Point g = curve_.random_group_element(rng_);
  EXPECT_TRUE(pairing_(g, Point{}).is_one());
  EXPECT_TRUE(pairing_(Point{}, g).is_one());
}

TEST_P(PairingTest, BilinearInFirstArgument) {
  const Point g = curve_.random_group_element(rng_);
  const Point h = curve_.random_group_element(rng_);
  const BigInt a = rand_scalar();
  EXPECT_EQ(pairing_(curve_.mul(g, a), h), pairing_(g, h).pow(a));
}

TEST_P(PairingTest, BilinearInSecondArgument) {
  const Point g = curve_.random_group_element(rng_);
  const Point h = curve_.random_group_element(rng_);
  const BigInt b = rand_scalar();
  EXPECT_EQ(pairing_(g, curve_.mul(h, b)), pairing_(g, h).pow(b));
}

TEST_P(PairingTest, FullBilinearity) {
  // e(g^a, g^b) = e(g, g)^(ab) — the identity every CP-ABE step uses.
  const Point g = curve_.random_group_element(rng_);
  const BigInt a = rand_scalar();
  const BigInt b = rand_scalar();
  const Fp2 lhs = pairing_(curve_.mul(g, a), curve_.mul(g, b));
  const Fp2 rhs = pairing_(g, g).pow(BigInt::mod_mul(a, b, curve_.order()));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(PairingTest, AdditiveInFirstArgument) {
  // e(P + Q, R) = e(P, R) · e(Q, R).
  const Point p = curve_.random_group_element(rng_);
  const Point q = curve_.random_group_element(rng_);
  const Point r = curve_.random_group_element(rng_);
  EXPECT_EQ(pairing_(curve_.add(p, q), r), pairing_(p, r) * pairing_(q, r));
}

TEST_P(PairingTest, NegationInvertsPairing) {
  const Point g = curve_.random_group_element(rng_);
  const Point h = curve_.random_group_element(rng_);
  const Fp2 e = pairing_(g, h);
  EXPECT_EQ(pairing_(curve_.negate(g), h), e.inv());
}

TEST_P(PairingTest, DecryptNodeIdentity) {
  // The CP-ABE DecryptNode step computes e(D_j, C_x) / e(D_j', C_x') and
  // relies on e(g^r · H(j)^{r_j}, g^{q_x}) / e(g^{r_j}, H(j)^{q_x})
  //         = e(g, g)^{r · q_x}.
  const Point g = curve_.random_group_element(rng_);
  const Point hj = curve_.hash_to_group(crypto::to_bytes("attr"));
  const BigInt r = rand_scalar();
  const BigInt rj = rand_scalar();
  const BigInt qx = rand_scalar();

  const Point d = curve_.add(curve_.mul(g, r), curve_.mul(hj, rj));  // g^r · H(j)^{rj}
  const Point dp = curve_.mul(g, rj);                                // g^{rj}
  const Point cx = curve_.mul(g, qx);                                // g^{qx}
  const Point cxp = curve_.mul(hj, qx);                              // H(j)^{qx}

  const Fp2 num = pairing_(d, cx);
  const Fp2 den = pairing_(dp, cxp);
  const Fp2 expected = pairing_(g, g).pow(BigInt::mod_mul(r, qx, curve_.order()));
  EXPECT_EQ(num * den.inv(), expected);
}

TEST_P(PairingTest, RejectsOffCurveInput) {
  const Point g = curve_.random_group_element(rng_);
  const Point bogus(g.x(), g.y() + field::Fp::one(curve_.fp()));
  EXPECT_THROW(pairing_(bogus, g), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Presets, PairingTest,
                         ::testing::Values(ParamPreset::kToy, ParamPreset::kTest));

}  // namespace
}  // namespace sp::ec
