// Multi-pairing products (PR 7): ∏ e(P_i, Q_i)^{±e_i} with one Miller loop
// per pair and ONE shared final exponentiation must be byte-identical to the
// reference per-pairing products, including inverse terms (conjugation
// pre-FE) and exponents; plus the Miller-line table registry's hit path and
// FIFO cap.
#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <vector>

#include "ec/pairing.hpp"
#include "ec/params.hpp"

namespace sp::ec {
namespace {

using crypto::BigInt;
using crypto::Drbg;
using field::Fp2;

class MultiPairingTest : public ::testing::TestWithParam<ParamPreset> {
 protected:
  MultiPairingTest() : curve_(preset_params(GetParam())), pairing_(curve_), rng_("multi-pairing") {}

  BigInt rand_scalar() {
    return BigInt::random_below(curve_.order(), [this](std::size_t n) { return rng_.bytes(n); });
  }

  Point rand_point() { return curve_.random_group_element(rng_); }

  Curve curve_;
  Pairing pairing_;
  Drbg rng_;
};

TEST_P(MultiPairingTest, SinglePairMatchesReference) {
  const Point p = rand_point();
  const Point q = rand_point();
  const std::vector<Pairing::Term> terms = {{p, q}};
  EXPECT_EQ(pairing_.product(terms), pairing_.reference(p, q));
}

TEST_P(MultiPairingTest, ProductOfThreeMatchesReferenceProduct) {
  std::vector<Pairing::Term> terms;
  Fp2 expected = pairing_.one();
  for (int i = 0; i < 3; ++i) {
    const Point p = rand_point();
    const Point q = rand_point();
    terms.push_back({p, q});
    expected = expected * pairing_.reference(p, q);
  }
  EXPECT_EQ(pairing_.product(terms), expected);
}

TEST_P(MultiPairingTest, InverseTermsUseConjugationNotExtraFinalExp) {
  const Point a = rand_point();
  const Point b = rand_point();
  const Point c = rand_point();
  const Point d = rand_point();
  const std::vector<Pairing::Term> terms = {{a, b, /*inverse=*/false},
                                            {c, d, /*inverse=*/true}};
  const Fp2 expected = pairing_.reference(a, b) * pairing_.reference(c, d).inv();
  EXPECT_EQ(pairing_.product(terms), expected);
}

TEST_P(MultiPairingTest, PairAndItsInverseCancelToOne) {
  const Point p = rand_point();
  const Point q = rand_point();
  const std::vector<Pairing::Term> terms = {{p, q, false}, {p, q, true}};
  EXPECT_EQ(pairing_.product(terms), pairing_.one());
}

TEST_P(MultiPairingTest, ExponentsApplyPreFinalExp) {
  const Point p = rand_point();
  const Point q = rand_point();
  const BigInt e = rand_scalar();
  const std::vector<Pairing::Term> terms = {{p, q, false, e}};
  EXPECT_EQ(pairing_.product(terms), pairing_.reference(p, q).pow(e));
  const std::vector<Pairing::Term> inv_terms = {{p, q, true, e}};
  EXPECT_EQ(pairing_.product(inv_terms), pairing_.reference(p, q).pow(e).inv());
}

TEST_P(MultiPairingTest, BatchedDecryptShapeMatchesUnbatched) {
  // The exact shape decrypt_key builds: k leaf (num, den) pairs sharing a
  // Lagrange exponent each, plus e(C, D)^{-1}.
  std::vector<Pairing::Term> terms;
  Fp2 expected = pairing_.one();
  for (int leaf = 0; leaf < 3; ++leaf) {
    const Point cy = rand_point();
    const Point dj = rand_point();
    const Point cyp = rand_point();
    const Point djp = rand_point();
    const BigInt lambda = rand_scalar();
    terms.push_back({cy, dj, false, lambda});
    terms.push_back({cyp, djp, true, lambda});
    expected = expected * pairing_.reference(cy, dj).pow(lambda) *
               pairing_.reference(cyp, djp).pow(lambda).inv();
  }
  const Point c = rand_point();
  const Point d = rand_point();
  terms.push_back({c, d, true});
  expected = expected * pairing_.reference(c, d).inv();
  EXPECT_EQ(pairing_.product(terms), expected);
}

TEST_P(MultiPairingTest, InfinityTermContributesIdentity) {
  const Point p = rand_point();
  const Point q = rand_point();
  const std::vector<Pairing::Term> terms = {{Point{}, q}, {p, q}};
  EXPECT_EQ(pairing_.product(terms), pairing_.reference(p, q));
}

TEST_P(MultiPairingTest, EmptyProductIsOne) {
  EXPECT_EQ(pairing_.product({}), pairing_.one());
}

TEST_P(MultiPairingTest, PrecomputedTableReplayMatchesColdMiller) {
  const Point p = rand_point();
  const Point q = rand_point();
  const Fp2 cold = pairing_(p, q);  // plain Jacobian Miller loop
  pairing_.precompute(p);
  ASSERT_TRUE(pairing_.has_precomputed(p));
  const Fp2 warm = pairing_(p, q);  // table-replay path
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, pairing_.reference(p, q));
}

TEST_P(MultiPairingTest, RunnerExecutesJobsAndProductStaysIdentical) {
  std::vector<Pairing::Term> terms;
  Fp2 expected = pairing_.one();
  for (int i = 0; i < 4; ++i) {
    const Point p = rand_point();
    const Point q = rand_point();
    const bool inverse = (i % 2) == 1;
    terms.push_back({p, q, inverse});
    const Fp2 e = pairing_.reference(p, q);
    expected = expected * (inverse ? e.inv() : e);
  }
  std::size_t jobs_seen = 0;
  // A runner that really runs the closures on another thread, one by one.
  const Pairing::Runner runner = [&jobs_seen](std::span<const std::function<void()>> jobs) {
    jobs_seen = jobs.size();
    for (const auto& job : jobs) {
      std::thread t(job);
      t.join();
    }
  };
  EXPECT_EQ(pairing_.product(terms, runner), expected);
  EXPECT_EQ(jobs_seen, terms.size());
}

TEST_P(MultiPairingTest, TableRegistryHonorsFifoCap) {
  // The registry caps at 64 tables process-wide; registering far more than
  // that must evict oldest-first rather than grow without bound. We can't
  // read the cap directly, but the oldest of a 100-point burst must be gone
  // while the newest survives.
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) points.push_back(rand_point());
  for (const Point& p : points) pairing_.precompute(p);
  EXPECT_FALSE(pairing_.has_precomputed(points.front()));
  EXPECT_TRUE(pairing_.has_precomputed(points.back()));
}

INSTANTIATE_TEST_SUITE_P(Presets, MultiPairingTest,
                         ::testing::Values(ParamPreset::kToy, ParamPreset::kTest));

}  // namespace
}  // namespace sp::ec
