// Smoke tests at the paper-scale (512-bit) parameters. The exhaustive
// pairing property suite runs at toy/test sizes; this file guards the kFull
// preset that the benchmark harness depends on.
#include <gtest/gtest.h>

#include "ec/pairing.hpp"
#include "ec/params.hpp"

namespace sp::ec {
namespace {

using crypto::BigInt;
using crypto::Drbg;

TEST(FullPreset, ParametersSatisfyInvariants) {
  const CurveParams& p = preset_params(ParamPreset::kFull);
  EXPECT_GE(p.fp->p().bit_length(), 505u);  // ~512-bit prime
  EXPECT_EQ(p.q.bit_length(), 160u);        // PBC Type-A group order size
  EXPECT_EQ(p.h * p.q, p.fp->p() + BigInt{1});
  EXPECT_TRUE(p.fp->p_is_3_mod_4());
  Drbg rng("full-params");
  auto rb = [&rng](std::size_t n) { return rng.bytes(n); };
  EXPECT_TRUE(BigInt::is_probable_prime(p.fp->p(), 10, rb));
  EXPECT_TRUE(BigInt::is_probable_prime(p.q, 10, rb));
}

TEST(FullPreset, PairingBilinearOnce) {
  const Curve curve(preset_params(ParamPreset::kFull));
  const Pairing pairing(curve);
  Drbg rng("full-pairing");
  const Point g = curve.random_group_element(rng);
  const BigInt a = BigInt::random_below(curve.order(), [&](std::size_t n) { return rng.bytes(n); });
  const field::Fp2 lhs = pairing(curve.mul(g, a), g);
  const field::Fp2 rhs = pairing(g, g).pow(a);
  EXPECT_EQ(lhs, rhs);
  EXPECT_FALSE(lhs.is_one());
}

TEST(FullPreset, JacobianMulMatchesAffineChain) {
  const Curve curve(preset_params(ParamPreset::kFull));
  Drbg rng("full-mul");
  const Point g = curve.random_group_element(rng);
  Point acc;
  for (int k = 0; k <= 8; ++k) {
    EXPECT_EQ(curve.mul(g, BigInt{k}), acc) << k;
    acc = curve.add(acc, g);
  }
  EXPECT_TRUE(curve.mul(g, curve.order()).is_infinity());
}

}  // namespace
}  // namespace sp::ec
