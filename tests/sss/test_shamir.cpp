#include "sss/shamir.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sp::sss {
namespace {

using crypto::BigInt;
using crypto::Drbg;
using field::make_fp;

Shamir small() { return Shamir(make_fp(BigInt{251})); }

Shamir big() {
  return Shamir(make_fp(BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")));
}

TEST(Shamir, SplitProducesDistinctNonzeroAbscissae) {
  Drbg rng("split");
  const auto shares = small().split(BigInt{42}, 3, 10, rng);
  ASSERT_EQ(shares.size(), 10u);
  std::set<BigInt> xs;
  for (const auto& s : shares) {
    EXPECT_FALSE(s.x.is_zero());
    EXPECT_TRUE(xs.insert(s.x).second) << "duplicate abscissa";
  }
}

TEST(Shamir, ReconstructFromExactlyK) {
  Drbg rng("recon-k");
  const Shamir sss = big();
  const BigInt secret = BigInt::from_dec("123456789123456789123456789");
  const auto shares = sss.split(secret, 4, 9, rng);
  const std::vector<Share> subset(shares.begin(), shares.begin() + 4);
  EXPECT_EQ(sss.reconstruct(subset), secret);
}

TEST(Shamir, ReconstructFromMoreThanK) {
  Drbg rng("recon-more");
  const Shamir sss = big();
  const BigInt secret{777};
  const auto shares = sss.split(secret, 2, 6, rng);
  EXPECT_EQ(sss.reconstruct(shares), secret);  // all 6
}

TEST(Shamir, AnyKSubsetReconstructs) {
  Drbg rng("recon-any");
  const Shamir sss = small();
  const BigInt secret{99};
  const auto shares = sss.split(secret, 3, 6, rng);
  // All C(6,3) = 20 subsets.
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        const std::vector<Share> subset{shares[a], shares[b], shares[c]};
        EXPECT_EQ(sss.reconstruct(subset), secret) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Shamir, FewerThanKSharesGiveNoInformation) {
  // Information-theoretic check on a small field: fixing k-1 = 2 shares,
  // every candidate secret remains consistent with some polynomial, so the
  // adversary's posterior equals the prior.
  Drbg rng("infotheo");
  const auto field = make_fp(BigInt{31});
  const Shamir sss(field);
  const BigInt secret{17};
  const auto shares = sss.split(secret, 3, 3, rng);
  const std::vector<Share> two(shares.begin(), shares.begin() + 2);
  // For each candidate secret value, the pair (0, candidate) + the two known
  // shares determine a unique degree-2 polynomial — always consistent.
  for (int candidate = 0; candidate < 31; ++candidate) {
    std::vector<Share> probe = two;
    probe.push_back(Share{BigInt{0}, BigInt{candidate}});
    EXPECT_EQ(sss.reconstruct(probe), BigInt{candidate});
  }
}

TEST(Shamir, KEquals1BroadcastsSecret) {
  // k = 1: the paper's default evaluation setting. Every share alone
  // reconstructs (constant polynomial).
  Drbg rng("k1");
  const Shamir sss = big();
  const BigInt secret{31337};
  const auto shares = sss.split(secret, 1, 5, rng);
  for (const auto& s : shares) {
    EXPECT_EQ(sss.reconstruct(std::vector<Share>{s}), secret);
  }
}

TEST(Shamir, KEqualsN) {
  Drbg rng("k-eq-n");
  const Shamir sss = big();
  const BigInt secret{5};
  const auto shares = sss.split(secret, 7, 7, rng);
  EXPECT_EQ(sss.reconstruct(shares), secret);
  const std::vector<Share> fewer(shares.begin(), shares.end() - 1);
  EXPECT_NE(sss.reconstruct(fewer), secret);  // 6 of 7: wrong value
}

TEST(Shamir, WrongShareYieldsWrongSecret) {
  Drbg rng("wrong");
  const Shamir sss = big();
  const BigInt secret{1234};
  auto shares = sss.split(secret, 3, 3, rng);
  shares[1].y = (shares[1].y + BigInt{1}).mod(sss.field()->p());
  EXPECT_NE(sss.reconstruct(shares), secret);
}

TEST(Shamir, SecretReducedModP) {
  Drbg rng("modp");
  const Shamir sss = small();
  const auto shares = sss.split(BigInt{251 + 42}, 2, 3, rng);
  EXPECT_EQ(sss.reconstruct(shares), BigInt{42});
}

TEST(Shamir, InvalidParametersThrow) {
  Drbg rng("invalid");
  const Shamir sss = small();
  EXPECT_THROW(sss.split(BigInt{1}, 0, 3, rng), std::invalid_argument);
  EXPECT_THROW(sss.split(BigInt{1}, 4, 3, rng), std::invalid_argument);
  EXPECT_THROW(sss.split(BigInt{1}, 2, 251, rng), std::invalid_argument);
  EXPECT_THROW(sss.reconstruct({}), std::invalid_argument);
}

TEST(Shamir, DuplicateAbscissaRejected) {
  const Shamir sss = small();
  const std::vector<Share> dup{Share{BigInt{1}, BigInt{2}}, Share{BigInt{1}, BigInt{3}}};
  EXPECT_THROW(sss.reconstruct(dup), std::invalid_argument);
}

TEST(Shamir, InterpolateAtRecoversSharePoints) {
  Drbg rng("interp");
  const Shamir sss = big();
  const auto shares = sss.split(BigInt{555}, 3, 5, rng);
  const std::vector<Share> basis(shares.begin(), shares.begin() + 3);
  for (const auto& s : shares) {
    EXPECT_EQ(sss.interpolate_at(basis, s.x), s.y);
  }
}

TEST(Shamir, SerializeRoundTrip) {
  Drbg rng("ser");
  const Shamir sss = big();
  const auto shares = sss.split(BigInt{4242}, 2, 4, rng);
  for (const auto& s : shares) {
    const auto wire = sss.serialize(s);
    EXPECT_EQ(wire.size(), sss.serialized_size());
    EXPECT_EQ(sss.deserialize(wire), s);
  }
  EXPECT_THROW(sss.deserialize(crypto::Bytes(5, 0)), std::invalid_argument);
}

// Property sweep over (k, n) combinations.
class ShamirSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirSweep, SplitReconstruct) {
  const auto [k, n] = GetParam();
  Drbg rng("sweep");
  const Shamir sss = big();
  const BigInt secret = BigInt::from_bytes(rng.bytes(24));
  const auto shares = sss.split(secret, k, n, rng);
  // First k shares.
  EXPECT_EQ(sss.reconstruct(std::vector<Share>(shares.begin(), shares.begin() + k)),
            secret.mod(sss.field()->p()));
  // Last k shares.
  EXPECT_EQ(sss.reconstruct(std::vector<Share>(shares.end() - static_cast<std::ptrdiff_t>(k),
                                               shares.end())),
            secret.mod(sss.field()->p()));
}

INSTANTIATE_TEST_SUITE_P(KN, ShamirSweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 10},
                                           std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{2, 10},
                                           std::pair<std::size_t, std::size_t>{3, 10},
                                           std::pair<std::size_t, std::size_t>{5, 10},
                                           std::pair<std::size_t, std::size_t>{10, 10},
                                           std::pair<std::size_t, std::size_t>{8, 20},
                                           std::pair<std::size_t, std::size_t>{16, 16}));

// ---- PR 7: cached Lagrange basis + Montgomery batch inversion ----------

/// The cached/batched interpolate_at must agree with the naive
/// per-inversion reference on every (k, n) shape, cold and warm.
TEST_P(ShamirSweep, CachedInterpolationMatchesReference) {
  const auto [k, n] = GetParam();
  Drbg rng("lagrange-sweep");
  const Shamir sss = big();
  const BigInt secret = BigInt::from_bytes(rng.bytes(24));
  const auto shares = sss.split(secret, k, n, rng);
  const std::vector<Share> sub(shares.begin(), shares.begin() + k);
  for (const BigInt& at : {BigInt{0}, BigInt{1}, BigInt{987654321}}) {
    const BigInt cold = sss.interpolate_at(sub, at);
    EXPECT_EQ(cold, sss.interpolate_at_reference(sub, at));
    // Warm call takes the cache-hit path; must be byte-identical.
    EXPECT_EQ(sss.interpolate_at(sub, at), cold);
  }
}

TEST(Lagrange, CacheHitSurvivesShareReordering) {
  Drbg rng("lagrange-perm");
  const Shamir sss = big();
  const auto shares = sss.split(BigInt{777}, 4, 4, rng);
  const BigInt expected = sss.reconstruct(shares);
  std::vector<Share> perm(shares.begin(), shares.end());
  std::reverse(perm.begin(), perm.end());
  // Same abscissa SET => same cache entry; remapped coefficients must give
  // the same value for the permuted share order.
  EXPECT_EQ(sss.reconstruct(perm), expected);
  EXPECT_EQ(sss.lagrange_cache().entries(), 1u);
}

TEST(Lagrange, CacheIsFifoCapped) {
  Drbg rng("lagrange-cap");
  const Shamir sss = big();
  const std::size_t cap = sss.lagrange_cache().capacity();
  for (std::size_t i = 0; i < cap + 10; ++i) {
    const auto shares = sss.split(BigInt::from_u64(i), 3, 3, rng);
    (void)sss.reconstruct(shares);
  }
  EXPECT_EQ(sss.lagrange_cache().entries(), cap);
}

TEST(Lagrange, ComputeMatchesNaiveBasisDefinition) {
  Drbg rng("lagrange-direct");
  const auto field = make_fp(BigInt{251});
  std::vector<field::Fp> xs;
  for (const int v : {3, 17, 42, 99, 120}) xs.emplace_back(field, BigInt{v});
  const field::Fp at(field, BigInt{7});
  const auto basis = LagrangeCache::compute(field, xs, at);
  ASSERT_EQ(basis.size(), xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    field::Fp expected = field::Fp::one(field);
    for (std::size_t m = 0; m < xs.size(); ++m) {
      if (m == j) continue;
      expected = expected * (at - xs[m]) * (xs[j] - xs[m]).inv();
    }
    EXPECT_EQ(basis[j], expected);
  }
  // Partition of unity: Σ ℓ_j(at) = 1 for any at.
  field::Fp sum = field::Fp::zero(field);
  for (const auto& l : basis) sum = sum + l;
  EXPECT_EQ(sum, field::Fp::one(field));
}

TEST(BatchInv, MatchesElementwiseInversionAndRejectsZero) {
  const auto field = make_fp(BigInt{251});
  std::vector<field::Fp> xs;
  for (const int v : {1, 2, 3, 100, 250, 7}) xs.emplace_back(field, BigInt{v});
  const auto invs = field::batch_inv(xs);
  ASSERT_EQ(invs.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(invs[i], xs[i].inv());
  EXPECT_TRUE(field::batch_inv({}).empty());
  xs.emplace_back(field, BigInt{0});
  EXPECT_THROW(field::batch_inv(xs), std::domain_error);
}

}  // namespace
}  // namespace sp::sss
