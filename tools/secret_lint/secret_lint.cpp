// secret_lint — secret-hygiene static analysis for the social-puzzles tree.
//
// The protocol's security argument (PAPER.md §V: neither SP nor DH learns
// answers, shares, or M_O) silently assumes the implementation never leaks
// secrets through side channels or stale memory. This tool mechanises that
// assumption as five line/token-level rules over `src/` and runs as a ctest,
// so a regression fails the build instead of shipping:
//
//   noct-compare  — memcmp()/operator==/!= applied to a secret-named buffer
//                   (use crypto::ct_equal / SecretBytes::ct_equals instead)
//   weak-rng      — rand()/srand()/std::mt19937/std::random_device anywhere
//                   in src/ (all randomness must flow through crypto::Drbg)
//   missing-wipe  — a function-local `Bytes`/byte-array with a secret-looking
//                   name in a function that never wipes (secure_wipe /
//                   SecretBytes / .wipe()) before scope exit
//   secret-print  — printf/fprintf/std::cout/std::cerr lines that mention a
//                   secret-named variable
//   todo-crypto   — TODO/FIXME markers inside crypto-bearing directories
//                   (crypto, field, ec, sig, sss) — unfinished crypto is a
//                   finding, not a note
//
// Escape hatch: append `// secret-lint: allow(<rule>)` to the offending line
// or the line directly above it. Allows are themselves greppable, so every
// suppression is an auditable decision.
//
// Deliberately not libclang: a single-file, zero-dependency scanner that
// builds in milliseconds on the bare toolchain and is dumb enough to read.
// The price is token-level heuristics; the rules below document their own
// false-positive suppressions.
//
// Usage:
//   secret_lint <dir-or-file>...            scan, report, exit 1 on findings
//   secret_lint --selftest <fixture-dir>    verify each `// expect: <rule>`
//                                           marker fires and nothing else does
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as given
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

const std::vector<std::string> kRules = {"noct-compare", "weak-rng", "missing-wipe",
                                         "secret-print", "todo-crypto"};

// Identifier fragments that mark a variable as secret-bearing. Matched
// case-insensitively inside identifiers (key, puzzle_key, answer_bytes, ...).
const std::vector<std::string> kSecretNames = {"key",    "tag", "share", "answer",
                                               "secret", "mac", "nonce", "seed"};

// Directories whose files hold cryptographic core code (todo-crypto scope).
const std::vector<std::string> kCryptoDirs = {"crypto", "field", "ec", "sig", "sss"};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// All identifiers on a line (tokens starting with alpha/_).
std::vector<std::string> identifiers(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isalpha(static_cast<unsigned char>(line[i])) || line[i] == '_') {
      std::size_t j = i;
      while (j < line.size() && is_ident_char(line[j])) ++j;
      out.push_back(line.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// Identifiers that contain a secret fragment but name public protocol roles
// or metadata, never key material. Exact (lowercased) matches only.
const std::vector<std::string> kPublicIdents = {"sharer", "sharers"};

bool is_secret_name(const std::string& ident) {
  const std::string low = lower(ident);
  for (const auto& pub : kPublicIdents) {
    if (low == pub) return false;
  }
  for (const auto& frag : kSecretNames) {
    if (low.find(frag) != std::string::npos) return true;
  }
  return false;
}

bool line_has_secret_ident(const std::string& line) {
  for (const auto& id : identifiers(line)) {
    if (is_secret_name(id)) return true;
  }
  return false;
}

/// True when `needle` occurs at position `pos` as a whole word (not embedded
/// in a longer identifier, e.g. `rand(` inside `random_below(`).
bool word_at(const std::string& line, std::size_t pos, const std::string& needle) {
  if (pos > 0 && is_ident_char(line[pos - 1])) return false;
  const std::size_t end = pos + needle.size();
  if (end < line.size() && is_ident_char(line[end])) return false;
  return true;
}

bool contains_word(const std::string& line, const std::string& needle) {
  for (std::size_t pos = line.find(needle); pos != std::string::npos;
       pos = line.find(needle, pos + 1)) {
    if (word_at(line, pos, needle)) return true;
  }
  return false;
}

/// Strips // comments and string/char literals so rule matching never fires
/// on prose. (Block comments are handled by the caller's line loop.)
std::string code_only(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  bool in_str = false, in_chr = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_block_comment) {
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (in_chr) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_chr = false;
      }
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_str = true;
      out.push_back(' ');
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000) are not char literals.
      if (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) && i + 1 < line.size() &&
          std::isdigit(static_cast<unsigned char>(line[i + 1]))) {
        continue;
      }
      in_chr = true;
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// `// secret-lint: allow(rule1, rule2)` parser.
std::set<std::string> parse_allows(const std::string& raw_line) {
  std::set<std::string> out;
  const std::size_t at = raw_line.find("secret-lint:");
  if (at == std::string::npos) return out;
  const std::size_t open = raw_line.find("allow(", at);
  if (open == std::string::npos) return out;
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return out;
  std::string inside = raw_line.substr(open + 6, close - open - 6);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream ss(inside);
  std::string rule;
  while (ss >> rule) out.insert(rule);
  return out;
}

// --------------------------------------------------------------------------
// Scope tracking for missing-wipe: we need to know which lines belong to
// which function body, line-based. A scope opens at `{`; its kind is decided
// by the text before the brace on the opening line.
enum class ScopeKind { kNamespaceOrType, kFunction, kBlock };

struct SecretDecl {
  std::size_t line;
  std::string name;
  bool allowed;  // an allow(missing-wipe) covered the decl
};

struct FunctionScope {
  std::vector<SecretDecl> decls;
  bool has_wipe = false;
};

/// Heuristic classification of the code before a `{`.
ScopeKind classify_opener(const std::string& before, bool inside_function) {
  if (inside_function) return ScopeKind::kBlock;
  for (const char* kw : {"struct", "class", "enum", "union", "namespace"}) {
    if (contains_word(before, kw)) return ScopeKind::kNamespaceOrType;
  }
  // `) {`, `) const {`, `) noexcept {`, `) const -> T {`: a function body.
  // Initializer lists `= {` and plain `{` blocks are not.
  const std::size_t paren = before.rfind(')');
  if (paren != std::string::npos) {
    const std::string tail = before.substr(paren + 1);
    bool tail_ok = true;
    for (char c : tail) {
      if (c == '=' || c == ',' || c == ';') tail_ok = false;
    }
    if (tail_ok) return ScopeKind::kFunction;
  }
  return ScopeKind::kBlock;
}

/// Matches a function-local declaration of a raw secret buffer:
///   [static] [const] [crypto::|sp::crypto::] Bytes <name> ...
///   std::uint8_t <name>[...]   /   uint8_t <name>[...]
/// Returns the declared identifier when it looks secret-named.
std::optional<std::string> match_secret_decl(const std::string& code) {
  // Tokenise the start of the line.
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < code.size() && toks.size() < 6) {
    if (std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
      continue;
    }
    if (is_ident_char(code[i])) {
      std::size_t j = i;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back(code.substr(i, j - i));
      i = j;
    } else if (code[i] == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      i += 2;  // fold qualified names: crypto::Bytes -> [crypto][Bytes]
    } else {
      break;  // any other punctuation ends the declaration prefix
    }
  }
  // Drop qualifiers/namespaces to find "<Type> <name>".
  std::vector<std::string> core;
  for (const auto& t : toks) {
    if (t == "static" || t == "const" || t == "constexpr" || t == "sp" || t == "crypto" ||
        t == "std") {
      continue;
    }
    core.push_back(t);
  }
  if (core.size() < 2) return std::nullopt;
  const std::string& type = core[0];
  const std::string& name = core[1];
  const bool byte_buffer = type == "Bytes" || type == "uint8_t" || type == "string";
  if (!byte_buffer) return std::nullopt;
  // uint8_t scalars are not buffers — require an array suffix for them.
  if (type == "uint8_t") {
    const std::size_t name_pos = code.find(name);
    const std::size_t bracket = code.find('[', name_pos);
    if (bracket == std::string::npos) return std::nullopt;
  }
  if (!is_secret_name(name)) return std::nullopt;
  return name;
}

bool line_wipes(const std::string& code) {
  return code.find("secure_wipe") != std::string::npos ||
         code.find(".wipe(") != std::string::npos;
}

// --------------------------------------------------------------------------

bool in_crypto_dir(const fs::path& p) {
  for (const auto& part : p) {
    for (const auto& dir : kCryptoDirs) {
      if (part == dir) return true;
    }
  }
  return false;
}

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, "io-error", "cannot open file"});
    return;
  }
  std::vector<std::string> raw_lines;
  std::string line;
  while (std::getline(in, line)) raw_lines.push_back(line);

  const bool crypto_file = in_crypto_dir(path);

  // Scope stack for missing-wipe. Each entry: kind + (for functions) state.
  struct Scope {
    ScopeKind kind;
    std::size_t fn_index;  // index into fn_stack when kind == kFunction
  };
  std::vector<Scope> scopes;
  std::vector<FunctionScope> fn_stack;
  std::vector<std::pair<FunctionScope, std::size_t>> closed_fns;  // scope + close line

  bool in_block_comment = false;
  std::string pending;  // code carried across lines until a brace decision

  auto current_fn = [&]() -> FunctionScope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return &fn_stack[it->fn_index];
    }
    return nullptr;
  };

  auto allowed_at = [&](std::size_t idx, const std::string& rule) {
    const auto here = parse_allows(raw_lines[idx]);
    if (here.count(rule)) return true;
    if (idx > 0) {
      const auto above = parse_allows(raw_lines[idx - 1]);
      // The line above only counts when it is a pure comment line.
      const std::string trimmed = raw_lines[idx - 1];
      const std::size_t first = trimmed.find_first_not_of(" \t");
      if (first != std::string::npos && trimmed.compare(first, 2, "//") == 0 &&
          above.count(rule)) {
        return true;
      }
    }
    return false;
  };

  auto report = [&](std::size_t idx, const std::string& rule, const std::string& msg) {
    if (allowed_at(idx, rule)) return;
    findings.push_back({path.string(), idx + 1, rule, msg});
  };

  for (std::size_t idx = 0; idx < raw_lines.size(); ++idx) {
    const std::string& raw = raw_lines[idx];

    // todo-crypto looks at comments too, so it runs on the raw line.
    if (crypto_file) {
      if (raw.find("TODO") != std::string::npos || raw.find("FIXME") != std::string::npos) {
        report(idx, "todo-crypto", "TODO/FIXME in crypto-bearing file");
      }
    }

    const std::string code = code_only(raw, in_block_comment);

    // ---- weak-rng ------------------------------------------------------
    if (contains_word(code, "rand") || contains_word(code, "srand") ||
        contains_word(code, "mt19937") || contains_word(code, "mt19937_64") ||
        contains_word(code, "random_device") || contains_word(code, "minstd_rand")) {
      // `rand` must be a call, not e.g. a struct member named rand.
      const bool call_like = code.find("rand()") != std::string::npos ||
                             code.find("rand ()") != std::string::npos ||
                             code.find("srand") != std::string::npos ||
                             code.find("mt19937") != std::string::npos ||
                             code.find("random_device") != std::string::npos ||
                             code.find("minstd_rand") != std::string::npos;
      if (call_like) {
        report(idx, "weak-rng", "non-cryptographic randomness; use crypto::Drbg");
      }
    }

    // ---- noct-compare --------------------------------------------------
    {
      const bool has_memcmp = contains_word(code, "memcmp");
      bool has_eq = false;
      for (std::size_t pos = 0; pos + 1 < code.size(); ++pos) {
        if ((code[pos] == '=' && code[pos + 1] == '=') ||
            (code[pos] == '!' && code[pos + 1] == '=')) {
          // Skip <=, >=, = =... handled: require char before not <>!=.
          if (code[pos] == '=' && pos > 0 &&
              (code[pos - 1] == '<' || code[pos - 1] == '>' || code[pos - 1] == '=' ||
               code[pos - 1] == '!')) {
            continue;
          }
          has_eq = true;
          break;
        }
      }
      if ((has_memcmp || has_eq) && line_has_secret_ident(code)) {
        // Size/shape checks, iterator comparisons, and declarations of
        // defaulted/deleted operators are not content comparisons.
        const bool size_check = code.find(".size()") != std::string::npos ||
                                code.find(".length()") != std::string::npos ||
                                code.find(".empty()") != std::string::npos ||
                                code.find(".begin()") != std::string::npos ||
                                code.find(".end()") != std::string::npos ||
                                code.find("nullptr") != std::string::npos ||
                                code.find("std::nullopt") != std::string::npos;
        const bool op_decl = code.find("operator==") != std::string::npos &&
                             (code.find("default") != std::string::npos ||
                              code.find("delete") != std::string::npos);
        if (!size_check && !op_decl) {
          if (has_memcmp) {
            report(idx, "noct-compare", "memcmp on secret-named buffer; use crypto::ct_equal");
          } else {
            report(idx, "noct-compare",
                   "==/!= on secret-named value; use crypto::ct_equal / ct_equals");
          }
        }
      }
    }

    // ---- secret-print --------------------------------------------------
    {
      const bool printy = contains_word(code, "printf") || contains_word(code, "fprintf") ||
                          contains_word(code, "cout") || contains_word(code, "cerr");
      if (printy && line_has_secret_ident(code)) {
        report(idx, "secret-print", "printing a secret-named variable");
      }
    }

    // ---- missing-wipe scope machinery ---------------------------------
    FunctionScope* fn = current_fn();
    if (fn != nullptr) {
      if (line_wipes(code)) fn->has_wipe = true;
      if (auto name = match_secret_decl(code)) {
        fn->decls.push_back({idx, *name, allowed_at(idx, "missing-wipe")});
      }
    }

    // Brace walking (after decl detection so `Type x{...};` still matches).
    pending.clear();
    for (char c : code) {
      if (c == '{') {
        const bool inside_fn = current_fn() != nullptr;
        const ScopeKind kind = classify_opener(pending, inside_fn);
        Scope s{kind, 0};
        if (kind == ScopeKind::kFunction) {
          fn_stack.emplace_back();
          s.fn_index = fn_stack.size() - 1;
        }
        scopes.push_back(s);
        pending.clear();
      } else if (c == '}') {
        if (!scopes.empty()) {
          const Scope s = scopes.back();
          scopes.pop_back();
          if (s.kind == ScopeKind::kFunction) {
            closed_fns.emplace_back(std::move(fn_stack[s.fn_index]), idx);
            fn_stack.pop_back();
          }
        }
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
  }
  // Any function never closed (unbalanced braces) is still checked.
  for (auto& f : fn_stack) closed_fns.emplace_back(std::move(f), raw_lines.size());

  for (const auto& [f, close_line] : closed_fns) {
    (void)close_line;
    if (f.has_wipe) continue;
    for (const auto& d : f.decls) {
      if (d.allowed) continue;
      findings.push_back({path.string(), d.line + 1, "missing-wipe",
                          "secret-named buffer `" + d.name +
                              "` is never wiped before scope exit; use SecretBytes or "
                              "secure_wipe"});
    }
  }
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    if (scannable(root)) files.push_back(root);
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root); it != fs::recursive_directory_iterator();
       ++it) {
    // `fixtures` directories hold intentional rule violations for the
    // selftest; skip them so tools/ itself can be scanned clean.
    if (it->is_directory() && it->path().filename() == "fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && scannable(it->path())) files.push_back(it->path());
  }
}

int run_scan(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "secret_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, files);
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const auto& f : files) scan_file(f, findings);
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "secret_lint: " << files.size() << " files, " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}

/// Self-test: every fixture line annotated `// expect: <rule>` must produce
/// exactly that finding, and no unannotated finding may appear. Proves each
/// rule fires before we trust a clean scan of src/.
int run_selftest(const std::string& fixture_dir) {
  std::vector<fs::path> files;
  if (!fs::exists(fixture_dir)) {
    std::cerr << "secret_lint --selftest: no such dir: " << fixture_dir << "\n";
    return 2;
  }
  collect(fixture_dir, files);
  if (files.empty()) {
    std::cerr << "secret_lint --selftest: no fixtures found\n";
    return 2;
  }

  std::map<std::pair<std::string, std::size_t>, std::set<std::string>> expected;
  std::set<std::string> expected_rules;
  for (const auto& f : files) {
    std::ifstream in(f);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      ++n;
      const std::size_t at = line.find("// expect:");
      if (at == std::string::npos) continue;
      std::string rules = line.substr(at + 10);
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream ss(rules);
      std::string rule;
      while (ss >> rule) {
        // Only known rule names count as expectations; prose after the
        // marker (or an unrelated comment containing it) is ignored.
        if (std::find(kRules.begin(), kRules.end(), rule) == kRules.end()) continue;
        expected[{f.string(), n}].insert(rule);
        expected_rules.insert(rule);
      }
    }
  }

  std::vector<Finding> findings;
  for (const auto& f : files) scan_file(f, findings);

  int failures = 0;
  std::map<std::pair<std::string, std::size_t>, std::set<std::string>> got;
  for (const auto& f : findings) got[{f.file, f.line}].insert(f.rule);

  for (const auto& [loc, rules] : expected) {
    for (const auto& rule : rules) {
      if (!got.count(loc) || !got.at(loc).count(rule)) {
        std::cout << "SELFTEST FAIL: expected [" << rule << "] at " << loc.first << ":"
                  << loc.second << " did not fire\n";
        ++failures;
      }
    }
  }
  for (const auto& [loc, rules] : got) {
    for (const auto& rule : rules) {
      if (!expected.count(loc) || !expected.at(loc).count(rule)) {
        std::cout << "SELFTEST FAIL: unexpected [" << rule << "] at " << loc.first << ":"
                  << loc.second << "\n";
        ++failures;
      }
    }
  }
  // Coverage: every rule must be exercised by at least one fixture.
  for (const auto& rule : kRules) {
    if (!expected_rules.count(rule)) {
      std::cout << "SELFTEST FAIL: no fixture exercises rule [" << rule << "]\n";
      ++failures;
    }
  }

  std::cout << "secret_lint selftest: " << expected.size() << " annotated sites, " << failures
            << " failure" << (failures == 1 ? "" : "s") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: secret_lint <dir-or-file>... | secret_lint --selftest <fixture-dir>\n";
    return 2;
  }
  if (args[0] == "--selftest") {
    if (args.size() != 2) {
      std::cerr << "usage: secret_lint --selftest <fixture-dir>\n";
      return 2;
    }
    return run_selftest(args[1]);
  }
  return run_scan(args);
}
