// sp_trace — record, convert and analyze request-lifecycle trace dumps.
//
// Subcommands (see usage()):
//   record  drive a self-contained chaos workload through core::Session with
//           the tracer enabled, then dump every collected trace to a binary
//           .sptrace file (codec::encode_trace_dump) and optionally Chrome
//           trace-event JSON. This is the CI smoke entry point: it exercises
//           the whole propagation chain (retry loop, thread pool, verify
//           queue, WAL group commit) in one process.
//   report  per-phase critical-path breakdown (self-time attribution) plus
//           the slowest-N span trees of a dump.
//   chrome  convert a dump to Chrome about:tracing JSON.
//   folded  convert a dump to folded stacks (flamegraph.pl / speedscope).
//
// A dump is a concatenation of SPR1 kTraceSpan frames; a torn tail loses
// only the trailing partial frame (decode_trace_dump stops cleanly), so a
// dump from a crashed run is still analyzable.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "codec/trace_records.hpp"
#include "core/session.hpp"
#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"

namespace {

using sp::crypto::Bytes;

int usage() {
  std::cerr <<
      "usage: sp_trace <command> [options]\n"
      "\n"
      "  record --out FILE.sptrace [options]\n"
      "      Run a chaos access workload with tracing on and dump the traces.\n"
      "      --out FILE        binary dump output (required)\n"
      "      --chrome FILE     also write Chrome trace-event JSON\n"
      "      --requests N      access requests to issue (default 24)\n"
      "      --threads N       pool threads for access_parallel (default 4)\n"
      "      --faults RATE     uniform fault probability per op class (default 0.2)\n"
      "      --sample P        head-sampling probability (default 1.0)\n"
      "      --seed S          session + fault schedule seed (default sp-trace)\n"
      "      --durable DIR     persist SP/DH state under DIR (adds wal.* spans)\n"
      "\n"
      "  report DUMP [--top N]\n"
      "      Phase breakdown (count/total/self/p50/max, sorted by self-time)\n"
      "      and the N slowest span trees (default 3).\n"
      "\n"
      "  chrome DUMP [--out FILE]\n"
      "      Chrome about:tracing JSON to FILE or stdout.\n"
      "\n"
      "  folded DUMP [--out FILE]\n"
      "      Folded stacks (self-time us weights) to FILE or stdout.\n";
  return 2;
}

/// Minimal flag parser: --name value pairs after the positionals.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  [[nodiscard]] std::optional<std::string> flag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v;
    }
    return std::nullopt;
  }
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sp_trace: flag " << arg << " needs a value\n";
        return std::nullopt;
      }
      args.flags.emplace_back(arg.substr(2), argv[++i]);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "sp_trace: cannot open " << path << "\n";
    std::exit(1);
  }
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "sp_trace: cannot write " << path << "\n";
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void write_text(const std::optional<std::string>& path, const std::string& text) {
  if (!path) {
    std::cout << text;
    return;
  }
  std::ofstream out(*path, std::ios::trunc);
  if (!out) {
    std::cerr << "sp_trace: cannot write " << *path << "\n";
    std::exit(1);
  }
  out << text;
}

std::vector<sp::obs::TraceData> load_dump(const std::string& path) {
  const Bytes raw = read_file(path);
  return sp::codec::decode_trace_dump(raw);
}

// ---------------------------------------------------------------------------
// record
// ---------------------------------------------------------------------------

/// The running-example context (same answers the integration suites use).
sp::core::Context workload_context() {
  return sp::core::Context({{"Where did we meet?", "Paris"},
                            {"What did we eat?", "pizza"},
                            {"Who hosted?", "Alice"},
                            {"Which month?", "June"}});
}

int cmd_record(const Args& args) {
  const std::string out = args.flag("out").value_or("");
  if (out.empty()) {
    std::cerr << "sp_trace record: --out is required\n";
    return 2;
  }
  const std::size_t requests = std::stoul(args.flag("requests").value_or("24"));
  const std::size_t threads = std::stoul(args.flag("threads").value_or("4"));
  const double fault_rate = std::stod(args.flag("faults").value_or("0.2"));
  const double sample = std::stod(args.flag("sample").value_or("1.0"));
  const std::string seed = args.flag("seed").value_or("sp-trace");  // sp-lint: allow(missing-wipe)

  auto& tracer = sp::obs::Tracer::global();
  sp::obs::TracerConfig tcfg;
  tcfg.sample_probability = sample;
  // The drain happens once at the end, so the recent ring must hold the
  // whole run: size it to the request count (plus wal.group_commit traces).
  tcfg.ring_slots = std::max<std::size_t>(1024, requests * 4);
  tcfg.kept_slots = std::max<std::size_t>(256, requests);
  tracer.configure(tcfg);
  tracer.set_enabled(true);

  sp::core::SessionConfig cfg;
  cfg.pairing_preset = sp::ec::ParamPreset::kToy;
  cfg.seed = seed;
  if (fault_rate > 0) {
    cfg.faults = sp::net::FaultPlan::uniform(fault_rate, seed + "-faults");
  }
  if (const auto dir = args.flag("durable")) {
    sp::core::PersistenceConfig pcfg;
    pcfg.dir = *dir;
    cfg.persistence = pcfg;
  }
  sp::core::Session session(cfg);

  const auto sharer = session.register_user("sharer");
  std::vector<sp::osn::UserId> receivers;
  for (std::size_t i = 0; i < 4; ++i) {
    receivers.push_back(session.register_user("receiver-" + std::to_string(i)));
    session.befriend(sharer, receivers.back());
  }

  const sp::core::Context ctx = workload_context();
  const std::string c1_post =
      session.share_c1(sharer, sp::crypto::to_bytes("c1 object"), ctx, 2, 4,
                       sp::net::pc_profile())
          .post_id;
  const std::string c2_post =
      session.share_c2(sharer, sp::crypto::to_bytes("c2 object"), ctx, 2,
                       sp::net::pc_profile())
          .post_id;

  // Mixed workload: both constructions, mostly knowledgeable receivers with
  // a denied (insufficient knowledge) request every fifth slot so the dump
  // always contains non-granted traces; under --faults the schedule adds
  // transient/terminal serving errors on top.
  sp::crypto::Drbg knowledge_rng(seed + "-knowledge");
  std::vector<sp::core::Session::AccessRequest> batch;
  batch.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    sp::core::Session::AccessRequest req;
    req.receiver = receivers[i % receivers.size()];
    req.post_id = (i % 2 == 0) ? c1_post : c2_post;
    req.knowledge = (i % 5 == 4) ? sp::core::Knowledge::partial(ctx, 1, knowledge_rng)
                                 : sp::core::Knowledge::full(ctx);
    req.device = sp::net::pc_profile();
    req.max_draws = 4;
    batch.push_back(std::move(req));
  }
  const auto results = session.access_parallel(batch, threads);

  std::size_t granted = 0;
  std::size_t errored = 0;
  for (const auto& r : results) {
    if (r.success()) ++granted;
    if (r.error) ++errored;
  }

  const auto traces = tracer.drain();
  const Bytes dump = sp::codec::encode_trace_dump(traces);
  write_file(out, dump);
  if (const auto chrome = args.flag("chrome")) {
    const std::string json = sp::obs::to_chrome_json(traces);
    write_file(*chrome, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
  }

  std::size_t spans = 0;
  for (const auto& t : traces) spans += t.spans.size();
  std::cout << "sp_trace record: " << results.size() << " requests (" << granted
            << " granted, " << errored << " faulted), " << traces.size() << " traces, "
            << spans << " spans -> " << out << " (" << dump.size() << " bytes)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

std::string format_ms(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

int cmd_report(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::size_t top = std::stoul(args.flag("top").value_or("3"));
  const auto traces = load_dump(args.positional.front());
  if (traces.empty()) {
    std::cout << "empty dump\n";
    return 0;
  }

  std::size_t spans = 0;
  std::size_t errored = 0;
  for (const auto& t : traces) {
    spans += t.spans.size();
    if (t.errored) ++errored;
  }
  std::cout << traces.size() << " traces, " << spans << " spans, " << errored
            << " errored\n\n";

  const auto phases = sp::obs::phase_breakdown(traces);
  std::cout << "phase breakdown (by self-time):\n";
  std::cout << "  " << "phase                 " << "count   " << "total_ms    "
            << "self_ms     " << "p50_ms      " << "max_ms\n";
  for (const auto& p : phases) {
    std::string name = p.name;
    if (name.size() < 20) name.resize(20, ' ');
    auto pad = [](std::string s, std::size_t w) {
      if (s.size() < w) s.resize(w, ' ');
      return s;
    };
    std::cout << "  " << name << "  " << pad(std::to_string(p.count), 6) << "  "
              << pad(format_ms(p.total_ms), 10) << "  " << pad(format_ms(p.self_ms), 10)
              << "  " << pad(format_ms(p.p50_ms), 10) << "  " << format_ms(p.max_ms)
              << "\n";
  }

  const auto slowest = sp::obs::slowest_traces(traces, top);
  for (const std::size_t idx : slowest) {
    std::cout << "\nslowest trace #" << idx << ":\n"
              << sp::obs::format_trace_tree(traces[idx]);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// chrome / folded
// ---------------------------------------------------------------------------

int cmd_chrome(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto traces = load_dump(args.positional.front());
  write_text(args.flag("out"), sp::obs::to_chrome_json(traces));
  return 0;
}

int cmd_folded(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto traces = load_dump(args.positional.front());
  write_text(args.flag("out"), sp::obs::to_folded_stacks(traces));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto args = parse_args(argc, argv);
  if (!args) return 2;
  try {
    if (cmd == "record") return cmd_record(*args);
    if (cmd == "report") return cmd_report(*args);
    if (cmd == "chrome") return cmd_chrome(*args);
    if (cmd == "folded") return cmd_folded(*args);
  } catch (const std::exception& e) {
    std::cerr << "sp_trace: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
