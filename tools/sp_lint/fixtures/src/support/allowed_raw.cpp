// Negative fixture: the path carries `src/support`, the one layer allowed to
// touch the raw primitives — it is where they get wrapped into the annotated
// sp::Mutex / sp::SharedMutex capabilities. No line here may produce a
// finding (the selftest fails on unexpected findings).
//
// This file is a lint fixture, never compiled.

struct Wrapper {
  std::mutex mu;

  void lock() { mu.lock(); }
  void unlock() { mu.unlock(); }
  bool try_lock() { return mu.try_lock(); }
};

struct SharedWrapper {
  std::shared_mutex mu;

  void lock_shared() { mu.lock_shared(); }
  void unlock_shared() { mu.unlock_shared(); }
};
