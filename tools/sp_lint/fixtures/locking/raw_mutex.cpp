// Lock-discipline fixture: raw standard lock primitives and bare lock-member
// calls are findings outside src/support/ — the annotated sp::Mutex /
// sp::SharedMutex wrappers plus their RAII guards are the only approved
// spelling (they carry the Clang thread-safety capabilities).
//
// This file is a lint fixture, never compiled — the identifiers are fake.

struct Widget {
  std::mutex mu;  // expect: raw-mutex
  int x = 0;
};

void raw_guard(Widget& w) {
  const std::lock_guard<std::mutex> guard(w.mu);  // expect: raw-mutex
  w.x++;
}

void raw_shared() {
  std::shared_mutex smu;  // expect: raw-mutex
  std::shared_lock<std::shared_mutex> guard(smu);  // expect: raw-mutex
}

void raw_condvar() {
  std::condition_variable cv;  // expect: raw-mutex
  cv.notify_all();
}

void raw_scoped(Widget& a, Widget& b) {
  std::scoped_lock guard(a.mu, b.mu);  // expect: raw-mutex
}

void bare_calls(sp::Mutex& mu) {
  mu.lock();    // expect: bare-lock-call
  mu.unlock();  // expect: bare-lock-call
  if (mu.try_lock()) {  // expect: bare-lock-call
    mu.unlock();  // expect: bare-lock-call
  }
}

void bare_shared_calls(sp::SharedMutex& smu) {
  smu.lock_shared();    // expect: bare-lock-call
  smu.unlock_shared();  // expect: bare-lock-call
}

// Negative: the RAII guards are the approved way to take a capability.
void guarded(sp::Mutex& mu, sp::SharedMutex& smu) {
  const sp::MutexLock guard(mu);
  const sp::SharedLock reader(smu);
}

// Negative: a longer identifier must not match the std::mutex token.
void longer_ident(std::mutex_like& fake) {
  fake.poke();
}

// Negative: prose and string mentions of std::mutex or .lock() stay silent.
// A comment saying "never use std::mutex or call .lock() directly" is fine.
const char* kAdvice = "wrap std::mutex; never call .lock() yourself";
