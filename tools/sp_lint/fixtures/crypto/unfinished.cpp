// Fixture living under a `crypto/` path component: to-do markers here are
// findings, because unfinished cryptographic code is a security bug, not a
// note to self. (Outside crypto-bearing directories the rule stays quiet.)
// The marker words are spelled out only on the seeded lines below, since the
// rule scans comments too.

void reduce_limbs() {
  // TODO: switch to Montgomery form  expect-marker-on-this-line  // expect: todo-crypto
}

void finished_helper() {
  // This comment is fine: nothing left to do here.
}

void fixme_case() {
  int x = 0;  // FIXME overflow on 32-bit  // expect: todo-crypto
  (void)x;
}
