// net-under-lock fixture (the filename carries "session", which scopes the
// rule in): SP/DH/network traffic while an exclusive sp::MutexLock is in
// scope is a finding — the serving core must never hold a small lock across
// a modeled network exchange. The registry reader/writer guards (SharedLock /
// UniqueLock) are exempt by design: refresh re-uploads under the registry
// writer lock on purpose.
//
// This file is a lint fixture, never compiled — the identifiers are fake.

void bad_net_under_keys_lock(Self& self) {
  {
    const sp::MutexLock guard(self.keys_mutex_);
    network_.transfer_ms(42);  // expect: net-under-lock
  }
}

void bad_sp_under_rng_lock() {
  const sp::MutexLock guard(rng_mutex_);
  sp_.observe(channel, payload);  // expect: net-under-lock
}

void bad_dh_under_lock_nested() {
  const sp::MutexLock guard(rng_mutex_);
  if (need_refresh) {
    dh_.store(blob);  // expect: net-under-lock
  }
}

// Negative: once the lock scope closes, the hosts are fair game.
void ok_after_scope() {
  {
    const sp::MutexLock guard(keys_mutex_);
    touch_keys();
  }
  network_.transfer_ms(42);
  dh_.store(blob);
}

// Negative: the registry writer path (UniqueLock) may talk to the hosts —
// refresh replaces records under the writer lock so readers never observe a
// half-swapped puzzle.
void ok_refresh_under_registry_lock() {
  const sp::UniqueLock registry_guard(puzzles_mutex_);
  sp_.replace_record(post_id, record);
  dh_.remove(old_url);
}

// Negative: readers under the registry SharedLock are exempt too.
void ok_access_under_registry_lock() {
  const sp::SharedLock registry_guard(puzzles_mutex_);
  sp_.observe(channel, payload);
}
