// Metrics-hygiene fixture: secret-bearing identifiers must never reach metric
// names or label values, and registered names must follow the catalog
// conventions (lowercase snake_case; counters end _total, histograms end
// _ms or _bytes — docs/OBSERVABILITY.md).
//
// This file is a lint fixture, never compiled — the identifiers are fake.

void register_bad_names() {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sp_requests", "counter missing suffix");  // expect: metric-name
  reg.counter("Sp_Requests_total", "bad charset");  // expect: metric-name
  reg.histogram("sp_phase_latency", "histogram missing suffix");  // expect: metric-name
  reg.gauge("sp-records", "dash is not snake_case");  // expect: metric-name
}

void register_multiline_bad() {
  auto& reg = obs::MetricsRegistry::global();
  reg.histogram(
      "crypto_op_latency", "name on a continuation line");  // expect: metric-name
}

void register_secret_flows(const char* mac_name, const Bytes& answer_text) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter(mac_name, "non-literal name from secret data");  // expect: secret-trace
  reg.counter("ok_requests_total", "secret in a label value",
              {{"user", answer_text}});  // expect: secret-label
}

// Negative: literal catalog-shaped names with enum-like label values.
void register_ok() {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sp_requests_total", "Requests served");
  reg.gauge("sp_records", "Records held");
  reg.histogram("sp_phase_latency_ms", "Per-phase latency",
                obs::Histogram::default_latency_bounds_ms(), {{"phase", "verify"}});
  reg.histogram("net_payload_bytes", "Payload size", bounds(), {{"op", "store"}});
}
