// Seeded violations for `secret_lint --selftest`. Every line annotated with
// `// expect: <rule>` must produce exactly that finding; every unannotated
// line must stay silent (the selftest fails on unexpected findings too, so
// the negative cases below prove the suppressions work).
//
// This file is a lint fixture, never compiled — the identifiers are fake.

struct Bytes;
void use(const Bytes&);
Bytes get();

// ---- noct-compare ---------------------------------------------------------

bool memcmp_on_key(const unsigned char* session_key, const unsigned char* other) {
  return memcmp(session_key, other, 16) == 0;  // expect: noct-compare
}

bool eq_on_tag(const Bytes& tag_a, const Bytes& tag_b) {
  return tag_a == tag_b;  // expect: noct-compare
}

bool neq_on_answer(const Bytes& answer_hash, const Bytes& submitted) {
  return answer_hash != submitted;  // expect: noct-compare
}

// Negative: size/shape checks on secrets are not content comparisons.
bool size_check_ok(const Bytes& key) {
  return key.size() != 32;
}

// Negative: an allow() on the same line suppresses the finding.
bool allowed_same_line(const Bytes& mac_a, const Bytes& mac_b) {
  return mac_a == mac_b;  // secret-lint: allow(noct-compare)
}

// Negative: an allow() on a pure comment line directly above also counts.
bool allowed_line_above(const Bytes& mac_a, const Bytes& mac_b) {
  // secret-lint: allow(noct-compare)
  return mac_a != mac_b;
}

// Negative: defaulted/deleted operator declarations are not comparisons.
struct KeyPair {
  friend bool operator==(const KeyPair&, const KeyPair&) = default;
};
bool operator==(const SecretKey&, const SecretKey&) = delete;

// Negative: iterator comparisons against begin()/end() are shape checks.
bool lookup_ok(const KeyMap& keys, int k) {
  return keys.find(k) != keys.end();
}

// Negative: `sharer` is a public role name, not a share.
bool same_sharer(const std::string& sharer, const std::string& peer) {
  return sharer == peer;
}

// ---- weak-rng -------------------------------------------------------------

int weak_rng_rand() {
  return rand() % 6;  // expect: weak-rng
}

void weak_rng_srand(unsigned s) {
  srand(s);  // expect: weak-rng
}

unsigned weak_rng_mt19937() {
  auto gen = mt19937_ctor();  // negative: mt19937_ctor is a different identifier
  return static_cast<unsigned>(0);
}

unsigned weak_rng_mt19937_real(unsigned seed_v) {
  std::mt19937 gen(seed_v);  // expect: weak-rng
  return gen();
}

// ---- missing-wipe ---------------------------------------------------------

void missing_wipe_bytes() {
  Bytes session_key = get();  // expect: missing-wipe
  use(session_key);
}

void missing_wipe_array() {
  std::uint8_t mac_block[16];  // expect: missing-wipe
  use_raw(mac_block);
}

// Negative: the function wipes before scope exit.
void wiped_ok() {
  Bytes answer_bytes = get();
  use(answer_bytes);
  secure_wipe(answer_bytes);
}

// Negative: SecretBytes wipes itself; raw decl never appears.
void secretbytes_ok() {
  SecretBytes shared_secret(get_span());
  use_span(shared_secret.span());
}

// Negative: allow() on the declaration.
void allowed_decl() {
  Bytes group_shared_secret = get();  // secret-lint: allow(missing-wipe)
  publish(group_shared_secret);
}

// Negative: non-secret names are not key material.
void plain_buffer_ok() {
  Bytes wire_payload = get();
  use(wire_payload);
}

// ---- secret-print ---------------------------------------------------------

void print_with_cout(const Bytes& api_key) {
  std::cout << api_key;  // expect: secret-print
}

void print_with_printf(const char* mac_hex) {
  printf("%s", mac_hex);  // expect: secret-print
}

// Negative: printing public data is fine.
void print_public(const char* url) {
  printf("%s", url);
}
