// sp_lint — project-invariant static analysis for the social-puzzles tree.
//
// Grown from PR 1's single-purpose secret_lint into a rule-registry engine:
// each rule has an id, a severity and a scope, findings can be suppressed
// per-path through a baseline file, and output comes in human or JSON form.
// The rules mechanise three invariants CI used to enforce only by review:
//
//  secret hygiene (the paper's §V privacy argument):
//   noct-compare   — memcmp()/operator==/!= applied to a secret-named buffer
//                    (use crypto::ct_equal / SecretBytes::ct_equals instead)
//   weak-rng       — rand()/srand()/std::mt19937/std::random_device anywhere
//                    (all randomness must flow through crypto::Drbg)
//   missing-wipe   — a function-local `Bytes`/byte-array with a secret name
//                    in a function that never wipes before scope exit
//   secret-print   — printf/fprintf/std::cout/std::cerr lines mentioning a
//                    secret-named variable
//   todo-crypto    — TODO/FIXME markers inside crypto-bearing directories
//
//  lock discipline (the -Wthread-safety companion; see src/support/):
//   raw-mutex      — raw std lock primitives (std::mutex, std::shared_mutex,
//                    std::lock_guard, std::condition_variable, ...) outside
//                    src/support/ — use sp::Mutex / sp::SharedMutex and the
//                    RAII guards, which carry the capability annotations
//   bare-lock-call — .lock()/.unlock()/.try_lock() member calls outside
//                    src/support/ — scope an RAII guard instead
//   net-under-lock — Network/SP/DH traffic (network_. / sp_. / dh_.) while an
//                    exclusive sp::MutexLock is in scope, in session files —
//                    the serving core must not hold a small lock across a
//                    modeled network exchange. The registry SharedLock /
//                    UniqueLock protocol is exempt by design: refresh
//                    re-uploads under the registry writer lock on purpose.
//
//  metrics hygiene (docs/OBSERVABILITY.md contract):
//   secret-label   — a secret-named identifier inside the {{...}} label list
//                    of a metric registration call
//   secret-trace   — a metric registered with a non-literal name expression
//                    mentioning a secret-named identifier (metric names are
//                    code identifiers, never data)
//   metric-name    — registered names must be lowercase snake_case; counters
//                    end in _total, histograms in _ms or _bytes
//
// Escape hatch: append `// sp-lint: allow(<rule>)` (the historical
// `// secret-lint: allow(...)` spelling still works) to the offending line or
// the pure-comment line directly above it. Allows are greppable, so every
// suppression is an auditable decision. Path-level suppressions go in a
// baseline file (`--baseline <file>`): one `<rule> <path-substring>` pair per
// line, `*` as the rule wildcard, `#` starts a comment.
//
// Deliberately not libclang: a single-file, zero-dependency scanner that
// builds in milliseconds on the bare toolchain and is dumb enough to read.
// The price is token-level heuristics; the rules below document their own
// false-positive suppressions.
//
// Usage:
//   sp_lint [--json] [--baseline <file>] <dir-or-file>...
//   sp_lint --selftest <fixture-dir>
//   sp_lint --list-rules
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as given
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// ------------------------------------------------------------ rule registry

struct RuleInfo {
  const char* id;
  const char* severity;  // "error" | "warning" — either kind fails the scan
  const char* summary;
};

const std::vector<RuleInfo> kRuleTable = {
    {"noct-compare", "error", "memcmp or ==/!= on a secret-named buffer"},
    {"weak-rng", "error", "non-cryptographic randomness outside crypto::Drbg"},
    {"missing-wipe", "error", "secret-named local buffer never wiped"},
    {"secret-print", "error", "printing a secret-named variable"},
    {"todo-crypto", "warning", "TODO/FIXME in a crypto-bearing directory"},
    {"raw-mutex", "error", "raw std lock primitive outside src/support/"},
    {"bare-lock-call", "error", "bare .lock()/.unlock() call outside src/support/"},
    {"net-under-lock", "error", "network/SP/DH call while a MutexLock is in scope"},
    {"secret-label", "error", "secret-named identifier in a metric label list"},
    {"secret-trace", "error", "secret-named identifier in a non-literal metric name"},
    {"metric-name", "error", "metric name violates the catalog conventions"},
};

const RuleInfo& rule_info(const std::string& id) {
  for (const auto& r : kRuleTable) {
    if (id == r.id) return r;
  }
  static const RuleInfo kUnknown{"unknown", "error", "unknown rule"};
  return kUnknown;
}

bool known_rule(const std::string& id) {
  for (const auto& r : kRuleTable) {
    if (id == r.id) return true;
  }
  return false;
}

// Identifier fragments that mark a variable as secret-bearing. Matched
// case-insensitively inside identifiers (key, puzzle_key, answer_bytes, ...).
const std::vector<std::string> kSecretNames = {"key",    "tag", "share", "answer",
                                               "secret", "mac", "nonce", "seed"};

// Directories whose files hold cryptographic core code (todo-crypto scope).
const std::vector<std::string> kCryptoDirs = {"crypto", "field", "ec", "sig", "sss"};

// Raw standard lock primitives (raw-mutex). Matched as `std::<name>`.
const std::vector<std::string> kRawLockTypes = {
    "mutex",          "shared_mutex", "timed_mutex",        "recursive_mutex",
    "recursive_timed_mutex",          "shared_timed_mutex", "lock_guard",
    "unique_lock",    "shared_lock",  "scoped_lock",        "condition_variable",
    "condition_variable_any",
};

// Bare lock-call member tokens (bare-lock-call).
const std::vector<std::string> kBareLockCalls = {
    ".lock()", ".unlock()", ".lock_shared()", ".unlock_shared()",
    ".try_lock(", ".try_lock_shared(",
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// All identifiers on a line (tokens starting with alpha/_).
std::vector<std::string> identifiers(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_start(line[i])) {
      std::size_t j = i;
      while (j < line.size() && is_ident_char(line[j])) ++j;
      out.push_back(line.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// Identifiers that contain a secret fragment but name public protocol roles
// or metadata, never key material. Exact (lowercased) matches only.
const std::vector<std::string> kPublicIdents = {"sharer", "sharers"};

bool is_secret_name(const std::string& ident) {
  const std::string low = lower(ident);
  for (const auto& pub : kPublicIdents) {
    if (low == pub) return false;
  }
  for (const auto& frag : kSecretNames) {
    if (low.find(frag) != std::string::npos) return true;
  }
  return false;
}

bool line_has_secret_ident(const std::string& line) {
  for (const auto& id : identifiers(line)) {
    if (is_secret_name(id)) return true;
  }
  return false;
}

/// True when `needle` occurs at position `pos` as a whole word (not embedded
/// in a longer identifier, e.g. `rand(` inside `random_below(`).
bool word_at(const std::string& line, std::size_t pos, const std::string& needle) {
  if (pos > 0 && is_ident_char(line[pos - 1])) return false;
  const std::size_t end = pos + needle.size();
  if (end < line.size() && is_ident_char(line[end])) return false;
  return true;
}

bool contains_word(const std::string& line, const std::string& needle) {
  for (std::size_t pos = line.find(needle); pos != std::string::npos;
       pos = line.find(needle, pos + 1)) {
    if (word_at(line, pos, needle)) return true;
  }
  return false;
}

/// Position-preserving mask: comment text and string/char-literal contents
/// become spaces (the quote characters stay) so rule matching never fires on
/// prose, while column offsets still line up with the raw line — which is
/// what lets the metric-name rule pull the registered literal back out of the
/// raw text.
std::string mask_line(const std::string& line, bool& in_block_comment) {
  std::string out(line.size(), ' ');
  bool in_str = false, in_chr = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_block_comment) {
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
        out[i] = '"';
      }
      continue;
    }
    if (in_chr) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_chr = false;
      }
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_str = true;
      out[i] = '"';
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000) are not char literals.
      if (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) && i + 1 < line.size() &&
          std::isdigit(static_cast<unsigned char>(line[i + 1]))) {
        out[i] = c;
        continue;
      }
      in_chr = true;
      continue;
    }
    out[i] = c;
  }
  return out;
}

/// `// sp-lint: allow(rule1, rule2)` parser; the historical `secret-lint:`
/// marker from PR 1 is accepted as an alias so old suppressions keep working.
std::set<std::string> parse_allows(const std::string& raw_line) {
  std::set<std::string> out;
  std::size_t at = raw_line.find("sp-lint:");
  if (at == std::string::npos) at = raw_line.find("secret-lint:");
  if (at == std::string::npos) return out;
  const std::size_t open = raw_line.find("allow(", at);
  if (open == std::string::npos) return out;
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return out;
  std::string inside = raw_line.substr(open + 6, close - open - 6);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream ss(inside);
  std::string rule;
  while (ss >> rule) out.insert(rule);
  return out;
}

// --------------------------------------------------------------------------
// Scope tracking for missing-wipe: we need to know which lines belong to
// which function body, line-based. A scope opens at `{`; its kind is decided
// by the text before the brace on the opening line.
enum class ScopeKind { kNamespaceOrType, kFunction, kBlock };

struct SecretDecl {
  std::size_t line;
  std::string name;
  bool allowed;  // an allow(missing-wipe) covered the decl
};

struct FunctionScope {
  std::vector<SecretDecl> decls;
  bool has_wipe = false;
};

/// Heuristic classification of the code before a `{`.
ScopeKind classify_opener(const std::string& before, bool inside_function) {
  if (inside_function) return ScopeKind::kBlock;
  for (const char* kw : {"struct", "class", "enum", "union", "namespace"}) {
    if (contains_word(before, kw)) return ScopeKind::kNamespaceOrType;
  }
  // `) {`, `) const {`, `) noexcept {`, `) const -> T {`: a function body.
  // Initializer lists `= {` and plain `{` blocks are not.
  const std::size_t paren = before.rfind(')');
  if (paren != std::string::npos) {
    const std::string tail = before.substr(paren + 1);
    bool tail_ok = true;
    for (char c : tail) {
      if (c == '=' || c == ',' || c == ';') tail_ok = false;
    }
    if (tail_ok) return ScopeKind::kFunction;
  }
  return ScopeKind::kBlock;
}

/// Matches a function-local declaration of a raw secret buffer:
///   [static] [const] [crypto::|sp::crypto::] Bytes <name> ...
///   std::uint8_t <name>[...]   /   uint8_t <name>[...]
/// Returns the declared identifier when it looks secret-named.
std::optional<std::string> match_secret_decl(const std::string& code) {
  // Tokenise the start of the line.
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < code.size() && toks.size() < 6) {
    if (std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
      continue;
    }
    if (is_ident_char(code[i])) {
      std::size_t j = i;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back(code.substr(i, j - i));
      i = j;
    } else if (code[i] == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      i += 2;  // fold qualified names: crypto::Bytes -> [crypto][Bytes]
    } else {
      break;  // any other punctuation ends the declaration prefix
    }
  }
  // Drop qualifiers/namespaces to find "<Type> <name>".
  std::vector<std::string> core;
  for (const auto& t : toks) {
    if (t == "static" || t == "const" || t == "constexpr" || t == "sp" || t == "crypto" ||
        t == "std") {
      continue;
    }
    core.push_back(t);
  }
  if (core.size() < 2) return std::nullopt;
  const std::string& type = core[0];
  const std::string& name = core[1];
  const bool byte_buffer = type == "Bytes" || type == "uint8_t" || type == "string";
  if (!byte_buffer) return std::nullopt;
  // uint8_t scalars are not buffers — require an array suffix for them.
  if (type == "uint8_t") {
    const std::size_t name_pos = code.find(name);
    const std::size_t bracket = code.find('[', name_pos);
    if (bracket == std::string::npos) return std::nullopt;
  }
  if (!is_secret_name(name)) return std::nullopt;
  return name;
}

bool line_wipes(const std::string& code) {
  return code.find("secure_wipe") != std::string::npos ||
         code.find(".wipe(") != std::string::npos;
}

// --------------------------------------------------------------------------

bool in_crypto_dir(const fs::path& p) {
  for (const auto& part : p) {
    for (const auto& dir : kCryptoDirs) {
      if (part == dir) return true;
    }
  }
  return false;
}

/// src/support/ is where the raw primitives get wrapped — the lock-discipline
/// rules stay quiet there (and only there).
bool in_support_layer(const fs::path& p) {
  return p.generic_string().find("src/support") != std::string::npos;
}

/// net-under-lock is scoped to the serving orchestration layer: any file
/// whose name carries "session".
bool is_session_file(const fs::path& p) {
  return lower(p.filename().string()).find("session") != std::string::npos;
}

/// Pulls the string literal starting at raw[pos] (raw[pos] == '"'); returns
/// the unescaped text and the index of the closing quote (or end of line).
std::pair<std::string, std::size_t> extract_literal(const std::string& raw, std::size_t pos) {
  std::string lit;
  std::size_t j = pos + 1;
  while (j < raw.size()) {
    if (raw[j] == '\\' && j + 1 < raw.size()) {
      lit.push_back(raw[j + 1]);
      j += 2;
      continue;
    }
    if (raw[j] == '"') break;
    lit.push_back(raw[j]);
    ++j;
  }
  return {lit, j};
}

/// Metric registration call tracked across lines (the name and label lists
/// may sit on continuation lines — pairing.cpp registers that way).
struct RegCall {
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  int depth = 0;               ///< unbalanced parens inside the call
  bool saw_first_arg = false;  ///< first non-space token after the '(' seen
  bool nonliteral_name = false;
};

const char* reg_kind_name(RegCall::Kind k) {
  switch (k) {
    case RegCall::Kind::kCounter:
      return "counter";
    case RegCall::Kind::kGauge:
      return "gauge";
    default:
      return "histogram";
  }
}

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, "io-error", "cannot open file"});
    return;
  }
  std::vector<std::string> raw_lines;
  std::string line;
  while (std::getline(in, line)) raw_lines.push_back(line);

  const bool crypto_file = in_crypto_dir(path);
  const bool support_file = in_support_layer(path);
  const bool session_file = is_session_file(path);

  // Scope stack for missing-wipe. Each entry: kind + (for functions) state.
  struct Scope {
    ScopeKind kind;
    std::size_t fn_index;  // index into fn_stack when kind == kFunction
  };
  std::vector<Scope> scopes;
  std::vector<FunctionScope> fn_stack;
  std::vector<std::pair<FunctionScope, std::size_t>> closed_fns;  // scope + close line

  bool in_block_comment = false;
  std::string pending;  // code carried across lines until a brace decision

  // net-under-lock state: brace depth plus the depths at which MutexLock
  // guards were declared (a guard dies when the walk leaves its brace level).
  int nul_depth = 0;
  std::vector<int> nul_lock_depths;

  // Metric registration call possibly spanning lines. A plain struct plus an
  // `active` flag (not std::optional): gcc -O2 trips a spurious
  // maybe-uninitialized warning on the optional under -Werror.
  RegCall reg_call;
  bool reg_active = false;

  auto current_fn = [&]() -> FunctionScope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return &fn_stack[it->fn_index];
    }
    return nullptr;
  };

  auto allowed_at = [&](std::size_t idx, const std::string& rule) {
    const auto here = parse_allows(raw_lines[idx]);
    if (here.count(rule)) return true;
    if (idx > 0) {
      const auto above = parse_allows(raw_lines[idx - 1]);
      // The line above only counts when it is a pure comment line.
      const std::string trimmed = raw_lines[idx - 1];
      const std::size_t first = trimmed.find_first_not_of(" \t");
      if (first != std::string::npos && trimmed.compare(first, 2, "//") == 0 &&
          above.count(rule)) {
        return true;
      }
    }
    return false;
  };

  auto report = [&](std::size_t idx, const std::string& rule, const std::string& msg) {
    if (allowed_at(idx, rule)) return;
    findings.push_back({path.string(), idx + 1, rule, msg});
  };

  auto check_metric_name = [&](std::size_t idx, const std::string& name, RegCall::Kind kind) {
    bool charset_ok = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
    for (const char c : name) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) charset_ok = false;
    }
    if (!charset_ok) {
      report(idx, "metric-name",
             "metric name '" + name + "' must be lowercase snake_case ([a-z][a-z0-9_]*)");
      return;
    }
    auto ends_with = [&name](const char* suffix) {
      const std::string s(suffix);
      return name.size() >= s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    if (kind == RegCall::Kind::kCounter && !ends_with("_total")) {
      report(idx, "metric-name", "counter '" + name + "' must end in _total");
    } else if (kind == RegCall::Kind::kHistogram && !ends_with("_ms") && !ends_with("_bytes")) {
      report(idx, "metric-name", "histogram '" + name + "' must end in _ms or _bytes");
    }
  };

  for (std::size_t idx = 0; idx < raw_lines.size(); ++idx) {
    const std::string& raw = raw_lines[idx];

    // todo-crypto looks at comments too, so it runs on the raw line.
    if (crypto_file) {
      if (raw.find("TODO") != std::string::npos || raw.find("FIXME") != std::string::npos) {
        report(idx, "todo-crypto", "TODO/FIXME in crypto-bearing file");
      }
    }

    const std::string code = mask_line(raw, in_block_comment);

    // ---- weak-rng ------------------------------------------------------
    if (contains_word(code, "rand") || contains_word(code, "srand") ||
        contains_word(code, "mt19937") || contains_word(code, "mt19937_64") ||
        contains_word(code, "random_device") || contains_word(code, "minstd_rand")) {
      // `rand` must be a call, not e.g. a struct member named rand.
      const bool call_like = code.find("rand()") != std::string::npos ||
                             code.find("rand ()") != std::string::npos ||
                             code.find("srand") != std::string::npos ||
                             code.find("mt19937") != std::string::npos ||
                             code.find("random_device") != std::string::npos ||
                             code.find("minstd_rand") != std::string::npos;
      if (call_like) {
        report(idx, "weak-rng", "non-cryptographic randomness; use crypto::Drbg");
      }
    }

    // ---- noct-compare --------------------------------------------------
    {
      const bool has_memcmp = contains_word(code, "memcmp");
      bool has_eq = false;
      for (std::size_t pos = 0; pos + 1 < code.size(); ++pos) {
        if ((code[pos] == '=' && code[pos + 1] == '=') ||
            (code[pos] == '!' && code[pos + 1] == '=')) {
          // Skip <=, >=, = =... handled: require char before not <>!=.
          if (code[pos] == '=' && pos > 0 &&
              (code[pos - 1] == '<' || code[pos - 1] == '>' || code[pos - 1] == '=' ||
               code[pos - 1] == '!')) {
            continue;
          }
          has_eq = true;
          break;
        }
      }
      if ((has_memcmp || has_eq) && line_has_secret_ident(code)) {
        // Size/shape checks, iterator comparisons, and declarations of
        // defaulted/deleted operators are not content comparisons.
        const bool size_check = code.find(".size()") != std::string::npos ||
                                code.find(".length()") != std::string::npos ||
                                code.find(".empty()") != std::string::npos ||
                                code.find(".begin()") != std::string::npos ||
                                code.find(".end()") != std::string::npos ||
                                code.find("nullptr") != std::string::npos ||
                                code.find("std::nullopt") != std::string::npos;
        const bool op_decl = code.find("operator==") != std::string::npos &&
                             (code.find("default") != std::string::npos ||
                              code.find("delete") != std::string::npos);
        if (!size_check && !op_decl) {
          if (has_memcmp) {
            report(idx, "noct-compare", "memcmp on secret-named buffer; use crypto::ct_equal");
          } else {
            report(idx, "noct-compare",
                   "==/!= on secret-named value; use crypto::ct_equal / ct_equals");
          }
        }
      }
    }

    // ---- secret-print --------------------------------------------------
    {
      const bool printy = contains_word(code, "printf") || contains_word(code, "fprintf") ||
                          contains_word(code, "cout") || contains_word(code, "cerr");
      if (printy && line_has_secret_ident(code)) {
        report(idx, "secret-print", "printing a secret-named variable");
      }
    }

    // ---- raw-mutex / bare-lock-call (outside src/support/) -------------
    if (!support_file) {
      bool raw_hit = false;
      for (const auto& prim : kRawLockTypes) {
        const std::string tok = "std::" + prim;
        // `std::` anchors the start; the primitive name must end at a word
        // boundary (std::mutex, not std::mutex_like).
        for (std::size_t pos = code.find(tok); pos != std::string::npos && !raw_hit;
             pos = code.find(tok, pos + 1)) {
          if (word_at(code, pos + 5, prim)) {
            report(idx, "raw-mutex",
                   "raw " + tok +
                       " outside src/support/; use sp::Mutex / sp::SharedMutex and "
                       "the RAII guards");
            raw_hit = true;  // one finding per line is enough
          }
        }
        if (raw_hit) break;
      }
      for (const auto& call : kBareLockCalls) {
        if (code.find(call) != std::string::npos) {
          report(idx, "bare-lock-call",
                 "bare " + call + "...) call outside src/support/; scope an RAII guard");
          break;
        }
      }
    }

    // ---- net-under-lock (session files only) ---------------------------
    if (session_file) {
      std::size_t i = 0;
      while (i < code.size()) {
        const char c = code[i];
        if (is_ident_start(c)) {
          std::size_t j = i;
          while (j < code.size() && is_ident_char(code[j])) ++j;
          const std::string ident = code.substr(i, j - i);
          if (ident == "MutexLock") {
            nul_lock_depths.push_back(nul_depth);
          } else if ((ident == "network_" || ident == "sp_" || ident == "dh_") &&
                     j < code.size() && code[j] == '.' && !nul_lock_depths.empty()) {
            report(idx, "net-under-lock",
                   "call through " + ident +
                       " while a MutexLock is in scope; drop the lock before "
                       "touching the network or a host");
          }
          i = j;
          continue;
        }
        if (c == '{') ++nul_depth;
        if (c == '}') {
          --nul_depth;
          while (!nul_lock_depths.empty() && nul_lock_depths.back() > nul_depth) {
            nul_lock_depths.pop_back();
          }
        }
        ++i;
      }
    }

    // ---- metrics hygiene (secret-label / secret-trace / metric-name) ---
    {
      bool touched_call = reg_active;
      std::size_t pos = 0;
      while (pos < code.size()) {
        if (!reg_active) {
          std::size_t best = std::string::npos;
          RegCall::Kind best_kind = RegCall::Kind::kCounter;
          std::size_t best_len = 0;
          const std::pair<const char*, RegCall::Kind> reg_tokens[] = {
              {".counter(", RegCall::Kind::kCounter},
              {".gauge(", RegCall::Kind::kGauge},
              {".histogram(", RegCall::Kind::kHistogram},
          };
          for (const auto& [text, kind] : reg_tokens) {
            const std::size_t at = code.find(text, pos);
            if (at != std::string::npos && (best == std::string::npos || at < best)) {
              best = at;
              best_kind = kind;
              best_len = std::string(text).size();
            }
          }
          if (best == std::string::npos) break;
          reg_call = RegCall{best_kind, 1, false, false};
          reg_active = true;
          touched_call = true;
          pos = best + best_len;
          continue;
        }
        const char c = code[pos];
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          ++pos;
          continue;
        }
        if (c == '"') {
          const auto [lit, endq] = extract_literal(raw, pos);
          if (!reg_call.saw_first_arg) {
            reg_call.saw_first_arg = true;
            check_metric_name(idx, lit, reg_call.kind);
          }
          pos = endq + 1;
          continue;
        }
        if (c == '(') {
          if (!reg_call.saw_first_arg) {
            reg_call.saw_first_arg = true;
            reg_call.nonliteral_name = true;
          }
          ++reg_call.depth;
          ++pos;
          continue;
        }
        if (c == ')') {
          if (--reg_call.depth == 0) reg_active = false;
          ++pos;
          continue;
        }
        if (is_ident_start(c)) {
          std::size_t j = pos;
          while (j < code.size() && is_ident_char(code[j])) ++j;
          const std::string ident = code.substr(pos, j - pos);
          if (!reg_call.saw_first_arg) {
            reg_call.saw_first_arg = true;
            reg_call.nonliteral_name = true;
          }
          if (reg_call.nonliteral_name && is_secret_name(ident)) {
            report(idx, "secret-trace",
                   std::string(reg_kind_name(reg_call.kind)) +
                       " registered with a non-literal name mentioning `" + ident +
                       "`; metric names are code identifiers, never data");
          }
          pos = j;
          continue;
        }
        if (!reg_call.saw_first_arg) {
          reg_call.saw_first_arg = true;
          reg_call.nonliteral_name = true;
        }
        ++pos;
      }
      const bool has_label_list = code.find("{{") != std::string::npos;
      if (touched_call && has_label_list && line_has_secret_ident(code)) {
        report(idx, "secret-label",
               "secret-named identifier in a metric label list; label values are "
               "enum-like code-path identifiers, never data");
      }
    }

    // ---- missing-wipe scope machinery ---------------------------------
    FunctionScope* fn = current_fn();
    if (fn != nullptr) {
      if (line_wipes(code)) fn->has_wipe = true;
      if (auto name = match_secret_decl(code)) {
        fn->decls.push_back({idx, *name, allowed_at(idx, "missing-wipe")});
      }
    }

    // Brace walking (after decl detection so `Type x{...};` still matches).
    pending.clear();
    for (char c : code) {
      if (c == '{') {
        const bool inside_fn = current_fn() != nullptr;
        const ScopeKind kind = classify_opener(pending, inside_fn);
        Scope s{kind, 0};
        if (kind == ScopeKind::kFunction) {
          fn_stack.emplace_back();
          s.fn_index = fn_stack.size() - 1;
        }
        scopes.push_back(s);
        pending.clear();
      } else if (c == '}') {
        if (!scopes.empty()) {
          const Scope s = scopes.back();
          scopes.pop_back();
          if (s.kind == ScopeKind::kFunction) {
            closed_fns.emplace_back(std::move(fn_stack[s.fn_index]), idx);
            fn_stack.pop_back();
          }
        }
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
  }
  // Any function never closed (unbalanced braces) is still checked.
  for (auto& f : fn_stack) closed_fns.emplace_back(std::move(f), raw_lines.size());

  for (const auto& [f, close_line] : closed_fns) {
    (void)close_line;
    if (f.has_wipe) continue;
    for (const auto& d : f.decls) {
      if (d.allowed) continue;
      findings.push_back({path.string(), d.line + 1, "missing-wipe",
                          "secret-named buffer `" + d.name +
                              "` is never wiped before scope exit; use SecretBytes or "
                              "secure_wipe"});
    }
  }
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    if (scannable(root)) files.push_back(root);
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root); it != fs::recursive_directory_iterator();
       ++it) {
    // `fixtures` directories hold intentional rule violations for the
    // selftest; skip them so tools/ itself can be scanned clean.
    if (it->is_directory() && it->path().filename() == "fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && scannable(it->path())) files.push_back(it->path());
  }
}

// ----------------------------------------------------------------- baseline

/// One `<rule> <path-substring>` suppression. `*` matches every rule. Lines
/// starting with `#` (and blank lines) are comments.
struct BaselineEntry {
  std::string rule;
  std::string path_substr;
};

std::optional<std::vector<BaselineEntry>> load_baseline(const std::string& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::vector<BaselineEntry> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    BaselineEntry e;
    if (ss >> e.rule >> e.path_substr) out.push_back(e);
  }
  return out;
}

bool baselined(const Finding& f, const std::vector<BaselineEntry>& entries) {
  const std::string path = fs::path(f.file).generic_string();
  for (const auto& e : entries) {
    if ((e.rule == "*" || e.rule == f.rule) && path.find(e.path_substr) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------------- output

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void print_json(const std::vector<Finding>& findings, std::size_t files, std::size_t suppressed) {
  std::cout << "{\n  \"tool\": \"sp_lint\",\n  \"files\": " << files
            << ",\n  \"baselined\": " << suppressed << ",\n  \"findings\": [";
  bool first = true;
  for (const auto& f : findings) {
    std::cout << (first ? "\n" : ",\n");
    first = false;
    std::cout << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"severity\": \""
              << rule_info(f.rule).severity << "\", \"message\": \"" << json_escape(f.message)
              << "\"}";
  }
  std::cout << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

int run_scan(const std::vector<std::string>& roots, bool json,
             const std::optional<std::string>& baseline_file) {
  std::vector<BaselineEntry> baseline;
  if (baseline_file) {
    auto loaded = load_baseline(*baseline_file);
    if (!loaded) {
      std::cerr << "sp_lint: cannot read baseline: " << *baseline_file << "\n";
      return 2;
    }
    baseline = std::move(*loaded);
  }
  std::vector<fs::path> files;
  for (const auto& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "sp_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, files);
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> all;
  for (const auto& f : files) scan_file(f, all);

  std::vector<Finding> findings;
  std::size_t suppressed = 0;
  for (auto& f : all) {
    if (baselined(f, baseline)) {
      ++suppressed;
    } else {
      findings.push_back(std::move(f));
    }
  }

  if (json) {
    print_json(findings, files.size(), suppressed);
  } else {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << rule_info(f.rule).severity << "] ["
                << f.rule << "] " << f.message << "\n";
    }
    std::cout << "sp_lint: " << files.size() << " files, " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s");
    if (suppressed > 0) std::cout << " (" << suppressed << " baselined)";
    std::cout << "\n";
  }
  return findings.empty() ? 0 : 1;
}

/// Self-test: every fixture line annotated `// expect: <rule>` must produce
/// exactly that finding, and no unannotated finding may appear. Proves each
/// rule fires before we trust a clean scan of src/.
int run_selftest(const std::string& fixture_dir) {
  if (!fs::exists(fixture_dir)) {
    std::cerr << "sp_lint --selftest: no such dir: " << fixture_dir << "\n";
    return 2;
  }
  // The fixture tree is walked directly — the `fixtures` directory skip in
  // collect() must not apply to the selftest's own corpus.
  std::vector<fs::path> files;
  if (fs::is_regular_file(fixture_dir)) {
    if (scannable(fixture_dir)) files.push_back(fixture_dir);
  } else {
    for (auto it = fs::recursive_directory_iterator(fixture_dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && scannable(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "sp_lint --selftest: no fixtures found\n";
    return 2;
  }

  std::map<std::pair<std::string, std::size_t>, std::set<std::string>> expected;
  std::set<std::string> expected_rules;
  for (const auto& f : files) {
    std::ifstream in(f);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      ++n;
      const std::size_t at = line.find("// expect:");
      if (at == std::string::npos) continue;
      std::string rules = line.substr(at + 10);
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream ss(rules);
      std::string rule;
      while (ss >> rule) {
        // Only known rule names count as expectations; prose after the
        // marker (or an unrelated comment containing it) is ignored.
        if (!known_rule(rule)) continue;
        expected[{f.string(), n}].insert(rule);
        expected_rules.insert(rule);
      }
    }
  }

  std::vector<Finding> findings;
  for (const auto& f : files) scan_file(f, findings);

  int failures = 0;
  std::map<std::pair<std::string, std::size_t>, std::set<std::string>> got;
  for (const auto& f : findings) got[{f.file, f.line}].insert(f.rule);

  for (const auto& [loc, rules] : expected) {
    for (const auto& rule : rules) {
      if (!got.count(loc) || !got.at(loc).count(rule)) {
        std::cout << "SELFTEST FAIL: expected [" << rule << "] at " << loc.first << ":"
                  << loc.second << " did not fire\n";
        ++failures;
      }
    }
  }
  for (const auto& [loc, rules] : got) {
    for (const auto& rule : rules) {
      if (!expected.count(loc) || !expected.at(loc).count(rule)) {
        std::cout << "SELFTEST FAIL: unexpected [" << rule << "] at " << loc.first << ":"
                  << loc.second << "\n";
        ++failures;
      }
    }
  }
  // Coverage: every rule must be exercised by at least one fixture.
  for (const auto& r : kRuleTable) {
    if (!expected_rules.count(r.id)) {
      std::cout << "SELFTEST FAIL: no fixture exercises rule [" << r.id << "]\n";
      ++failures;
    }
  }

  std::cout << "sp_lint selftest: " << expected.size() << " annotated sites, "
            << kRuleTable.size() << " rules, " << failures << " failure"
            << (failures == 1 ? "" : "s") << "\n";
  return failures == 0 ? 0 : 1;
}

int list_rules() {
  for (const auto& r : kRuleTable) {
    std::cout << r.id << "\t" << r.severity << "\t" << r.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const char* usage =
      "usage: sp_lint [--json] [--baseline <file>] <dir-or-file>...\n"
      "       sp_lint --selftest <fixture-dir>\n"
      "       sp_lint --list-rules\n";
  if (args.empty()) {
    std::cerr << usage;
    return 2;
  }
  bool json = false;
  std::optional<std::string> baseline_file;
  std::vector<std::string> roots;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--selftest") {
      if (args.size() != i + 2) {
        std::cerr << "usage: sp_lint --selftest <fixture-dir>\n";
        return 2;
      }
      return run_selftest(args[i + 1]);
    }
    if (args[i] == "--list-rules") return list_rules();
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--baseline") {
      if (i + 1 >= args.size()) {
        std::cerr << usage;
        return 2;
      }
      baseline_file = args[++i];
    } else {
      roots.push_back(args[i]);
    }
  }
  if (roots.empty()) {
    std::cerr << usage;
    return 2;
  }
  return run_scan(roots, json, baseline_file);
}
