// Quickstart: share a message behind a social puzzle (Construction 1) and
// access it as a friend who knows the context.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/session.hpp"

int main() {
  using namespace sp::core;

  // A simulated OSN session: social graph + service provider + storage host
  // + network model, all seeded for reproducibility.
  SessionConfig config;
  config.pairing_preset = sp::ec::ParamPreset::kTest;  // 256-bit demo parameters
  config.seed = "quickstart";
  Session session(config);

  const auto alice = session.register_user("alice");
  const auto bob = session.register_user("bob");
  const auto carol = session.register_user("carol");
  session.befriend(alice, bob);
  session.befriend(alice, carol);

  // Alice shares a message gated on knowledge of last week's dinner:
  // receivers must answer at least 2 of the 4 context questions.
  Context ctx;
  ctx.add("Where did we have dinner last week?", "Luigi's");
  ctx.add("What did we celebrate?", "Bob's promotion");
  ctx.add("Who picked up the bill?", "Alice");
  ctx.add("What dessert did we share?", "tiramisu");

  const auto object = sp::crypto::to_bytes("Here's the reservation code for next time: XK-42-TIRAMISU");
  const auto receipt = session.share_c1(alice, object, ctx, /*k=*/2, /*n=*/4,
                                        sp::net::pc_profile());
  std::printf("alice shared post %s (%.2f ms local, %.2f ms network, %zu bytes)\n",
              receipt.post_id.c_str(), receipt.cost.local_ms(), receipt.cost.network_ms(),
              receipt.cost.bytes_transferred());

  // Bob was at dinner: he knows the answers.
  Knowledge bob_knows;
  bob_knows.learn("Where did we have dinner last week?", "luigi's");
  bob_knows.learn("What did we celebrate?", "bob's promotion");
  const auto bob_result = session.access(bob, receipt.post_id, bob_knows, sp::net::pc_profile());
  if (bob_result.success()) {
    std::printf("bob solved the puzzle: \"%s\"\n",
                sp::crypto::to_string(*bob_result.object).c_str());
  } else {
    std::printf("bob was denied\n");
  }

  // Carol wasn't there — she guesses and is denied by the service provider.
  Knowledge carol_guesses;
  carol_guesses.learn("Where did we have dinner last week?", "McDonald's");
  carol_guesses.learn("What did we celebrate?", "a birthday");
  const auto carol_result =
      session.access(carol, receipt.post_id, carol_guesses, sp::net::pc_profile());
  std::printf("carol %s\n", carol_result.granted ? "got in (unexpected!)" : "was denied, as intended");

  return bob_result.success() && !carol_result.granted ? 0 : 1;
}
