// Surveillance audit: makes the paper's surveillance-resistance property
// visible. Shares an object with both constructions, then dumps and scans
// everything the service provider and the storage host ever saw, proving
// the plaintext and the context answers appear nowhere.
#include <algorithm>
#include <cstdio>

#include "core/session.hpp"

namespace {

bool blob_contains(const sp::crypto::Bytes& haystack, const sp::crypto::Bytes& needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}

}  // namespace

int main() {
  using namespace sp::core;
  using sp::crypto::to_bytes;

  SessionConfig config;
  config.pairing_preset = sp::ec::ParamPreset::kTest;
  config.seed = "audit";
  Session session(config);

  const auto sharer = session.register_user("sharer");
  const auto receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  const auto secret = to_bytes("THE-PLAINTEXT-SECRET: we are moving to Lisbon in May");
  Context ctx;
  ctx.add("Where are we moving?", "Lisbon");
  ctx.add("Which month?", "May");
  ctx.add("Who told you first?", "Marta");

  const auto r1 = session.share_c1(sharer, secret, ctx, 2, 3, sp::net::pc_profile());
  const auto r2 = session.share_c2(sharer, secret, ctx, 2, sp::net::pc_profile());

  // A legitimate receiver decrypts both — the protocol *works*...
  const auto a1 = session.access(receiver, r1.post_id, Knowledge::full(ctx), sp::net::pc_profile());
  const auto a2 = session.access(receiver, r2.post_id, Knowledge::full(ctx), sp::net::pc_profile());
  std::printf("receiver decrypted C1 share: %s\n", a1.success() ? "yes" : "NO");
  std::printf("receiver decrypted C2 share: %s\n\n", a2.success() ? "yes" : "NO");

  // ...while the hosts' complete views stay clean.
  auto& sp_host = session.service_provider();
  std::printf("service provider view: %zu records, %zu observed messages\n",
              sp_host.record_count(), sp_host.observations().size());

  struct Probe {
    const char* label;
    sp::crypto::Bytes needle;
  };
  std::vector<Probe> probes = {{"object plaintext", secret}};
  for (const auto& p : ctx.pairs()) {
    probes.push_back({"answer", to_bytes(Context::normalize_answer(p.answer))});
  }

  bool leaked = false;
  for (const auto& probe : probes) {
    const bool in_sp = sp_host.view_contains(probe.needle);
    bool in_dh = false;
    for (const auto& [url, blob] : session.storage_host().observed_blobs()) {
      in_dh = in_dh || blob_contains(blob, probe.needle);
    }
    std::printf("  %-17s \"%.*s\"  in SP view: %-3s  in DH view: %s\n", probe.label,
                static_cast<int>(std::min<std::size_t>(probe.needle.size(), 24)),
                reinterpret_cast<const char*>(probe.needle.data()), in_sp ? "YES" : "no",
                in_dh ? "YES" : "no");
    leaked = leaked || in_sp || in_dh;
  }

  // Questions are public by design — show that contrast.
  const bool questions_visible = sp_host.view_contains(to_bytes("Where are we moving?"));
  std::printf("  %-17s (public by design)         in SP view: %s\n", "question",
              questions_visible ? "YES" : "no");

  std::printf("\n%s\n", leaked ? "LEAK DETECTED — surveillance resistance violated!"
                               : "clean: hosts stored and verified everything without learning "
                                 "the object or the context");
  return (!leaked && a1.success() && a2.success()) ? 0 : 1;
}
