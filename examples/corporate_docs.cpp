// Corporate document sharing — the paper's §I non-OSN application: "data
// management in a corporate network, where only employees knowing certain
// work-related context can get access to certain confidential documents."
//
// Uses Construction 2 (CP-ABE): the access policy travels inside the
// ciphertext, so the document can be mirrored to any storage host and only
// employees holding the work context can open it — even if the host and the
// portal collude, neither learns the document or the context answers.
#include <cstdio>

#include "core/session.hpp"

int main() {
  using namespace sp::core;

  SessionConfig config;
  config.pairing_preset = sp::ec::ParamPreset::kTest;
  config.seed = "corporate";
  Session session(config);

  const auto lead = session.register_user("project-lead");
  const auto engineer = session.register_user("team-engineer");
  const auto contractor = session.register_user("external-contractor");
  const auto intern = session.register_user("new-intern");
  session.befriend(lead, engineer);
  session.befriend(lead, contractor);
  session.befriend(lead, intern);

  // Work context only the project team shares. Threshold 3 of 4: a team
  // member may have missed one standup, but an outsider can't clear three.
  Context ctx;
  ctx.add("Project codename?", "Falcon");
  ctx.add("Which build broke last sprint?", "build 1187");
  ctx.add("Standup room?", "B-42");
  ctx.add("Staging database alias?", "fern");

  const auto doc = sp::crypto::to_bytes(
      "CONFIDENTIAL: Falcon Q3 design review notes.\n"
      "Decision: migrate the ingest path to the new queue before build 1200.\n");

  const auto receipt = session.share_c2(lead, doc, ctx, /*k=*/3, sp::net::pc_profile());
  std::printf("lead shared the design notes via CP-ABE (%zu bytes moved, %.1f ms)\n",
              receipt.cost.bytes_transferred(), receipt.cost.total_ms());

  // The engineer knows the project inside out.
  Knowledge eng;
  eng.learn("Project codename?", "falcon");
  eng.learn("Which build broke last sprint?", "Build 1187");
  eng.learn("Staging database alias?", "FERN");
  const auto r_eng = session.access(engineer, receipt.post_id, eng, sp::net::pc_profile());
  std::printf("engineer (3/4 answers):  %s\n", r_eng.success() ? "document opened" : "denied");

  // The contractor knows the codename and the room but not internals.
  Knowledge con;
  con.learn("Project codename?", "falcon");
  con.learn("Standup room?", "b-42");
  con.learn("Which build broke last sprint?", "build 900");
  con.learn("Staging database alias?", "oak");
  const auto r_con = session.access(contractor, receipt.post_id, con, sp::net::pc_profile());
  std::printf("contractor (2/4 answers): %s\n", r_con.success() ? "document opened" : "denied");

  // The intern started yesterday.
  const auto r_intern =
      session.access(intern, receipt.post_id, Knowledge{}, sp::net::pc_profile());
  std::printf("intern (0/4 answers):     %s\n", r_intern.success() ? "document opened" : "denied");

  if (r_eng.success()) {
    std::printf("\nengineer reads:\n%s", sp::crypto::to_string(*r_eng.object).c_str());
  }
  return (r_eng.success() && !r_con.granted && !r_intern.granted) ? 0 : 1;
}
