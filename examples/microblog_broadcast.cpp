// Microblog broadcast — the paper's §I argument that directed OSNs with
// minimal access control (Twitter) "benefit even more": the hyperlink is
// public, every follower (and anyone else) can try the puzzle, and the
// context is the ONLY thing standing between the object and the world.
//
// A band posts the address of a secret afterparty. Only people who were at
// tonight's show know the context; the 50k other followers see the post but
// can't open it — and no follower list was ever curated.
#include <cstdio>

#include "core/session.hpp"

int main() {
  using namespace sp::core;
  using sp::crypto::to_bytes;

  SessionConfig config;
  config.pairing_preset = sp::ec::ParamPreset::kTest;
  config.seed = "microblog";
  Session session(config);

  const auto band = session.register_user("the-band");
  const auto fan_at_show = session.register_user("fan-at-show");
  const auto fan_at_home = session.register_user("fan-at-home");
  const auto scraper = session.register_user("data-scraper");
  // Directed follows; nobody is "friends" with the band.
  session.follow(fan_at_show, band);
  session.follow(fan_at_home, band);

  Context ctx;
  ctx.add("Which song opened tonight's set?", "Static Hearts");
  ctx.add("What color were the wristbands?", "orange");
  ctx.add("What did the drummer throw into the crowd?", "a cowbell");

  const auto secret = to_bytes("Afterparty: rooftop of the Hotel Marlowe, password 'cowbell'.");
  const auto receipt = session.share_c1(band, secret, ctx, /*k=*/2, /*n=*/3,
                                        sp::net::pc_profile(), sp::osn::Visibility::kPublic);
  std::printf("band broadcast a public puzzle post (%s)\n\n", receipt.post_id.c_str());

  // Followers see the post in their feeds; non-followers don't see it in a
  // feed but can still reach a public hyperlink.
  std::printf("fan_at_show feed entries: %zu\n", session.feed_of(fan_at_show).size());
  std::printf("fan_at_home feed entries: %zu\n", session.feed_of(fan_at_home).size());
  std::printf("scraper     feed entries: %zu\n\n", session.feed_of(scraper).size());

  Knowledge at_show;
  at_show.learn("Which song opened tonight's set?", "static hearts");
  at_show.learn("What color were the wristbands?", "Orange");
  const auto r1 = session.access(fan_at_show, receipt.post_id, at_show, sp::net::pc_profile());
  std::printf("fan who was at the show:   %s\n",
              r1.success() ? sp::crypto::to_string(*r1.object).c_str() : "denied");

  Knowledge at_home;
  at_home.learn("Which song opened tonight's set?", "the one from the radio?");
  at_home.learn("What color were the wristbands?", "blue");
  const auto r2 = session.access(fan_at_home, receipt.post_id, at_home, sp::net::pc_profile());
  std::printf("fan who stayed home:       %s\n", r2.success() ? "GOT IN?!" : "denied");

  // The scraper isn't even a follower — the link is public, so it can try.
  const auto r3 = session.access(scraper, receipt.post_id, Knowledge{}, sp::net::pc_profile());
  std::printf("scraper with no context:   %s\n", r3.success() ? "GOT IN?!" : "denied");

  return (r1.success() && !r2.granted && !r3.granted) ? 0 : 1;
}
