// Event photos: the paper's motivating scenario — share pictures of a
// private gathering with exactly the friends who were there (or were
// invited), without curating an ACL.
//
// Demonstrates:
//  * automated context recommendation from an event record (paper future
//    work, implemented in core/context_recommender)
//  * binary object sharing (a synthetic "photo")
//  * a spectrum of friends with different knowledge levels hitting the
//    threshold from both sides
#include <cstdio>

#include "core/context_recommender.hpp"
#include "core/session.hpp"

int main() {
  using namespace sp::core;

  SessionConfig config;
  config.pairing_preset = sp::ec::ParamPreset::kTest;
  config.seed = "event-photos";
  Session session(config);

  const auto sarah = session.register_user("sarah");
  struct FriendCase {
    const char* name;
    std::size_t knows;  // how many context answers they can give
    sp::osn::UserId id = 0;
  };
  FriendCase friends[] = {
      {"tom-was-there", 5}, {"ana-was-there", 4}, {"raj-invited-but-missed", 3},
      {"kim-heard-about-it", 2}, {"lee-total-outsider", 0},
  };
  for (auto& f : friends) {
    f.id = session.register_user(f.name);
    session.befriend(sarah, f.id);
  }

  // Sarah's phone knows the event metadata; the recommender turns it into
  // puzzle questions, hardest-to-guess first.
  EventRecord event;
  event.title = "Sarah's rooftop birthday";
  event.venue = "the Hilltop rooftop";
  event.city = "Wichita";
  event.month = "June";
  event.host = "Sarah";
  event.participants = {"Tom", "Ana"};
  event.activities = {"karaoke"};
  event.food = "lasagna";
  const Context ctx = ContextRecommender::build_context(event, 5);

  std::printf("recommended puzzle questions:\n");
  for (const auto& p : ctx.pairs()) std::printf("  Q: %s\n", p.question.c_str());

  // A synthetic 200 KB "photo" (non-textual data support).
  sp::crypto::Drbg photo_rng("photo-bytes");
  const auto photo = photo_rng.bytes(200 * 1024);

  // Threshold 3: attendees (and invitees who followed the plans) know at
  // least 3 of these; acquaintances who merely heard about the party don't.
  const auto receipt = session.share_c1(sarah, photo, ctx, /*k=*/3, /*n=*/5,
                                        sp::net::pc_profile());
  std::printf("shared %zu-byte photo as %s (k=3 of n=5)\n\n", photo.size(),
              receipt.post_id.c_str());

  sp::crypto::Drbg know_rng("knowledge");
  int got_in = 0, denied = 0;
  for (const auto& f : friends) {
    const Knowledge k = Knowledge::partial(ctx, f.knows, know_rng);
    // A denied receiver may retry on a fresh challenge; attendees land a
    // grant quickly because they can answer whatever subset is displayed.
    const AccessResult result =
        session.access_with_retries(f.id, receipt.post_id, k, sp::net::pc_profile());
    const bool ok = result.success() && *result.object == photo;
    std::printf("%-24s knows %zu/5 -> %s\n", f.name, f.knows,
                ok ? "downloaded the album" : "denied");
    (ok ? got_in : denied)++;
  }

  std::printf("\n%d friends got the photos, %d were kept out — no ACL was ever written.\n",
              got_in, denied);
  // Expected: the two attendees and the invitee (knows >= 3) get in.
  return (got_in == 3 && denied == 2) ? 0 : 1;
}
