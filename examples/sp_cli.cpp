// sp_cli — command-line social puzzles over plain files, demonstrating the
// library outside the OSN simulator (bring-your-own transport: email the
// .puzzle and .enc files, host them anywhere).
//
//   sp_cli share  <object-file> <out-prefix> <k> "Q=A" "Q=A" ...
//       -> writes <out-prefix>.puzzle and <out-prefix>.enc
//   sp_cli inspect <prefix>.puzzle
//       -> prints the questions and threshold (what a receiver would see)
//   sp_cli solve  <prefix> <out-file> "Q=A" "Q=A" ...
//       -> reads <prefix>.puzzle + <prefix>.enc, reconstructs, decrypts
//
// Answers are matched case/whitespace-insensitively, like the web UI.
#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "core/construction1.hpp"
#include "ec/params.hpp"

namespace {

using namespace sp;
using core::Construction1;
using core::Context;
using core::Knowledge;
using core::Puzzle;
using crypto::Bytes;

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::pair<std::string, std::string> parse_qa(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error("expected \"Question=Answer\", got: " + arg);
  }
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/// Non-deterministic seed for real CLI use (tests/benches use fixed seeds).
crypto::Drbg entropy_rng() {
  std::random_device rd;
  Bytes seed(32);
  for (auto& b : seed) b = static_cast<std::uint8_t>(rd());
  return crypto::Drbg(std::span<const std::uint8_t>(seed));
}

int cmd_share(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: sp_cli share <object-file> <out-prefix> <k> \"Q=A\"...\n");
    return 2;
  }
  const std::string object_path = argv[0];
  const std::string prefix = argv[1];
  const std::size_t k = std::stoul(argv[2]);
  Context ctx;
  for (int i = 3; i < argc; ++i) {
    auto [q, a] = parse_qa(argv[i]);
    ctx.add(std::move(q), std::move(a));
  }

  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  Construction1 c1(curve.fp(), curve);
  sig::Schnorr schnorr(curve, curve.hash_to_group(crypto::to_bytes("sp-schnorr-g")));
  crypto::Drbg rng = entropy_rng();
  const sig::KeyPair keys = schnorr.keygen(rng);

  auto up = c1.upload(read_file(object_path), ctx, k, ctx.size(), keys, rng);
  up.puzzle.url = "file://" + prefix + ".enc";
  c1.sign_puzzle(up.puzzle, keys);
  write_file(prefix + ".puzzle", up.puzzle.serialize());
  write_file(prefix + ".enc", up.encrypted_object);
  std::printf("wrote %s.puzzle (%zu questions, threshold %zu) and %s.enc (%zu bytes)\n",
              prefix.c_str(), up.puzzle.n(), k, prefix.c_str(), up.encrypted_object.size());
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: sp_cli inspect <file>.puzzle\n");
    return 2;
  }
  const Puzzle puzzle = Puzzle::deserialize(read_file(argv[0]));
  std::printf("social puzzle: answer %zu of %zu questions to unlock %s\n", puzzle.threshold,
              puzzle.n(), puzzle.url.c_str());
  for (const auto& e : puzzle.entries) std::printf("  Q: %s\n", e.question.c_str());
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: sp_cli solve <prefix> <out-file> \"Q=A\"...\n");
    return 2;
  }
  const std::string prefix = argv[0];
  const std::string out_path = argv[1];
  Knowledge knowledge;
  for (int i = 2; i < argc; ++i) {
    auto [q, a] = parse_qa(argv[i]);
    knowledge.learn(std::move(q), std::move(a));
  }

  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  Construction1 c1(curve.fp(), curve);
  const Puzzle puzzle = Puzzle::deserialize(read_file(prefix + ".puzzle"));
  const Bytes encrypted = read_file(prefix + ".enc");

  if (!c1.verify_puzzle_signature(puzzle)) {
    std::fprintf(stderr, "WARNING: puzzle signature invalid — file may be tampered\n");
  }
  // In file mode there is no SP: run DisplayPuzzle/Verify locally with all
  // n questions shown (r = n — the SP's random-subset display exists to vary
  // online probing, which doesn't apply when the receiver holds the file).
  Construction1::Challenge challenge;
  challenge.threshold = puzzle.threshold;
  challenge.puzzle_key = puzzle.puzzle_key;
  for (std::size_t i = 0; i < puzzle.n(); ++i) {
    challenge.indices.push_back(i);
    challenge.questions.push_back(puzzle.entries[i].question);
  }
  const auto response = Construction1::answer_puzzle(challenge, knowledge);
  const auto reply = Construction1::verify(puzzle, challenge, response.hashes);
  if (!reply.granted) {
    std::fprintf(stderr, "denied: fewer than %zu correct answers among the asked questions\n",
                 puzzle.threshold);
    return 1;
  }
  const auto object = c1.access(puzzle, challenge, reply, knowledge, encrypted);
  if (!object) {
    std::fprintf(stderr, "decryption failed (inconsistent answers or corrupted object)\n");
    return 1;
  }
  write_file(out_path, *object);
  std::printf("unlocked %zu bytes -> %s\n", object->size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: sp_cli <share|inspect|solve> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "share") return cmd_share(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "solve") return cmd_solve(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
