file(REMOVE_RECURSE
  "CMakeFiles/test_abe.dir/abe/test_access_tree.cpp.o"
  "CMakeFiles/test_abe.dir/abe/test_access_tree.cpp.o.d"
  "CMakeFiles/test_abe.dir/abe/test_cpabe.cpp.o"
  "CMakeFiles/test_abe.dir/abe/test_cpabe.cpp.o.d"
  "test_abe"
  "test_abe.pdb"
  "test_abe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
