file(REMOVE_RECURSE
  "CMakeFiles/test_osn.dir/osn/test_osn.cpp.o"
  "CMakeFiles/test_osn.dir/osn/test_osn.cpp.o.d"
  "test_osn"
  "test_osn.pdb"
  "test_osn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
