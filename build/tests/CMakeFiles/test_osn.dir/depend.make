# Empty dependencies file for test_osn.
# This may be replaced when dependencies are built.
