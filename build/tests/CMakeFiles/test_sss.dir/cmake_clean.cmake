file(REMOVE_RECURSE
  "CMakeFiles/test_sss.dir/sss/test_shamir.cpp.o"
  "CMakeFiles/test_sss.dir/sss/test_shamir.cpp.o.d"
  "test_sss"
  "test_sss.pdb"
  "test_sss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
