
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sig/test_schnorr.cpp" "tests/CMakeFiles/test_sig.dir/sig/test_schnorr.cpp.o" "gcc" "tests/CMakeFiles/test_sig.dir/sig/test_schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sig/CMakeFiles/sp_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/sp_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/sp_field.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
