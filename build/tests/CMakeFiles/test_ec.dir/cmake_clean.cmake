file(REMOVE_RECURSE
  "CMakeFiles/test_ec.dir/ec/test_curve.cpp.o"
  "CMakeFiles/test_ec.dir/ec/test_curve.cpp.o.d"
  "CMakeFiles/test_ec.dir/ec/test_pairing.cpp.o"
  "CMakeFiles/test_ec.dir/ec/test_pairing.cpp.o.d"
  "CMakeFiles/test_ec.dir/ec/test_pairing_full.cpp.o"
  "CMakeFiles/test_ec.dir/ec/test_pairing_full.cpp.o.d"
  "test_ec"
  "test_ec.pdb"
  "test_ec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
