file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_construction1.cpp.o"
  "CMakeFiles/test_core.dir/core/test_construction1.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_construction2.cpp.o"
  "CMakeFiles/test_core.dir/core/test_construction2.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_context.cpp.o"
  "CMakeFiles/test_core.dir/core/test_context.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_accounting.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_accounting.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_directed_osn.cpp.o"
  "CMakeFiles/test_core.dir/core/test_directed_osn.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_picture_puzzle.cpp.o"
  "CMakeFiles/test_core.dir/core/test_picture_puzzle.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_security.cpp.o"
  "CMakeFiles/test_core.dir/core/test_security.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trivial_scheme.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trivial_scheme.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wire_robustness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wire_robustness.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
