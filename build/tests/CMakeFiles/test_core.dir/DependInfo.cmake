
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_construction1.cpp" "tests/CMakeFiles/test_core.dir/core/test_construction1.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_construction1.cpp.o.d"
  "/root/repo/tests/core/test_construction2.cpp" "tests/CMakeFiles/test_core.dir/core/test_construction2.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_construction2.cpp.o.d"
  "/root/repo/tests/core/test_context.cpp" "tests/CMakeFiles/test_core.dir/core/test_context.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_context.cpp.o.d"
  "/root/repo/tests/core/test_cost_accounting.cpp" "tests/CMakeFiles/test_core.dir/core/test_cost_accounting.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cost_accounting.cpp.o.d"
  "/root/repo/tests/core/test_directed_osn.cpp" "tests/CMakeFiles/test_core.dir/core/test_directed_osn.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_directed_osn.cpp.o.d"
  "/root/repo/tests/core/test_picture_puzzle.cpp" "tests/CMakeFiles/test_core.dir/core/test_picture_puzzle.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_picture_puzzle.cpp.o.d"
  "/root/repo/tests/core/test_security.cpp" "tests/CMakeFiles/test_core.dir/core/test_security.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_security.cpp.o.d"
  "/root/repo/tests/core/test_session.cpp" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "/root/repo/tests/core/test_trivial_scheme.cpp" "tests/CMakeFiles/test_core.dir/core/test_trivial_scheme.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trivial_scheme.cpp.o.d"
  "/root/repo/tests/core/test_wire_robustness.cpp" "tests/CMakeFiles/test_core.dir/core/test_wire_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_wire_robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/sp_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/sss/CMakeFiles/sp_sss.dir/DependInfo.cmake"
  "/root/repo/build/src/abe/CMakeFiles/sp_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/sp_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/sp_field.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/osn/CMakeFiles/sp_osn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
