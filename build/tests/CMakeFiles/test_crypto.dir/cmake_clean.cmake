file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_aes_modes.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_aes_modes.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_bigint.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_bigint.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_bigint_edges.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_bigint_edges.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_bytes.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_bytes.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_chacha_drbg.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_chacha_drbg.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_gcm.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_gcm.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_gibberish.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_gibberish.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_hash.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_hash.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
