
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_aes_modes.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes_modes.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes_modes.cpp.o.d"
  "/root/repo/tests/crypto/test_bigint.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_bigint.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_bigint.cpp.o.d"
  "/root/repo/tests/crypto/test_bigint_edges.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_bigint_edges.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_bigint_edges.cpp.o.d"
  "/root/repo/tests/crypto/test_bytes.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_bytes.cpp.o.d"
  "/root/repo/tests/crypto/test_chacha_drbg.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_chacha_drbg.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_chacha_drbg.cpp.o.d"
  "/root/repo/tests/crypto/test_gcm.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_gcm.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_gcm.cpp.o.d"
  "/root/repo/tests/crypto/test_gibberish.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_gibberish.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_gibberish.cpp.o.d"
  "/root/repo/tests/crypto/test_hash.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_hash.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/sp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
