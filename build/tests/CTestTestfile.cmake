# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_sig[1]_include.cmake")
include("/root/repo/build/tests/test_sss[1]_include.cmake")
include("/root/repo/build/tests/test_abe[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_osn[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
