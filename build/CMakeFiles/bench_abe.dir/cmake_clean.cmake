file(REMOVE_RECURSE
  "CMakeFiles/bench_abe.dir/bench/bench_abe.cpp.o"
  "CMakeFiles/bench_abe.dir/bench/bench_abe.cpp.o.d"
  "bench/bench_abe"
  "bench/bench_abe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
