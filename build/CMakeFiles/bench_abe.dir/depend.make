# Empty dependencies file for bench_abe.
# This may be replaced when dependencies are built.
