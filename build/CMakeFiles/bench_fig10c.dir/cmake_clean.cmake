file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c.dir/bench/bench_fig10c.cpp.o"
  "CMakeFiles/bench_fig10c.dir/bench/bench_fig10c.cpp.o.d"
  "bench/bench_fig10c"
  "bench/bench_fig10c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
