# Empty dependencies file for bench_sss.
# This may be replaced when dependencies are built.
