file(REMOVE_RECURSE
  "CMakeFiles/bench_sss.dir/bench/bench_sss.cpp.o"
  "CMakeFiles/bench_sss.dir/bench/bench_sss.cpp.o.d"
  "bench/bench_sss"
  "bench/bench_sss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
