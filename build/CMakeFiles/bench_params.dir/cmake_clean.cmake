file(REMOVE_RECURSE
  "CMakeFiles/bench_params.dir/bench/bench_params.cpp.o"
  "CMakeFiles/bench_params.dir/bench/bench_params.cpp.o.d"
  "bench/bench_params"
  "bench/bench_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
