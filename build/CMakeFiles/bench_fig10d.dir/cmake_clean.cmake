file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d.dir/bench/bench_fig10d.cpp.o"
  "CMakeFiles/bench_fig10d.dir/bench/bench_fig10d.cpp.o.d"
  "bench/bench_fig10d"
  "bench/bench_fig10d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
