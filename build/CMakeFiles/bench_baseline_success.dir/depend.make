# Empty dependencies file for bench_baseline_success.
# This may be replaced when dependencies are built.
