file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_success.dir/bench/bench_baseline_success.cpp.o"
  "CMakeFiles/bench_baseline_success.dir/bench/bench_baseline_success.cpp.o.d"
  "bench/bench_baseline_success"
  "bench/bench_baseline_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
