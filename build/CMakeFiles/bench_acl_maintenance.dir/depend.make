# Empty dependencies file for bench_acl_maintenance.
# This may be replaced when dependencies are built.
