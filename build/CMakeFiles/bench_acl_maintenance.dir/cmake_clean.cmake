file(REMOVE_RECURSE
  "CMakeFiles/bench_acl_maintenance.dir/bench/bench_acl_maintenance.cpp.o"
  "CMakeFiles/bench_acl_maintenance.dir/bench/bench_acl_maintenance.cpp.o.d"
  "bench/bench_acl_maintenance"
  "bench/bench_acl_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acl_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
