file(REMOVE_RECURSE
  "CMakeFiles/bench_payload.dir/bench/bench_payload.cpp.o"
  "CMakeFiles/bench_payload.dir/bench/bench_payload.cpp.o.d"
  "bench/bench_payload"
  "bench/bench_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
