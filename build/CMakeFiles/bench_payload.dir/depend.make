# Empty dependencies file for bench_payload.
# This may be replaced when dependencies are built.
