file(REMOVE_RECURSE
  "CMakeFiles/sp_cli.dir/sp_cli.cpp.o"
  "CMakeFiles/sp_cli.dir/sp_cli.cpp.o.d"
  "sp_cli"
  "sp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
