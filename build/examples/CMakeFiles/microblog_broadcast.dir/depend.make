# Empty dependencies file for microblog_broadcast.
# This may be replaced when dependencies are built.
