file(REMOVE_RECURSE
  "CMakeFiles/microblog_broadcast.dir/microblog_broadcast.cpp.o"
  "CMakeFiles/microblog_broadcast.dir/microblog_broadcast.cpp.o.d"
  "microblog_broadcast"
  "microblog_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microblog_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
