file(REMOVE_RECURSE
  "CMakeFiles/event_photos.dir/event_photos.cpp.o"
  "CMakeFiles/event_photos.dir/event_photos.cpp.o.d"
  "event_photos"
  "event_photos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_photos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
