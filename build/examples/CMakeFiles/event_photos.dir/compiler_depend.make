# Empty compiler generated dependencies file for event_photos.
# This may be replaced when dependencies are built.
