file(REMOVE_RECURSE
  "CMakeFiles/surveillance_audit.dir/surveillance_audit.cpp.o"
  "CMakeFiles/surveillance_audit.dir/surveillance_audit.cpp.o.d"
  "surveillance_audit"
  "surveillance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
