# Empty compiler generated dependencies file for surveillance_audit.
# This may be replaced when dependencies are built.
