file(REMOVE_RECURSE
  "CMakeFiles/corporate_docs.dir/corporate_docs.cpp.o"
  "CMakeFiles/corporate_docs.dir/corporate_docs.cpp.o.d"
  "corporate_docs"
  "corporate_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corporate_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
