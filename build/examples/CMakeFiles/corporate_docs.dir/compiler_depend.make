# Empty compiler generated dependencies file for corporate_docs.
# This may be replaced when dependencies are built.
