
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/base64.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/base64.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/base64.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/gcm.cpp.o.d"
  "/root/repo/src/crypto/gibberish.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/gibberish.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/gibberish.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/md5.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/md5.cpp.o.d"
  "/root/repo/src/crypto/modes.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/modes.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/modes.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha3.cpp" "src/crypto/CMakeFiles/sp_crypto.dir/sha3.cpp.o" "gcc" "src/crypto/CMakeFiles/sp_crypto.dir/sha3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
