file(REMOVE_RECURSE
  "CMakeFiles/sp_crypto.dir/aes.cpp.o"
  "CMakeFiles/sp_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/base64.cpp.o"
  "CMakeFiles/sp_crypto.dir/base64.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/bigint.cpp.o"
  "CMakeFiles/sp_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/bytes.cpp.o"
  "CMakeFiles/sp_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/sp_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/drbg.cpp.o"
  "CMakeFiles/sp_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/gcm.cpp.o"
  "CMakeFiles/sp_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/gibberish.cpp.o"
  "CMakeFiles/sp_crypto.dir/gibberish.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/hmac.cpp.o"
  "CMakeFiles/sp_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/md5.cpp.o"
  "CMakeFiles/sp_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/modes.cpp.o"
  "CMakeFiles/sp_crypto.dir/modes.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/sha1.cpp.o"
  "CMakeFiles/sp_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sp_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/sp_crypto.dir/sha3.cpp.o"
  "CMakeFiles/sp_crypto.dir/sha3.cpp.o.d"
  "libsp_crypto.a"
  "libsp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
