# Empty compiler generated dependencies file for sp_crypto.
# This may be replaced when dependencies are built.
