file(REMOVE_RECURSE
  "libsp_crypto.a"
)
