# Empty dependencies file for sp_ec.
# This may be replaced when dependencies are built.
