file(REMOVE_RECURSE
  "libsp_ec.a"
)
