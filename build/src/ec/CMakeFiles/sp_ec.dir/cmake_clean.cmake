file(REMOVE_RECURSE
  "CMakeFiles/sp_ec.dir/curve.cpp.o"
  "CMakeFiles/sp_ec.dir/curve.cpp.o.d"
  "CMakeFiles/sp_ec.dir/pairing.cpp.o"
  "CMakeFiles/sp_ec.dir/pairing.cpp.o.d"
  "CMakeFiles/sp_ec.dir/params.cpp.o"
  "CMakeFiles/sp_ec.dir/params.cpp.o.d"
  "libsp_ec.a"
  "libsp_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
