file(REMOVE_RECURSE
  "CMakeFiles/sp_core.dir/construction1.cpp.o"
  "CMakeFiles/sp_core.dir/construction1.cpp.o.d"
  "CMakeFiles/sp_core.dir/construction2.cpp.o"
  "CMakeFiles/sp_core.dir/construction2.cpp.o.d"
  "CMakeFiles/sp_core.dir/context.cpp.o"
  "CMakeFiles/sp_core.dir/context.cpp.o.d"
  "CMakeFiles/sp_core.dir/context_recommender.cpp.o"
  "CMakeFiles/sp_core.dir/context_recommender.cpp.o.d"
  "CMakeFiles/sp_core.dir/picture_puzzle.cpp.o"
  "CMakeFiles/sp_core.dir/picture_puzzle.cpp.o.d"
  "CMakeFiles/sp_core.dir/puzzle.cpp.o"
  "CMakeFiles/sp_core.dir/puzzle.cpp.o.d"
  "CMakeFiles/sp_core.dir/session.cpp.o"
  "CMakeFiles/sp_core.dir/session.cpp.o.d"
  "CMakeFiles/sp_core.dir/trivial_scheme.cpp.o"
  "CMakeFiles/sp_core.dir/trivial_scheme.cpp.o.d"
  "libsp_core.a"
  "libsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
