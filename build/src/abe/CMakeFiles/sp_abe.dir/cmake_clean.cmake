file(REMOVE_RECURSE
  "CMakeFiles/sp_abe.dir/access_tree.cpp.o"
  "CMakeFiles/sp_abe.dir/access_tree.cpp.o.d"
  "CMakeFiles/sp_abe.dir/cpabe.cpp.o"
  "CMakeFiles/sp_abe.dir/cpabe.cpp.o.d"
  "libsp_abe.a"
  "libsp_abe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
