# Empty compiler generated dependencies file for sp_abe.
# This may be replaced when dependencies are built.
