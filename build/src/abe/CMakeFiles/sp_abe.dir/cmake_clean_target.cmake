file(REMOVE_RECURSE
  "libsp_abe.a"
)
