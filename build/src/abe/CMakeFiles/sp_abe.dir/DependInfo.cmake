
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abe/access_tree.cpp" "src/abe/CMakeFiles/sp_abe.dir/access_tree.cpp.o" "gcc" "src/abe/CMakeFiles/sp_abe.dir/access_tree.cpp.o.d"
  "/root/repo/src/abe/cpabe.cpp" "src/abe/CMakeFiles/sp_abe.dir/cpabe.cpp.o" "gcc" "src/abe/CMakeFiles/sp_abe.dir/cpabe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/sp_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/sp_field.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
