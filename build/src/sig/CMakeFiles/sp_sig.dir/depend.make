# Empty dependencies file for sp_sig.
# This may be replaced when dependencies are built.
