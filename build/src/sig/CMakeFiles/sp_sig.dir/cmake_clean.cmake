file(REMOVE_RECURSE
  "CMakeFiles/sp_sig.dir/schnorr.cpp.o"
  "CMakeFiles/sp_sig.dir/schnorr.cpp.o.d"
  "libsp_sig.a"
  "libsp_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
