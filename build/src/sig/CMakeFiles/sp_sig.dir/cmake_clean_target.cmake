file(REMOVE_RECURSE
  "libsp_sig.a"
)
