file(REMOVE_RECURSE
  "libsp_field.a"
)
