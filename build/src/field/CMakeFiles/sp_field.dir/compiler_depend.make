# Empty compiler generated dependencies file for sp_field.
# This may be replaced when dependencies are built.
