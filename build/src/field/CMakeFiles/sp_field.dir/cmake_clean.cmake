file(REMOVE_RECURSE
  "CMakeFiles/sp_field.dir/fp.cpp.o"
  "CMakeFiles/sp_field.dir/fp.cpp.o.d"
  "CMakeFiles/sp_field.dir/fp2.cpp.o"
  "CMakeFiles/sp_field.dir/fp2.cpp.o.d"
  "libsp_field.a"
  "libsp_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
