file(REMOVE_RECURSE
  "CMakeFiles/sp_sss.dir/shamir.cpp.o"
  "CMakeFiles/sp_sss.dir/shamir.cpp.o.d"
  "libsp_sss.a"
  "libsp_sss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
