# Empty compiler generated dependencies file for sp_sss.
# This may be replaced when dependencies are built.
