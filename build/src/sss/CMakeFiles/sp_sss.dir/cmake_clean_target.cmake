file(REMOVE_RECURSE
  "libsp_sss.a"
)
