# Empty compiler generated dependencies file for sp_osn.
# This may be replaced when dependencies are built.
