file(REMOVE_RECURSE
  "libsp_osn.a"
)
