file(REMOVE_RECURSE
  "CMakeFiles/sp_osn.dir/service_provider.cpp.o"
  "CMakeFiles/sp_osn.dir/service_provider.cpp.o.d"
  "CMakeFiles/sp_osn.dir/social_graph.cpp.o"
  "CMakeFiles/sp_osn.dir/social_graph.cpp.o.d"
  "CMakeFiles/sp_osn.dir/storage_host.cpp.o"
  "CMakeFiles/sp_osn.dir/storage_host.cpp.o.d"
  "libsp_osn.a"
  "libsp_osn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_osn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
