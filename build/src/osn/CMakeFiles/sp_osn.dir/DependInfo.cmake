
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osn/service_provider.cpp" "src/osn/CMakeFiles/sp_osn.dir/service_provider.cpp.o" "gcc" "src/osn/CMakeFiles/sp_osn.dir/service_provider.cpp.o.d"
  "/root/repo/src/osn/social_graph.cpp" "src/osn/CMakeFiles/sp_osn.dir/social_graph.cpp.o" "gcc" "src/osn/CMakeFiles/sp_osn.dir/social_graph.cpp.o.d"
  "/root/repo/src/osn/storage_host.cpp" "src/osn/CMakeFiles/sp_osn.dir/storage_host.cpp.o" "gcc" "src/osn/CMakeFiles/sp_osn.dir/storage_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/sp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
