#include "osn/service_provider.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/secret.hpp"
#include "obs/metrics.hpp"

namespace sp::osn {

namespace {

/// SP front-end instruments (docs/OBSERVABILITY.md catalog). One set for the
/// process: every ServiceProvider instance reports into the same series,
/// which is the aggregate a deployment scrapes.
struct SpMetrics {
  obs::Counter& store;
  obs::Counter& replace;
  obs::Counter& read;
  obs::Counter& observe;
  obs::Counter& tamper;
  obs::Counter& tamper_rejected;
  obs::Gauge& records;
  obs::Gauge& observations;

  static SpMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SpMetrics m{
        reg.counter("osn_sp_requests_total", "ServiceProvider requests by operation",
                    {{"op", "store_record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "replace_record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "observe"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "tamper_record"}}),
        reg.counter("osn_sp_tamper_rejected_total",
                    "tamper_record calls rejected by the bounds check"),
        reg.gauge("osn_sp_records", "Puzzle records held across all SP instances"),
        reg.gauge("osn_sp_observations", "Observation-log entries across all SP instances"),
    };
    return m;
  }
};

}  // namespace

ServiceProvider::~ServiceProvider() {
  // No lock: by the time the destructor runs, no other thread may touch the
  // object (the usual C++ lifetime rule; the hammer tests join first).
  std::size_t wiped = 0;
  records_.for_each_mutable([&wiped](const std::string&, Bytes& rec) {
    crypto::secure_wipe(rec);
    ++wiped;
  });
  for (auto& obs_entry : observations_) crypto::secure_wipe(obs_entry.data);
  SpMetrics::get().records.sub(static_cast<std::int64_t>(wiped));
  SpMetrics::get().observations.sub(static_cast<std::int64_t>(observations_.size()));
}

std::string ServiceProvider::store_record(Bytes record) {
  // fetch_add keeps ids unique under concurrent stores; which thread gets
  // which id is scheduling-dependent, but every id is issued exactly once.
  const std::string id = "puzzle-" + std::to_string(next_.fetch_add(1, std::memory_order_relaxed));
  records_.put(id, std::move(record));
  SpMetrics::get().store.inc();
  SpMetrics::get().records.add(1);
  return id;
}

Bytes ServiceProvider::record(const std::string& puzzle_id) const {
  SpMetrics::get().read.inc();
  return records_.get(puzzle_id, "ServiceProvider");
}

void ServiceProvider::replace_record(const std::string& puzzle_id, Bytes record) {
  SpMetrics::get().replace.inc();
  records_.mutate(puzzle_id, "ServiceProvider", [&record](Bytes& stored) {
    crypto::secure_wipe(stored);  // refresh must not leave the old puzzle readable
    stored = std::move(record);
  });
}

void ServiceProvider::observe(const std::string& channel, Bytes data) const {
  SpMetrics::get().observe.inc();
  SpMetrics::get().observations.add(1);
  const sp::MutexLock lock(observations_mutex_);
  observations_.push_back(Observation{channel, std::move(data)});
}

std::vector<ServiceProvider::Observation> ServiceProvider::observations() const {
  const sp::MutexLock lock(observations_mutex_);
  return observations_;
}

namespace {
bool contains(std::span<const std::uint8_t> haystack, std::span<const std::uint8_t> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}
}  // namespace

bool ServiceProvider::view_contains(std::span<const std::uint8_t> needle) const {
  bool found = false;
  records_.for_each([&](const std::string&, const Bytes& rec) {
    if (contains(rec, needle)) found = true;
  });
  if (found) return true;
  const sp::MutexLock lock(observations_mutex_);
  for (const auto& obs_entry : observations_) {
    if (contains(obs_entry.data, needle)) return true;
  }
  return false;
}

bool ServiceProvider::serve_ok(net::FaultStream* faults) const {
  if (faults == nullptr) return true;
  return !faults->next_sp_error();
}

std::size_t ServiceProvider::partial_drop(std::size_t n_shares, net::FaultStream* faults) const {
  if (faults == nullptr) return 0;
  return faults->next_sp_partial(n_shares);
}

void ServiceProvider::tamper_record(const std::string& puzzle_id, std::size_t offset,
                                    Bytes replacement) {
  SpMetrics::get().tamper.inc();
  records_.mutate(puzzle_id, "ServiceProvider", [&](Bytes& stored) {
    // Subtraction-form bounds check: `offset + replacement.size()` wraps for
    // huge offsets and would wave an out-of-bounds write through.
    if (offset > stored.size() || replacement.size() > stored.size() - offset) {
      SpMetrics::get().tamper_rejected.inc();
      throw std::out_of_range("ServiceProvider: tamper out of range");
    }
    std::copy(replacement.begin(), replacement.end(),
              stored.begin() + static_cast<std::ptrdiff_t>(offset));
  });
}

}  // namespace sp::osn
