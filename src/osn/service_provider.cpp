#include "osn/service_provider.hpp"

#include <algorithm>
#include <stdexcept>

#include "codec/records.hpp"
#include "crypto/secret.hpp"
#include "obs/metrics.hpp"
#include "osn/persist.hpp"

namespace sp::osn {

namespace {

/// SP front-end instruments (docs/OBSERVABILITY.md catalog). One set for the
/// process: every ServiceProvider instance reports into the same series,
/// which is the aggregate a deployment scrapes.
struct SpMetrics {
  obs::Counter& store;
  obs::Counter& replace;
  obs::Counter& read;
  obs::Counter& observe;
  obs::Counter& tamper;
  obs::Counter& tamper_rejected;
  obs::Gauge& records;
  obs::Gauge& observations;

  static SpMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SpMetrics m{
        reg.counter("osn_sp_requests_total", "ServiceProvider requests by operation",
                    {{"op", "store_record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "replace_record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "record"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "observe"}}),
        reg.counter("osn_sp_requests_total", "", {{"op", "tamper_record"}}),
        reg.counter("osn_sp_tamper_rejected_total",
                    "tamper_record calls rejected by the bounds check"),
        reg.gauge("osn_sp_records", "Puzzle records held across all SP instances"),
        reg.gauge("osn_sp_observations", "Observation-log entries across all SP instances"),
    };
    return m;
  }
};

}  // namespace

ServiceProvider::ServiceProvider(storage::DurableStore::Options durable)
    : durable_(std::make_unique<storage::DurableStore>(std::move(durable))) {
  // Per-space counter maxima: kSpRecords/kMeta seqs restore the id counter,
  // kSpObservations seqs are the log's dense ordinals (dedup cursor — a
  // checkpoint can leave an observation in both the segment and the next
  // WAL, and appending it twice would corrupt the surveillance view).
  std::uint64_t max_record_seq = 0;
  recovery_ = durable_->recover([&](const codec::Envelope& env) {
    switch (static_cast<Space>(env.space)) {
      case Space::kMeta:
        max_record_seq = std::max(max_record_seq, env.seq);
        break;
      case Space::kSpRecords:
        max_record_seq = std::max(max_record_seq, env.seq);
        if (env.op == codec::Envelope::Op::kPut) {
          records_.put(env.id, env.value);
        } else if (env.op == codec::Envelope::Op::kErase) {
          records_.erase(env.id);
        }
        break;
      case Space::kSpObservations: {
        if (env.op != codec::Envelope::Op::kObserve) break;
        const sp::MutexLock lock(observations_mutex_);
        if (env.seq > observations_.size()) {
          observations_.push_back(Observation{env.id, env.value});
        }
        break;
      }
      default:
        break;  // unknown space: a newer writer's data, skip
    }
  });
  next_.store(max_record_seq + 1, std::memory_order_relaxed);
  SpMetrics::get().records.add(static_cast<std::int64_t>(records_.size()));
  const sp::MutexLock lock(observations_mutex_);
  SpMetrics::get().observations.add(static_cast<std::int64_t>(observations_.size()));
}

ServiceProvider::~ServiceProvider() {
  // No lock: by the time the destructor runs, no other thread may touch the
  // object (the usual C++ lifetime rule; the hammer tests join first).
  std::size_t wiped = 0;
  records_.for_each_mutable([&wiped](const std::string&, Bytes& rec) {
    crypto::secure_wipe(rec);
    ++wiped;
  });
  for (auto& obs_entry : observations_) crypto::secure_wipe(obs_entry.data);
  SpMetrics::get().records.sub(static_cast<std::int64_t>(wiped));
  SpMetrics::get().observations.sub(static_cast<std::int64_t>(observations_.size()));
}

std::string ServiceProvider::store_record(Bytes record) {
  // fetch_add keeps ids unique under concurrent stores; which thread gets
  // which id is scheduling-dependent, but every id is issued exactly once.
  const std::uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  const std::string id = "puzzle-" + std::to_string(n);
  if (durable_) {
    // persist.hpp's idiom: encode outside the lock, map-apply + enqueue
    // under it, wait for the group commit outside.
    Bytes framed = codec::encode_envelope(codec::Envelope{
        codec::Envelope::Op::kPut, space_byte(Space::kSpRecords), n, id, record});
    storage::DurableStore::Ticket ticket = 0;
    records_.put_then(id, std::move(record),
                      [&] { ticket = durable_->enqueue_framed(std::move(framed)); });
    durable_->wait(ticket);
  } else {
    records_.put(id, std::move(record));
  }
  SpMetrics::get().store.inc();
  SpMetrics::get().records.add(1);
  return id;
}

Bytes ServiceProvider::record(const std::string& puzzle_id) const {
  SpMetrics::get().read.inc();
  return records_.get(puzzle_id, "ServiceProvider");
}

void ServiceProvider::replace_record(const std::string& puzzle_id, Bytes record) {
  SpMetrics::get().replace.inc();
  Bytes framed;
  if (durable_) {
    framed = codec::encode_envelope(codec::Envelope{
        codec::Envelope::Op::kPut, space_byte(Space::kSpRecords), 0, puzzle_id, record});
  }
  storage::DurableStore::Ticket ticket = 0;
  records_.mutate(puzzle_id, "ServiceProvider", [&](Bytes& stored) {
    crypto::secure_wipe(stored);  // refresh must not leave the old puzzle readable
    stored = std::move(record);
    if (durable_) ticket = durable_->enqueue_framed(std::move(framed));
  });
  if (durable_) durable_->wait(ticket);
}

void ServiceProvider::observe(const std::string& channel, Bytes data) const {
  SpMetrics::get().observe.inc();
  SpMetrics::get().observations.add(1);
  const sp::MutexLock lock(observations_mutex_);
  if (durable_) {
    // The ordinal (dense, assigned under the log lock) is the recovery
    // dedup cursor. Fire-and-forget: the hot verify path never blocks on an
    // observation fsync; the append is ordered with every durable write.
    durable_->append_framed_async(codec::encode_envelope(
        codec::Envelope{codec::Envelope::Op::kObserve, space_byte(Space::kSpObservations),
                        observations_.size() + 1, channel, data}));
  }
  observations_.push_back(Observation{channel, std::move(data)});
}

std::vector<ServiceProvider::Observation> ServiceProvider::observations() const {
  const sp::MutexLock lock(observations_mutex_);
  return observations_;
}

namespace {
bool contains(std::span<const std::uint8_t> haystack, std::span<const std::uint8_t> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}
}  // namespace

bool ServiceProvider::view_contains(std::span<const std::uint8_t> needle) const {
  bool found = false;
  records_.for_each([&](const std::string&, const Bytes& rec) {
    if (contains(rec, needle)) found = true;
  });
  if (found) return true;
  const sp::MutexLock lock(observations_mutex_);
  for (const auto& obs_entry : observations_) {
    if (contains(obs_entry.data, needle)) return true;
  }
  return false;
}

bool ServiceProvider::serve_ok(net::FaultStream* faults) const {
  if (faults == nullptr) return true;
  return !faults->next_sp_error();
}

std::size_t ServiceProvider::partial_drop(std::size_t n_shares, net::FaultStream* faults) const {
  if (faults == nullptr) return 0;
  return faults->next_sp_partial(n_shares);
}

void ServiceProvider::tamper_record(const std::string& puzzle_id, std::size_t offset,
                                    Bytes replacement) {
  SpMetrics::get().tamper.inc();
  storage::DurableStore::Ticket ticket = 0;
  bool queued = false;
  records_.mutate(puzzle_id, "ServiceProvider", [&](Bytes& stored) {
    // Subtraction-form bounds check: `offset + replacement.size()` wraps for
    // huge offsets and would wave an out-of-bounds write through.
    if (offset > stored.size() || replacement.size() > stored.size() - offset) {
      SpMetrics::get().tamper_rejected.inc();
      throw std::out_of_range("ServiceProvider: tamper out of range");
    }
    std::copy(replacement.begin(), replacement.end(),
              stored.begin() + static_cast<std::ptrdiff_t>(offset));
    if (durable_) {
      // Encoded under the lock — the tampered value exists only here. An
      // adversary-surface path, so the serialization cost is irrelevant.
      ticket = durable_->enqueue(codec::Envelope{
          codec::Envelope::Op::kPut, space_byte(Space::kSpRecords), 0, puzzle_id, stored});
      queued = true;
    }
  });
  if (queued) durable_->wait(ticket);
}

void ServiceProvider::checkpoint() {
  if (!durable_) return;
  durable_->checkpoint([this](const storage::DurableStore::Applier& emit) { emit_state(emit); });
}

bool ServiceProvider::maybe_checkpoint() {
  if (!durable_) return false;
  return durable_->maybe_checkpoint(
      [this](const storage::DurableStore::Applier& emit) { emit_state(emit); });
}

void ServiceProvider::sync() {
  if (durable_) durable_->flush();
}

void ServiceProvider::emit_state(const storage::DurableStore::Applier& emit) const {
  // Counter carrier first: compaction must never regress id issuance.
  emit(codec::Envelope{codec::Envelope::Op::kPut, space_byte(Space::kMeta),
                       next_.load(std::memory_order_relaxed) - 1, "sp-counter", {}});
  records_.for_each([&](const std::string& id, const Bytes& rec) {
    emit(codec::Envelope{codec::Envelope::Op::kPut, space_byte(Space::kSpRecords), 0, id, rec});
  });
  const sp::MutexLock lock(observations_mutex_);
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    emit(codec::Envelope{codec::Envelope::Op::kObserve, space_byte(Space::kSpObservations), i + 1,
                         observations_[i].channel, observations_[i].data});
  }
}

}  // namespace sp::osn
