#include "osn/service_provider.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::osn {

ServiceProvider::~ServiceProvider() {
  for (auto& [id, rec] : records_) crypto::secure_wipe(rec);
  for (auto& obs : observations_) crypto::secure_wipe(obs.data);
}

std::string ServiceProvider::store_record(Bytes record) {
  const std::string id = "puzzle-" + std::to_string(next_++);
  records_.emplace(id, std::move(record));
  return id;
}

const Bytes& ServiceProvider::record(const std::string& puzzle_id) const {
  const auto it = records_.find(puzzle_id);
  if (it == records_.end()) throw std::out_of_range("ServiceProvider: unknown puzzle " + puzzle_id);
  return it->second;
}

void ServiceProvider::replace_record(const std::string& puzzle_id, Bytes record) {
  auto it = records_.find(puzzle_id);
  if (it == records_.end()) throw std::out_of_range("ServiceProvider: unknown puzzle " + puzzle_id);
  crypto::secure_wipe(it->second);  // refresh must not leave the old puzzle readable
  it->second = std::move(record);
}

void ServiceProvider::observe(const std::string& channel, Bytes data) {
  observations_.push_back(Observation{channel, std::move(data)});
}

namespace {
bool contains(std::span<const std::uint8_t> haystack, std::span<const std::uint8_t> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}
}  // namespace

bool ServiceProvider::view_contains(std::span<const std::uint8_t> needle) const {
  for (const auto& [id, rec] : records_) {
    if (contains(rec, needle)) return true;
  }
  for (const auto& obs : observations_) {
    if (contains(obs.data, needle)) return true;
  }
  return false;
}

void ServiceProvider::tamper_record(const std::string& puzzle_id, std::size_t offset,
                                    Bytes replacement) {
  auto it = records_.find(puzzle_id);
  if (it == records_.end()) throw std::out_of_range("ServiceProvider: unknown puzzle");
  if (offset + replacement.size() > it->second.size()) {
    throw std::out_of_range("ServiceProvider: tamper out of range");
  }
  std::copy(replacement.begin(), replacement.end(),
            it->second.begin() + static_cast<std::ptrdiff_t>(offset));
}

}  // namespace sp::osn
