#include "osn/service_provider.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::osn {

ServiceProvider::~ServiceProvider() {
  // No lock: by the time the destructor runs, no other thread may touch the
  // object (the usual C++ lifetime rule; the hammer tests join first).
  records_.for_each_mutable([](const std::string&, Bytes& rec) { crypto::secure_wipe(rec); });
  for (auto& obs : observations_) crypto::secure_wipe(obs.data);
}

std::string ServiceProvider::store_record(Bytes record) {
  // fetch_add keeps ids unique under concurrent stores; which thread gets
  // which id is scheduling-dependent, but every id is issued exactly once.
  const std::string id = "puzzle-" + std::to_string(next_.fetch_add(1, std::memory_order_relaxed));
  records_.put(id, std::move(record));
  return id;
}

Bytes ServiceProvider::record(const std::string& puzzle_id) const {
  return records_.get(puzzle_id, "ServiceProvider");
}

void ServiceProvider::replace_record(const std::string& puzzle_id, Bytes record) {
  records_.mutate(puzzle_id, "ServiceProvider", [&record](Bytes& stored) {
    crypto::secure_wipe(stored);  // refresh must not leave the old puzzle readable
    stored = std::move(record);
  });
}

void ServiceProvider::observe(const std::string& channel, Bytes data) const {
  const std::lock_guard<std::mutex> lock(observations_mutex_);
  observations_.push_back(Observation{channel, std::move(data)});
}

std::vector<ServiceProvider::Observation> ServiceProvider::observations() const {
  const std::lock_guard<std::mutex> lock(observations_mutex_);
  return observations_;
}

namespace {
bool contains(std::span<const std::uint8_t> haystack, std::span<const std::uint8_t> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}
}  // namespace

bool ServiceProvider::view_contains(std::span<const std::uint8_t> needle) const {
  bool found = false;
  records_.for_each([&](const std::string&, const Bytes& rec) {
    if (contains(rec, needle)) found = true;
  });
  if (found) return true;
  const std::lock_guard<std::mutex> lock(observations_mutex_);
  for (const auto& obs : observations_) {
    if (contains(obs.data, needle)) return true;
  }
  return false;
}

void ServiceProvider::tamper_record(const std::string& puzzle_id, std::size_t offset,
                                    Bytes replacement) {
  records_.mutate(puzzle_id, "ServiceProvider", [&](Bytes& stored) {
    // Subtraction-form bounds check: `offset + replacement.size()` wraps for
    // huge offsets and would wave an out-of-bounds write through.
    if (offset > stored.size() || replacement.size() > stored.size() - offset) {
      throw std::out_of_range("ServiceProvider: tamper out of range");
    }
    std::copy(replacement.begin(), replacement.end(),
              stored.begin() + static_cast<std::ptrdiff_t>(offset));
  });
}

}  // namespace sp::osn
