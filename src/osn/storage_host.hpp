// Storage service DH (paper §IV-A): logically separate from the SP, holds
// only encrypted objects, publicly fetchable by URL. Includes the adversary
// surface the security analysis (§VI-B) needs: an observation log (what a
// curious DH has seen) and tamper/remove APIs (malicious-DH DoS).
//
// Thread safety: blobs live in a ShardedStore (URL-hash striped mutexes), so
// concurrent store/fetch/tamper/remove from any number of threads is safe.
// URLs are derived from a global atomic counter — independent of shard
// layout, so a URL issued once stays valid for the life of the host.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "osn/sharded_store.hpp"
#include "storage/store.hpp"

namespace sp::osn {

using crypto::Bytes;

class StorageHost {
 public:
  StorageHost() = default;
  /// Durable DH: opens (or creates) the WAL/segment pair in `durable.dir`,
  /// replays it to rebuild the blob map and the URL counter, then serves.
  /// store/remove/tamper acknowledge only once their envelope is durable per
  /// the WAL's fsync policy.
  explicit StorageHost(storage::DurableStore::Options durable);
  /// Settles the process-wide object/byte gauges for everything still at
  /// rest in this instance.
  ~StorageHost();
  // Shard mutexes pin the host in place: construct it where it serves.
  StorageHost(const StorageHost&) = delete;
  StorageHost& operator=(const StorageHost&) = delete;
  StorageHost(StorageHost&&) = delete;
  StorageHost& operator=(StorageHost&&) = delete;

  /// Stores a blob; returns its URL (URL_O in the paper). URLs are stable,
  /// unguessable-looking identifiers.
  std::string store(Bytes blob);

  /// Fetches a copy by URL; throws std::out_of_range for unknown URLs. A
  /// copy, not a reference: a reference into the store would dangle when a
  /// malicious-DH thread removes or tampers the object mid-read. Every fetch
  /// and store is visible to the host (it *is* the host) — `observed_blobs`
  /// exposes that view to surveillance tests.
  [[nodiscard]] Bytes fetch(const std::string& url) const;

  /// Fault-aware fetch (chaos layer, DESIGN.md "Fault model"): consults
  /// `faults` (may be null = fault-free) before serving. An injected miss —
  /// or a genuinely unknown URL — returns Err(kDhMiss) instead of throwing;
  /// an injected corruption deterministically flips one byte of the
  /// *delivered copy* (the object at rest is untouched), so decryption fails
  /// downstream exactly like a flaky CDN edge.
  [[nodiscard]] net::Expected<Bytes> try_fetch(const std::string& url,
                                               net::FaultStream* faults = nullptr) const;

  [[nodiscard]] bool exists(const std::string& url) const { return blobs_.contains(url); }
  [[nodiscard]] std::size_t object_count() const { return blobs_.size(); }
  /// Total bytes at rest (bench reporting).
  [[nodiscard]] std::size_t bytes_stored() const;

  // ---- adversary surface (tests only; a real DH has these powers too) ----

  /// Everything this host has ever seen: a point-in-time copy of its
  /// complete surveillance view.
  [[nodiscard]] std::map<std::string, Bytes> observed_blobs() const { return blobs_.snapshot(); }
  /// Malicious DH: corrupt a stored object (flip a byte). Throws
  /// std::out_of_range when `byte_index` is outside the blob (empty blobs
  /// have no valid index) — the same contract as
  /// ServiceProvider::tamper_record, so the adversary surface agrees on what
  /// an invalid tamper means.
  void tamper(const std::string& url, std::size_t byte_index);
  /// Malicious DH: delete an object. Throws std::out_of_range for unknown
  /// URLs.
  void remove(const std::string& url);

  // ---- persistence (null / no-ops for an in-memory DH) ----

  [[nodiscard]] bool is_durable() const { return durable_ != nullptr; }
  [[nodiscard]] const storage::DurableStore* durable() const { return durable_.get(); }
  [[nodiscard]] const storage::DurableStore::RecoveryStats& recovery_stats() const {
    return recovery_;
  }
  void checkpoint();
  bool maybe_checkpoint();
  /// Blocks until everything appended so far is durable.
  void sync();

 private:
  void emit_state(const storage::DurableStore::Applier& emit) const;

  ShardedStore<Bytes> blobs_;
  std::atomic<std::uint64_t> next_{1};
  std::unique_ptr<storage::DurableStore> durable_;  ///< null = in-memory host
  storage::DurableStore::RecoveryStats recovery_;
};

}  // namespace sp::osn
