// Storage service DH (paper §IV-A): logically separate from the SP, holds
// only encrypted objects, publicly fetchable by URL. Includes the adversary
// surface the security analysis (§VI-B) needs: an observation log (what a
// curious DH has seen) and tamper/remove APIs (malicious-DH DoS).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::osn {

using crypto::Bytes;

class StorageHost {
 public:
  /// Stores a blob; returns its URL (URL_O in the paper). URLs are stable,
  /// unguessable-looking identifiers.
  std::string store(Bytes blob);

  /// Fetches by URL; throws std::out_of_range for unknown URLs. Every fetch
  /// and store is visible to the host (it *is* the host) — `observed_blobs`
  /// exposes that view to surveillance tests.
  [[nodiscard]] const Bytes& fetch(const std::string& url) const;

  [[nodiscard]] bool exists(const std::string& url) const { return blobs_.count(url) > 0; }
  [[nodiscard]] std::size_t object_count() const { return blobs_.size(); }
  /// Total bytes at rest (bench reporting).
  [[nodiscard]] std::size_t bytes_stored() const;

  // ---- adversary surface (tests only; a real DH has these powers too) ----

  /// Everything this host has ever seen: its complete surveillance view.
  [[nodiscard]] const std::map<std::string, Bytes>& observed_blobs() const { return blobs_; }
  /// Malicious DH: corrupt a stored object (flip a byte).
  void tamper(const std::string& url, std::size_t byte_index);
  /// Malicious DH: delete an object.
  void remove(const std::string& url);

 private:
  std::map<std::string, Bytes> blobs_;
  std::uint64_t next_ = 1;
};

}  // namespace sp::osn
