#include "osn/storage_host.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::osn {

std::string StorageHost::store(Bytes blob) {
  // URL = hash of (counter || size): stable and unguessable-looking, without
  // depending on content (two identical ciphertexts get distinct URLs). The
  // counter is a global atomic so URLs never depend on shard layout.
  const std::uint64_t counter = next_.fetch_add(1, std::memory_order_relaxed);
  Bytes url_preimage;
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  const std::uint64_t size = blob.size();
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  const std::string url =
      "dh://objects/" + crypto::to_hex(crypto::Sha256::hash(url_preimage)).substr(0, 24);
  blobs_.put(url, std::move(blob));
  return url;
}

Bytes StorageHost::fetch(const std::string& url) const { return blobs_.get(url, "StorageHost"); }

std::size_t StorageHost::bytes_stored() const {
  std::size_t total = 0;
  blobs_.for_each([&total](const std::string&, const Bytes& blob) { total += blob.size(); });
  return total;
}

void StorageHost::tamper(const std::string& url, std::size_t byte_index) {
  blobs_.mutate(url, "StorageHost", [byte_index](Bytes& blob) {
    if (blob.empty()) return;
    blob[byte_index % blob.size()] ^= 0x01;
  });
}

void StorageHost::remove(const std::string& url) {
  if (!blobs_.erase(url)) throw std::out_of_range("StorageHost: unknown URL");
}

}  // namespace sp::osn
