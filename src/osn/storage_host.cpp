#include "osn/storage_host.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace sp::osn {

namespace {

/// DH front-end instruments (docs/OBSERVABILITY.md catalog); process-wide
/// totals across every StorageHost instance.
struct DhMetrics {
  obs::Counter& store;
  obs::Counter& fetch;
  obs::Counter& fetch_miss;
  obs::Counter& remove;
  obs::Counter& tamper;
  obs::Gauge& objects;
  obs::Gauge& bytes_at_rest;

  static DhMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static DhMetrics m{
        reg.counter("osn_dh_requests_total", "StorageHost requests by operation",
                    {{"op", "store"}}),
        reg.counter("osn_dh_requests_total", "", {{"op", "fetch"}}),
        reg.counter("osn_dh_fetch_miss_total", "Fetches of unknown URLs (malicious-SP pointers)"),
        reg.counter("osn_dh_requests_total", "", {{"op", "remove"}}),
        reg.counter("osn_dh_requests_total", "", {{"op", "tamper"}}),
        reg.gauge("osn_dh_objects", "Encrypted objects at rest across all DH instances"),
        reg.gauge("osn_dh_bytes", "Encrypted bytes at rest across all DH instances"),
    };
    return m;
  }
};

}  // namespace

StorageHost::~StorageHost() {
  std::size_t objects = 0, bytes = 0;
  blobs_.for_each([&](const std::string&, const Bytes& blob) {
    ++objects;
    bytes += blob.size();
  });
  DhMetrics::get().objects.sub(static_cast<std::int64_t>(objects));
  DhMetrics::get().bytes_at_rest.sub(static_cast<std::int64_t>(bytes));
}

std::string StorageHost::store(Bytes blob) {
  // URL = hash of (counter || size): stable and unguessable-looking, without
  // depending on content (two identical ciphertexts get distinct URLs). The
  // counter is a global atomic so URLs never depend on shard layout.
  const std::uint64_t counter = next_.fetch_add(1, std::memory_order_relaxed);
  Bytes url_preimage;
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  const std::uint64_t size = blob.size();
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  const std::string url =
      "dh://objects/" + crypto::to_hex(crypto::Sha256::hash(url_preimage)).substr(0, 24);
  DhMetrics::get().store.inc();
  DhMetrics::get().objects.add(1);
  DhMetrics::get().bytes_at_rest.add(static_cast<std::int64_t>(size));
  blobs_.put(url, std::move(blob));
  return url;
}

Bytes StorageHost::fetch(const std::string& url) const {
  DhMetrics::get().fetch.inc();
  try {
    return blobs_.get(url, "StorageHost");
  } catch (const std::out_of_range&) {
    DhMetrics::get().fetch_miss.inc();
    throw;
  }
}

net::Expected<Bytes> StorageHost::try_fetch(const std::string& url,
                                            net::FaultStream* faults) const {
  std::optional<net::ServeError> injected;
  if (faults != nullptr) injected = faults->next_dh();
  if (injected == net::ServeError::kDhMiss) {
    DhMetrics::get().fetch.inc();
    return net::ServeError::kDhMiss;
  }
  DhMetrics::get().fetch.inc();
  std::optional<Bytes> blob = blobs_.get_if(url);
  if (!blob) {
    DhMetrics::get().fetch_miss.inc();
    return net::ServeError::kDhMiss;
  }
  if (injected == net::ServeError::kCorruptedBlob && !blob->empty()) {
    (*blob)[blob->size() / 2] ^= 0x5a;
  }
  return std::move(*blob);
}

std::size_t StorageHost::bytes_stored() const {
  std::size_t total = 0;
  blobs_.for_each([&total](const std::string&, const Bytes& blob) { total += blob.size(); });
  return total;
}

void StorageHost::tamper(const std::string& url, std::size_t byte_index) {
  DhMetrics::get().tamper.inc();
  blobs_.mutate(url, "StorageHost", [byte_index](Bytes& blob) {
    if (blob.empty()) return;
    blob[byte_index % blob.size()] ^= 0x01;
  });
}

void StorageHost::remove(const std::string& url) {
  DhMetrics::get().remove.inc();
  const std::optional<Bytes> gone = blobs_.take(url);
  if (!gone) throw std::out_of_range("StorageHost: unknown URL");
  DhMetrics::get().objects.sub(1);
  DhMetrics::get().bytes_at_rest.sub(static_cast<std::int64_t>(gone->size()));
}

}  // namespace sp::osn
