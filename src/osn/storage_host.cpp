#include "osn/storage_host.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::osn {

std::string StorageHost::store(Bytes blob) {
  // URL = hash of (counter || size): stable and unguessable-looking, without
  // depending on content (two identical ciphertexts get distinct URLs).
  Bytes counter_bytes;
  for (int i = 7; i >= 0; --i) counter_bytes.push_back(static_cast<std::uint8_t>(next_ >> (8 * i)));
  ++next_;
  const std::string url =
      "dh://objects/" + crypto::to_hex(crypto::Sha256::hash(counter_bytes)).substr(0, 24);
  blobs_.emplace(url, std::move(blob));
  return url;
}

const Bytes& StorageHost::fetch(const std::string& url) const {
  const auto it = blobs_.find(url);
  if (it == blobs_.end()) throw std::out_of_range("StorageHost: unknown URL " + url);
  return it->second;
}

std::size_t StorageHost::bytes_stored() const {
  std::size_t total = 0;
  for (const auto& [url, blob] : blobs_) total += blob.size();
  return total;
}

void StorageHost::tamper(const std::string& url, std::size_t byte_index) {
  auto it = blobs_.find(url);
  if (it == blobs_.end()) throw std::out_of_range("StorageHost: unknown URL");
  if (it->second.empty()) return;
  it->second[byte_index % it->second.size()] ^= 0x01;
}

void StorageHost::remove(const std::string& url) {
  if (blobs_.erase(url) == 0) throw std::out_of_range("StorageHost: unknown URL");
}

}  // namespace sp::osn
