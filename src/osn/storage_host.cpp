#include "osn/storage_host.hpp"

#include <algorithm>
#include <stdexcept>

#include "codec/records.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "osn/persist.hpp"

namespace sp::osn {

namespace {

/// DH front-end instruments (docs/OBSERVABILITY.md catalog); process-wide
/// totals across every StorageHost instance.
struct DhMetrics {
  obs::Counter& store;
  obs::Counter& fetch;
  obs::Counter& fetch_miss;
  obs::Counter& remove;
  obs::Counter& tamper;
  obs::Counter& tamper_rejected;
  obs::Gauge& objects;
  obs::Gauge& bytes_at_rest;

  static DhMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static DhMetrics m{
        reg.counter("osn_dh_requests_total", "StorageHost requests by operation",
                    {{"op", "store"}}),
        reg.counter("osn_dh_requests_total", "", {{"op", "fetch"}}),
        reg.counter("osn_dh_fetch_miss_total", "Fetches of unknown URLs (malicious-SP pointers)"),
        reg.counter("osn_dh_requests_total", "", {{"op", "remove"}}),
        reg.counter("osn_dh_requests_total", "", {{"op", "tamper"}}),
        reg.counter("osn_dh_tamper_rejected_total",
                    "tamper calls rejected by the bounds check"),
        reg.gauge("osn_dh_objects", "Encrypted objects at rest across all DH instances"),
        reg.gauge("osn_dh_bytes", "Encrypted bytes at rest across all DH instances"),
    };
    return m;
  }
};

}  // namespace

StorageHost::StorageHost(storage::DurableStore::Options durable)
    : durable_(std::make_unique<storage::DurableStore>(std::move(durable))) {
  std::uint64_t max_counter_seq = 0;
  recovery_ = durable_->recover([&](const codec::Envelope& env) {
    switch (static_cast<Space>(env.space)) {
      case Space::kMeta:
        max_counter_seq = std::max(max_counter_seq, env.seq);
        break;
      case Space::kDhBlobs:
        max_counter_seq = std::max(max_counter_seq, env.seq);
        if (env.op == codec::Envelope::Op::kPut) {
          blobs_.put(env.id, env.value);
        } else if (env.op == codec::Envelope::Op::kErase) {
          blobs_.erase(env.id);
        }
        break;
      default:
        break;  // unknown space: a newer writer's data, skip
    }
  });
  next_.store(max_counter_seq + 1, std::memory_order_relaxed);
  std::size_t objects = 0, bytes = 0;
  blobs_.for_each([&](const std::string&, const Bytes& blob) {
    ++objects;
    bytes += blob.size();
  });
  DhMetrics::get().objects.add(static_cast<std::int64_t>(objects));
  DhMetrics::get().bytes_at_rest.add(static_cast<std::int64_t>(bytes));
}

StorageHost::~StorageHost() {
  std::size_t objects = 0, bytes = 0;
  blobs_.for_each([&](const std::string&, const Bytes& blob) {
    ++objects;
    bytes += blob.size();
  });
  DhMetrics::get().objects.sub(static_cast<std::int64_t>(objects));
  DhMetrics::get().bytes_at_rest.sub(static_cast<std::int64_t>(bytes));
}

std::string StorageHost::store(Bytes blob) {
  // URL = hash of (counter || size): stable and unguessable-looking, without
  // depending on content (two identical ciphertexts get distinct URLs). The
  // counter is a global atomic so URLs never depend on shard layout.
  const std::uint64_t counter = next_.fetch_add(1, std::memory_order_relaxed);
  Bytes url_preimage;
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  const std::uint64_t size = blob.size();
  for (int i = 7; i >= 0; --i) url_preimage.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  const std::string url =
      "dh://objects/" + crypto::to_hex(crypto::Sha256::hash(url_preimage)).substr(0, 24);
  DhMetrics::get().store.inc();
  DhMetrics::get().objects.add(1);
  DhMetrics::get().bytes_at_rest.add(static_cast<std::int64_t>(size));
  if (durable_) {
    // persist.hpp's idiom: encode outside the lock, map-apply + enqueue
    // under it, wait for the group commit outside.
    Bytes framed = codec::encode_envelope(codec::Envelope{
        codec::Envelope::Op::kPut, space_byte(Space::kDhBlobs), counter, url, blob});
    storage::DurableStore::Ticket ticket = 0;
    blobs_.put_then(url, std::move(blob),
                    [&] { ticket = durable_->enqueue_framed(std::move(framed)); });
    durable_->wait(ticket);
  } else {
    blobs_.put(url, std::move(blob));
  }
  return url;
}

Bytes StorageHost::fetch(const std::string& url) const {
  DhMetrics::get().fetch.inc();
  try {
    return blobs_.get(url, "StorageHost");
  } catch (const std::out_of_range&) {
    DhMetrics::get().fetch_miss.inc();
    throw;
  }
}

net::Expected<Bytes> StorageHost::try_fetch(const std::string& url,
                                            net::FaultStream* faults) const {
  DhMetrics::get().fetch.inc();
  std::optional<net::ServeError> injected;
  if (faults != nullptr) injected = faults->next_dh();
  if (injected == net::ServeError::kDhMiss) {
    // An injected miss IS a miss from the caller's point of view — it must
    // land in the miss series too, or the chaos dashboards undercount.
    DhMetrics::get().fetch_miss.inc();
    return net::ServeError::kDhMiss;
  }
  std::optional<Bytes> blob = blobs_.get_if(url);
  if (!blob) {
    DhMetrics::get().fetch_miss.inc();
    return net::ServeError::kDhMiss;
  }
  if (injected == net::ServeError::kCorruptedBlob && !blob->empty()) {
    (*blob)[blob->size() / 2] ^= 0x5a;
  }
  return std::move(*blob);
}

std::size_t StorageHost::bytes_stored() const {
  std::size_t total = 0;
  blobs_.for_each([&total](const std::string&, const Bytes& blob) { total += blob.size(); });
  return total;
}

void StorageHost::tamper(const std::string& url, std::size_t byte_index) {
  DhMetrics::get().tamper.inc();
  storage::DurableStore::Ticket ticket = 0;
  bool queued = false;
  blobs_.mutate(url, "StorageHost", [&](Bytes& blob) {
    // Same contract as ServiceProvider::tamper_record: an index outside the
    // blob (any index, for an empty blob) is the adversary asking for a
    // write that does not exist — reject it, never wrap it around.
    if (byte_index >= blob.size()) {
      DhMetrics::get().tamper_rejected.inc();
      throw std::out_of_range("StorageHost: tamper out of range");
    }
    blob[byte_index] ^= 0x01;
    if (durable_) {
      ticket = durable_->enqueue(codec::Envelope{codec::Envelope::Op::kPut,
                                                 space_byte(Space::kDhBlobs), 0, url, blob});
      queued = true;
    }
  });
  if (queued) durable_->wait(ticket);
}

void StorageHost::remove(const std::string& url) {
  std::optional<Bytes> gone;
  if (durable_) {
    Bytes framed = codec::encode_envelope(
        codec::Envelope{codec::Envelope::Op::kErase, space_byte(Space::kDhBlobs), 0, url, {}});
    storage::DurableStore::Ticket ticket = 0;
    bool queued = false;
    gone = blobs_.take_then(url, [&](const Bytes&) {
      ticket = durable_->enqueue_framed(std::move(framed));
      queued = true;
    });
    if (queued) durable_->wait(ticket);
  } else {
    gone = blobs_.take(url);
  }
  if (!gone) throw std::out_of_range("StorageHost: unknown URL");
  // Count the op only on the path actually taken: a failed remove removed
  // nothing, so it must not inflate the remove series (it threw above).
  DhMetrics::get().remove.inc();
  DhMetrics::get().objects.sub(1);
  DhMetrics::get().bytes_at_rest.sub(static_cast<std::int64_t>(gone->size()));
}

void StorageHost::checkpoint() {
  if (!durable_) return;
  durable_->checkpoint([this](const storage::DurableStore::Applier& emit) { emit_state(emit); });
}

bool StorageHost::maybe_checkpoint() {
  if (!durable_) return false;
  return durable_->maybe_checkpoint(
      [this](const storage::DurableStore::Applier& emit) { emit_state(emit); });
}

void StorageHost::sync() {
  if (durable_) durable_->flush();
}

void StorageHost::emit_state(const storage::DurableStore::Applier& emit) const {
  // Counter carrier first: compaction must never regress URL issuance.
  emit(codec::Envelope{codec::Envelope::Op::kPut, space_byte(Space::kMeta),
                       next_.load(std::memory_order_relaxed) - 1, "dh-counter", {}});
  blobs_.for_each([&](const std::string& url, const Bytes& blob) {
    emit(codec::Envelope{codec::Envelope::Op::kPut, space_byte(Space::kDhBlobs), 0, url, blob});
  });
}

}  // namespace sp::osn
