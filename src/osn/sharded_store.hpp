// Sharded, mutex-striped key→value store: the concurrency substrate for the
// SP and DH front-ends. A production deployment serves millions of users, so
// a single map behind a single lock would serialize every request; instead
// keys hash onto N independent shards, each a std::map behind its own mutex.
// Requests touching different shards never contend, and per-shard std::map
// nodes give stable storage for values while other keys come and go.
//
// Locking contract:
//  * every public member takes at most ONE shard lock at a time;
//  * `for_each`/`size` visit shards strictly in index order, so two
//    concurrent whole-store scans cannot deadlock against each other;
//  * values are returned BY COPY (`get`) — handing out references to
//    shard-protected memory would reintroduce the data race the shards
//    exist to prevent.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::osn {

template <typename Value>
class ShardedStore {
 public:
  explicit ShardedStore(std::size_t shard_count = kDefaultShards)
      : shards_(shard_count == 0 ? 1 : shard_count) {}

  static constexpr std::size_t kDefaultShards = 16;

  /// Inserts or overwrites.
  void put(const std::string& key, Value value) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    s.entries[key] = std::move(value);
  }

  /// Inserts or overwrites, then runs `after` while STILL holding the shard
  /// lock. The persistence layer hangs its WAL enqueue here: applying to the
  /// map and fixing the log position under one lock makes WAL replay order
  /// equal map application order for every key (store.hpp's checkpoint
  /// invariant). `after` must be brief and must not touch this store.
  template <typename Fn>
  void put_then(const std::string& key, Value value, Fn&& after) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    s.entries[key] = std::move(value);
    after();
  }

  /// Copy of the value; throws std::out_of_range (with `who` as context) if
  /// absent.
  [[nodiscard]] Value get(const std::string& key, const char* who) const {
    const Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) throw std::out_of_range(std::string(who) + ": unknown key " + key);
    return it->second;
  }

  /// Non-throwing lookup: copy of the value, or nullopt when absent. The
  /// fault-aware serving paths report absence as data (a ServeError), so
  /// they need a miss that doesn't unwind.
  [[nodiscard]] std::optional<Value> get_if(const std::string& key) const {
    const Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    const Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    return s.entries.count(key) > 0;
  }

  /// Runs `fn` on the stored value under the shard lock; throws
  /// std::out_of_range if absent. The only way callers may mutate a value in
  /// place — the lock is held for exactly the duration of `fn`.
  template <typename Fn>
  void mutate(const std::string& key, const char* who, Fn&& fn) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) throw std::out_of_range(std::string(who) + ": unknown key " + key);
    fn(it->second);
  }

  /// Erases; returns whether the key existed.
  bool erase(const std::string& key) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    return s.entries.erase(key) > 0;
  }

  /// Erases and returns the value (nullopt when absent). One lock, so
  /// callers can account for what was removed (e.g. bytes-at-rest gauges)
  /// without a racy read-then-erase pair.
  [[nodiscard]] std::optional<Value> take(const std::string& key) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) return std::nullopt;
    std::optional<Value> out(std::move(it->second));
    s.entries.erase(it);
    return out;
  }

  /// `take` variant of put_then: when the key exists, runs `after(value)`
  /// under the shard lock before returning the value; absent keys skip
  /// `after` entirely (same ordering rationale as put_then).
  template <typename Fn>
  [[nodiscard]] std::optional<Value> take_then(const std::string& key, Fn&& after) {
    Shard& s = shard_of(key);
    const sp::MutexLock lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) return std::nullopt;
    std::optional<Value> out(std::move(it->second));
    s.entries.erase(it);
    after(*out);
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      const sp::MutexLock lock(s.mutex);
      total += s.entries.size();
    }
    return total;
  }

  /// Visits every (key, value) shard by shard, holding one shard lock at a
  /// time. Entries inserted into already-visited shards during the scan are
  /// missed — acceptable for the audit/reporting paths this serves.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) {
      const sp::MutexLock lock(s.mutex);
      for (const auto& [key, value] : s.entries) fn(key, value);
    }
  }

  /// Mutating variant of `for_each` (teardown wipes, bulk maintenance).
  template <typename Fn>
  void for_each_mutable(Fn&& fn) {
    for (Shard& s : shards_) {
      const sp::MutexLock lock(s.mutex);
      for (auto& [key, value] : s.entries) fn(key, value);
    }
  }

  /// Point-in-time copy of the whole store (audit/surveillance views).
  [[nodiscard]] std::map<std::string, Value> snapshot() const {
    std::map<std::string, Value> out;
    for_each([&out](const std::string& key, const Value& value) { out.emplace(key, value); });
    return out;
  }

 private:
  struct Shard {
    mutable sp::Mutex mutex;
    std::map<std::string, Value> entries SP_GUARDED_BY(mutex);
  };

  Shard& shard_of(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  const Shard& shard_of(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace sp::osn
