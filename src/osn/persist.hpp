// Shared persistence vocabulary for the OSN hosts (ROADMAP item 1).
//
// Both hosts speak codec::Envelope to their DurableStore; this header pins
// the keyspace bytes (wire constants — never renumber) and the write-path
// idiom:
//
//   1. encode the envelope OUTSIDE the shard lock (frames + CRC are pure
//      CPU, no reason to serialize them);
//   2. apply to the ShardedStore and enqueue the pre-encoded frame UNDER the
//      shard lock (put_then / take_then / mutate), so WAL order equals map
//      application order per key;
//   3. wait for durability OUTSIDE the lock — group commit batches every
//      concurrent waiter into one fsync.
//
// Envelope.seq carries the host's id counter at issue time; recovery
// restores the counter as max(seq) + 1, and checkpoints re-emit it through a
// kMeta envelope so compaction never regresses id issuance.
#pragma once

#include <cstdint>

namespace sp::osn {

/// codec::Envelope.space values for the OSN hosts.
enum class Space : std::uint8_t {
  kMeta = 0,            ///< counter carrier (value empty; only seq matters)
  kSpRecords = 1,       ///< ServiceProvider puzzle records
  kSpObservations = 2,  ///< ServiceProvider observation log (op kObserve)
  kDhBlobs = 3,         ///< StorageHost encrypted objects
};

inline constexpr std::uint8_t space_byte(Space s) { return static_cast<std::uint8_t>(s); }

}  // namespace sp::osn
