// Service provider SP (paper §IV-A): hosts puzzle records, runs the
// construction-specific DisplayPuzzle/Verify logic (installed by sp::core),
// and — being the semi-honest party of §VI-A — records everything it sees so
// surveillance-resistance tests can audit its view.
//
// The SP stores opaque byte records per puzzle id; the *meaning* of a record
// (Construction 1 puzzle Z_O vs Construction 2 file set) belongs to sp::core.
// This mirrors the paper's deployment, where the Amazon-EC2 app stores rows
// in MySQL without understanding the cryptography.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::osn {

using crypto::Bytes;

class ServiceProvider {
 public:
  ServiceProvider() = default;
  /// The SP's view holds answer hashes and blinded shares; even though the
  /// protocol keeps them useless to the SP, the simulation wipes them on
  /// teardown so test-process memory never accumulates puzzle material.
  ~ServiceProvider();
  ServiceProvider(const ServiceProvider&) = delete;
  ServiceProvider& operator=(const ServiceProvider&) = delete;
  ServiceProvider(ServiceProvider&&) noexcept = default;
  ServiceProvider& operator=(ServiceProvider&&) noexcept = default;

  /// Stores a puzzle record; returns the puzzle id embedded in feed
  /// hyperlinks. Everything in `record` becomes part of the SP's view.
  std::string store_record(Bytes record);

  [[nodiscard]] const Bytes& record(const std::string& puzzle_id) const;
  [[nodiscard]] bool has_record(const std::string& puzzle_id) const {
    return records_.count(puzzle_id) > 0;
  }
  [[nodiscard]] std::size_t record_count() const { return records_.size(); }

  /// Replaces an existing record in place (puzzle refresh keeps its id so
  /// existing feed hyperlinks stay valid). Throws std::out_of_range for
  /// unknown ids.
  void replace_record(const std::string& puzzle_id, Bytes record);

  /// Appends to the SP's observation log — core calls this with every
  /// message a user sends the SP (AnswerPuzzle responses etc.), so the
  /// surveillance tests can scan the *complete* SP view.
  void observe(const std::string& channel, Bytes data);

  /// The SP's complete view: stored records + observed messages.
  struct Observation {
    std::string channel;
    Bytes data;
  };
  [[nodiscard]] const std::vector<Observation>& observations() const { return observations_; }
  /// Convenience: true iff `needle` occurs in any record or observation —
  /// the surveillance tests assert plaintext/context never does.
  [[nodiscard]] bool view_contains(std::span<const std::uint8_t> needle) const;

  // ---- adversary surface (malicious SP, §VI-A) ----

  /// Overwrites part of a stored record (e.g. URL_O or K_Z tampering).
  void tamper_record(const std::string& puzzle_id, std::size_t offset, Bytes replacement);

 private:
  std::map<std::string, Bytes> records_;
  std::vector<Observation> observations_;
  std::uint64_t next_ = 1;
};

}  // namespace sp::osn
