// Service provider SP (paper §IV-A): hosts puzzle records, runs the
// construction-specific DisplayPuzzle/Verify logic (installed by sp::core),
// and — being the semi-honest party of §VI-A — records everything it sees so
// surveillance-resistance tests can audit its view.
//
// The SP stores opaque byte records per puzzle id; the *meaning* of a record
// (Construction 1 puzzle Z_O vs Construction 2 file set) belongs to sp::core.
// This mirrors the paper's deployment, where the Amazon-EC2 app stores rows
// in MySQL without understanding the cryptography.
//
// Thread safety: the SP is a serving front-end, so every member is safe to
// call from any thread. Records live in a ShardedStore (id-hash striped
// mutexes); the observation log is append-only behind its own mutex.
// Accessors return copies/snapshots, never references into locked state.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "osn/sharded_store.hpp"
#include "storage/store.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::osn {

using crypto::Bytes;

class ServiceProvider {
 public:
  ServiceProvider() = default;
  /// Durable SP: opens (or creates) the WAL/segment pair in `durable.dir`,
  /// replays it to rebuild the record map, the observation log and the id
  /// counter, then serves. Every store/replace/tamper afterwards is
  /// acknowledged only once its envelope is durable per the WAL's fsync
  /// policy; observations persist fire-and-forget (ordered, unacknowledged).
  explicit ServiceProvider(storage::DurableStore::Options durable);
  /// The SP's view holds answer hashes and blinded shares; even though the
  /// protocol keeps them useless to the SP, the simulation wipes them on
  /// teardown so test-process memory never accumulates puzzle material.
  ~ServiceProvider();
  // Shard mutexes pin the SP in place: construct it where it serves.
  ServiceProvider(const ServiceProvider&) = delete;
  ServiceProvider& operator=(const ServiceProvider&) = delete;
  ServiceProvider(ServiceProvider&&) = delete;
  ServiceProvider& operator=(ServiceProvider&&) = delete;

  /// Stores a puzzle record; returns the puzzle id embedded in feed
  /// hyperlinks. Everything in `record` becomes part of the SP's view.
  std::string store_record(Bytes record);

  /// Copy of the stored record (a reference would dangle the moment another
  /// thread replaces it). Throws std::out_of_range for unknown ids.
  [[nodiscard]] Bytes record(const std::string& puzzle_id) const;
  [[nodiscard]] bool has_record(const std::string& puzzle_id) const {
    return records_.contains(puzzle_id);
  }
  [[nodiscard]] std::size_t record_count() const { return records_.size(); }

  /// Replaces an existing record in place (puzzle refresh keeps its id so
  /// existing feed hyperlinks stay valid). Throws std::out_of_range for
  /// unknown ids.
  void replace_record(const std::string& puzzle_id, Bytes record);

  /// Appends to the SP's observation log — core calls this with every
  /// message a user sends the SP (AnswerPuzzle responses etc.), so the
  /// surveillance tests can scan the *complete* SP view. `const` because
  /// observing is the SP passively recording traffic, not protocol state
  /// changing — which is what lets the receiver-side serving path stay
  /// const end to end.
  void observe(const std::string& channel, Bytes data) const;

  /// The SP's complete view: stored records + observed messages.
  struct Observation {
    std::string channel;
    Bytes data;
  };
  /// Point-in-time copy of the log.
  [[nodiscard]] std::vector<Observation> observations() const;
  /// Convenience: true iff `needle` occurs in any record or observation —
  /// the surveillance tests assert plaintext/context never does.
  [[nodiscard]] bool view_contains(std::span<const std::uint8_t> needle) const;

  // ---- fault hooks (chaos layer, DESIGN.md "Fault model") ----

  /// Availability draw for one Verify exchange: false = the SP is hit by a
  /// transient outage and drops the exchange (null/fault-free streams always
  /// serve). The session charges the wasted upload and retries.
  [[nodiscard]] bool serve_ok(net::FaultStream* faults) const;
  /// How many of `n_shares` granted shares this reply loses to a partial
  /// response (0 = intact). C1 degrades gracefully while ≥ k survive.
  [[nodiscard]] std::size_t partial_drop(std::size_t n_shares, net::FaultStream* faults) const;

  // ---- adversary surface (malicious SP, §VI-A) ----

  /// Overwrites part of a stored record (e.g. URL_O or K_Z tampering).
  /// Throws std::out_of_range when [offset, offset + replacement.size())
  /// does not fit inside the record.
  void tamper_record(const std::string& puzzle_id, std::size_t offset, Bytes replacement);

  // ---- persistence (null / no-ops for an in-memory SP) ----

  [[nodiscard]] bool is_durable() const { return durable_ != nullptr; }
  [[nodiscard]] const storage::DurableStore* durable() const { return durable_.get(); }
  /// Replay stats from the durable constructor (zeroes when in-memory).
  [[nodiscard]] const storage::DurableStore::RecoveryStats& recovery_stats() const {
    return recovery_;
  }
  /// Compacts WAL history into a fresh segment (store.hpp's protocol).
  void checkpoint();
  /// checkpoint() iff the live WAL crossed the configured byte threshold.
  bool maybe_checkpoint();
  /// Blocks until everything appended so far (observations included) is
  /// durable.
  void sync();

 private:
  void emit_state(const storage::DurableStore::Applier& emit) const;

  ShardedStore<Bytes> records_;
  mutable sp::Mutex observations_mutex_;
  mutable std::vector<Observation> observations_ SP_GUARDED_BY(observations_mutex_);
  std::atomic<std::uint64_t> next_{1};
  std::unique_ptr<storage::DurableStore> durable_;  ///< null = in-memory host
  storage::DurableStore::RecoveryStats recovery_;
};

}  // namespace sp::osn
