#include "osn/social_graph.hpp"

#include <stdexcept>

namespace sp::osn {

UserId SocialGraph::add_user(std::string name) {
  const sp::UniqueLock lock(mutex_);
  const UserId id = next_id_++;
  users_.emplace(id, UserProfile{id, std::move(name)});
  edges_[id];
  return id;
}

void SocialGraph::require_user_unlocked(UserId u) const {
  if (users_.find(u) == users_.end()) throw std::out_of_range("SocialGraph: unknown user");
}

void SocialGraph::befriend(UserId a, UserId b) {
  const sp::UniqueLock lock(mutex_);
  require_user_unlocked(a);
  require_user_unlocked(b);
  if (a == b) throw std::invalid_argument("SocialGraph: cannot befriend self");
  edges_[a].insert(b);
  edges_[b].insert(a);
}

void SocialGraph::follow(UserId follower, UserId followee) {
  const sp::UniqueLock lock(mutex_);
  require_user_unlocked(follower);
  require_user_unlocked(followee);
  if (follower == followee) throw std::invalid_argument("SocialGraph: cannot follow self");
  follows_[follower].insert(followee);
}

bool SocialGraph::is_following_unlocked(UserId follower, UserId followee) const {
  const auto it = follows_.find(follower);
  return it != follows_.end() && it->second.count(followee) > 0;
}

bool SocialGraph::is_following(UserId follower, UserId followee) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(follower);
  require_user_unlocked(followee);
  return is_following_unlocked(follower, followee);
}

std::vector<UserId> SocialGraph::followers_of(UserId u) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(u);
  std::vector<UserId> out;
  for (const auto& [follower, followees] : follows_) {
    if (followees.count(u) > 0) out.push_back(follower);
  }
  return out;
}

bool SocialGraph::are_friends_unlocked(UserId a, UserId b) const {
  const auto it = edges_.find(a);
  return it != edges_.end() && it->second.count(b) > 0;
}

bool SocialGraph::are_friends(UserId a, UserId b) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(a);
  require_user_unlocked(b);
  return are_friends_unlocked(a, b);
}

std::vector<UserId> SocialGraph::friends_of(UserId u) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(u);
  const auto& s = edges_.at(u);
  return std::vector<UserId>(s.begin(), s.end());
}

UserProfile SocialGraph::profile(UserId u) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(u);
  return users_.at(u);
}

std::size_t SocialGraph::user_count() const {
  const sp::SharedLock lock(mutex_);
  return users_.size();
}

void SocialGraph::post(Post p) {
  const sp::UniqueLock lock(mutex_);
  require_user_unlocked(p.author);
  posts_.push_back(std::move(p));
}

std::vector<Post> SocialGraph::feed_for(UserId viewer) const {
  const sp::SharedLock lock(mutex_);
  require_user_unlocked(viewer);
  std::vector<Post> out;
  for (const Post& p : posts_) {
    const bool own = p.author == viewer;
    const bool friend_post = are_friends_unlocked(p.author, viewer);
    const bool followed_public =
        p.visibility == Visibility::kPublic && is_following_unlocked(viewer, p.author);
    if (own || friend_post || followed_public) out.push_back(p);
  }
  return out;
}

}  // namespace sp::osn
