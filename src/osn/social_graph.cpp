#include "osn/social_graph.hpp"

#include <stdexcept>

namespace sp::osn {

UserId SocialGraph::add_user(std::string name) {
  const UserId id = next_id_++;
  users_.emplace(id, UserProfile{id, std::move(name)});
  edges_[id];
  return id;
}

void SocialGraph::require_user(UserId u) const {
  if (users_.find(u) == users_.end()) throw std::out_of_range("SocialGraph: unknown user");
}

void SocialGraph::befriend(UserId a, UserId b) {
  require_user(a);
  require_user(b);
  if (a == b) throw std::invalid_argument("SocialGraph: cannot befriend self");
  edges_[a].insert(b);
  edges_[b].insert(a);
}

void SocialGraph::follow(UserId follower, UserId followee) {
  require_user(follower);
  require_user(followee);
  if (follower == followee) throw std::invalid_argument("SocialGraph: cannot follow self");
  follows_[follower].insert(followee);
}

bool SocialGraph::is_following(UserId follower, UserId followee) const {
  require_user(follower);
  require_user(followee);
  const auto it = follows_.find(follower);
  return it != follows_.end() && it->second.count(followee) > 0;
}

std::vector<UserId> SocialGraph::followers_of(UserId u) const {
  require_user(u);
  std::vector<UserId> out;
  for (const auto& [follower, followees] : follows_) {
    if (followees.count(u) > 0) out.push_back(follower);
  }
  return out;
}

bool SocialGraph::are_friends(UserId a, UserId b) const {
  require_user(a);
  require_user(b);
  const auto it = edges_.find(a);
  return it != edges_.end() && it->second.count(b) > 0;
}

std::vector<UserId> SocialGraph::friends_of(UserId u) const {
  require_user(u);
  const auto& s = edges_.at(u);
  return std::vector<UserId>(s.begin(), s.end());
}

const UserProfile& SocialGraph::profile(UserId u) const {
  require_user(u);
  return users_.at(u);
}

void SocialGraph::post(Post p) {
  require_user(p.author);
  posts_.push_back(std::move(p));
}

std::vector<Post> SocialGraph::feed_for(UserId viewer) const {
  require_user(viewer);
  std::vector<Post> out;
  for (const Post& p : posts_) {
    const bool own = p.author == viewer;
    const bool friend_post = are_friends(p.author, viewer);
    const bool followed_public =
        p.visibility == Visibility::kPublic && is_following(viewer, p.author);
    if (own || friend_post || followed_public) out.push_back(p);
  }
  return out;
}

}  // namespace sp::osn
