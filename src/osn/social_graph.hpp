// Simulated symmetric OSN (paper §IV-A): registered users, a symmetric
// friendship graph (Facebook-style — "if a has b in her friend list, then b
// has a"), and a post feed carrying the puzzle hyperlinks that Construction
// 1/2 share to the sharer's social network S_T.
//
// Thread safety: one shared_mutex over the whole graph — reads (feed_for,
// are_friends, ...) take shared locks and run concurrently; writes
// (add_user, befriend, post, follow) take the exclusive lock. The graph is
// small relative to the SP/DH stores and write traffic is rare, so a single
// reader/writer lock beats sharding here: feed_for needs a consistent view
// of users + edges + posts at once.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::osn {

using UserId = std::uint64_t;

struct UserProfile {
  UserId id = 0;
  std::string name;
};

/// Post visibility. The paper targets symmetric OSNs (Facebook) but argues
/// directed OSNs with minimal ACLs (Twitter) "benefit even more" — there the
/// hyperlink is public and the puzzle is the ONLY access-control layer.
enum class Visibility { kFriends, kPublic };

/// A feed entry: the hyperlink a sharer's friends see (paper Fig. 6).
struct Post {
  UserId author = 0;
  std::string puzzle_id;  ///< SP-side record the hyperlink points at
  std::string caption;
  Visibility visibility = Visibility::kFriends;
};

class SocialGraph {
 public:
  SocialGraph() = default;
  SocialGraph(const SocialGraph&) = delete;
  SocialGraph& operator=(const SocialGraph&) = delete;

  /// Registers a user; names need not be unique, ids are.
  UserId add_user(std::string name);

  /// Symmetric friendship. Throws std::out_of_range for unknown users and
  /// std::invalid_argument for self-friending.
  void befriend(UserId a, UserId b);

  [[nodiscard]] bool are_friends(UserId a, UserId b) const;

  /// Directed follow edge (Twitter-style): `follower` subscribes to
  /// `followee`'s public posts. Independent of friendship.
  void follow(UserId follower, UserId followee);
  [[nodiscard]] bool is_following(UserId follower, UserId followee) const;
  [[nodiscard]] std::vector<UserId> followers_of(UserId u) const;
  /// S_T: the sharer's social network.
  [[nodiscard]] std::vector<UserId> friends_of(UserId u) const;
  /// Copy of the profile — like every accessor here, no reference into
  /// locked state escapes.
  [[nodiscard]] UserProfile profile(UserId u) const;
  [[nodiscard]] std::size_t user_count() const;

  /// Posts a hyperlink to the author's profile; visible to friends only
  /// (the paper layers Facebook privacy settings on top — modeled by the
  /// feed_for visibility rule).
  void post(Post p);
  /// Posts visible to `viewer`: their own posts, friends' posts, and public
  /// posts from accounts they follow.
  [[nodiscard]] std::vector<Post> feed_for(UserId viewer) const;

 private:
  // *_unlocked helpers require the caller to hold mutex_ (shared is enough —
  // they only read); public methods never call each other, so no lock is
  // taken twice. SP_REQUIRES_SHARED makes Clang enforce the contract.
  void require_user_unlocked(UserId u) const SP_REQUIRES_SHARED(mutex_);
  [[nodiscard]] bool are_friends_unlocked(UserId a, UserId b) const SP_REQUIRES_SHARED(mutex_);
  [[nodiscard]] bool is_following_unlocked(UserId follower, UserId followee) const
      SP_REQUIRES_SHARED(mutex_);

  mutable sp::SharedMutex mutex_;
  std::map<UserId, UserProfile> users_ SP_GUARDED_BY(mutex_);
  std::map<UserId, std::set<UserId>> edges_ SP_GUARDED_BY(mutex_);
  std::map<UserId, std::set<UserId>> follows_ SP_GUARDED_BY(mutex_);  ///< follower -> followees
  std::vector<Post> posts_ SP_GUARDED_BY(mutex_);
  UserId next_id_ SP_GUARDED_BY(mutex_) = 1;
};

}  // namespace sp::osn
