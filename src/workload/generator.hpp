// Million-user workload generator (ROADMAP item 4).
//
// Everything is a pure function of a seed: the friend graph, the post
// catalog, the popularity skew, and the event stream are all derived by
// PRF-style mixing from one 256-bit DRBG fork, so
//   * a 10^6-user topology costs O(1) RAM — adjacency is computed on
//     demand, never materialized;
//   * the same seed replays the same workload byte for byte (the property
//     suite pins this), which makes the generator test infrastructure, not
//     just bench infrastructure.
//
// Shapes (PAPERS.md: Pang & Zhang on OSN graphs, Armknecht et al. on post
// popularity):
//   * out-degrees follow a bounded Pareto (power-law exponent `gamma`,
//     clipped to [min_degree, max_degree]) via inverse-CDF of a per-user
//     PRF draw;
//   * the i-th out-friend of u is a PRF target; the undirected friendship
//     relation is the symmetric closure u~v iff v in out(u) or u in out(v),
//     so membership is O(deg), not O(users);
//   * post popularity is Zipfian, sampled in O(1) with Hörmann-style
//     rejection-inversion — no O(catalog) CDF table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"

namespace sp::workload {

/// Power-law friend-graph shape. Defaults give a mean degree ~9 with a
/// heavy tail — Facebook-like at the scales the benches drive.
struct GraphConfig {
  std::uint64_t users = 1'000'000;
  double gamma = 2.5;  ///< power-law exponent (> 1); degree tail ~ d^-gamma
  std::uint64_t min_degree = 4;
  std::uint64_t max_degree = 4096;  ///< clip (also capped at users - 1)
  std::string seed = "sp-workload";
};

/// Seed-derived lazy graph: no per-user state, every query recomputed from
/// the PRF. Deterministic for the life of the config.
class LazyGraph {
 public:
  explicit LazyGraph(GraphConfig config);

  [[nodiscard]] std::uint64_t users() const { return config_.users; }
  [[nodiscard]] const GraphConfig& config() const { return config_; }

  /// Out-degree of `u`: bounded-Pareto inverse CDF of PRF(u).
  [[nodiscard]] std::uint64_t out_degree(std::uint64_t u) const;
  /// i-th out-friend of `u` (i < out_degree(u)); never returns u itself.
  [[nodiscard]] std::uint64_t out_friend(std::uint64_t u, std::uint64_t i) const;
  /// Materialized out-list (tests and small-scale driving only).
  [[nodiscard]] std::vector<std::uint64_t> out_friends(std::uint64_t u) const;
  /// Symmetric friendship: v in out(u) or u in out(v). O(deg(u) + deg(v)).
  [[nodiscard]] bool are_friends(std::uint64_t u, std::uint64_t v) const;

 private:
  [[nodiscard]] std::uint64_t prf(std::uint64_t tag, std::uint64_t a, std::uint64_t b) const;

  GraphConfig config_;
  std::uint64_t key_ = 0;  ///< derived from Drbg(seed): one key, all queries
};

/// O(1) Zipf(s) sampler over ranks {0, .., n-1} by rejection-inversion
/// (Hörmann & Derflinger): invert the integral envelope of x^-s and accept
/// with the ratio to the true mass. No table, so a 10^6-post catalog costs
/// nothing to skew.
class ZipfSampler {
 public:
  /// `s` > 0, s != 1 handled exactly; s == 1 uses the log envelope.
  ZipfSampler(std::uint64_t n, double s);

  /// Zero-based rank; rank 0 is the hottest.
  [[nodiscard]] std::uint64_t sample(crypto::Drbg& rng) const;

  [[nodiscard]] double s() const { return s_; }
  [[nodiscard]] std::uint64_t n() const { return n_; }

 private:
  [[nodiscard]] double h_integral(double x) const;  ///< ∫ envelope
  [[nodiscard]] double h_inverse(double y) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;        ///< h_integral(1.5)
  double h_n_;         ///< h_integral(n + 0.5)
  double threshold_;   ///< shortcut acceptance bound for rank 0
};

/// One workload event. `interarrival_unit` is a unit-mean exponential draw:
/// the open-loop driver divides by the offered arrival rate, so one trace
/// serves every point of a rate ladder.
struct Event {
  enum class Kind : std::uint8_t { kAccess = 0, kRefresh = 1, kRevoke = 2 };
  Kind kind = Kind::kAccess;
  std::uint64_t post_rank = 0;  ///< Zipf rank into the catalog (0 = hottest)
  std::uint64_t sharer = 0;     ///< graph user owning the post
  std::uint64_t receiver = 0;   ///< a graph friend of the sharer (access only)
  bool c2 = false;              ///< scheme of the post (per-rank, stable)
  double interarrival_unit = 0; ///< Exp(1) gap to the previous event
};

/// Workload mix: a Zipf-skewed access stream with refresh/revocation churn
/// (paper §V dynamic context). Fractions are of all events.
struct WorkloadConfig {
  GraphConfig graph;
  std::uint64_t catalog_posts = 10'000;
  double zipf_s = 1.1;            ///< popularity skew
  double c2_fraction = 0.5;       ///< share of posts using Construction 2
  double refresh_fraction = 0.02; ///< sharer-side refresh events
  double revoke_fraction = 0.005; ///< sharer-side revocations
};

/// Deterministic event stream over a LazyGraph. Same config + seed =>
/// byte-identical stream (encode() canonicalizes an event for digests).
class TraceGenerator {
 public:
  explicit TraceGenerator(WorkloadConfig config);

  [[nodiscard]] Event next();
  [[nodiscard]] const LazyGraph& graph() const { return graph_; }
  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  /// Stable per-rank post attributes (independent of the event stream).
  [[nodiscard]] std::uint64_t sharer_of(std::uint64_t post_rank) const;
  [[nodiscard]] bool post_is_c2(std::uint64_t post_rank) const;

  /// Canonical text form, for byte-identity property tests.
  [[nodiscard]] static std::string encode(const Event& event);

 private:
  WorkloadConfig config_;
  LazyGraph graph_;
  ZipfSampler zipf_;
  crypto::Drbg rng_;
};

}  // namespace sp::workload
