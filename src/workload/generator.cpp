#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sp::workload {

namespace {

/// splitmix64 finalizer: the PRF core. Statistically strong enough for
/// workload shaping (this is load, not key material).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Top 53 bits as a uniform double in [0, 1).
double unit_from(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kTagDegree = 0x6465677265650001ULL;
constexpr std::uint64_t kTagFriend = 0x667269656e640002ULL;

}  // namespace

// ------------------------------------------------------------- LazyGraph

LazyGraph::LazyGraph(GraphConfig config) : config_(std::move(config)) {
  if (config_.users < 2) throw std::invalid_argument("LazyGraph: need >= 2 users");
  if (config_.gamma <= 1.0) throw std::invalid_argument("LazyGraph: gamma must be > 1");
  if (config_.min_degree < 1 || config_.min_degree > config_.max_degree) {
    throw std::invalid_argument("LazyGraph: need 1 <= min_degree <= max_degree");
  }
  // One 64-bit key from the repo's standard DRBG; all topology queries mix
  // from it. (The DRBG itself is too slow for O(deg) adjacency probes.)
  crypto::Drbg rng(config_.seed + "-graph");
  key_ = rng.next_u64();
}

std::uint64_t LazyGraph::prf(std::uint64_t tag, std::uint64_t a, std::uint64_t b) const {
  return mix64(mix64(mix64(key_ ^ tag) + a) ^ (b + 0x5851f42d4c957f2dULL));
}

std::uint64_t LazyGraph::out_degree(std::uint64_t u) const {
  // Bounded Pareto on [min_degree, max_degree] by inverse CDF: the tail
  // P(D >= d) = (min/d)^(gamma-1) until the clip. Exponent alpha = gamma-1
  // because out-degree is the *complementary* draw of the density ~d^-gamma.
  const double alpha = config_.gamma - 1.0;
  const double lo = static_cast<double>(config_.min_degree);
  const double hi = static_cast<double>(std::min(config_.max_degree, config_.users - 1));
  const double ratio = std::pow(lo / hi, alpha);
  const double u01 = unit_from(prf(kTagDegree, u, 0));
  const double draw = lo / std::pow(1.0 - u01 * (1.0 - ratio), 1.0 / alpha);
  const auto degree = static_cast<std::uint64_t>(draw);
  return std::clamp<std::uint64_t>(degree, config_.min_degree,
                                   static_cast<std::uint64_t>(hi));
}

std::uint64_t LazyGraph::out_friend(std::uint64_t u, std::uint64_t i) const {
  // PRF target in [0, users) \ {u}: draw over users-1 slots and shift past u.
  std::uint64_t t = prf(kTagFriend, u, i) % (config_.users - 1);
  if (t >= u) ++t;
  return t;
}

std::vector<std::uint64_t> LazyGraph::out_friends(std::uint64_t u) const {
  const std::uint64_t degree = out_degree(u);
  std::vector<std::uint64_t> friends;
  friends.reserve(degree);
  for (std::uint64_t i = 0; i < degree; ++i) friends.push_back(out_friend(u, i));
  return friends;
}

bool LazyGraph::are_friends(std::uint64_t u, std::uint64_t v) const {
  if (u == v || u >= config_.users || v >= config_.users) return false;
  const std::uint64_t du = out_degree(u);
  for (std::uint64_t i = 0; i < du; ++i) {
    if (out_friend(u, i) == v) return true;
  }
  const std::uint64_t dv = out_degree(v);
  for (std::uint64_t i = 0; i < dv; ++i) {
    if (out_friend(v, i) == u) return true;
  }
  return false;
}

// ----------------------------------------------------------- ZipfSampler

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n < 1) throw std::invalid_argument("ZipfSampler: need n >= 1");
  if (s <= 0) throw std::invalid_argument("ZipfSampler: need s > 0");
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inverse(h_integral(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  // ∫ t^-s dt with the s == 1 limit handled by expm1/log1p stability.
  const double t = (1.0 - s_) * log_x;
  return (std::abs(t) < 1e-8 ? log_x * (1.0 + t / 2.0) : std::expm1(t) / (1.0 - s_));
}

double ZipfSampler::h_inverse(double y) const {
  const double t = std::max(y * (1.0 - s_), -1.0 + 1e-12);
  return std::exp(std::abs(t) < 1e-8 ? y * (1.0 - t / 2.0) : std::log1p(t) / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(crypto::Drbg& rng) const {
  if (n_ == 1) return 0;
  // Hörmann–Derflinger rejection-inversion: invert the integral envelope,
  // round to the nearest rank, accept by the envelope/mass ratio. Expected
  // iterations < 2 for every (n, s); the cap keeps pathological streams
  // deterministic rather than unbounded.
  for (int iter = 0; iter < 128; ++iter) {
    const double u = h_n_ + rng.uniform_real() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    auto k = static_cast<std::uint64_t>(std::clamp(
        x + 0.5, 1.0, static_cast<double>(n_)));
    const auto kd = static_cast<double>(k);
    if (kd - x <= threshold_) return k - 1;
    if (u >= h_integral(kd + 0.5) - std::pow(kd, -s_)) return k - 1;
  }
  return 0;  // unreachable in practice
}

// -------------------------------------------------------- TraceGenerator

TraceGenerator::TraceGenerator(WorkloadConfig config)
    : config_(std::move(config)),
      graph_(config_.graph),
      zipf_(std::max<std::uint64_t>(1, config_.catalog_posts), config_.zipf_s),
      rng_(config_.graph.seed + "-trace") {
  if (config_.refresh_fraction < 0 || config_.revoke_fraction < 0 ||
      config_.refresh_fraction + config_.revoke_fraction >= 1.0) {
    throw std::invalid_argument("TraceGenerator: churn fractions must fit in [0, 1)");
  }
}

std::uint64_t TraceGenerator::sharer_of(std::uint64_t post_rank) const {
  return mix64(mix64(post_rank + 1) ^ 0x706f737473686100ULL ^ graph_.config().users) %
         graph_.users();
}

bool TraceGenerator::post_is_c2(std::uint64_t post_rank) const {
  const std::uint64_t bits = mix64((post_rank + 1) * 0x9e3779b97f4a7c15ULL ^ 0xc2c2c2c2ULL);
  return static_cast<double>(bits >> 11) * 0x1.0p-53 < config_.c2_fraction;
}

Event TraceGenerator::next() {
  Event event;
  // -log(1-U) with U in [0, 1): a unit-mean exponential gap. The driver
  // divides by the offered rate, so one trace serves a whole rate ladder.
  event.interarrival_unit = -std::log1p(-rng_.uniform_real());
  event.post_rank = zipf_.sample(rng_);
  event.sharer = sharer_of(event.post_rank);
  event.c2 = post_is_c2(event.post_rank);
  const double kind_draw = rng_.uniform_real();
  if (kind_draw < config_.revoke_fraction) {
    event.kind = Event::Kind::kRevoke;
  } else if (kind_draw < config_.revoke_fraction + config_.refresh_fraction) {
    event.kind = Event::Kind::kRefresh;
  } else {
    event.kind = Event::Kind::kAccess;
    const std::uint64_t degree = graph_.out_degree(event.sharer);
    event.receiver = graph_.out_friend(event.sharer, rng_.uniform(degree));
  }
  return event;
}

std::string TraceGenerator::encode(const Event& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "k=%u rank=%llu sharer=%llu recv=%llu c2=%d dt=%.17g",
                static_cast<unsigned>(event.kind),
                static_cast<unsigned long long>(event.post_rank),
                static_cast<unsigned long long>(event.sharer),
                static_cast<unsigned long long>(event.receiver), event.c2 ? 1 : 0,
                event.interarrival_unit);
  return buf;
}

}  // namespace sp::workload
