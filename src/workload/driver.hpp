// Open-loop capacity driver (ROADMAP item 4): a deterministic virtual-time
// M/G/c queueing simulation over measured per-request costs.
//
// Why virtual time: realizing modeled waits as wall-clock sleeps (the PR 3-5
// benches) makes throughput numbers hostage to scheduler jitter and CI
// oversleep — exactly the flaky-timing failure mode a capacity curve cannot
// afford. Here the bench executes the trace ONCE on real hardware to collect
// each request's modeled (cpu_ms, overlap_ms) decomposition, then replays
// those costs through a seeded arrival process at any offered rate entirely
// in virtual time: `servers` CPU workers serialize cpu_ms FIFO; overlap_ms
// (modeled network, which holds a socket but not a core) adds to latency
// without occupying a worker. Same inputs, same curve — on a laptop or a
// loaded CI runner.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sp::workload {

/// One simulated rate point.
struct SimPoint {
  double offered_rps = 0;
  std::size_t completed = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double mean_ms = 0;
  double achieved_rps = 0;  ///< completions per second of virtual makespan
  double makespan_ms = 0;   ///< last completion - first arrival (virtual)
};

/// Simulate the trace at `arrival_rps`. `interarrival_unit[i]` is the Exp(1)
/// gap before request i (scaled by the rate); `cpu_ms[i]` holds a worker;
/// `overlap_ms[i]` adds to request i's latency only. All spans must be the
/// same length. Deterministic.
[[nodiscard]] SimPoint simulate_open_loop(std::span<const double> interarrival_unit,
                                          std::span<const double> cpu_ms,
                                          std::span<const double> overlap_ms,
                                          std::size_t servers, double arrival_rps);

/// Capacity = the largest offered rate that is sustainable (below the M/G/c
/// stability limit `servers / mean(cpu_ms)`) AND whose simulated p99 stays
/// within the SLO: geometric ladder up from ~5% utilization until a probe
/// fails, then a short bisection refines the knee.
struct CapacityResult {
  double capacity_rps = 0;  ///< 0 = even the lightest load misses the SLO
  SimPoint at_capacity;     ///< the passing point defining capacity_rps
  std::vector<SimPoint> ladder;  ///< every rate probed, in probe order
};

[[nodiscard]] CapacityResult find_capacity(std::span<const double> interarrival_unit,
                                           std::span<const double> cpu_ms,
                                           std::span<const double> overlap_ms,
                                           std::size_t servers, double slo_p99_ms);

}  // namespace sp::workload
