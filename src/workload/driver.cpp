#include "workload/driver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sp::workload {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

SimPoint simulate_open_loop(std::span<const double> interarrival_unit,
                            std::span<const double> cpu_ms, std::span<const double> overlap_ms,
                            std::size_t servers, double arrival_rps) {
  if (cpu_ms.size() != interarrival_unit.size() || overlap_ms.size() != cpu_ms.size()) {
    throw std::invalid_argument("simulate_open_loop: span lengths differ");
  }
  if (servers == 0 || arrival_rps <= 0) {
    throw std::invalid_argument("simulate_open_loop: need servers >= 1, rate > 0");
  }
  SimPoint point;
  point.offered_rps = arrival_rps;
  if (cpu_ms.empty()) return point;

  // FIFO over c virtual workers: a min-heap of worker-free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at(
      std::greater<>(), std::vector<double>(servers, 0.0));
  const double gap_scale = 1000.0 / arrival_rps;  // unit-mean gaps -> ms
  std::vector<double> latencies;
  latencies.reserve(cpu_ms.size());
  double arrival = 0;
  double first_arrival = 0;
  double last_completion = 0;
  double sum = 0;
  for (std::size_t i = 0; i < cpu_ms.size(); ++i) {
    arrival += interarrival_unit[i] * gap_scale;
    if (i == 0) first_arrival = arrival;
    const double start = std::max(arrival, free_at.top());
    free_at.pop();
    const double done = start + cpu_ms[i];
    free_at.push(done);
    const double latency = (done - arrival) + overlap_ms[i];
    latencies.push_back(latency);
    last_completion = std::max(last_completion, done + overlap_ms[i]);
    sum += latency;
  }
  std::sort(latencies.begin(), latencies.end());
  point.completed = latencies.size();
  point.p50_ms = percentile_sorted(latencies, 0.50);
  point.p95_ms = percentile_sorted(latencies, 0.95);
  point.p99_ms = percentile_sorted(latencies, 0.99);
  point.max_ms = latencies.back();
  point.mean_ms = sum / static_cast<double>(latencies.size());
  point.makespan_ms = std::max(1e-9, last_completion - first_arrival);
  point.achieved_rps = 1000.0 * static_cast<double>(latencies.size()) / point.makespan_ms;
  return point;
}

CapacityResult find_capacity(std::span<const double> interarrival_unit,
                             std::span<const double> cpu_ms, std::span<const double> overlap_ms,
                             std::size_t servers, double slo_p99_ms) {
  CapacityResult result;
  if (cpu_ms.empty()) return result;
  const double mean_cpu =
      std::accumulate(cpu_ms.begin(), cpu_ms.end(), 0.0) / static_cast<double>(cpu_ms.size());
  // M/G/c stability: past λ = c/E[S] the steady-state queue diverges no
  // matter what a finite trace's p99 managed to show — a rate there can
  // never "pass". Without this cap a short trace under a generous SLO lets
  // the ladder run away (the backlog needed to break the SLO simply doesn't
  // fit in the trace).
  const double stable_limit =
      1000.0 * static_cast<double>(servers) / std::max(mean_cpu, 1e-6);
  const auto passes = [&](double rate, const SimPoint& probe) {
    return probe.p99_ms <= slo_p99_ms && rate < stable_limit;
  };

  // ~5% CPU utilization: low enough that the p99 there is the no-queueing
  // baseline. If even that misses the SLO, capacity is honestly zero.
  double rate = 0.05 * stable_limit;
  SimPoint probe = simulate_open_loop(interarrival_unit, cpu_ms, overlap_ms, servers, rate);
  result.ladder.push_back(probe);
  if (!passes(rate, probe)) return result;

  double last_pass = rate;
  SimPoint last_pass_point = probe;
  double first_fail = 0;
  for (int step = 0; step < 64; ++step) {
    rate *= 1.3;
    probe = simulate_open_loop(interarrival_unit, cpu_ms, overlap_ms, servers, rate);
    result.ladder.push_back(probe);
    if (passes(rate, probe)) {
      last_pass = rate;
      last_pass_point = probe;
    } else {
      first_fail = rate;
      break;
    }
  }
  if (first_fail > 0) {
    // Bisect the knee: 6 rounds narrow the pass/fail bracket to ~0.5%.
    double lo = last_pass;
    double hi = first_fail;
    for (int round = 0; round < 6; ++round) {
      const double mid = 0.5 * (lo + hi);
      probe = simulate_open_loop(interarrival_unit, cpu_ms, overlap_ms, servers, mid);
      result.ladder.push_back(probe);
      if (passes(mid, probe)) {
        lo = mid;
        last_pass = mid;
        last_pass_point = probe;
      } else {
        hi = mid;
      }
    }
  }
  result.capacity_rps = last_pass;
  result.at_capacity = last_pass_point;
  return result;
}

}  // namespace sp::workload
