// Modified Tate pairing ê: G × G → F_{p²} on the supersingular curve,
// computed as ê(P, Q) = f_{q,P}(φ(Q))^((p²−1)/q) with the distortion map
// φ(x, y) = (−x, i·y) and Miller's algorithm.
//
// Denominator elimination applies: every vertical-line value lies in F_p and
// is annihilated by the (p−1) factor of the final exponentiation, so only
// the tangent/chord numerators are accumulated. The final exponentiation
// uses the Frobenius shortcut f^(p−1) = conj(f) · f^{-1}.
#pragma once

#include "ec/curve.hpp"
#include "field/fp2.hpp"

namespace sp::ec {

using field::Fp2;

class Pairing {
 public:
  explicit Pairing(const Curve& curve) : curve_(&curve) {}

  /// ê(P, Q). Both points must lie in the order-q subgroup; ê(P, P) ≠ 1 for
  /// P ≠ O (the distortion map makes the "self-pairing" non-degenerate).
  /// Returns 1 ∈ F_{p²} when either argument is infinity. Inversion-free
  /// Jacobian Miller loop; the per-step F_p scale factors it introduces
  /// cancel exactly in the final exponentiation, so the value is identical
  /// to reference().
  [[nodiscard]] Fp2 operator()(const Point& p, const Point& q) const;

  /// The original affine Miller loop (one field inversion per step), kept
  /// as the equivalence oracle for the Jacobian rewrite.
  [[nodiscard]] Fp2 reference(const Point& p, const Point& q) const;

  /// The pairing target group's identity, for comparisons.
  [[nodiscard]] Fp2 one() const { return Fp2::one(curve_->fp()); }

 private:
  const Curve* curve_;
};

}  // namespace sp::ec
