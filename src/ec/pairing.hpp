// Modified Tate pairing ê: G × G → F_{p²} on the supersingular curve,
// computed as ê(P, Q) = f_{q,P}(φ(Q))^((p²−1)/q) with the distortion map
// φ(x, y) = (−x, i·y) and Miller's algorithm.
//
// Denominator elimination applies: every vertical-line value lies in F_p and
// is annihilated by the (p−1) factor of the final exponentiation, so only
// the tangent/chord numerators are accumulated. The final exponentiation
// uses the Frobenius shortcut f^(p−1) = conj(f) · f^{-1}.
//
// Batch verification (PR 7): product() evaluates ∏ ê(P_i, Q_i)^(±e_i) with
// one Miller loop per pair but a SINGLE shared final exponentiation.
// Soundness of the sharing (DESIGN.md "Batch verification pipeline"):
//   - FE(f) = f^((p²−1)/q) is a group homomorphism, so the product of
//     exponentiated Miller values exponentiates to the product of pairings.
//   - p ≡ −1 (mod q) (p + 1 = h·q), so FE(conj(f)) = FE(f^p) = FE(f)^p =
//     FE(f)^{-1}: an inverse pair costs one conjugation BEFORE the shared
//     final exponentiation instead of an F_{p²} inversion after it.
//   - FE output has order dividing q, so per-term exponents already reduced
//     mod q commute with FE: FE(f^e) = FE(f)^e.
// All three identities hold exactly over canonical field representations,
// so product() is byte-identical to the per-pair reference composition.
//
// precompute() builds a Miller-line table for a fixed FIRST argument P: the
// loop's tangent/chord line coefficients depend only on P, so they are
// recorded once and each later ê(P, ·) replays them against φ(Q), skipping
// all of the point arithmetic. Tables live in a process-wide FIFO-capped
// registry keyed by (p, P) — same policy as the fixed-base scalar tables.
#pragma once

#include <functional>
#include <span>

#include "ec/curve.hpp"
#include "field/fp2.hpp"

namespace sp::ec {

using field::Fp2;

class Pairing {
 public:
  explicit Pairing(const Curve& curve) : curve_(&curve) {}

  /// ê(P, Q). Both points must lie in the order-q subgroup; ê(P, P) ≠ 1 for
  /// P ≠ O (the distortion map makes the "self-pairing" non-degenerate).
  /// Returns 1 ∈ F_{p²} when either argument is infinity. Inversion-free
  /// Jacobian Miller loop; the per-step F_p scale factors it introduces
  /// cancel exactly in the final exponentiation, so the value is identical
  /// to reference(). Uses a Miller-line table when P has one registered.
  [[nodiscard]] Fp2 operator()(const Point& p, const Point& q) const;

  /// The original affine Miller loop (one field inversion per step), kept
  /// as the equivalence oracle for the Jacobian rewrite.
  [[nodiscard]] Fp2 reference(const Point& p, const Point& q) const;

  /// One factor of a multi-pairing: contributes ê(p, q)^(exponent), or
  /// ê(p, q)^(−exponent) when `inverse` is set. `exponent` must already be
  /// reduced mod the group order q (the callers' Lagrange coefficients are).
  struct Term {
    Point p;  ///< first argument — Miller-line tables key on this side
    Point q;
    bool inverse = false;
    BigInt exponent = BigInt{1};
  };

  /// Executes a batch of independent closures, each evaluating one term's
  /// Miller loop. An empty Runner means "run inline"; a non-empty one must
  /// run EVERY closure exactly once before returning and rethrow (or
  /// propagate) any exception a closure throws. sp::core's VerifyQueue
  /// provides one; the indirection keeps ec free of core dependencies.
  using Runner = std::function<void(std::span<const std::function<void()>>)>;

  /// ∏ ê(p_i, q_i)^(±e_i) with one Miller loop per term and ONE shared
  /// final exponentiation. Terms with an infinity point contribute 1 and
  /// are skipped; off-curve points throw. Equal exponents are bucketed so
  /// a numerator/denominator pair sharing a Lagrange coefficient costs one
  /// F_{p²} pow, not two. First arguments without a registered Miller-line
  /// table get one built and registered on the way (the build costs about
  /// as much as the table-driven evaluation saves, so the first use is
  /// break-even and every later use is pure profit; the FIFO cap bounds
  /// the registry under churn). Returns 1 for an empty product. The
  /// optional runner evaluates the per-term Miller loops concurrently;
  /// bucketing, pows and the shared final exponentiation stay on the
  /// calling thread, so the result is identical either way.
  [[nodiscard]] Fp2 product(std::span<const Term> terms, const Runner& runner = {}) const;

  /// The un-exponentiated Miller accumulator f_{q,P}(φ(Q)) — the building
  /// block product() combines. Returns 1 when either argument is infinity.
  /// NOT a pairing until final_exponentiation() is applied.
  [[nodiscard]] Fp2 miller(const Point& p, const Point& q) const;

  /// f^((p²−1)/q) = (conj(f)·f^{-1})^((p+1)/q).
  [[nodiscard]] Fp2 final_exponentiation(const Fp2& f) const;

  /// Builds (or refreshes) the Miller-line table for first argument `p` in
  /// the process-wide registry (FIFO-capped, keyed by (field prime, p), so
  /// tables survive across Pairing/Curve instances). No-op for infinity.
  void precompute(const Point& p) const;
  /// True when ê(p, ·) would replay a registered Miller-line table.
  [[nodiscard]] bool has_precomputed(const Point& p) const;

  /// The pairing target group's identity, for comparisons.
  [[nodiscard]] Fp2 one() const { return Fp2::one(curve_->fp()); }

 private:
  const Curve* curve_;
};

}  // namespace sp::ec
