#include "ec/pairing.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::ec {

using field::Fp;

Fp2 Pairing::operator()(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  if (!curve_->on_curve(p) || !curve_->on_curve(q)) {
    throw std::invalid_argument("Pairing: input not on curve");
  }
  // Hot-path instrumentation: a pairing is ~3 ms at the 512-bit preset, the
  // span costs two clock reads + three relaxed fetch_adds (and nothing at
  // all against a disabled registry). Magic-static init is thread-safe.
  static obs::Histogram& pairing_ms = obs::MetricsRegistry::global().histogram(
      "crypto_pairing_ms", "Full pairing evaluations (Miller loop + final exp)");
  obs::TraceSpan span(pairing_ms);

  // Jacobian Miller loop: T = (X, Y, Z) with x_t = X/Z², y_t = Y/Z³, no
  // inversion per step. Each line value is the affine one scaled by a
  // non-zero F_p factor (Z3·Z2 for tangents, Z3 for chords); if the affine
  // accumulator is f and ours is f' = c·f with c ∈ F_p, then
  // conj(f')·f'^{-1} = conj(f)·f^{-1} exactly — conj fixes F_p — so the
  // final exponentiation output is bit-identical to reference().
  const Curve::Consts& cs = curve_->consts();
  const Fp& x_p = p.x();
  const Fp& y_p = p.y();
  const Fp& x_q = q.x();
  const Fp& y_q = q.y();
  const crypto::BigInt& order = curve_->order();
  Fp2 f = Fp2::one(fp);
  Fp tx = p.x();
  Fp ty = p.y();
  Fp tz = cs.one;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      // Tangent step: doubling on y² = x³ + x with M = 3X² + Z⁴.
      const Fp z2 = tz * tz;
      const Fp y2 = ty * ty;
      const Fp m = cs.three * tx * tx + z2 * z2;
      const Fp s = cs.four * tx * y2;
      const Fp x3 = m * m - s - s;
      const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
      const Fp z3 = (ty + ty) * tz;
      // Affine tangent line at T, evaluated at φ(Q) and scaled by Z3·Z2.
      const Fp l_re = m * (z2 * x_q + tx) - (y2 + y2);
      const Fp l_im = z3 * z2 * y_q;
      f = f * f * Fp2(l_re, l_im);
      tx = x3;
      ty = y3;
      tz = z3;
    }
    if (order.bit(i)) {
      const Fp z2 = tz * tz;
      const Fp u2 = x_p * z2;
      const Fp s2 = y_p * z2 * tz;
      const Fp h = u2 - tx;
      const Fp r = s2 - ty;
      if (h.is_zero()) {
        // T = ±P: chord is vertical (value in F_p, eliminated) or tangent
        // (cannot occur mid-loop for order-q P). Update via group law.
        if (r.is_zero()) {
          const Fp y2 = ty * ty;
          const Fp m = cs.three * tx * tx + z2 * z2;
          const Fp s = cs.four * tx * y2;
          const Fp x3 = m * m - s - s;
          const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
          const Fp z3 = (ty + ty) * tz;
          tx = x3;
          ty = y3;
          tz = z3;
        } else {
          // T + (−P) = O; mirrors the affine loop, which also leaves the
          // accumulator untouched and lets the next step fail loudly.
          tx = Fp::zero(fp);
          ty = Fp::zero(fp);
          tz = Fp::zero(fp);
        }
      } else {
        const Fp h2 = h * h;
        const Fp h3 = h2 * h;
        const Fp uh2 = tx * h2;
        const Fp x3 = r * r - h3 - uh2 - uh2;
        const Fp y3 = r * (uh2 - x3) - ty * h3;
        const Fp z3 = tz * h;
        // Chord through T and P, evaluated at φ(Q) and scaled by Z3.
        const Fp l_re = r * (x_q + x_p) - y_p * z3;
        const Fp l_im = z3 * y_q;
        f = f * Fp2(l_re, l_im);
        tx = x3;
        ty = y3;
        tz = z3;
      }
    }
  }

  // Final exponentiation: f^((p²−1)/q) = (conj(f)·f^{-1})^(h) with
  // h = (p+1)/q, because f^p = conj(f) in F_p[i] when p ≡ 3 (mod 4).
  const Fp2 f_p_minus_1 = f.conj() * f.inv();
  return f_p_minus_1.pow(curve_->params().h);
}

Fp2 Pairing::reference(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  if (!curve_->on_curve(p) || !curve_->on_curve(q)) {
    throw std::invalid_argument("Pairing: input not on curve");
  }

  // Affine Miller loop with the slope shared between the line evaluation
  // and the point update — one field inversion per step instead of two.
  const Fp one = Fp::one(fp);
  const Fp two = Fp(fp, crypto::BigInt{2});
  const Fp three = Fp(fp, crypto::BigInt{3});
  // Line through a with slope `lambda`, evaluated at φ(Q) = (−x_q, i·y_q):
  // value = (λ·x_q − (y_a − λ·x_a)) + i·y_q.
  auto eval_line = [&](const Point& a, const Fp& lambda) {
    const Fp c = a.y() - lambda * a.x();
    return Fp2(lambda * q.x() - c, q.y());
  };
  const crypto::BigInt& order = curve_->order();
  Fp2 f = Fp2::one(fp);
  Point t = p;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      // Tangent at T: λ = (3x² + 1) / 2y  (y ≠ 0 for odd-order points).
      const Fp lambda = (three * t.x() * t.x() + one) * (two * t.y()).inv();
      f = f * f * eval_line(t, lambda);
      const Fp x3 = lambda * lambda - t.x() - t.x();
      t = Point(x3, lambda * (t.x() - x3) - t.y());
    }
    if (order.bit(i)) {
      if (t.x() == p.x()) {
        // T = ±P: chord is vertical (value in F_p, eliminated) or tangent
        // (cannot occur mid-loop for order-q P). Update via group law.
        t = curve_->add(t, p);
      } else {
        const Fp lambda = (p.y() - t.y()) * (p.x() - t.x()).inv();
        f = f * eval_line(t, lambda);
        const Fp x3 = lambda * lambda - t.x() - p.x();
        t = Point(x3, lambda * (t.x() - x3) - t.y());
      }
    }
  }

  // Final exponentiation: f^((p²−1)/q) = (conj(f)·f^{-1})^(h) with
  // h = (p+1)/q, because f^p = conj(f) in F_p[i] when p ≡ 3 (mod 4).
  const Fp2 f_p_minus_1 = f.conj() * f.inv();
  return f_p_minus_1.pow(curve_->params().h);
}

}  // namespace sp::ec
