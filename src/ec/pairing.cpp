#include "ec/pairing.hpp"

#include <stdexcept>

namespace sp::ec {

using field::Fp;

Fp2 Pairing::operator()(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  if (!curve_->on_curve(p) || !curve_->on_curve(q)) {
    throw std::invalid_argument("Pairing: input not on curve");
  }

  // Affine Miller loop with the slope shared between the line evaluation
  // and the point update — one field inversion per step instead of two.
  const Fp one = Fp::one(fp);
  const Fp two = Fp(fp, crypto::BigInt{2});
  const Fp three = Fp(fp, crypto::BigInt{3});
  // Line through a with slope `lambda`, evaluated at φ(Q) = (−x_q, i·y_q):
  // value = (λ·x_q − (y_a − λ·x_a)) + i·y_q.
  auto eval_line = [&](const Point& a, const Fp& lambda) {
    const Fp c = a.y() - lambda * a.x();
    return Fp2(lambda * q.x() - c, q.y());
  };
  const crypto::BigInt& order = curve_->order();
  Fp2 f = Fp2::one(fp);
  Point t = p;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      // Tangent at T: λ = (3x² + 1) / 2y  (y ≠ 0 for odd-order points).
      const Fp lambda = (three * t.x() * t.x() + one) * (two * t.y()).inv();
      f = f * f * eval_line(t, lambda);
      const Fp x3 = lambda * lambda - t.x() - t.x();
      t = Point(x3, lambda * (t.x() - x3) - t.y());
    }
    if (order.bit(i)) {
      if (t.x() == p.x()) {
        // T = ±P: chord is vertical (value in F_p, eliminated) or tangent
        // (cannot occur mid-loop for order-q P). Update via group law.
        t = curve_->add(t, p);
      } else {
        const Fp lambda = (p.y() - t.y()) * (p.x() - t.x()).inv();
        f = f * eval_line(t, lambda);
        const Fp x3 = lambda * lambda - t.x() - p.x();
        t = Point(x3, lambda * (t.x() - x3) - t.y());
      }
    }
  }

  // Final exponentiation: f^((p²−1)/q) = (conj(f)·f^{-1})^(h) with
  // h = (p+1)/q, because f^p = conj(f) in F_p[i] when p ≡ 3 (mod 4).
  const Fp2 f_p_minus_1 = f.conj() * f.inv();
  return f_p_minus_1.pow(curve_->params().h);
}

}  // namespace sp::ec
