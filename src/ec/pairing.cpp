#include "ec/pairing.hpp"

#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::ec {

using field::Fp;

namespace {

// One recorded Miller-loop step for a fixed first argument P. The line
// through the loop's running point, evaluated at φ(Q) = (−x_q, i·y_q), is
// always of the form (a·x_q + b) + (c·y_q)·i with (a, b, c) depending only
// on P — so replaying a table is pure F_{p²} accumulator work. `tangent`
// distinguishes the doubling step (f ← f²·l) from the addition step
// (f ← f·l); degenerate additions (vertical chord, eliminated by the final
// exponentiation) record no step, exactly like the live loop adds no factor.
struct MillerStep {
  Fp a, b, c;
  bool tangent;
};

struct MillerTable {
  std::vector<MillerStep> steps;
};

// Process-wide Miller-line table registry, mirroring the fixed-base scalar
// table registry in curve.cpp: keyed by (p, P) so tables outlive the
// Pairing/Curve/Session that built them, FIFO-evicted so key churn cannot
// grow memory without bound. A 512-bit table is ~770 steps × 3 Fp ≈ 150 KB,
// so the cap bounds the registry at a few MB.
constexpr std::size_t kMaxMillerTables = 64;

struct MillerTableRegistry {
  sp::Mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<const MillerTable>> map
      SP_GUARDED_BY(mutex);
  std::deque<std::string> fifo SP_GUARDED_BY(mutex);

  static MillerTableRegistry& get() {
    static MillerTableRegistry* const instance = new MillerTableRegistry();  // leaked on purpose
    return *instance;
  }
};

std::shared_ptr<const MillerTable> find_miller_table(const std::string& key) {
  MillerTableRegistry& reg = MillerTableRegistry::get();
  const sp::MutexLock lock(reg.mutex);
  auto it = reg.map.find(key);
  return it == reg.map.end() ? nullptr : it->second;
}

void register_miller_table(const std::string& key, std::shared_ptr<const MillerTable> table) {
  MillerTableRegistry& reg = MillerTableRegistry::get();
  const sp::MutexLock lock(reg.mutex);
  if (reg.map.find(key) == reg.map.end()) {
    reg.fifo.push_back(key);
    if (reg.fifo.size() > kMaxMillerTables) {
      reg.map.erase(reg.fifo.front());
      reg.fifo.pop_front();
    }
  }
  reg.map[key] = std::move(table);
}

// (p, P) registry key; serialize() embeds the field byte length, so the
// concatenation is collision-free (same scheme as Curve::table_key).
std::string miller_key(const Curve& curve, const Point& p) {
  const crypto::Bytes pb = curve.fp()->p().to_bytes();
  const crypto::Bytes bb = curve.serialize(p);
  std::string id(pb.begin(), pb.end());
  id.append(bb.begin(), bb.end());
  return id;
}

/// The inversion-free Jacobian Miller loop, WITHOUT the final
/// exponentiation: T = (X, Y, Z) with x_t = X/Z², y_t = Y/Z³. Each line
/// value is the affine one scaled by a non-zero F_p factor (Z3·Z2 for
/// tangents, Z3 for chords); conj fixes F_p, so the scale factors cancel in
/// final_exponentiation() and the exponentiated result is bit-identical to
/// the affine reference().
Fp2 miller_loop(const Curve& curve, const Point& p, const Point& q) {
  const auto& fp = curve.fp();
  const Curve::Consts& cs = curve.consts();
  const Fp& x_p = p.x();
  const Fp& y_p = p.y();
  const Fp& x_q = q.x();
  const Fp& y_q = q.y();
  const crypto::BigInt& order = curve.order();
  Fp2 f = Fp2::one(fp);
  Fp tx = p.x();
  Fp ty = p.y();
  Fp tz = cs.one;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      // Tangent step: doubling on y² = x³ + x with M = 3X² + Z⁴.
      const Fp z2 = tz * tz;
      const Fp y2 = ty * ty;
      const Fp m = cs.three * tx * tx + z2 * z2;
      const Fp s = cs.four * tx * y2;
      const Fp x3 = m * m - s - s;
      const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
      const Fp z3 = (ty + ty) * tz;
      // Affine tangent line at T, evaluated at φ(Q) and scaled by Z3·Z2.
      const Fp l_re = m * (z2 * x_q + tx) - (y2 + y2);
      const Fp l_im = z3 * z2 * y_q;
      f = f * f * Fp2(l_re, l_im);
      tx = x3;
      ty = y3;
      tz = z3;
    }
    if (order.bit(i)) {
      const Fp z2 = tz * tz;
      const Fp u2 = x_p * z2;
      const Fp s2 = y_p * z2 * tz;
      const Fp h = u2 - tx;
      const Fp r = s2 - ty;
      if (h.is_zero()) {
        // T = ±P: chord is vertical (value in F_p, eliminated) or tangent
        // (cannot occur mid-loop for order-q P). Update via group law.
        if (r.is_zero()) {
          const Fp y2 = ty * ty;
          const Fp m = cs.three * tx * tx + z2 * z2;
          const Fp s = cs.four * tx * y2;
          const Fp x3 = m * m - s - s;
          const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
          const Fp z3 = (ty + ty) * tz;
          tx = x3;
          ty = y3;
          tz = z3;
        } else {
          // T + (−P) = O; mirrors the affine loop, which also leaves the
          // accumulator untouched and lets the next step fail loudly.
          tx = Fp::zero(fp);
          ty = Fp::zero(fp);
          tz = Fp::zero(fp);
        }
      } else {
        const Fp h2 = h * h;
        const Fp h3 = h2 * h;
        const Fp uh2 = tx * h2;
        const Fp x3 = r * r - h3 - uh2 - uh2;
        const Fp y3 = r * (uh2 - x3) - ty * h3;
        const Fp z3 = tz * h;
        // Chord through T and P, evaluated at φ(Q) and scaled by Z3.
        const Fp l_re = r * (x_q + x_p) - y_p * z3;
        const Fp l_im = z3 * y_q;
        f = f * Fp2(l_re, l_im);
        tx = x3;
        ty = y3;
        tz = z3;
      }
    }
  }
  return f;
}

/// Runs the same loop as miller_loop() but only the point arithmetic,
/// capturing each line's (a, b, c) so the x_q/y_q evaluation can be
/// replayed later: tangent l_re = m·(z2·x_q + tx) − 2y2 = (m·z2)·x_q +
/// (m·tx − 2y2), chord l_re = r·(x_q + x_p) − y_p·z3 = r·x_q +
/// (r·x_p − y_p·z3). Distributivity over F_p makes the replayed values
/// (and hence every downstream byte) identical to the live loop's.
MillerTable build_miller_table(const Curve& curve, const Point& p) {
  const auto& fp = curve.fp();
  const Curve::Consts& cs = curve.consts();
  const Fp& x_p = p.x();
  const Fp& y_p = p.y();
  const crypto::BigInt& order = curve.order();
  MillerTable table;
  table.steps.reserve(order.bit_length() + order.bit_length() / 2);
  Fp tx = p.x();
  Fp ty = p.y();
  Fp tz = cs.one;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      const Fp z2 = tz * tz;
      const Fp y2 = ty * ty;
      const Fp m = cs.three * tx * tx + z2 * z2;
      const Fp s = cs.four * tx * y2;
      const Fp x3 = m * m - s - s;
      const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
      const Fp z3 = (ty + ty) * tz;
      table.steps.push_back({m * z2, m * tx - (y2 + y2), z3 * z2, true});
      tx = x3;
      ty = y3;
      tz = z3;
    }
    if (order.bit(i)) {
      const Fp z2 = tz * tz;
      const Fp u2 = x_p * z2;
      const Fp s2 = y_p * z2 * tz;
      const Fp h = u2 - tx;
      const Fp r = s2 - ty;
      if (h.is_zero()) {
        if (r.is_zero()) {
          const Fp y2 = ty * ty;
          const Fp m = cs.three * tx * tx + z2 * z2;
          const Fp s = cs.four * tx * y2;
          const Fp x3 = m * m - s - s;
          const Fp y3 = m * (s - x3) - cs.eight * y2 * y2;
          const Fp z3 = (ty + ty) * tz;
          tx = x3;
          ty = y3;
          tz = z3;
        } else {
          tx = Fp::zero(fp);
          ty = Fp::zero(fp);
          tz = Fp::zero(fp);
        }
      } else {
        const Fp h2 = h * h;
        const Fp h3 = h2 * h;
        const Fp uh2 = tx * h2;
        const Fp x3 = r * r - h3 - uh2 - uh2;
        const Fp y3 = r * (uh2 - x3) - ty * h3;
        const Fp z3 = tz * h;
        table.steps.push_back({r, r * x_p - y_p * z3, z3, false});
        tx = x3;
        ty = y3;
        tz = z3;
      }
    }
  }
  return table;
}

Fp2 replay_miller_table(const MillerTable& table, const field::FpCtxPtr& fp, const Point& q) {
  const Fp& x_q = q.x();
  const Fp& y_q = q.y();
  Fp2 f = Fp2::one(fp);
  for (const MillerStep& step : table.steps) {
    const Fp2 l(step.a * x_q + step.b, step.c * y_q);
    f = step.tangent ? f * f * l : f * l;
  }
  return f;
}

}  // namespace

Fp2 Pairing::miller(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  if (!curve_->on_curve(p) || !curve_->on_curve(q)) {
    throw std::invalid_argument("Pairing: input not on curve");
  }
  if (const auto table = find_miller_table(miller_key(*curve_, p))) {
    static obs::Counter& hits = obs::MetricsRegistry::global().counter(
        "crypto_miller_table_hits_total", "Miller loops served from a precomputed line table");
    hits.inc();
    return replay_miller_table(*table, fp, q);
  }
  return miller_loop(*curve_, p, q);
}

Fp2 Pairing::final_exponentiation(const Fp2& f) const {
  // f^((p²−1)/q) = (conj(f)·f^{-1})^(h) with h = (p+1)/q, because
  // f^p = conj(f) in F_p[i] when p ≡ 3 (mod 4).
  const Fp2 f_p_minus_1 = f.conj() * f.inv();
  return f_p_minus_1.pow(curve_->params().h);
}

void Pairing::precompute(const Point& p) const {
  if (p.is_infinity()) return;
  if (!curve_->on_curve(p)) {
    throw std::invalid_argument("Pairing::precompute: input not on curve");
  }
  // Registry index, not key material: P here is a fixed PUBLIC pairing
  // argument (ciphertext components), serialized coordinates.
  const std::string table_id = miller_key(*curve_, p);
  if (find_miller_table(table_id)) return;
  static obs::Counter& builds = obs::MetricsRegistry::global().counter(
      "crypto_miller_table_builds_total", "Miller-line tables built and registered");
  builds.inc();
  auto table = std::make_shared<const MillerTable>(build_miller_table(*curve_, p));
  register_miller_table(table_id, std::move(table));
}

bool Pairing::has_precomputed(const Point& p) const {
  if (p.is_infinity()) return false;
  return find_miller_table(miller_key(*curve_, p)) != nullptr;
}

Fp2 Pairing::operator()(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  // Hot-path instrumentation: a pairing is ~3 ms at the 512-bit preset, the
  // span costs two clock reads + three relaxed fetch_adds (and nothing at
  // all against a disabled registry). Magic-static init is thread-safe.
  static obs::Histogram& pairing_ms = obs::MetricsRegistry::global().histogram(
      "crypto_pairing_ms", "Full pairing evaluations (Miller loop + final exp)");
  obs::TraceSpan span(pairing_ms);
  return final_exponentiation(miller(p, q));
}

Fp2 Pairing::product(std::span<const Term> terms, const Runner& runner) const {
  const auto& fp = curve_->fp();
  static obs::Histogram& multi_ms = obs::MetricsRegistry::global().histogram(
      "crypto_multi_pairing_ms",
      "Multi-pairing products (one Miller loop per pair, one shared final exp)");
  static obs::Counter& products = obs::MetricsRegistry::global().counter(
      "crypto_multi_pairing_products_total", "Multi-pairing product evaluations");
  static obs::Counter& pairs = obs::MetricsRegistry::global().counter(
      "crypto_multi_pairing_pairs_total", "Pairs folded into multi-pairing products");
  obs::TraceSpan span(multi_ms);
  products.inc();

  // Evaluate every term's Miller loop, inline or through the runner. Each
  // closure owns a disjoint output slot, so the batch is embarrassingly
  // parallel; table builds happen up front on this thread because the
  // registry would serialize concurrent builders anyway. Inverses are
  // conjugated BEFORE the shared final exponentiation — p ≡ −1 (mod q)
  // makes FE(conj(f)) = FE(f)^{-1} (header comment) — so no term ever pays
  // an F_{p²} inversion.
  std::vector<Fp2> values(terms.size());
  std::vector<char> evaluable(terms.size(), 0);
  std::uint64_t evaluated = 0;
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const Term& term = terms[i];
    if (term.p.is_infinity() || term.q.is_infinity()) continue;  // ê = 1
    evaluable[i] = 1;
    ++evaluated;
    // Long-lived first arguments (ciphertext components, CP-ABE params) are
    // exactly the ones that recur across requests; building the table costs
    // about one table-driven evaluation, so first use is break-even.
    precompute(term.p);
    auto eval = [this, &term, &values, i] {
      Fp2 m = miller(term.p, term.q);
      values[i] = term.inverse ? m.conj() : m;
    };
    if (runner) {
      jobs.emplace_back(std::move(eval));
    } else {
      eval();
    }
  }
  if (!jobs.empty()) runner(jobs);
  pairs.inc(evaluated);

  // Bucket the Miller values by exponent so a numerator/denominator pair
  // sharing one Lagrange coefficient costs a single F_{p²} pow. The term
  // count is small (CP-ABE: 2 per satisfied leaf + 1), so the linear bucket
  // scan is noise next to a Miller loop.
  std::vector<std::pair<BigInt, Fp2>> buckets;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!evaluable[i]) continue;
    bool found = false;
    for (auto& [exponent, acc] : buckets) {
      if (exponent == terms[i].exponent) {
        acc = acc * values[i];
        found = true;
        break;
      }
    }
    if (!found) buckets.emplace_back(terms[i].exponent, std::move(values[i]));
  }

  const BigInt one_exp{1};
  Fp2 f = Fp2::one(fp);
  for (const auto& [exponent, acc] : buckets) {
    f = f * (exponent == one_exp ? acc : acc.pow(exponent));
  }
  return final_exponentiation(f);
}

Fp2 Pairing::reference(const Point& p, const Point& q) const {
  const auto& fp = curve_->fp();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(fp);
  if (!curve_->on_curve(p) || !curve_->on_curve(q)) {
    throw std::invalid_argument("Pairing: input not on curve");
  }

  // Affine Miller loop with the slope shared between the line evaluation
  // and the point update — one field inversion per step instead of two.
  const Fp one = Fp::one(fp);
  const Fp two = Fp(fp, crypto::BigInt{2});
  const Fp three = Fp(fp, crypto::BigInt{3});
  // Line through a with slope `lambda`, evaluated at φ(Q) = (−x_q, i·y_q):
  // value = (λ·x_q − (y_a − λ·x_a)) + i·y_q.
  auto eval_line = [&](const Point& a, const Fp& lambda) {
    const Fp c = a.y() - lambda * a.x();
    return Fp2(lambda * q.x() - c, q.y());
  };
  const crypto::BigInt& order = curve_->order();
  Fp2 f = Fp2::one(fp);
  Point t = p;
  const std::size_t nbits = order.bit_length();
  for (std::size_t i = nbits - 1; i-- > 0;) {
    {
      // Tangent at T: λ = (3x² + 1) / 2y  (y ≠ 0 for odd-order points).
      const Fp lambda = (three * t.x() * t.x() + one) * (two * t.y()).inv();
      f = f * f * eval_line(t, lambda);
      const Fp x3 = lambda * lambda - t.x() - t.x();
      t = Point(x3, lambda * (t.x() - x3) - t.y());
    }
    if (order.bit(i)) {
      if (t.x() == p.x()) {
        // T = ±P: chord is vertical (value in F_p, eliminated) or tangent
        // (cannot occur mid-loop for order-q P). Update via group law.
        t = curve_->add(t, p);
      } else {
        const Fp lambda = (p.y() - t.y()) * (p.x() - t.x()).inv();
        f = f * eval_line(t, lambda);
        const Fp x3 = lambda * lambda - t.x() - p.x();
        t = Point(x3, lambda * (t.x() - x3) - t.y());
      }
    }
  }

  // Final exponentiation: f^((p²−1)/q) = (conj(f)·f^{-1})^(h) with
  // h = (p+1)/q, because f^p = conj(f) in F_p[i] when p ≡ 3 (mod 4).
  const Fp2 f_p_minus_1 = f.conj() * f.inv();
  return f_p_minus_1.pow(curve_->params().h);
}

}  // namespace sp::ec
