#include "ec/params.hpp"

#include <stdexcept>

#include "crypto/drbg.hpp"

namespace sp::ec {

namespace {

using crypto::Bytes;
using crypto::Drbg;

BigInt random_prime(std::size_t bits, Drbg& rng) {
  if (bits < 8) throw std::invalid_argument("random_prime: need >= 8 bits");
  auto rand_bytes = [&rng](std::size_t n) { return rng.bytes(n); };
  for (;;) {
    Bytes buf = rng.bytes((bits + 7) / 8);
    // Force exact bit length and oddness.
    const unsigned top = static_cast<unsigned>((bits - 1) % 8);
    buf[0] &= static_cast<std::uint8_t>((1u << (top + 1)) - 1u);
    buf[0] |= static_cast<std::uint8_t>(1u << top);
    buf.back() |= 1u;
    BigInt candidate = BigInt::from_bytes(buf);
    if (BigInt::is_probable_prime(candidate, 20, rand_bytes)) return candidate;
  }
}

}  // namespace

CurveParams generate_params(std::size_t q_bits, std::size_t p_bits, std::string_view seed) {
  if (p_bits < q_bits + 3) throw std::invalid_argument("generate_params: p_bits too small");
  Drbg rng(seed);
  auto rand_bytes = [&rng](std::size_t n) { return rng.bytes(n); };
  const BigInt q = random_prime(q_bits, rng);

  // h = 4·r with random r of (p_bits − q_bits − 2) bits; p = h·q − 1.
  const std::size_t r_bits = p_bits - q_bits - 2;
  for (;;) {
    Bytes buf = rng.bytes((r_bits + 7) / 8);
    const unsigned top = static_cast<unsigned>((r_bits - 1) % 8);
    buf[0] &= static_cast<std::uint8_t>((1u << (top + 1)) - 1u);
    buf[0] |= static_cast<std::uint8_t>(1u << top);
    const BigInt h = BigInt::from_bytes(buf) << 2;  // multiple of 4
    const BigInt p = h * q - BigInt{1};
    if (!BigInt::is_probable_prime(p, 20, rand_bytes)) continue;
    // p = h·q − 1 with 4 | h gives p ≡ 3 (mod 4) automatically; assert anyway.
    if ((p % BigInt{4}) != BigInt{3}) continue;
    return CurveParams{field::make_fp(p), q, h};
  }
}

const CurveParams& preset_params(ParamPreset preset) {
  // Each preset is generated lazily on first use. Block-scope statics are
  // thread-safe in C++11 (concurrent first calls serialize on the guard), so
  // parallel sessions can share presets — and the fixed-base tables keyed on
  // them — without external locking.
  switch (preset) {
    case ParamPreset::kToy: {
      static const CurveParams toy = generate_params(48, 96, "sp-preset-toy-v1");
      return toy;
    }
    case ParamPreset::kTest: {
      static const CurveParams test = generate_params(96, 256, "sp-preset-test-v1");
      return test;
    }
    case ParamPreset::kFull: {
      static const CurveParams full = generate_params(160, 512, "sp-preset-full-v1");
      return full;
    }
  }
  throw std::logic_error("preset_params: unknown preset");
}

}  // namespace sp::ec
