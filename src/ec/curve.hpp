// Supersingular elliptic curve E: y² = x³ + x over F_p with p ≡ 3 (mod 4).
//
// This is the same curve family as PBC's "Type A" parameters used by the
// cpabe toolkit the paper builds Implementation 2 on. The curve has
// #E(F_p) = p + 1 = h·q points; the pairing groups are the order-q subgroup
// G together with the distortion map φ(x, y) = (−x, i·y) into E(F_{p²}).
#pragma once

#include <optional>

#include "field/fp2.hpp"

namespace sp::ec {

using crypto::BigInt;
using crypto::Bytes;
using field::Fp;
using field::FpCtxPtr;

/// Pairing-friendly curve parameters: p + 1 = h · q, p ≡ 3 (mod 4), q prime.
struct CurveParams {
  FpCtxPtr fp;  ///< base field F_p
  BigInt q;     ///< prime order of the pairing subgroup G
  BigInt h;     ///< cofactor
};

/// Affine point on E(F_p); the point at infinity has `infinity == true` and
/// unspecified coordinates.
class Point {
 public:
  Point() : infinity_(true) {}
  Point(Fp x, Fp y) : x_(std::move(x)), y_(std::move(y)), infinity_(false) {}

  [[nodiscard]] bool is_infinity() const { return infinity_; }
  [[nodiscard]] const Fp& x() const { return x_; }
  [[nodiscard]] const Fp& y() const { return y_; }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.infinity_ != b.infinity_) return false;
    if (a.infinity_) return true;
    return a.x_ == b.x_ && a.y_ == b.y_;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

 private:
  Fp x_;
  Fp y_;
  bool infinity_;
};

class Curve {
 public:
  explicit Curve(CurveParams params);

  [[nodiscard]] const CurveParams& params() const { return params_; }
  [[nodiscard]] const FpCtxPtr& fp() const { return params_.fp; }
  /// Group order q of the pairing subgroup.
  [[nodiscard]] const BigInt& order() const { return params_.q; }

  /// Small Fp constants hoisted out of the group law (the affine/Jacobian
  /// formulas used to rebuild these per call). Shared with the pairing.
  struct Consts {
    Fp one, two, three, four, eight;
  };
  [[nodiscard]] const Consts& consts() const { return consts_; }

  [[nodiscard]] bool on_curve(const Point& pt) const;
  [[nodiscard]] Point negate(const Point& pt) const;
  [[nodiscard]] Point add(const Point& a, const Point& b) const;
  [[nodiscard]] Point dbl(const Point& a) const;
  /// Scalar multiplication: width-4 wNAF over Jacobian coordinates, with a
  /// fixed-base windowed table when `pt` has been registered via
  /// precompute_fixed_base(). Not constant-time — this is a research
  /// reproduction, not a hardened implementation.
  [[nodiscard]] Point mul(const Point& pt, const BigInt& k) const;
  /// Plain binary double-and-add — the pre-wNAF algorithm, kept as the
  /// randomized-equivalence oracle (tests/ec/test_scalar_mul.cpp).
  [[nodiscard]] Point mul_binary(const Point& pt, const BigInt& k) const;

  /// Builds (or refreshes) a fixed-base window table for `base` in a
  /// process-wide cache keyed by (p, base); subsequent mul(base, k) calls
  /// use it. Tables survive across Curve instances so long-lived generators
  /// (CP-ABE g/h/f, the Schnorr generator) pay the build cost once per
  /// process, not once per Session. Thread-safe; no-op for infinity.
  void precompute_fixed_base(const Point& base) const;
  /// True when mul(base, ·) would hit a cached fixed-base table.
  [[nodiscard]] bool has_fixed_base(const Point& base) const;

  /// Deterministically maps bytes to a point in the order-q subgroup
  /// (try-and-increment x, then cofactor clearing). Never returns infinity.
  [[nodiscard]] Point hash_to_group(std::span<const std::uint8_t> data) const;
  /// Random generator of the order-q subgroup.
  [[nodiscard]] Point random_group_element(crypto::Drbg& rng) const;

  /// Uncompressed encoding: 0x04 || x || y, or single 0x00 for infinity.
  [[nodiscard]] Bytes serialize(const Point& pt) const;
  [[nodiscard]] Point deserialize(std::span<const std::uint8_t> data) const;

 private:
  [[nodiscard]] Fp rhs(const Fp& x) const;  // x³ + x
  [[nodiscard]] std::string table_key(const Point& base) const;

  CurveParams params_;
  Consts consts_;
};

}  // namespace sp::ec
