#include "ec/curve.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "crypto/sha256.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::ec {

Curve::Curve(CurveParams params) : params_(std::move(params)) {
  if (!params_.fp) throw std::invalid_argument("Curve: null field");
  if (!params_.fp->p_is_3_mod_4()) {
    throw std::invalid_argument("Curve: y^2 = x^3 + x needs p == 3 (mod 4)");
  }
  if ((params_.h * params_.q) != params_.fp->p() + BigInt{1}) {
    throw std::invalid_argument("Curve: h * q must equal p + 1");
  }
  consts_ = Consts{Fp::one(params_.fp), Fp(params_.fp, BigInt{2}), Fp(params_.fp, BigInt{3}),
                   Fp(params_.fp, BigInt{4}), Fp(params_.fp, BigInt{8})};
}

Fp Curve::rhs(const Fp& x) const { return x * x * x + x; }

bool Curve::on_curve(const Point& pt) const {
  if (pt.is_infinity()) return true;
  return pt.y() * pt.y() == rhs(pt.x());
}

Point Curve::negate(const Point& pt) const {
  if (pt.is_infinity()) return pt;
  return Point(pt.x(), -pt.y());
}

Point Curve::dbl(const Point& a) const {
  if (a.is_infinity()) return a;
  if (a.y().is_zero()) return Point{};  // order-2 point doubles to infinity
  // λ = (3x² + 1) / 2y   (curve coefficient a = 1, b = 0)
  const Fp lambda = (consts_.three * a.x() * a.x() + consts_.one) * (consts_.two * a.y()).inv();
  const Fp x3 = lambda * lambda - consts_.two * a.x();
  const Fp y3 = lambda * (a.x() - x3) - a.y();
  return Point(x3, y3);
}

Point Curve::add(const Point& a, const Point& b) const {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  if (a.x() == b.x()) {
    if (a.y() == b.y()) return dbl(a);
    return Point{};  // P + (−P) = O
  }
  const Fp lambda = (b.y() - a.y()) * (b.x() - a.x()).inv();
  const Fp x3 = lambda * lambda - a.x() - b.x();
  const Fp y3 = lambda * (a.x() - x3) - a.y();
  return Point(x3, y3);
}

namespace {

// Jacobian coordinates (X, Y, Z) with x = X/Z², y = Y/Z³ make scalar
// multiplication division-free: affine add/dbl each cost a field inversion,
// Jacobian ~10 multiplications. One inversion at the end.
struct Jac {
  Fp x, y, z;
  bool inf = true;
};

using Consts = Curve::Consts;

Jac to_jac(const Point& p, const Consts& c) {
  if (p.is_infinity()) return Jac{};
  return Jac{p.x(), p.y(), c.one, false};
}

Jac jac_neg(Jac p) {
  if (!p.inf) p.y = -p.y;
  return p;
}

// Doubling on y² = x³ + a·x with a = 1: M = 3X² + Z⁴.
Jac jac_dbl(const Jac& p, const Consts& c) {
  if (p.inf || p.y.is_zero()) return Jac{};
  const Fp y2 = p.y * p.y;
  const Fp s = c.four * p.x * y2;
  const Fp z2 = p.z * p.z;
  const Fp m = c.three * p.x * p.x + z2 * z2;  // a = 1
  const Fp x3 = m * m - s - s;
  const Fp y3 = m * (s - x3) - c.eight * y2 * y2;
  const Fp z3 = (p.y + p.y) * p.z;
  return Jac{x3, y3, z3, false};
}

// Mixed addition: Jacobian p + affine q.
Jac jac_add_affine(const Jac& p, const Point& q, const Consts& c) {
  if (q.is_infinity()) return p;
  if (p.inf) return to_jac(q, c);
  const Fp z2 = p.z * p.z;
  const Fp u2 = q.x() * z2;
  const Fp s2 = q.y() * z2 * p.z;
  const Fp h = u2 - p.x;
  const Fp r = s2 - p.y;
  if (h.is_zero()) {
    if (r.is_zero()) return jac_dbl(p, c);
    return Jac{};  // p + (−p)
  }
  const Fp h2 = h * h;
  const Fp h3 = h2 * h;
  const Fp uh2 = p.x * h2;
  const Fp x3 = r * r - h3 - uh2 - uh2;
  const Fp y3 = r * (uh2 - x3) - p.y * h3;
  const Fp z3 = p.z * h;
  return Jac{x3, y3, z3, false};
}

// General Jacobian + Jacobian addition (needed for wNAF odd-multiple tables
// and fixed-base accumulation, where neither side is affine).
Jac jac_add(const Jac& p, const Jac& q, const Consts& c) {
  if (p.inf) return q;
  if (q.inf) return p;
  const Fp z1z1 = p.z * p.z;
  const Fp z2z2 = q.z * q.z;
  const Fp u1 = p.x * z2z2;
  const Fp u2 = q.x * z1z1;
  const Fp s1 = p.y * z2z2 * q.z;
  const Fp s2 = q.y * z1z1 * p.z;
  const Fp h = u2 - u1;
  const Fp r = s2 - s1;
  if (h.is_zero()) {
    if (r.is_zero()) return jac_dbl(p, c);
    return Jac{};
  }
  const Fp h2 = h * h;
  const Fp h3 = h2 * h;
  const Fp u1h2 = u1 * h2;
  const Fp x3 = r * r - h3 - u1h2 - u1h2;
  const Fp y3 = r * (u1h2 - x3) - s1 * h3;
  const Fp z3 = p.z * q.z * h;
  return Jac{x3, y3, z3, false};
}

Point jac_to_affine(const Jac& p) {
  if (p.inf) return Point{};
  const Fp zi = p.z.inv();
  const Fp zi2 = zi * zi;
  return Point(p.x * zi2, p.y * zi2 * zi);
}

// Batch Jacobian -> affine via Montgomery's trick: prefix products, one
// inversion, back-substitution. Precondition: no input is infinity.
std::vector<Point> jac_to_affine_batch(const std::vector<Jac>& pts) {
  std::vector<Point> out;
  out.reserve(pts.size());
  if (pts.empty()) return out;
  std::vector<Fp> prefix(pts.size());
  Fp running = pts[0].z;
  prefix[0] = running;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    running = running * pts[i].z;
    prefix[i] = running;
  }
  Fp inv = prefix.back().inv();
  out.resize(pts.size());
  for (std::size_t i = pts.size(); i-- > 0;) {
    const Fp zi = i == 0 ? inv : inv * prefix[i - 1];
    const Fp zi2 = zi * zi;
    out[i] = Point(pts[i].x * zi2, pts[i].y * zi2 * zi);
    inv = inv * pts[i].z;
  }
  return out;
}

// Raw Montgomery-domain Jacobian ladder. Fp keeps canonical values (its
// value() feeds serialization and Shamir), so every Fp multiply pays two
// REDC passes plus BigInt heap traffic. The scalar-mul inner loop instead
// stays on fixed-width limb arrays in the Montgomery domain: one CIOS pass
// per multiply, add/sub as plain limb loops, and a single conversion back
// at the end. The formulas mirror jac_dbl/jac_add term by term, so the
// resulting (X, Y, Z) — and hence the affine output — are bit-identical.
using Mc = crypto::MontCtx;

struct RawJac {
  std::uint64_t x[Mc::kMaxLimbs];
  std::uint64_t y[Mc::kMaxLimbs];
  std::uint64_t z[Mc::kMaxLimbs];
  bool inf = true;
};

bool raw_is_zero(const Mc& mc, const std::uint64_t* v) {
  for (std::size_t i = 0; i < mc.limb_count(); ++i) {
    if (v[i] != 0) return false;
  }
  return true;
}

void raw_dbl(const Mc& mc, const RawJac& p, RawJac& out) {
  if (p.inf || raw_is_zero(mc, p.y)) {
    out.inf = true;
    return;
  }
  std::uint64_t y2[Mc::kMaxLimbs], s[Mc::kMaxLimbs], m[Mc::kMaxLimbs], t[Mc::kMaxLimbs];
  std::uint64_t x3[Mc::kMaxLimbs], y3[Mc::kMaxLimbs], z3[Mc::kMaxLimbs];
  mc.mul_raw(p.y, p.y, y2);
  mc.mul_raw(p.x, y2, t);
  mc.add_raw(t, t, s);
  mc.add_raw(s, s, s);  // S = 4XY²
  mc.mul_raw(p.x, p.x, t);
  mc.add_raw(t, t, m);
  mc.add_raw(m, t, m);  // 3X²
  mc.mul_raw(p.z, p.z, t);
  mc.mul_raw(t, t, t);
  mc.add_raw(m, t, m);  // M = 3X² + Z⁴ (a = 1)
  mc.mul_raw(m, m, x3);
  mc.sub_raw(x3, s, x3);
  mc.sub_raw(x3, s, x3);
  mc.mul_raw(y2, y2, t);
  mc.add_raw(t, t, t);
  mc.add_raw(t, t, t);
  mc.add_raw(t, t, t);  // 8Y⁴
  mc.sub_raw(s, x3, y3);
  mc.mul_raw(m, y3, y3);
  mc.sub_raw(y3, t, y3);
  mc.add_raw(p.y, p.y, t);
  mc.mul_raw(t, p.z, z3);
  std::copy(x3, x3 + mc.limb_count(), out.x);
  std::copy(y3, y3 + mc.limb_count(), out.y);
  std::copy(z3, z3 + mc.limb_count(), out.z);
  out.inf = false;
}

void raw_add(const Mc& mc, const RawJac& p, const RawJac& q, RawJac& out) {
  if (p.inf) {
    if (&out != &q) out = q;
    return;
  }
  if (q.inf) {
    if (&out != &p) out = p;
    return;
  }
  std::uint64_t z1z1[Mc::kMaxLimbs], z2z2[Mc::kMaxLimbs];
  std::uint64_t u1[Mc::kMaxLimbs], u2[Mc::kMaxLimbs];
  std::uint64_t s1[Mc::kMaxLimbs], s2[Mc::kMaxLimbs];
  std::uint64_t h[Mc::kMaxLimbs], r[Mc::kMaxLimbs], t[Mc::kMaxLimbs];
  std::uint64_t x3[Mc::kMaxLimbs], y3[Mc::kMaxLimbs], z3[Mc::kMaxLimbs];
  mc.mul_raw(p.z, p.z, z1z1);
  mc.mul_raw(q.z, q.z, z2z2);
  mc.mul_raw(p.x, z2z2, u1);
  mc.mul_raw(q.x, z1z1, u2);
  mc.mul_raw(p.y, z2z2, s1);
  mc.mul_raw(s1, q.z, s1);
  mc.mul_raw(q.y, z1z1, s2);
  mc.mul_raw(s2, p.z, s2);
  mc.sub_raw(u2, u1, h);
  mc.sub_raw(s2, s1, r);
  if (raw_is_zero(mc, h)) {
    if (raw_is_zero(mc, r)) {
      raw_dbl(mc, p, out);
    } else {
      out.inf = true;  // p + (−p)
    }
    return;
  }
  std::uint64_t h2[Mc::kMaxLimbs], h3[Mc::kMaxLimbs], u1h2[Mc::kMaxLimbs];
  mc.mul_raw(h, h, h2);
  mc.mul_raw(h2, h, h3);
  mc.mul_raw(u1, h2, u1h2);
  mc.mul_raw(r, r, x3);
  mc.sub_raw(x3, h3, x3);
  mc.sub_raw(x3, u1h2, x3);
  mc.sub_raw(x3, u1h2, x3);
  mc.sub_raw(u1h2, x3, y3);
  mc.mul_raw(r, y3, y3);
  mc.mul_raw(s1, h3, t);
  mc.sub_raw(y3, t, y3);
  mc.mul_raw(p.z, q.z, z3);
  mc.mul_raw(z3, h, z3);
  std::copy(x3, x3 + mc.limb_count(), out.x);
  std::copy(y3, y3 + mc.limb_count(), out.y);
  std::copy(z3, z3 + mc.limb_count(), out.z);
  out.inf = false;
}

void raw_neg(const Mc& mc, const RawJac& p, RawJac& out) {
  if (&out != &p) out = p;
  if (p.inf) return;
  std::uint64_t zero[Mc::kMaxLimbs] = {0};
  mc.sub_raw(zero, p.y, out.y);  // 0 − y ≡ m − y (and 0 stays 0)
}

// Width-4 NAF: digits odd in {±1, ±3, ±5, ±7}, average density 1/5 versus
// 1/2 for the binary expansion. k must be positive.
std::vector<int> wnaf4(BigInt k) {
  std::vector<int> digits;
  digits.reserve(k.bit_length() + 1);
  while (!k.is_zero()) {
    if (k.is_odd()) {
      int d = static_cast<int>(k.low_u64() & 15u);
      if (d > 8) d -= 16;
      digits.push_back(d);
      k = d > 0 ? k - BigInt{d} : k + BigInt{-d};
    } else {
      digits.push_back(0);
    }
    k = k >> 1;
  }
  return digits;
}

// Fixed-base window table for a long-lived base point B: row j holds the
// affine points d·16^j·B for d = 1..15, so B^k costs one mixed addition per
// non-zero nibble of k and no doublings at all. Entries are never infinity:
// q is prime and > 16, so q never divides d·16^j.
struct FixedBaseTable {
  std::size_t rows = 0;
  std::vector<Point> entries;  // rows × 15, entry(j, d) = d·16^j·B

  [[nodiscard]] const Point& at(std::size_t j, unsigned d) const {
    return entries[j * 15 + (d - 1)];
  }
};

FixedBaseTable build_fixed_base(const Point& base, const BigInt& q, const Consts& c) {
  FixedBaseTable t;
  t.rows = (q.bit_length() + 3) / 4;
  std::vector<Jac> jacs;
  jacs.reserve(t.rows * 15);
  Jac row_base = to_jac(base, c);  // 16^j · B
  for (std::size_t j = 0; j < t.rows; ++j) {
    const std::size_t start = jacs.size();
    jacs.push_back(row_base);
    for (unsigned d = 2; d <= 15; ++d) {
      jacs.push_back(d % 2 == 0 ? jac_dbl(jacs[start + d / 2 - 1], c)
                                : jac_add(jacs[start + d - 2], row_base, c));
    }
    if (j + 1 < t.rows) row_base = jac_dbl(jacs[start + 7], c);  // 2·(8·16^j·B)
  }
  t.entries = jac_to_affine_batch(jacs);
  return t;
}

// Process-wide table registry. Keyed by (p, base) so tables outlive the
// Curve/Session that built them; FIFO eviction bounds memory if a workload
// registers many distinct bases. One magic-static instance so the guarded
// members and their mutex share a lifetime (and the analysis can tie them
// together via SP_GUARDED_BY).
constexpr std::size_t kMaxFixedBaseTables = 64;

struct FixedBaseRegistry {
  sp::Mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<const FixedBaseTable>> map
      SP_GUARDED_BY(mutex);
  std::deque<std::string> fifo SP_GUARDED_BY(mutex);

  static FixedBaseRegistry& get() {
    static FixedBaseRegistry* const instance = new FixedBaseRegistry();  // leaked on purpose
    return *instance;
  }
};

std::shared_ptr<const FixedBaseTable> find_fixed_base(const std::string& key) {
  FixedBaseRegistry& reg = FixedBaseRegistry::get();
  const sp::MutexLock lock(reg.mutex);
  auto it = reg.map.find(key);
  return it == reg.map.end() ? nullptr : it->second;
}

void register_fixed_base(const std::string& key, std::shared_ptr<const FixedBaseTable> table) {
  FixedBaseRegistry& reg = FixedBaseRegistry::get();
  const sp::MutexLock lock(reg.mutex);
  if (reg.map.find(key) == reg.map.end()) {
    reg.fifo.push_back(key);
    if (reg.fifo.size() > kMaxFixedBaseTables) {
      reg.map.erase(reg.fifo.front());
      reg.fifo.pop_front();
    }
  }
  reg.map[key] = std::move(table);
}

}  // namespace

std::string Curve::table_key(const Point& base) const {
  // p disambiguates equal coordinate bytes across fields; serialize() embeds
  // the field byte length, so (p, 0x04||x||y) is collision-free.
  const Bytes pb = params_.fp->p().to_bytes();
  const Bytes bb = serialize(base);
  std::string id(pb.begin(), pb.end());
  id.append(bb.begin(), bb.end());
  return id;
}

void Curve::precompute_fixed_base(const Point& base) const {
  if (base.is_infinity()) return;
  const std::string id = table_key(base);
  if (find_fixed_base(id)) return;
  auto table = std::make_shared<const FixedBaseTable>(build_fixed_base(base, params_.q, consts_));
  register_fixed_base(id, std::move(table));
}

bool Curve::has_fixed_base(const Point& base) const {
  if (base.is_infinity()) return false;
  return find_fixed_base(table_key(base)) != nullptr;
}

Point Curve::mul(const Point& pt, const BigInt& k) const {
  if (k.is_negative()) return mul(negate(pt), -k);
  if (k.is_zero() || pt.is_infinity()) return Point{};
  const Consts& c = consts_;

  // Fixed-base path: one mixed addition per non-zero nibble, no doublings.
  if (const auto table = find_fixed_base(table_key(pt))) {
    const std::size_t nnibs = (k.bit_length() + 3) / 4;
    if (nnibs <= table->rows) {
      Jac acc{};
      for (std::size_t j = 0; j < nnibs; ++j) {
        unsigned d = 0;
        for (unsigned b = 0; b < 4; ++b) {
          d |= static_cast<unsigned>(k.bit(4 * j + b)) << b;
        }
        if (d != 0) acc = jac_add_affine(acc, table->at(j, d), c);
      }
      return jac_to_affine(acc);
    }
    // Scalar wider than the table (k >= 16^rows ≥ q): fall through to wNAF.
  }

  // Generic path: width-4 wNAF with an odd-multiple table {1,3,5,7}·P.
  const std::vector<int> digits = wnaf4(k);

  // Raw Montgomery ladder when the field supports it (always true for the
  // presets): identical formulas on limb arrays, one REDC per multiply.
  if (const auto& mont = params_.fp->mont()) {
    const Mc& mc = *mont;
    RawJac odd[4];
    mc.to_mont_raw(pt.x().value(), odd[0].x);
    mc.to_mont_raw(pt.y().value(), odd[0].y);
    mc.to_mont_raw(crypto::BigInt{1}, odd[0].z);
    odd[0].inf = false;
    RawJac p2;
    raw_dbl(mc, odd[0], p2);
    raw_add(mc, p2, odd[0], odd[1]);  // 3P
    raw_dbl(mc, p2, odd[2]);
    raw_add(mc, odd[2], odd[0], odd[2]);  // 5P = 4P + P
    raw_dbl(mc, odd[1], odd[3]);
    raw_add(mc, odd[3], odd[0], odd[3]);  // 7P = 6P + P
    RawJac acc, tmp;
    for (std::size_t i = digits.size(); i-- > 0;) {
      raw_dbl(mc, acc, acc);
      const int d = digits[i];
      if (d > 0) {
        raw_add(mc, acc, odd[(d - 1) / 2], acc);
      } else if (d < 0) {
        raw_neg(mc, odd[(-d - 1) / 2], tmp);
        raw_add(mc, acc, tmp, acc);
      }
    }
    if (acc.inf) return Point{};
    const Jac j{Fp(params_.fp, mc.from_mont_raw(acc.x)), Fp(params_.fp, mc.from_mont_raw(acc.y)),
                Fp(params_.fp, mc.from_mont_raw(acc.z)), false};
    return jac_to_affine(j);
  }

  Jac odd[4];
  odd[0] = to_jac(pt, c);
  const Jac p2 = jac_dbl(odd[0], c);
  odd[1] = jac_add_affine(p2, pt, c);                // 3P
  odd[2] = jac_add_affine(jac_dbl(p2, c), pt, c);    // 5P = 4P + P
  odd[3] = jac_add_affine(jac_dbl(odd[1], c), pt, c);  // 7P = 6P + P
  Jac acc{};
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = jac_dbl(acc, c);
    const int d = digits[i];
    if (d > 0) acc = jac_add(acc, odd[(d - 1) / 2], c);
    else if (d < 0) acc = jac_add(acc, jac_neg(odd[(-d - 1) / 2]), c);
  }
  return jac_to_affine(acc);
}

Point Curve::mul_binary(const Point& pt, const BigInt& k) const {
  if (k.is_negative()) return mul_binary(negate(pt), -k);
  Jac acc{};
  const std::size_t nbits = k.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    acc = jac_dbl(acc, consts_);
    if (k.bit(i)) acc = jac_add_affine(acc, pt, consts_);
  }
  return jac_to_affine(acc);
}

Point Curve::hash_to_group(std::span<const std::uint8_t> data) const {
  // Try-and-increment over a hash counter; then clear the cofactor to land
  // in the order-q subgroup. Each iteration succeeds with probability ~1/2.
  const Bytes base(data.begin(), data.end());
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes attempt = base;
    attempt.push_back(static_cast<std::uint8_t>(counter >> 24));
    attempt.push_back(static_cast<std::uint8_t>(counter >> 16));
    attempt.push_back(static_cast<std::uint8_t>(counter >> 8));
    attempt.push_back(static_cast<std::uint8_t>(counter));
    // Widen the digest so the reduction mod p is near-uniform.
    Bytes wide = crypto::Sha256::hash(attempt);
    Bytes wide2 = crypto::Sha256::hash(wide);
    wide.insert(wide.end(), wide2.begin(), wide2.end());
    const Fp x = Fp::from_bytes(params_.fp, wide);
    const Fp y2 = rhs(x);
    if (y2.is_zero()) continue;  // would yield a low-order point
    if (y2.legendre() != 1) continue;
    Fp y = y2.sqrt();
    // Deterministic sign choice from the digest.
    if ((wide2[0] & 1) == 1) y = -y;
    const Point candidate = mul(Point(x, y), params_.h);
    if (candidate.is_infinity()) continue;
    return candidate;
  }
}

Point Curve::random_group_element(crypto::Drbg& rng) const {
  return hash_to_group(rng.bytes(32));
}

Bytes Curve::serialize(const Point& pt) const {
  if (pt.is_infinity()) return Bytes{0x00};
  Bytes out{0x04};
  Bytes xb = pt.x().to_bytes();
  Bytes yb = pt.y().to_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Point Curve::deserialize(std::span<const std::uint8_t> data) const {
  if (data.empty()) throw std::invalid_argument("Curve::deserialize: empty");
  if (data[0] == 0x00) {
    if (data.size() != 1) throw std::invalid_argument("Curve::deserialize: bad infinity");
    return Point{};
  }
  const std::size_t flen = params_.fp->byte_length();
  if (data[0] != 0x04 || data.size() != 1 + 2 * flen) {
    throw std::invalid_argument("Curve::deserialize: bad encoding");
  }
  Point pt(Fp::from_bytes(params_.fp, data.subspan(1, flen)),
           Fp::from_bytes(params_.fp, data.subspan(1 + flen, flen)));
  if (!on_curve(pt)) throw std::invalid_argument("Curve::deserialize: point not on curve");
  return pt;
}

}  // namespace sp::ec
