#include "ec/curve.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::ec {

Curve::Curve(CurveParams params) : params_(std::move(params)) {
  if (!params_.fp) throw std::invalid_argument("Curve: null field");
  if (!params_.fp->p_is_3_mod_4()) {
    throw std::invalid_argument("Curve: y^2 = x^3 + x needs p == 3 (mod 4)");
  }
  if ((params_.h * params_.q) != params_.fp->p() + BigInt{1}) {
    throw std::invalid_argument("Curve: h * q must equal p + 1");
  }
}

Fp Curve::rhs(const Fp& x) const { return x * x * x + x; }

bool Curve::on_curve(const Point& pt) const {
  if (pt.is_infinity()) return true;
  return pt.y() * pt.y() == rhs(pt.x());
}

Point Curve::negate(const Point& pt) const {
  if (pt.is_infinity()) return pt;
  return Point(pt.x(), -pt.y());
}

Point Curve::dbl(const Point& a) const {
  if (a.is_infinity()) return a;
  if (a.y().is_zero()) return Point{};  // order-2 point doubles to infinity
  // λ = (3x² + 1) / 2y   (curve coefficient a = 1, b = 0)
  const Fp three = Fp(params_.fp, BigInt{3});
  const Fp two = Fp(params_.fp, BigInt{2});
  const Fp one = Fp::one(params_.fp);
  const Fp lambda = (three * a.x() * a.x() + one) * (two * a.y()).inv();
  const Fp x3 = lambda * lambda - two * a.x();
  const Fp y3 = lambda * (a.x() - x3) - a.y();
  return Point(x3, y3);
}

Point Curve::add(const Point& a, const Point& b) const {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  if (a.x() == b.x()) {
    if (a.y() == b.y()) return dbl(a);
    return Point{};  // P + (−P) = O
  }
  const Fp lambda = (b.y() - a.y()) * (b.x() - a.x()).inv();
  const Fp x3 = lambda * lambda - a.x() - b.x();
  const Fp y3 = lambda * (a.x() - x3) - a.y();
  return Point(x3, y3);
}

namespace {

// Jacobian coordinates (X, Y, Z) with x = X/Z², y = Y/Z³ make scalar
// multiplication division-free: affine add/dbl each cost a ~100µs modular
// inversion, Jacobian ~10 multiplications. One inversion at the end.
struct Jac {
  Fp x, y, z;
  bool inf = true;
};

Jac to_jac(const Point& p, const FpCtxPtr& f) {
  if (p.is_infinity()) return Jac{Fp::zero(f), Fp::zero(f), Fp::zero(f), true};
  return Jac{p.x(), p.y(), Fp::one(f), false};
}

// Doubling on y² = x³ + a·x with a = 1: M = 3X² + Z⁴.
Jac jac_dbl(const Jac& p, const FpCtxPtr& f) {
  if (p.inf || p.y.is_zero()) return Jac{Fp::zero(f), Fp::zero(f), Fp::zero(f), true};
  const Fp y2 = p.y * p.y;
  const Fp s = Fp(f, crypto::BigInt{4}) * p.x * y2;
  const Fp z2 = p.z * p.z;
  const Fp m = Fp(f, crypto::BigInt{3}) * p.x * p.x + z2 * z2;  // a = 1
  const Fp x3 = m * m - s - s;
  const Fp y3 = m * (s - x3) - Fp(f, crypto::BigInt{8}) * y2 * y2;
  const Fp z3 = (p.y + p.y) * p.z;
  return Jac{x3, y3, z3, false};
}

// Mixed addition: Jacobian p + affine q.
Jac jac_add_affine(const Jac& p, const Point& q, const FpCtxPtr& f) {
  if (q.is_infinity()) return p;
  if (p.inf) return to_jac(q, f);
  const Fp z2 = p.z * p.z;
  const Fp u2 = q.x() * z2;
  const Fp s2 = q.y() * z2 * p.z;
  const Fp h = u2 - p.x;
  const Fp r = s2 - p.y;
  if (h.is_zero()) {
    if (r.is_zero()) return jac_dbl(p, f);
    return Jac{Fp::zero(f), Fp::zero(f), Fp::zero(f), true};  // p + (−p)
  }
  const Fp h2 = h * h;
  const Fp h3 = h2 * h;
  const Fp uh2 = p.x * h2;
  const Fp x3 = r * r - h3 - uh2 - uh2;
  const Fp y3 = r * (uh2 - x3) - p.y * h3;
  const Fp z3 = p.z * h;
  return Jac{x3, y3, z3, false};
}

Point jac_to_affine(const Jac& p, const FpCtxPtr& /*f*/) {
  if (p.inf) return Point{};
  const Fp zi = p.z.inv();
  const Fp zi2 = zi * zi;
  return Point(p.x * zi2, p.y * zi2 * zi);
}

}  // namespace

Point Curve::mul(const Point& pt, const BigInt& k) const {
  if (k.is_negative()) return mul(negate(pt), -k);
  const auto& f = params_.fp;
  Jac acc = to_jac(Point{}, f);  // infinity
  const std::size_t nbits = k.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    acc = jac_dbl(acc, f);
    if (k.bit(i)) acc = jac_add_affine(acc, pt, f);
  }
  return jac_to_affine(acc, f);
}

Point Curve::hash_to_group(std::span<const std::uint8_t> data) const {
  // Try-and-increment over a hash counter; then clear the cofactor to land
  // in the order-q subgroup. Each iteration succeeds with probability ~1/2.
  const Bytes base(data.begin(), data.end());
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes attempt = base;
    attempt.push_back(static_cast<std::uint8_t>(counter >> 24));
    attempt.push_back(static_cast<std::uint8_t>(counter >> 16));
    attempt.push_back(static_cast<std::uint8_t>(counter >> 8));
    attempt.push_back(static_cast<std::uint8_t>(counter));
    // Widen the digest so the reduction mod p is near-uniform.
    Bytes wide = crypto::Sha256::hash(attempt);
    Bytes wide2 = crypto::Sha256::hash(wide);
    wide.insert(wide.end(), wide2.begin(), wide2.end());
    const Fp x = Fp::from_bytes(params_.fp, wide);
    const Fp y2 = rhs(x);
    if (y2.is_zero()) continue;  // would yield a low-order point
    if (y2.legendre() != 1) continue;
    Fp y = y2.sqrt();
    // Deterministic sign choice from the digest.
    if ((wide2[0] & 1) == 1) y = -y;
    const Point candidate = mul(Point(x, y), params_.h);
    if (candidate.is_infinity()) continue;
    return candidate;
  }
}

Point Curve::random_group_element(crypto::Drbg& rng) const {
  return hash_to_group(rng.bytes(32));
}

Bytes Curve::serialize(const Point& pt) const {
  if (pt.is_infinity()) return Bytes{0x00};
  Bytes out{0x04};
  Bytes xb = pt.x().to_bytes();
  Bytes yb = pt.y().to_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Point Curve::deserialize(std::span<const std::uint8_t> data) const {
  if (data.empty()) throw std::invalid_argument("Curve::deserialize: empty");
  if (data[0] == 0x00) {
    if (data.size() != 1) throw std::invalid_argument("Curve::deserialize: bad infinity");
    return Point{};
  }
  const std::size_t flen = params_.fp->byte_length();
  if (data[0] != 0x04 || data.size() != 1 + 2 * flen) {
    throw std::invalid_argument("Curve::deserialize: bad encoding");
  }
  Point pt(Fp::from_bytes(params_.fp, data.subspan(1, flen)),
           Fp::from_bytes(params_.fp, data.subspan(1 + flen, flen)));
  if (!on_curve(pt)) throw std::invalid_argument("Curve::deserialize: point not on curve");
  return pt;
}

}  // namespace sp::ec
