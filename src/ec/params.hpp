// Pairing parameter generation and presets.
//
// Parameters follow PBC's "Type A" recipe (what the cpabe toolkit the paper
// uses ships with): pick a prime group order q, then search cofactors
// h ≡ 0 (mod 4) until p = h·q − 1 is prime (then automatically p ≡ 3 mod 4
// and #E(F_p) = p + 1 = h·q).
//
// Three presets trade security for speed:
//   kToy  —  ~96-bit p:  unit tests exercising algebra exhaustively
//   kTest — ~256-bit p:  integration tests
//   kFull — ~512-bit p, 160-bit q: the paper's deployment scale (matches
//            PBC a.param), used by the benchmark harness.
#pragma once

#include "ec/curve.hpp"

namespace sp::ec {

enum class ParamPreset { kToy, kTest, kFull };

/// Deterministically generates parameters: q has `q_bits`, p has roughly
/// `p_bits`. Everything is derived from `seed`, so runs are reproducible.
CurveParams generate_params(std::size_t q_bits, std::size_t p_bits, std::string_view seed);

/// Returns (and caches) the preset parameters. Thread-safe: each preset is
/// a C++11 magic static, so concurrent first calls block until one thread
/// finishes generating, and every caller sees the same object. Safe to use
/// as the anchor for shared precomputation tables (Curve fixed-base cache).
const CurveParams& preset_params(ParamPreset preset);

}  // namespace sp::ec
