#include "crypto/hmac.hpp"

#include <stdexcept>

#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"

namespace sp::crypto {

Bytes hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  Bytes k0(kBlock, 0);
  if (key.size() > kBlock) {
    Bytes kh = Sha256::hash(key);
    std::copy(kh.begin(), kh.end(), k0.begin());
    secure_wipe(kh);
  } else {
    std::copy(key.begin(), key.end(), k0.begin());
  }
  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  auto inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  auto d = outer.finish();
  // k0/ipad/opad are key-derived; they must not survive in the allocations.
  secure_wipe(k0);
  secure_wipe(ipad);
  secure_wipe(opad);
  return Bytes(d.begin(), d.end());
}

Bytes hkdf_extract(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm) {
  if (salt.empty()) {
    Bytes zero_salt(Sha256::kDigestSize, 0);
    return hmac_sha256(zero_salt, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(std::span<const std::uint8_t> prk, std::span<const std::uint8_t> info,
                  std::size_t len) {
  if (len > 255 * Sha256::kDigestSize) throw std::invalid_argument("hkdf_expand: len too large");
  Bytes okm;
  okm.reserve(len);
  Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < len) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(t.size(), len - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

Bytes hkdf(std::span<const std::uint8_t> ikm, std::span<const std::uint8_t> salt,
           std::span<const std::uint8_t> info, std::size_t len) {
  Bytes prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, len);
}

}  // namespace sp::crypto
