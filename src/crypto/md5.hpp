// MD5 (RFC 1321). Present ONLY for wire compatibility with GibberishAES /
// OpenSSL's legacy EVP_BytesToKey derivation, which the paper's
// Implementation 1 relies on in the browser. Never use MD5 for new designs.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5() { reset(); }
  void reset();
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finish();

  static Bytes hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace sp::crypto
