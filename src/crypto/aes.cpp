#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::crypto {

namespace {

// S-box and inverse S-box generated from the AES affine map over GF(2^8).
struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  Tables() {
    // Build via multiplicative inverse in GF(2^8) + affine transform.
    std::array<std::uint8_t, 256> inv{};
    inv[0] = 0;
    for (int i = 1; i < 256; ++i) {
      for (int j = 1; j < 256; ++j) {
        if (gf_mul(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)) == 1) {
          inv[i] = static_cast<std::uint8_t>(j);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      std::uint8_t x = inv[i];
      std::uint8_t y = x;
      for (int r = 0; r < 4; ++r) {
        y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
        x ^= y;
      }
      x ^= 0x63;
      sbox[i] = x;
      inv_sbox[x] = static_cast<std::uint8_t>(i);
    }
  }

  static std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      const bool hi = a & 0x80;
      a = static_cast<std::uint8_t>(a << 1);
      if (hi) a ^= 0x1b;  // x^8 + x^4 + x^3 + x + 1
      b >>= 1;
    }
    return p;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) { return Tables::gf_mul(a, b); }

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key) {
  switch (key.size()) {
    case 16: rounds_ = 10; break;
    case 24: rounds_ = 12; break;
    case 32: rounds_ = 14; break;
    default: throw std::invalid_argument("Aes: key must be 16/24/32 bytes");
  }
  expand_key(key);
}

Aes::~Aes() {
  secure_wipe(round_keys_.data(), round_keys_.size() * sizeof(std::uint32_t));
}

void Aes::expand_key(std::span<const std::uint8_t> key) {
  const auto& t = tables();
  const std::size_t nk = key.size() / 4;
  const std::size_t total_words = 4u * (static_cast<std::size_t>(rounds_) + 1);
  round_keys_.assign(total_words, 0);
  for (std::size_t i = 0; i < nk; ++i) {
    round_keys_[i] = (std::uint32_t{key[4 * i]} << 24) | (std::uint32_t{key[4 * i + 1]} << 16) |
                     (std::uint32_t{key[4 * i + 2]} << 8) | std::uint32_t{key[4 * i + 3]};
  }
  std::uint8_t rcon = 0x01;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = (temp << 8) | (temp >> 24);  // RotWord
      temp = (std::uint32_t{t.sbox[(temp >> 24) & 0xff]} << 24) |
             (std::uint32_t{t.sbox[(temp >> 16) & 0xff]} << 16) |
             (std::uint32_t{t.sbox[(temp >> 8) & 0xff]} << 8) |
             std::uint32_t{t.sbox[temp & 0xff]};
      temp ^= std::uint32_t{rcon} << 24;
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = (std::uint32_t{t.sbox[(temp >> 24) & 0xff]} << 24) |
             (std::uint32_t{t.sbox[(temp >> 16) & 0xff]} << 16) |
             (std::uint32_t{t.sbox[(temp >> 8) & 0xff]} << 8) |
             std::uint32_t{t.sbox[temp & 0xff]};
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw std::invalid_argument("Aes::encrypt_block: need 16-byte buffers");
  }
  const auto& t = tables();
  std::uint8_t s[16];
  std::memcpy(s, in.data(), 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = round_keys_[static_cast<std::size_t>(4 * round + c)];
      s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = t.sbox[b];
  };
  auto shift_rows = [&] {
    std::uint8_t tmp[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
    }
    std::memcpy(s, tmp, 16);
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
      col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
      col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
      col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(rounds_);
  std::memcpy(out.data(), s, 16);
  secure_wipe(s, sizeof(s));
}

void Aes::decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw std::invalid_argument("Aes::decrypt_block: need 16-byte buffers");
  }
  const auto& t = tables();
  std::uint8_t s[16];
  std::memcpy(s, in.data(), 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = round_keys_[static_cast<std::size_t>(4 * round + c)];
      s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };
  auto inv_sub_bytes = [&] {
    for (auto& b : s) b = t.inv_sbox[b];
  };
  auto inv_shift_rows = [&] {
    std::uint8_t tmp[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
    }
    std::memcpy(s, tmp, 16);
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^
                                         gf_mul(a3, 9));
      col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^
                                         gf_mul(a3, 13));
      col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^
                                         gf_mul(a3, 11));
      col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^
                                         gf_mul(a3, 14));
    }
  };

  add_round_key(rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
  std::memcpy(out.data(), s, 16);
  secure_wipe(s, sizeof(s));
}

}  // namespace sp::crypto
