// AES-GCM (NIST SP 800-38D): authenticated encryption with associated data.
//
// The library's default object envelope is CBC + HMAC (seal/open, matching
// the paper's CBC-era tooling plus integrity); GCM is provided as the
// modern alternative so downstream users aren't forced into the legacy
// construction. Validated against the NIST GCM reference vectors.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

/// Encrypts and authenticates. IV must be 12 bytes (the SP 800-38D fast
/// path). Returns ciphertext || 16-byte tag. `aad` is authenticated but not
/// encrypted.
Bytes aes_gcm_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> aad, std::span<const std::uint8_t> plaintext);

/// Verifies and decrypts a buffer produced by aes_gcm_encrypt. Throws
/// std::runtime_error on authentication failure, std::invalid_argument on
/// malformed inputs.
Bytes aes_gcm_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> aad, std::span<const std::uint8_t> sealed);

}  // namespace sp::crypto
