// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// Used for (a) keyed answer hashes H(a_i, K_Z) — the paper concatenates the
// answer with a puzzle-specific key before hashing; HMAC is the
// cryptographically sound realization of that construct — and (b) deriving
// AES keys/IVs from the object secret M_O.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

/// HMAC-SHA256 over `data` with `key`. 32-byte output.
Bytes hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

/// HKDF-Extract(salt, ikm) -> 32-byte PRK.
Bytes hkdf_extract(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm);

/// HKDF-Expand(prk, info, len); len <= 255*32.
Bytes hkdf_expand(std::span<const std::uint8_t> prk, std::span<const std::uint8_t> info,
                  std::size_t len);

/// Extract-then-expand convenience.
Bytes hkdf(std::span<const std::uint8_t> ikm, std::span<const std::uint8_t> salt,
           std::span<const std::uint8_t> info, std::size_t len);

}  // namespace sp::crypto
