#include "crypto/drbg.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sp::crypto {

namespace {
constexpr std::uint8_t kNonce[12] = {'s', 'p', '-', 'd', 'r', 'b', 'g', '-', 'v', '1', 0, 0};
}

Drbg::Drbg(std::string_view seed) : Drbg(std::span<const std::uint8_t>(to_bytes(seed))) {}

Drbg::Drbg(std::span<const std::uint8_t> seed) {
  key_ = SecretBytes(Sha256::hash(seed));
  stream_ = std::make_unique<ChaCha20>(key_.span(), std::span<const std::uint8_t>(kNonce, 12));
}

Bytes Drbg::bytes(std::size_t n) {
  Bytes out(n);
  stream_->keystream(out);
  return out;
}

std::uint64_t Drbg::next_u64() {
  Bytes b = bytes(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Drbg::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

double Drbg::uniform_real() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

Drbg Drbg::fork(std::string_view label) {
  Bytes child_seed = hmac_sha256(key_.span(), to_bytes(label));
  // Mix in stream position entropy so repeated forks with the same label
  // (e.g. per-trial forks in the bench harness) produce distinct children.
  Bytes pos = bytes(32);
  child_seed = hmac_sha256(child_seed, pos);
  Drbg child{std::span<const std::uint8_t>(child_seed)};
  secure_wipe(child_seed);
  return child;
}

}  // namespace sp::crypto
