#include "crypto/bytes.hpp"

#include <stdexcept>

namespace sp::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((hex_val(hex[2 * i]) << 4) | hex_val(hex[2 * i + 1]));
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(data.begin(), data.end());
}

Bytes xor_cycle(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (b.empty()) return Bytes(a.begin(), a.end());
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] ^ b[i % b.size()]);
  }
  return out;
}

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

bool ct_equal(std::string_view a, std::string_view b) {
  return ct_equal(
      std::span<const std::uint8_t>{reinterpret_cast<const std::uint8_t*>(a.data()), a.size()},
      std::span<const std::uint8_t>{reinterpret_cast<const std::uint8_t*>(b.data()), b.size()});
}

Bytes concat(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace sp::crypto
