#include "crypto/secret.hpp"

namespace sp::crypto {

void secure_wipe(void* p, std::size_t n) noexcept {
  if (p == nullptr || n == 0) return;
  auto* bytes = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = 0;
  // Keep the stores above from being classified as dead even under LTO: the
  // barrier tells the compiler "memory escaped here".
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#endif
}

void secure_wipe(Bytes& b) noexcept {
  secure_wipe(b.data(), b.size());
  b.clear();
}

void secure_wipe(std::string& s) noexcept {
  secure_wipe(s.data(), s.size());
  s.clear();
}

}  // namespace sp::crypto
