#include "crypto/modes.hpp"

#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"

namespace sp::crypto {

namespace {
constexpr std::size_t kBlock = Aes::kBlockSize;
constexpr std::size_t kTag = 32;

void check_iv(std::span<const std::uint8_t> iv) {
  if (iv.size() != kBlock) throw std::invalid_argument("modes: IV must be 16 bytes");
}
}  // namespace

Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> plaintext) {
  check_iv(iv);
  const Aes aes(key);
  const std::size_t pad = kBlock - (plaintext.size() % kBlock);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t chain[kBlock];
  std::copy(iv.begin(), iv.end(), chain);
  std::uint8_t block[kBlock];
  for (std::size_t off = 0; off < padded.size(); off += kBlock) {
    for (std::size_t i = 0; i < kBlock; ++i) block[i] = padded[off + i] ^ chain[i];
    aes.encrypt_block({block, kBlock}, {out.data() + off, kBlock});
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(off),
              out.begin() + static_cast<std::ptrdiff_t>(off + kBlock), chain);
  }
  secure_wipe(block, sizeof(block));  // last plaintext^chain block
  secure_wipe(padded);               // plaintext copy
  return out;
}

Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> ciphertext) {
  check_iv(iv);
  if (ciphertext.empty() || ciphertext.size() % kBlock != 0) {
    throw std::runtime_error("aes_cbc_decrypt: ciphertext not a block multiple");
  }
  const Aes aes(key);
  Bytes out(ciphertext.size());
  std::uint8_t chain[kBlock];
  std::copy(iv.begin(), iv.end(), chain);
  std::uint8_t block[kBlock];
  for (std::size_t off = 0; off < ciphertext.size(); off += kBlock) {
    aes.decrypt_block(ciphertext.subspan(off, kBlock), {block, kBlock});
    for (std::size_t i = 0; i < kBlock; ++i) out[off + i] = block[i] ^ chain[i];
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off + kBlock), chain);
  }
  secure_wipe(block, sizeof(block));
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kBlock || pad > out.size()) {
    throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Bytes aes_ctr_crypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> data) {
  check_iv(nonce);
  const Aes aes(key);
  Bytes out(data.size());
  std::uint8_t counter[kBlock];
  std::copy(nonce.begin(), nonce.end(), counter);
  std::uint8_t keystream[kBlock];
  for (std::size_t off = 0; off < data.size(); off += kBlock) {
    aes.encrypt_block({counter, kBlock}, {keystream, kBlock});
    const std::size_t n = std::min(kBlock, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ keystream[i];
    // Increment big-endian counter in the trailing 8 bytes.
    for (std::size_t i = kBlock; i-- > kBlock - 8;) {
      if (++counter[i] != 0) break;
    }
  }
  secure_wipe(keystream, sizeof(keystream));
  return out;
}

Bytes seal(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
           std::span<const std::uint8_t> plaintext) {
  check_iv(iv);
  const SecretBytes enc_key{hkdf(key, {}, to_bytes("sp-seal-enc"), 32)};
  const SecretBytes mac_key{hkdf(key, {}, to_bytes("sp-seal-mac"), 32)};
  Bytes ct = aes_cbc_encrypt(enc_key.span(), iv, plaintext);
  Bytes envelope(iv.begin(), iv.end());
  envelope.insert(envelope.end(), ct.begin(), ct.end());
  Bytes tag = hmac_sha256(mac_key.span(), envelope);
  envelope.insert(envelope.end(), tag.begin(), tag.end());
  secure_wipe(tag);  // public once appended, but keep the rule uniform
  return envelope;
}

Bytes open(std::span<const std::uint8_t> key, std::span<const std::uint8_t> envelope) {
  if (envelope.size() < kBlock + kTag) throw std::runtime_error("open: envelope too short");
  const SecretBytes enc_key{hkdf(key, {}, to_bytes("sp-seal-enc"), 32)};
  const SecretBytes mac_key{hkdf(key, {}, to_bytes("sp-seal-mac"), 32)};
  const auto body = envelope.first(envelope.size() - kTag);
  const auto tag = envelope.subspan(envelope.size() - kTag);
  const Bytes expect = hmac_sha256(mac_key.span(), body);
  if (!ct_equal(expect, tag)) throw std::runtime_error("open: authentication failed");
  return aes_cbc_decrypt(enc_key.span(), body.first(kBlock), body.subspan(kBlock));
}

}  // namespace sp::crypto
