#include "crypto/gcm.hpp"

#include <array>
#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/secret.hpp"

namespace sp::crypto {

namespace {

using Block = std::array<std::uint8_t, 16>;

Block xor_blocks(const Block& a, const Block& b) {
  Block out;
  for (int i = 0; i < 16; ++i) out[i] = a[i] ^ b[i];
  return out;
}

// GF(2^128) multiplication per SP 800-38D §6.3 (bitwise; correctness over
// speed — GCM is not on the benchmarked path).
Block gf_mul(const Block& x, const Block& y) {
  Block z{};
  Block v = y;
  for (int i = 0; i < 128; ++i) {
    const bool xi = (x[i / 8] >> (7 - i % 8)) & 1;
    if (xi) z = xor_blocks(z, v);
    const bool lsb = v[15] & 1;
    // v >>= 1 (big-endian bit order)
    for (int j = 15; j > 0; --j) v[j] = static_cast<std::uint8_t>((v[j] >> 1) | (v[j - 1] << 7));
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;  // reduction by x^128 + x^7 + x^2 + x + 1
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const Block& h) : h_(h) {}

  // h_ is key-equivalent (E_K(0)); y_ feeds the tag. Neither may outlive the
  // computation in readable memory.
  ~Ghash() {
    secure_wipe(h_.data(), h_.size());
    secure_wipe(y_.data(), y_.size());
  }

  void update(std::span<const std::uint8_t> data) {
    // Processes data zero-padded to a block boundary (callers pass whole
    // logical fields, matching GHASH(A || pad || C || pad || lens)).
    for (std::size_t off = 0; off < data.size(); off += 16) {
      Block blk{};
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
                data.begin() + static_cast<std::ptrdiff_t>(off + n), blk.begin());
      y_ = gf_mul(xor_blocks(y_, blk), h_);
    }
  }

  void update_lengths(std::uint64_t aad_bits, std::uint64_t ct_bits) {
    Block blk{};
    for (int i = 0; i < 8; ++i) blk[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i) blk[8 + i] = static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
    y_ = gf_mul(xor_blocks(y_, blk), h_);
  }

  [[nodiscard]] const Block& digest() const { return y_; }

 private:
  Block h_;
  Block y_{};
};

void inc32(Block& counter) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

struct GcmCore {
  Aes aes;
  Block h{};
  Block j0{};

  GcmCore(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv) : aes(key) {
    if (iv.size() != 12) throw std::invalid_argument("aes_gcm: IV must be 12 bytes");
    const Block zero{};
    aes.encrypt_block(zero, h);
    std::copy(iv.begin(), iv.end(), j0.begin());
    j0[15] = 1;
  }

  ~GcmCore() {
    secure_wipe(h.data(), h.size());
    secure_wipe(j0.data(), j0.size());
  }

  Bytes ctr_crypt(std::span<const std::uint8_t> data) const {
    Bytes out(data.size());
    Block counter = j0;
    Block keystream;
    for (std::size_t off = 0; off < data.size(); off += 16) {
      inc32(counter);
      aes.encrypt_block(counter, keystream);
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ keystream[i];
    }
    secure_wipe(keystream.data(), keystream.size());
    return out;
  }

  Block tag(std::span<const std::uint8_t> aad, std::span<const std::uint8_t> ct) const {
    Ghash ghash(h);
    ghash.update(aad);
    ghash.update(ct);
    ghash.update_lengths(static_cast<std::uint64_t>(aad.size()) * 8,
                         static_cast<std::uint64_t>(ct.size()) * 8);
    Block ek_j0;
    aes.encrypt_block(j0, ek_j0);
    Block t = xor_blocks(ghash.digest(), ek_j0);
    secure_wipe(ek_j0.data(), ek_j0.size());
    return t;
  }
};

}  // namespace

Bytes aes_gcm_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> aad, std::span<const std::uint8_t> plaintext) {
  const GcmCore core(key, iv);
  Bytes out = core.ctr_crypt(plaintext);
  const Block tag = core.tag(aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Bytes aes_gcm_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> aad, std::span<const std::uint8_t> sealed) {
  if (sealed.size() < 16) throw std::invalid_argument("aes_gcm_decrypt: too short");
  const GcmCore core(key, iv);
  const auto ct = sealed.first(sealed.size() - 16);
  const auto tag = sealed.subspan(sealed.size() - 16);
  const Block expect = core.tag(aad, ct);
  if (!ct_equal(expect, tag)) throw std::runtime_error("aes_gcm_decrypt: authentication failed");
  return core.ctr_crypt(ct);
}

}  // namespace sp::crypto
