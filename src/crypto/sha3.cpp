#include "crypto/sha3.hpp"

#include <bit>
#include <cstring>

namespace sp::crypto {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull, 0x8000000080008000ull,
    0x000000000000808bull, 0x0000000080000001ull, 0x8000000080008081ull, 0x8000000000008009ull,
    0x000000000000008aull, 0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull, 0x8000000000008003ull,
    0x8000000000008002ull, 0x8000000000000080ull, 0x000000000000800aull, 0x800000008000000aull,
    0x8000000080008081ull, 0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull};

constexpr int kRotations[5][5] = {{0, 36, 3, 41, 18},
                                  {1, 44, 10, 45, 2},
                                  {62, 6, 43, 15, 61},
                                  {28, 55, 25, 21, 56},
                                  {27, 20, 39, 8, 14}};

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = std::rotl(a[x + 5 * y], kRotations[x][y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Sha3_256::reset() {
  state_.fill(0);
  buffer_len_ = 0;
}

void Sha3_256::absorb_block() {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, buffer_.data() + 8 * i, 8);  // little-endian host assumed (x86/ARM)
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

void Sha3_256::update(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t take = std::min(kRate - buffer_len_, data.size() - off);
    std::memcpy(buffer_.data() + buffer_len_, data.data() + off, take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == kRate) absorb_block();
  }
}

std::array<std::uint8_t, Sha3_256::kDigestSize> Sha3_256::finish() {
  // Pad10*1 with SHA-3 domain separator 0x06.
  std::memset(buffer_.data() + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] = 0x06;
  buffer_[kRate - 1] |= 0x80;
  buffer_len_ = kRate;
  absorb_block();
  std::array<std::uint8_t, kDigestSize> out{};
  std::memcpy(out.data(), state_.data(), kDigestSize);
  return out;
}

Bytes Sha3_256::hash(std::span<const std::uint8_t> data) {
  Sha3_256 h;
  h.update(data);
  auto d = h.finish();
  return Bytes(d.begin(), d.end());
}

}  // namespace sp::crypto
