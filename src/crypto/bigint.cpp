#include "crypto/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt::BigInt(std::int64_t v) {
  if (v < 0) {
    negative_ = true;
    // Avoid overflow on INT64_MIN.
    limbs_.push_back(static_cast<u64>(-(v + 1)) + 1);
  } else if (v > 0) {
    limbs_.push_back(static_cast<u64>(v));
  }
}

BigInt BigInt::from_u64(u64 v) {
  BigInt r;
  if (v != 0) r.limbs_.push_back(v);
  return r;
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  int c = BigInt::cmp_mag(a, b);
  if (a.negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::add_mag(const BigInt& a, const BigInt& b) {
  BigInt r;
  const auto& x = a.limbs_.size() >= b.limbs_.size() ? a.limbs_ : b.limbs_;
  const auto& y = a.limbs_.size() >= b.limbs_.size() ? b.limbs_ : a.limbs_;
  r.limbs_.resize(x.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    u128 s = static_cast<u128>(x[i]) + (i < y.size() ? y[i] : 0) + carry;
    r.limbs_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  r.limbs_[x.size()] = carry;
  r.trim();
  return r;
}

BigInt BigInt::sub_mag(const BigInt& a, const BigInt& b) {
  BigInt r;
  r.limbs_.resize(a.limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const u64 bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const u128 need = static_cast<u128>(bi) + borrow;
    const u128 have = static_cast<u128>(a.limbs_[i]);
    r.limbs_[i] = static_cast<u64>(have - need);  // wraps mod 2^64 when borrowing
    borrow = have < need ? 1 : 0;
  }
  r.trim();
  return r;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    BigInt r = BigInt::add_mag(a, b);
    r.negative_ = a.negative_ && !r.is_zero();
    return r;
  }
  int c = BigInt::cmp_mag(a, b);
  if (c == 0) return BigInt{};
  const BigInt& big = c > 0 ? a : b;
  const BigInt& small = c > 0 ? b : a;
  BigInt r = BigInt::sub_mag(big, small);
  r.negative_ = big.negative_ && !r.is_zero();
  return r;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    u64 ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.limbs_[j] + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r.limbs_[i + b.limbs_.size()] += carry;
  }
  r.negative_ = a.negative_ != b.negative_;
  r.trim();
  return r;
}

BigInt operator<<(const BigInt& a, std::size_t n) {
  if (a.is_zero() || n == 0) return a;
  const std::size_t limb_shift = n / 64;
  const std::size_t bit_shift = n % 64;
  BigInt r;
  r.negative_ = a.negative_;
  r.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= bit_shift ? (a.limbs_[i] << bit_shift) : a.limbs_[i];
    if (bit_shift) r.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
  }
  r.trim();
  return r;
}

BigInt operator>>(const BigInt& a, std::size_t n) {
  if (a.is_zero() || n == 0) return a;
  const std::size_t limb_shift = n / 64;
  const std::size_t bit_shift = n % 64;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  BigInt r;
  r.negative_ = a.negative_;
  r.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = bit_shift ? (a.limbs_[i + limb_shift] >> bit_shift) : a.limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size()) {
      r.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  r.trim();
  return r;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 64 + (64 - std::countl_zero(limbs_.back()));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1u;
}

// Knuth TAOCP vol. 2 Algorithm D on 64-bit limbs (products via __int128).
void BigInt::div_mod(const BigInt& a, const BigInt& b, BigInt& quot, BigInt& rem) {
  if (b.is_zero()) throw std::domain_error("BigInt: division by zero");
  int c = cmp_mag(a, b);
  if (c < 0) {
    quot = BigInt{};
    rem = a;
    return;
  }
  const bool quot_neg = a.negative_ != b.negative_;
  const bool rem_neg = a.negative_;

  if (b.limbs_.size() == 1) {
    // Short division.
    const u64 d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 r = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (r << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      r = cur % d;
    }
    q.trim();
    q.negative_ = quot_neg && !q.is_zero();
    BigInt rr = from_u64(static_cast<u64>(r));
    rr.negative_ = rem_neg && !rr.is_zero();
    quot = std::move(q);
    rem = std::move(rr);
    return;
  }

  // Normalize so the divisor's top bit is set.
  const int shift = std::countl_zero(b.limbs_.back());
  BigInt u = a;
  u.negative_ = false;
  u = u << static_cast<std::size_t>(shift);
  BigInt v = b;
  v.negative_ = false;
  v = v << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // u_{m+n} slot

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const u64 vtop = v.limbs_[n - 1];
  const u64 vsecond = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    u128 numer = (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 qhat = numer / vtop;
    u128 rhat = numer % vtop;
    if (qhat > ~u64{0}) {
      qhat = ~u64{0};
      rhat = numer - qhat * vtop;
    }
    while (rhat <= ~u64{0} &&
           qhat * vsecond > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 p = qhat * v.limbs_[i] + carry;
      carry = p >> 64;
      u64 plo = static_cast<u64>(p);
      u64 ui = u.limbs_[j + i];
      u64 diff = ui - plo - static_cast<u64>(borrow);
      borrow = (static_cast<u128>(ui) < static_cast<u128>(plo) + borrow) ? 1 : 0;
      u.limbs_[j + i] = diff;
    }
    u64 utop = u.limbs_[j + n];
    u64 diff = utop - static_cast<u64>(carry) - static_cast<u64>(borrow);
    bool went_negative = static_cast<u128>(utop) < carry + borrow;
    u.limbs_[j + n] = diff;

    if (went_negative) {
      // Add back (Knuth step D6): qhat was one too large.
      --qhat;
      u128 c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + c2;
        u.limbs_[j + i] = static_cast<u64>(s);
        c2 = s >> 64;
      }
      u.limbs_[j + n] += static_cast<u64>(c2);
    }
    q.limbs_[j] = static_cast<u64>(qhat);
  }

  q.trim();
  q.negative_ = quot_neg && !q.is_zero();
  u.limbs_.resize(n);
  u.trim();
  BigInt r = u >> static_cast<std::size_t>(shift);
  r.negative_ = rem_neg && !r.is_zero();
  quot = std::move(q);
  rem = std::move(r);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return r;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m <= BigInt{0}) throw std::domain_error("BigInt::mod: modulus must be positive");
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod(m);
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (exp.is_negative()) throw std::domain_error("BigInt::mod_pow: negative exponent");
  if (m == BigInt{1}) return BigInt{};
  // Odd moduli up to 1024 bits take the Montgomery fast path; the
  // square-and-multiply loop below stays as the fallback (and oracle).
  if (MontCtx::usable(m)) return MontCtx(m).pow(base.mod(m), exp);
  BigInt result{1};
  BigInt b = base.mod(m);
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

BigInt BigInt::mod_inv(const BigInt& a, const BigInt& m) {
  // Extended Euclid on (a mod m, m).
  BigInt r0 = m, r1 = a.mod(m);
  BigInt t0{0}, t1{1};
  while (!r1.is_zero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigInt{1}) throw std::domain_error("BigInt::mod_inv: not invertible");
  return t0.mod(m);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::from_dec(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_dec: empty");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) throw std::invalid_argument("BigInt::from_dec: no digits");
  BigInt r;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') throw std::invalid_argument("BigInt::from_dec: bad digit");
    r = r * BigInt{10} + BigInt{s[i] - '0'};
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_hex(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_hex: empty");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) throw std::invalid_argument("BigInt::from_hex: no digits");
  BigInt r;
  for (; i < s.size(); ++i) {
    char c = s[i];
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw std::invalid_argument("BigInt::from_hex: bad digit");
    r = (r << 4) + BigInt{v};
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> be) {
  BigInt r;
  for (std::uint8_t b : be) r = (r << 8) + BigInt{b};
  return r;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  BigInt n = *this;
  n.negative_ = false;
  std::string out;
  const BigInt ten{10};
  while (!n.is_zero()) {
    BigInt q, r;
    div_mod(n, ten, q, r);
    out.push_back(static_cast<char>('0' + r.low_u64()));
    n = std::move(q);
  }
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  constexpr char digits[] = "0123456789abcdef";
  for (std::size_t i = 0; i < bit_length(); i += 4) {
    unsigned nib = 0;
    for (unsigned b = 0; b < 4; ++b) nib |= static_cast<unsigned>(bit(i + b)) << b;
    out.push_back(digits[nib]);
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

Bytes BigInt::to_bytes(std::size_t width) const {
  const std::size_t need = std::max<std::size_t>(1, (bit_length() + 7) / 8);
  if (width == 0) width = need;
  if (need > width) throw std::invalid_argument("BigInt::to_bytes: value too wide");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t limb = i / 8;
    if (limb < limbs_.size()) {
      out[width - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 8)));
    }
  }
  return out;
}

BigInt BigInt::random_below(const BigInt& bound,
                            const std::function<Bytes(std::size_t)>& rand_bytes) {
  if (bound <= BigInt{0}) throw std::domain_error("BigInt::random_below: bound must be > 0");
  const std::size_t nbits = bound.bit_length();
  const std::size_t nbytes = (nbits + 7) / 8;
  // Rejection sampling on the top byte mask keeps the distribution uniform.
  const unsigned top_bits = static_cast<unsigned>(nbits % 8 == 0 ? 8 : nbits % 8);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << top_bits) - 1u);
  for (;;) {
    Bytes buf = rand_bytes(nbytes);
    buf[0] &= mask;
    BigInt candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

bool BigInt::is_probable_prime(const BigInt& n, int rounds,
                               const std::function<Bytes(std::size_t)>& rand_bytes) {
  static const int kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31,
                                     37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                                     83, 89, 97, 101, 103, 107, 109, 113};
  if (n < BigInt{2}) return false;
  for (int p : kSmallPrimes) {
    if (n == BigInt{p}) return true;
    if ((n % BigInt{p}).is_zero()) return false;
  }
  // Write n - 1 = d * 2^s with d odd.
  BigInt d = n - BigInt{1};
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const BigInt n_minus_1 = n - BigInt{1};
  for (int round = 0; round < rounds; ++round) {
    BigInt a = random_below(n - BigInt{3}, rand_bytes) + BigInt{2};  // [2, n-2]
    BigInt x = mod_pow(a, d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

void BigInt::wipe() noexcept {
  secure_wipe(limbs_.data(), limbs_.size() * sizeof(std::uint64_t));
  limbs_.clear();
  negative_ = false;
}

// ---------------------------------------------------------------------------
// MontCtx
// ---------------------------------------------------------------------------

bool MontCtx::usable(const BigInt& m) {
  // is_odd() implies non-zero; reject 1 so `x mod m` is always meaningful.
  return !m.negative_ && m.is_odd() && m.limbs_.size() <= kMaxLimbs &&
         (m.limbs_.size() > 1 || m.limbs_[0] >= 3);
}

MontCtx::MontCtx(const BigInt& modulus) {
  if (!usable(modulus)) {
    throw std::invalid_argument("MontCtx: modulus must be odd, >= 3 and <= 1024 bits");
  }
  m_ = modulus;
  n_ = m_.limbs_.size();
  mlimbs_ = m_.limbs_;
  // -m^{-1} mod 2^64 by Newton iteration: for odd m0, x = m0 is already an
  // inverse mod 8, and each step doubles the number of correct low bits.
  const u64 m0 = mlimbs_[0];
  u64 x = m0;
  for (int i = 0; i < 5; ++i) x *= 2 - m0 * x;
  m0inv_ = ~x + 1;
  one_ = (BigInt{1} << (64 * n_)).mod(m_);
  r2_ = (BigInt{1} << (128 * n_)).mod(m_);
  r2limbs_.assign(n_, 0);
  load(r2_, r2limbs_.data());
}

void MontCtx::load(const BigInt& x, u64* out) const {
  // Precondition: x in [0, m) — at most n_ limbs.
  std::copy(x.limbs_.begin(), x.limbs_.end(), out);
  std::fill(out + x.limbs_.size(), out + n_, 0);
}

BigInt MontCtx::store(const u64* limbs) const {
  BigInt r;
  r.limbs_.assign(limbs, limbs + n_);
  r.trim();
  return r;
}

// Coarsely Integrated Operand Scanning (Koç/Acar/Kaliski): interleaves the
// schoolbook product with per-limb REDC so the accumulator never exceeds
// n_ + 2 limbs. out = a * b * R^{-1} mod m; out may alias a or b.
void MontCtx::cios(const u64* a, const u64* b, u64* out) const {
  const std::size_t n = n_;
  const u64* m = mlimbs_.data();
  u64 t[kMaxLimbs + 2] = {0};
  for (std::size_t i = 0; i < n; ++i) {
    const u64 ai = a[i];
    u64 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<u64>(s);
    t[n + 1] = static_cast<u64>(s >> 64);

    const u64 mu = t[0] * m0inv_;
    u128 cur = static_cast<u128>(mu) * m[0] + t[0];  // low limb cancels to 0
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<u128>(mu) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[n]) + carry;
    t[n - 1] = static_cast<u64>(s);
    t[n] = t[n + 1] + static_cast<u64>(s >> 64);
  }
  // t is in [0, 2m); one conditional subtraction canonicalizes.
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 need = static_cast<u128>(m[i]) + borrow;
      out[i] = static_cast<u64>(static_cast<u128>(t[i]) - need);
      borrow = static_cast<u128>(t[i]) < need ? 1 : 0;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

BigInt MontCtx::to_mont(const BigInt& x) const {
  const BigInt r = (x.negative_ || cmp_arg_ge(x)) ? x.mod(m_) : x;
  u64 xa[kMaxLimbs];
  u64 res[kMaxLimbs];
  load(r, xa);
  cios(xa, r2limbs_.data(), res);
  return store(res);
}

BigInt MontCtx::from_mont(const BigInt& x) const {
  const BigInt r = (x.negative_ || cmp_arg_ge(x)) ? x.mod(m_) : x;
  u64 xa[kMaxLimbs];
  u64 oneraw[kMaxLimbs] = {1};
  u64 res[kMaxLimbs];
  load(r, xa);
  cios(xa, oneraw, res);
  return store(res);
}

BigInt MontCtx::mont_mul(const BigInt& a, const BigInt& b) const {
  const BigInt ra = (a.negative_ || cmp_arg_ge(a)) ? a.mod(m_) : a;
  const BigInt rb = (b.negative_ || cmp_arg_ge(b)) ? b.mod(m_) : b;
  u64 aa[kMaxLimbs];
  u64 ba[kMaxLimbs];
  u64 res[kMaxLimbs];
  load(ra, aa);
  load(rb, ba);
  cios(aa, ba, res);
  return store(res);
}

BigInt MontCtx::mul(const BigInt& a, const BigInt& b) const {
  const BigInt ra = (a.negative_ || cmp_arg_ge(a)) ? a.mod(m_) : a;
  const BigInt rb = (b.negative_ || cmp_arg_ge(b)) ? b.mod(m_) : b;
  u64 aa[kMaxLimbs];
  u64 ba[kMaxLimbs];
  u64 res[kMaxLimbs];
  load(ra, aa);
  load(rb, ba);
  cios(aa, ba, res);                     // a * b * R^{-1}
  cios(res, r2limbs_.data(), res);       // * R^2 * R^{-1} = a * b mod m
  return store(res);
}

// Fixed-window (w = 4) left-to-right exponentiation over raw limb arrays.
// 16-entry table, 4 squarings + at most one table multiply per nibble; 64 is
// a multiple of 4, so nibbles never straddle limb boundaries.
void MontCtx::pow_raw(const u64* base_mont, const BigInt& exp, u64* out) const {
  u64 table[16][kMaxLimbs];
  load(one_, table[0]);
  std::copy(base_mont, base_mont + n_, table[1]);
  for (int d = 2; d < 16; ++d) cios(table[d - 1], base_mont, table[d]);

  const std::size_t nbits = exp.bit_length();
  if (nbits == 0) {
    std::copy(table[0], table[0] + n_, out);
    return;
  }
  const auto nibble = [&exp](std::size_t k) -> unsigned {
    const std::size_t limb = k / 16;
    if (limb >= exp.limbs_.size()) return 0;
    return static_cast<unsigned>((exp.limbs_[limb] >> (4 * (k % 16))) & 0xF);
  };
  const std::size_t nnibs = (nbits + 3) / 4;
  u64 acc[kMaxLimbs];
  std::copy(table[nibble(nnibs - 1)], table[nibble(nnibs - 1)] + n_, acc);
  for (std::size_t k = nnibs - 1; k-- > 0;) {
    cios(acc, acc, acc);
    cios(acc, acc, acc);
    cios(acc, acc, acc);
    cios(acc, acc, acc);
    const unsigned d = nibble(k);
    if (d != 0) cios(acc, table[d], acc);
  }
  std::copy(acc, acc + n_, out);
}

BigInt MontCtx::pow_mont(const BigInt& base_mont, const BigInt& exp) const {
  if (exp.is_negative()) throw std::domain_error("MontCtx::pow_mont: negative exponent");
  const BigInt rb = (base_mont.negative_ || cmp_arg_ge(base_mont)) ? base_mont.mod(m_) : base_mont;
  u64 ba[kMaxLimbs];
  u64 res[kMaxLimbs];
  load(rb, ba);
  pow_raw(ba, exp, res);
  return store(res);
}

BigInt MontCtx::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) throw std::domain_error("MontCtx::pow: negative exponent");
  const BigInt rb = (base.negative_ || cmp_arg_ge(base)) ? base.mod(m_) : base;
  u64 ba[kMaxLimbs];
  u64 res[kMaxLimbs];
  u64 oneraw[kMaxLimbs] = {1};
  load(rb, ba);
  cios(ba, r2limbs_.data(), ba);  // into Montgomery domain
  pow_raw(ba, exp, res);
  cios(res, oneraw, res);         // back to canonical
  return store(res);
}

void MontCtx::to_mont_raw(const BigInt& x, u64* out) const {
  const BigInt r = (x.negative_ || cmp_arg_ge(x)) ? x.mod(m_) : x;
  u64 xa[kMaxLimbs];
  load(r, xa);
  cios(xa, r2limbs_.data(), out);
}

BigInt MontCtx::from_mont_raw(const u64* x) const {
  u64 oneraw[kMaxLimbs] = {1};
  u64 res[kMaxLimbs];
  cios(x, oneraw, res);
  return store(res);
}

void MontCtx::mul_raw(const u64* a, const u64* b, u64* out) const { cios(a, b, out); }

void MontCtx::add_raw(const u64* a, const u64* b, u64* out) const {
  const std::size_t n = n_;
  const u64* m = mlimbs_.data();
  u64 t[kMaxLimbs];
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    t[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  // Inputs < m, so a + b < 2m: at most one subtraction canonicalizes.
  bool ge = carry != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 need = static_cast<u128>(m[i]) + borrow;
      out[i] = static_cast<u64>(static_cast<u128>(t[i]) - need);
      borrow = static_cast<u128>(t[i]) < need ? 1 : 0;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

void MontCtx::sub_raw(const u64* a, const u64* b, u64* out) const {
  const std::size_t n = n_;
  const u64* m = mlimbs_.data();
  u64 borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 ai = a[i];  // out may alias a: read before the write below
    const u128 need = static_cast<u128>(b[i]) + borrow;
    out[i] = static_cast<u64>(static_cast<u128>(ai) - need);
    borrow = static_cast<u128>(ai) < need ? 1 : 0;
  }
  if (borrow) {
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 s = static_cast<u128>(out[i]) + m[i] + carry;
      out[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
}

bool MontCtx::cmp_arg_ge(const BigInt& x) const {
  return BigInt::cmp_mag(x, m_) >= 0;
}

}  // namespace sp::crypto
