#include "crypto/base64.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace sp::crypto {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> decode_table() {
  std::array<std::int8_t, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return t;
}
}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8) |
                            std::uint32_t{data[i + 2]};
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = std::uint32_t{data[i]} << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  static const auto table = decode_table();
  std::string compact;
  compact.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    compact.push_back(c);
  }
  if (compact.size() % 4 != 0) throw std::invalid_argument("base64: length not multiple of 4");
  Bytes out;
  out.reserve((compact.size() / 4) * 3);
  for (std::size_t i = 0; i < compact.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = compact[i + j];
      if (c == '=') {
        // Padding only in the last group, trailing positions 2 or 3.
        if (i + 4 != compact.size() || j < 2) throw std::invalid_argument("base64: bad padding");
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) throw std::invalid_argument("base64: data after padding");
      const std::int8_t d = table[static_cast<unsigned char>(c)];
      if (d < 0) throw std::invalid_argument("base64: invalid character");
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    // Canonical-form check (RFC 4648 §3.5): the bits a padded quantum does
    // not emit must be zero, otherwise two distinct strings decode to the
    // same bytes ("QQ==" and "QR==" must not both mean {0x41}).
    if ((pad == 2 && (v & 0xFFFFu) != 0) || (pad == 1 && (v & 0xFFu) != 0)) {
      throw std::invalid_argument("base64: nonzero padding bits");
    }
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

}  // namespace sp::crypto
