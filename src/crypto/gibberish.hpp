// GibberishAES-compatible envelope — byte-for-byte the format the paper's
// Implementation 1 produces in the browser (github.com/mdp/gibberish-aes):
//
//   base64( "Salted__" || salt[8] || AES-256-CBC(plaintext) )
//
// with OpenSSL's legacy EVP_BytesToKey(MD5, 1 iteration):
//   D1 = MD5(pass || salt), D2 = MD5(D1 || pass || salt),
//   D3 = MD5(D2 || pass || salt); key = D1 || D2, iv = D3.
//
// Interoperates with `openssl enc -aes-256-cbc -md md5 -base64` and with the
// original JavaScript library. No authentication — provided for fidelity;
// the library's own object encryption uses the authenticated seal/open.
#pragma once

#include <string>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"

namespace sp::crypto {

/// Encrypts with a random 8-byte salt drawn from `rng`.
std::string gibberish_encrypt(std::string_view passphrase,
                              std::span<const std::uint8_t> plaintext, Drbg& rng);

/// Decrypts; throws std::invalid_argument on malformed envelopes and
/// std::runtime_error on bad padding (wrong passphrase, usually).
Bytes gibberish_decrypt(std::string_view passphrase, std::string_view envelope_b64);

/// The legacy KDF, exposed for tests: returns key(32) || iv(16).
Bytes evp_bytes_to_key_md5(std::string_view passphrase, std::span<const std::uint8_t> salt);

}  // namespace sp::crypto
