// Base64 (RFC 4648) — GibberishAES armors its "Salted__" envelopes in
// base64 for transport inside HTML forms and database columns.
#pragma once

#include <string>

#include "crypto/bytes.hpp"

namespace sp::crypto {

/// Standard alphabet with '=' padding, no line wrapping.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Strict decoder: rejects bad characters, bad padding and bad length
/// (throws std::invalid_argument). Whitespace is tolerated (GibberishAES
/// historically wrapped lines).
Bytes base64_decode(std::string_view text);

}  // namespace sp::crypto
