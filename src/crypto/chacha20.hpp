// ChaCha20 stream cipher (RFC 8439 quarter-round core). Used only as the
// generator inside Drbg — all randomness in the reproduction flows through a
// seedable DRBG so every experiment is replayable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class ChaCha20 {
 public:
  /// key: 32 bytes, nonce: 12 bytes, counter: initial block counter.
  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t counter = 0);

  /// Produces `out.size()` keystream bytes, advancing internal state.
  void keystream(std::span<std::uint8_t> out);

 private:
  void block(std::array<std::uint8_t, 64>& out);

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_pos_ = 64;  // empty
};

}  // namespace sp::crypto
