// Deterministic random bit generator: SHA-256-seeded ChaCha20 keystream.
//
// All nondeterminism in the library (polynomial coefficients, share
// abscissae, CP-ABE exponents, network jitter, workload generation) is drawn
// from a Drbg so runs are reproducible given a seed string — essential for
// the benchmark harness and the security regression tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/secret.hpp"

namespace sp::crypto {

class Drbg {
 public:
  /// Seeds from an arbitrary string (hashed to the ChaCha key).
  explicit Drbg(std::string_view seed);
  /// Seeds from raw bytes.
  explicit Drbg(std::span<const std::uint8_t> seed);

  /// n fresh pseudo-random bytes.
  Bytes bytes(std::size_t n);
  /// Uniform uint64.
  std::uint64_t next_u64();
  /// Uniform integer in [0, bound) via rejection sampling; bound > 0.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double uniform_real();
  /// Fork an independent child stream labeled by `label` — lets subsystems
  /// (e.g. network jitter vs. crypto sampling) draw without interleaving.
  Drbg fork(std::string_view label);

 private:
  std::unique_ptr<ChaCha20> stream_;
  SecretBytes key_;  // retained for fork(); wiped on destruction
};

}  // namespace sp::crypto
