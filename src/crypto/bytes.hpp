// Byte-buffer utilities shared by every module: hex codecs, XOR blinding,
// constant-time comparison, and string <-> bytes conversion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sp::crypto {

/// The library-wide octet-string type. Kept as uint8_t (not std::byte) so
/// arithmetic in the hash/cipher cores stays free of casts.
using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of an octet string.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// UTF-8/ASCII string to bytes (no terminator).
Bytes to_bytes(std::string_view s);

/// Bytes to std::string (may embed NULs).
std::string to_string(std::span<const std::uint8_t> data);

/// Element-wise XOR. If the operands differ in length, the result has the
/// length of `a` and `b` is cycled — the paper XORs a secret share with a
/// context answer, which rarely match in size.
Bytes xor_cycle(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Constant-time equality (length leaks; contents do not). Used for answer
/// hash verification at the service provider.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// String overload for answer/hash comparisons — views the characters as
/// octets, no copies.
bool ct_equal(std::string_view a, std::string_view b);

/// Concatenates buffers; used when building hash inputs like H(a_i || K_Z).
Bytes concat(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace sp::crypto
