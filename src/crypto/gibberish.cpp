#include "crypto/gibberish.hpp"

#include <stdexcept>

#include "crypto/base64.hpp"
#include "crypto/md5.hpp"
#include "crypto/modes.hpp"
#include "crypto/secret.hpp"

namespace sp::crypto {

namespace {
constexpr char kMagic[] = {'S', 'a', 'l', 't', 'e', 'd', '_', '_'};
}

Bytes evp_bytes_to_key_md5(std::string_view passphrase, std::span<const std::uint8_t> salt) {
  if (salt.size() != 8) throw std::invalid_argument("evp_bytes_to_key_md5: salt must be 8 bytes");
  const Bytes pass = to_bytes(passphrase);
  Bytes out;
  Bytes prev;
  while (out.size() < 48) {  // 32-byte key + 16-byte IV
    Md5 md5;
    md5.update(prev);
    md5.update(pass);
    md5.update(salt);
    const auto digest = md5.finish();
    prev.assign(digest.begin(), digest.end());
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(48);
  return out;
}

std::string gibberish_encrypt(std::string_view passphrase,
                              std::span<const std::uint8_t> plaintext, Drbg& rng) {
  const Bytes salt = rng.bytes(8);
  Bytes key_iv = evp_bytes_to_key_md5(passphrase, salt);
  const std::span<const std::uint8_t> key(key_iv.data(), 32);
  const std::span<const std::uint8_t> iv(key_iv.data() + 32, 16);
  const Bytes ct = aes_cbc_encrypt(key, iv, plaintext);
  secure_wipe(key_iv);

  Bytes envelope(std::begin(kMagic), std::end(kMagic));
  envelope.insert(envelope.end(), salt.begin(), salt.end());
  envelope.insert(envelope.end(), ct.begin(), ct.end());
  return base64_encode(envelope);
}

Bytes gibberish_decrypt(std::string_view passphrase, std::string_view envelope_b64) {
  const Bytes envelope = base64_decode(envelope_b64);
  if (envelope.size() < 16 ||
      !std::equal(std::begin(kMagic), std::end(kMagic), envelope.begin())) {
    throw std::invalid_argument("gibberish_decrypt: missing Salted__ header");
  }
  const std::span<const std::uint8_t> salt(envelope.data() + 8, 8);
  Bytes key_iv = evp_bytes_to_key_md5(passphrase, salt);
  const std::span<const std::uint8_t> key(key_iv.data(), 32);
  const std::span<const std::uint8_t> iv(key_iv.data() + 32, 16);
  Bytes plaintext = aes_cbc_decrypt(
      key, iv, std::span<const std::uint8_t>(envelope.data() + 16, envelope.size() - 16));
  secure_wipe(key_iv);
  return plaintext;
}

}  // namespace sp::crypto
