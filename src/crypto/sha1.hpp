// SHA-1 (FIPS 180-4). The paper's Implementation 2 hashes context answers
// with OpenSSL's SHA-1; we reproduce it from scratch. SHA-1 is retained only
// for fidelity to the paper — new code paths default to SHA-256/SHA3-256.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }
  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and returns the 20-byte digest; the object must be reset()
  /// before reuse.
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot convenience.
  static Bytes hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace sp::crypto
