// SHA3-256 (FIPS 202, Keccak-f[1600] sponge). The paper's Implementation 1
// computes all answer hashes H(a_i, K_Z) with CryptoJS's SHA-3; this is the
// from-scratch equivalent used by Construction 1.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class Sha3_256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kRate = 136;  // 1088-bit rate for 256-bit output

  Sha3_256() { reset(); }
  void reset();
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finish();

  static Bytes hash(std::span<const std::uint8_t> data);

 private:
  void absorb_block();

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRate> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace sp::crypto
