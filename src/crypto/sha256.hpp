// SHA-256 (FIPS 180-4). Default hash for key derivation (K_O = H(M_O)) and
// Schnorr signature challenges in this reproduction.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }
  void reset();
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] std::array<std::uint8_t, kDigestSize> finish();

  static Bytes hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace sp::crypto
