// AES-128/192/256 block cipher (FIPS 197), from scratch.
//
// The paper's Implementation 1 encrypts the shared object with GibberishAES
// (AES-256-CBC in the browser); Construction 1 here does the same via
// aes_cbc_* in modes.hpp, keyed by K_O = H(M_O).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(std::span<const std::uint8_t> key);

  /// The expanded key schedule is key-equivalent material: wipe it before
  /// the allocation returns to the heap.
  ~Aes();
  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;
  Aes(Aes&&) noexcept = default;
  Aes& operator=(Aes&&) noexcept = default;

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const;
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const;

  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  void expand_key(std::span<const std::uint8_t> key);

  int rounds_ = 0;
  std::vector<std::uint32_t> round_keys_;  // (rounds_+1) * 4 words
};

}  // namespace sp::crypto
