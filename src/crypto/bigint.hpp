// Arbitrary-precision integers, written from scratch for this reproduction.
//
// The paper's two constructions both bottom out in modular arithmetic over a
// large prime field: Shamir secret sharing (Construction 1) and the BSW07
// CP-ABE pairing groups (Construction 2). BigInt supplies magnitude + sign
// arithmetic with Knuth Algorithm-D division, modular exponentiation,
// modular inverse, gcd, Miller–Rabin primality and byte/hex codecs.
//
// Representation: little-endian vector of 64-bit limbs, normalized (no
// trailing zero limbs), with an explicit sign flag; zero is { {}, positive }.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::crypto {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a native signed value.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics
  /// From a native unsigned value.
  static BigInt from_u64(std::uint64_t v);
  /// Parses decimal (optionally signed) — throws std::invalid_argument.
  static BigInt from_dec(std::string_view s);
  /// Parses hex without 0x prefix (optionally signed).
  static BigInt from_hex(std::string_view s);
  /// Big-endian unsigned bytes -> non-negative BigInt.
  static BigInt from_bytes(std::span<const std::uint8_t> be);

  /// Uniform value in [0, bound) using `rand_bytes(n)` as entropy source.
  /// `bound` must be positive.
  static BigInt random_below(const BigInt& bound,
                             const std::function<Bytes(std::size_t)>& rand_bytes);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;
  /// Low 64 bits of the magnitude.
  [[nodiscard]] std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  [[nodiscard]] std::string to_dec() const;
  [[nodiscard]] std::string to_hex() const;
  /// Big-endian magnitude, exactly `width` bytes (throws if it does not fit);
  /// width 0 means minimal width (at least one byte).
  [[nodiscard]] Bytes to_bytes(std::size_t width = 0) const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated quotient (C++ semantics: rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with the sign of the dividend (C++ semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt operator-() const;
  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }

  friend BigInt operator<<(const BigInt& a, std::size_t n);
  friend BigInt operator>>(const BigInt& a, std::size_t n);

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one division (Knuth D). rem has dividend sign.
  static void div_mod(const BigInt& a, const BigInt& b, BigInt& quot, BigInt& rem);

  /// Canonical residue in [0, m): works for negative `a` too. m must be > 0.
  [[nodiscard]] BigInt mod(const BigInt& m) const;
  /// (a * b) mod m with all operands reduced.
  static BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (base ^ exp) mod m, exp >= 0, via left-to-right square-and-multiply.
  static BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);
  /// Modular inverse via extended Euclid; throws std::domain_error if
  /// gcd(a, m) != 1.
  static BigInt mod_inv(const BigInt& a, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);

  /// Miller–Rabin with `rounds` random bases (plus small-prime sieve).
  static bool is_probable_prime(const BigInt& n, int rounds,
                                const std::function<Bytes(std::size_t)>& rand_bytes);

  /// Zeroises the limb storage (optimizer-proof) and resets to zero. For
  /// secret scalars — M_O, Schnorr nonces — whose value must not survive in
  /// the allocation after use.
  void wipe() noexcept;

 private:
  friend class MontCtx;
  void trim();
  [[nodiscard]] static int cmp_mag(const BigInt& a, const BigInt& b);
  static BigInt add_mag(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt sub_mag(const BigInt& a, const BigInt& b);

  std::vector<std::uint64_t> limbs_;  // little-endian, normalized
  bool negative_ = false;             // never true for zero
};

/// Montgomery-form modular arithmetic for a fixed odd modulus m.
///
/// Values in the Montgomery domain are x·R mod m with R = 2^(64·n) for the
/// modulus's limb count n. Multiplication is CIOS (coarsely integrated
/// operand scanning) over the 64-bit limb vector — one interleaved
/// multiply-and-REDC pass, no divisions and no heap traffic beyond the
/// result — and exponentiation is fixed-window (w = 4). This is the fast
/// substrate under FpCtx; the Barrett path in field/fp stays alive as the
/// randomized-equivalence oracle.
///
/// Not constant-time (final conditional subtraction, windowed exponent
/// scanning): this is a research reproduction, not a hardened library.
class MontCtx {
 public:
  /// Largest supported modulus in 64-bit limbs (1024 bits). Anything wider
  /// falls back to the callers' Barrett/Knuth paths.
  static constexpr std::size_t kMaxLimbs = 16;

  /// True when `m` is odd, >= 3 and at most kMaxLimbs wide.
  [[nodiscard]] static bool usable(const BigInt& m);

  /// Throws std::invalid_argument unless usable(modulus).
  explicit MontCtx(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const { return m_; }
  [[nodiscard]] std::size_t limb_count() const { return n_; }

  // -- Montgomery-domain operations (inputs/outputs are x·R mod m) --------
  /// x in [0, m) -> x·R mod m.
  [[nodiscard]] BigInt to_mont(const BigInt& x) const;
  /// x·R mod m -> x.
  [[nodiscard]] BigInt from_mont(const BigInt& x) const;
  /// One REDC pass: (a·b)·R^{-1} mod m — the domain-preserving product.
  [[nodiscard]] BigInt mont_mul(const BigInt& a, const BigInt& b) const;
  /// R mod m — the multiplicative identity of the Montgomery domain.
  [[nodiscard]] const BigInt& one_mont() const { return one_; }
  /// base^exp with base and result in the Montgomery domain (exp plain,
  /// non-negative). Fixed-window w = 4.
  [[nodiscard]] BigInt pow_mont(const BigInt& base_mont, const BigInt& exp) const;

  // -- canonical-domain conveniences (inputs/outputs in [0, m)) -----------
  /// (a·b) mod m via two REDC passes.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;
  /// base^exp mod m (exp non-negative), windowed in the Montgomery domain.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const;

  // -- raw-limb interface for hot loops (EC Jacobian ladder) --------------
  // Values are limb_count()-limb little-endian arrays in the Montgomery
  // domain, always reduced to [0, m). Staying on raw arrays skips the
  // BigInt heap traffic and the second REDC pass that the canonical-domain
  // conveniences pay on every multiply. All out pointers may alias inputs.
  /// Canonical x (any sign/width) -> x·R mod m as raw limbs.
  void to_mont_raw(const BigInt& x, std::uint64_t* out) const;
  /// Raw Montgomery limbs -> canonical BigInt in [0, m).
  [[nodiscard]] BigInt from_mont_raw(const std::uint64_t* x) const;
  /// out = (a·b)·R^{-1} mod m — domain-preserving product (one CIOS pass).
  void mul_raw(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;
  /// out = (a + b) mod m.
  void add_raw(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;
  /// out = (a - b) mod m.
  void sub_raw(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;

 private:
  /// Pads a reduced BigInt into an n_-limb little-endian array.
  void load(const BigInt& x, std::uint64_t* out) const;
  [[nodiscard]] BigInt store(const std::uint64_t* limbs) const;
  /// CIOS multiply-and-reduce: out = (a·b)·R^{-1} mod m, all n_-limb arrays.
  void cios(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;
  /// Raw-array windowed pow used by both pow() and pow_mont().
  void pow_raw(const std::uint64_t* base_mont, const BigInt& exp, std::uint64_t* out) const;
  /// |x| >= m (used to decide whether an input needs a reducing mod()).
  [[nodiscard]] bool cmp_arg_ge(const BigInt& x) const;

  BigInt m_;
  BigInt r2_;                         ///< R² mod m (to_mont multiplier)
  BigInt one_;                        ///< R mod m
  std::vector<std::uint64_t> mlimbs_; ///< modulus, padded to n_
  std::vector<std::uint64_t> r2limbs_;
  std::uint64_t m0inv_ = 0;           ///< -m^{-1} mod 2^64
  std::size_t n_ = 0;
};

}  // namespace sp::crypto
