// Secret-material hygiene primitives.
//
// Neither the SP nor the DH may ever learn answers, shares, or the object
// secret M_O (paper §V, Constructions 1–2) — which means the *process* that
// briefly holds them must not leak them either: not through a stale heap
// allocation, not through a timing side channel in a comparison, and not
// through an accidental copy that outlives its wipe. This header centralises
// the three disciplines:
//
//   secure_wipe   — zeroisation the optimizer cannot elide,
//   SecretBytes   — an owning buffer that wipes on destruction, compares only
//                   in constant time, and never copies implicitly,
//   (ct_equal)    — already in bytes.hpp; SecretBytes routes through it.
//
// tools/secret_lint enforces usage: raw `Bytes` locals with secret-looking
// names must either become SecretBytes or be secure_wipe()d before scope
// exit. See docs/SECURITY_HYGIENE.md for the contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "crypto/bytes.hpp"

namespace sp::crypto {

/// Zeroises `n` bytes at `p` through a volatile pointer plus a compiler
/// barrier, so the store survives dead-store elimination even when the
/// buffer is about to be freed. No-op on null/empty.
void secure_wipe(void* p, std::size_t n) noexcept;

/// Wipes a byte vector's contents and empties it. The capacity that held the
/// secret is zeroed before the size changes, so no residue survives in the
/// allocation.
void secure_wipe(Bytes& b) noexcept;

/// Wipes a string in place (answers travel as std::string) and empties it.
void secure_wipe(std::string& s) noexcept;

/// Owning byte buffer for key material: K_O, K_Z, AES round keys' source
/// bytes, DRBG seeds, Schnorr nonce derivation state, blinded shares.
///
/// Contract:
///  - wipes its storage on destruction, move-assignment-over, and wipe();
///  - never copies implicitly — copy ctor/assign are deleted, duplication is
///    an explicit clone();
///  - equality is constant-time only (ct_equals); operator== is deleted so a
///    timing-leaky compare cannot be written by accident;
///  - interop with the span-based crypto API goes through span() /
///    mutable_span(), which do not copy.
class SecretBytes {
 public:
  SecretBytes() = default;

  /// n zero bytes (to be filled via mutable_span()).
  explicit SecretBytes(std::size_t n) : buf_(n, 0) {}

  /// Takes ownership of an existing buffer. Move-only on purpose: the caller
  /// visibly gives the secret up rather than leaving a live copy behind.
  explicit SecretBytes(Bytes&& b) noexcept : buf_(std::move(b)) {}

  /// Copies from a view the caller does not own (e.g. a wire field). The
  /// source remains the caller's wiping responsibility.
  explicit SecretBytes(std::span<const std::uint8_t> b) : buf_(b.begin(), b.end()) {}

  SecretBytes(const SecretBytes&) = delete;
  SecretBytes& operator=(const SecretBytes&) = delete;

  SecretBytes(SecretBytes&& other) noexcept : buf_(std::move(other.buf_)) { other.buf_.clear(); }
  SecretBytes& operator=(SecretBytes&& other) noexcept {
    if (this != &other) {
      wipe();
      buf_ = std::move(other.buf_);
      other.buf_.clear();
    }
    return *this;
  }

  ~SecretBytes() { wipe(); }

  /// Explicit duplication — the only way to get a second copy.
  [[nodiscard]] SecretBytes clone() const {
    return SecretBytes(std::span<const std::uint8_t>(buf_));
  }

  /// Non-owning read view for the span-based crypto API.
  [[nodiscard]] std::span<const std::uint8_t> span() const { return buf_; }
  /// Non-owning write view (fill from a DRBG, XOR in place, ...).
  [[nodiscard]] std::span<std::uint8_t> mutable_span() { return buf_; }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  /// Constant-time comparison (length still leaks, contents do not).
  [[nodiscard]] bool ct_equals(std::span<const std::uint8_t> other) const {
    return ct_equal(buf_, other);
  }
  [[nodiscard]] bool ct_equals(const SecretBytes& other) const {
    return ct_equal(buf_, other.buf_);
  }

  /// Zeroises and empties now, ahead of destruction.
  void wipe() noexcept {
    secure_wipe(buf_);
  }

 private:
  Bytes buf_;
};

/// A timing-leaky compare on secrets must not even compile.
bool operator==(const SecretBytes&, const SecretBytes&) = delete;

}  // namespace sp::crypto
