// Block-cipher modes on top of Aes: CBC with PKCS#7 padding (matching the
// paper's GibberishAES usage) and CTR, plus an encrypt-then-MAC authenticated
// envelope used wherever the reproduction needs integrity (the paper bolts
// integrity on via sharer signatures; the envelope is our belt-and-braces
// default for object storage).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace sp::crypto {

/// CBC-encrypts with PKCS#7 padding. IV must be 16 bytes.
Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> plaintext);

/// CBC-decrypts and strips PKCS#7 padding; throws std::runtime_error on
/// malformed padding or non-block-multiple input.
Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> ciphertext);

/// CTR keystream XOR (encrypt == decrypt). Nonce must be 16 bytes (big-endian
/// counter in the low 8 bytes).
Bytes aes_ctr_crypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> data);

/// Authenticated envelope: HKDF(key) -> (enc key, mac key); AES-CBC +
/// HMAC-SHA256 over iv||ciphertext. Layout: iv(16) || ct || tag(32).
Bytes seal(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
           std::span<const std::uint8_t> plaintext);

/// Opens an envelope produced by seal(); throws std::runtime_error on
/// authentication failure.
Bytes open(std::span<const std::uint8_t> key, std::span<const std::uint8_t> envelope);

}  // namespace sp::crypto
