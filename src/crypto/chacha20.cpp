#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace sp::crypto {

namespace {
std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}
}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                   std::uint32_t counter) {
  if (key.size() != 32) throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  if (nonce.size() != 12) throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::block(std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
}

void ChaCha20::keystream(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (buffer_pos_ == 64) {
      block(buffer_);
      buffer_pos_ = 0;
    }
    const std::size_t take = std::min<std::size_t>(64 - buffer_pos_, out.size() - off);
    std::memcpy(out.data() + off, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    off += take;
  }
}

}  // namespace sp::crypto
