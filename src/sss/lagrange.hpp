// Precomputed Lagrange basis cache (PR 7).
//
// Reconstructing one Construction-1 post always interpolates over the SAME
// abscissa set at the SAME point (x = 0): the shares were fixed at share
// time, and every granted access re-derives P(0) from them. The basis
// coefficients ℓ_j(x) = ∏_{m≠j} (x − x_m)/(x_j − x_m) depend only on
// (field, abscissa set, x) — never on the secret ordinates — so they are
// memoized here and each later reconstruction is just k multiply-adds.
//
// The uncached path is itself batched: numerators via prefix/suffix
// products, denominators inverted with ONE Montgomery batch inversion
// (field::batch_inv) instead of one Fp::inv() per share.
//
// Hygiene: abscissae are halves of secret shares, so the cache is
// deliberately PER-INSTANCE (one per Shamir, one Shamir per Session) rather
// than process-wide — evicting a Session drops its retained abscissae —
// and every evicted or destroyed entry is wiped, like split() wipes its
// polynomial. FIFO-capped against abscissa-set churn.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "field/fp.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::sss {

using field::Fp;
using field::FpCtxPtr;

class LagrangeCache {
 public:
  explicit LagrangeCache(std::size_t capacity = 32) : capacity_(capacity) {}
  ~LagrangeCache();
  LagrangeCache(const LagrangeCache&) = delete;
  LagrangeCache& operator=(const LagrangeCache&) = delete;

  /// Basis coefficients ℓ_j(at), aligned with the CALL order of `xs` (the
  /// cache key is order-independent: same abscissa set in any permutation
  /// hits the same entry). Precondition: xs are distinct and non-empty —
  /// callers (Shamir) reject duplicates first.
  [[nodiscard]] std::vector<Fp> basis(const FpCtxPtr& field, std::span<const Fp> xs,
                                      const Fp& at) const;

  /// The batched no-cache computation (prefix/suffix numerators + one
  /// batch inversion). Public so benches can compare cached vs direct.
  [[nodiscard]] static std::vector<Fp> compute(const FpCtxPtr& field, std::span<const Fp> xs,
                                               const Fp& at);

  /// Current entry count (tests assert the FIFO cap holds).
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Sorted (abscissa, coefficient) pairs; remapped to call order on hit.
  struct Entry {
    std::vector<std::pair<crypto::BigInt, Fp>> coeffs;
  };

  static void wipe_entry(Entry& entry) noexcept;

  mutable sp::Mutex mutex_;
  mutable std::unordered_map<std::string, Entry> map_ SP_GUARDED_BY(mutex_);
  mutable std::deque<std::string> fifo_ SP_GUARDED_BY(mutex_);
  std::size_t capacity_;
};

}  // namespace sp::sss
