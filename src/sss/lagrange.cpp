#include "sss/lagrange.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/secret.hpp"
#include "obs/metrics.hpp"

namespace sp::sss {

namespace {

obs::Counter& lagrange_hits() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "sss_lagrange_cache_hits_total", "Lagrange basis computations served from the cache");
  return c;
}

obs::Counter& lagrange_builds() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "sss_lagrange_cache_builds_total", "Lagrange basis sets computed and inserted");
  return c;
}

std::string cache_key(const FpCtxPtr& field, std::span<const Fp> xs, const Fp& at) {
  std::vector<crypto::Bytes> encoded;
  encoded.reserve(xs.size());
  for (const Fp& x : xs) encoded.push_back(x.to_bytes());
  std::sort(encoded.begin(), encoded.end());
  std::string key;
  key.reserve((xs.size() + 2) * field->byte_length());
  const crypto::Bytes at_bytes = at.to_bytes();
  key.append(at_bytes.begin(), at_bytes.end());
  const crypto::Bytes p_bytes = field->p().to_bytes(field->byte_length());
  key.append(p_bytes.begin(), p_bytes.end());
  for (crypto::Bytes& e : encoded) {
    key.append(e.begin(), e.end());
    crypto::secure_wipe(e);
  }
  return key;
}

}  // namespace

LagrangeCache::~LagrangeCache() {
  sp::MutexLock lock(mutex_);
  for (auto& [key, entry] : map_) wipe_entry(entry);
  for (std::string& key : fifo_) crypto::secure_wipe(key);
}

void LagrangeCache::wipe_entry(Entry& entry) noexcept {
  for (auto& [abscissa, coeff] : entry.coeffs) {
    abscissa.wipe();
    coeff.wipe();
  }
}

std::vector<Fp> LagrangeCache::compute(const FpCtxPtr& field, std::span<const Fp> xs,
                                       const Fp& at) {
  const std::size_t n = xs.size();
  if (n == 0) throw std::invalid_argument("LagrangeCache::compute: empty abscissa set");
  std::vector<Fp> out(n);
  if (n == 1) {
    out[0] = Fp::one(field);
    return out;
  }

  // num_j = ∏_{m≠j} (at − x_m) assembled from prefix/suffix products of the
  // differences — O(n) multiplies instead of the O(n²) inner loop.
  std::vector<Fp> diff(n);
  for (std::size_t m = 0; m < n; ++m) diff[m] = at - xs[m];
  std::vector<Fp> prefix(n);
  std::vector<Fp> suffix(n);
  prefix[0] = diff[0];
  for (std::size_t m = 1; m < n; ++m) prefix[m] = prefix[m - 1] * diff[m];
  suffix[n - 1] = diff[n - 1];
  for (std::size_t m = n - 1; m-- > 0;) suffix[m] = diff[m] * suffix[m + 1];

  // den_j = ∏_{m≠j} (x_j − x_m): inherently O(n²) products, but all n
  // inversions collapse into ONE via Montgomery batch inversion.
  std::vector<Fp> den(n);
  for (std::size_t j = 0; j < n; ++j) {
    Fp d = Fp::one(field);
    for (std::size_t m = 0; m < n; ++m) {
      if (m != j) d = d * (xs[j] - xs[m]);
    }
    den[j] = std::move(d);
  }
  std::vector<Fp> inv = field::batch_inv(den);

  for (std::size_t j = 0; j < n; ++j) {
    Fp num = j == 0 ? suffix[1] : (j == n - 1 ? prefix[n - 2] : prefix[j - 1] * suffix[j + 1]);
    out[j] = num * inv[j];
    num.wipe();
  }

  // Abscissae are share halves; everything derived from them is scratch.
  for (Fp& x : diff) x.wipe();
  for (Fp& x : prefix) x.wipe();
  for (Fp& x : suffix) x.wipe();
  for (Fp& x : den) x.wipe();
  for (Fp& x : inv) x.wipe();
  return out;
}

std::vector<Fp> LagrangeCache::basis(const FpCtxPtr& field, std::span<const Fp> xs,
                                     const Fp& at) const {
  std::string key = cache_key(field, xs, at);
  {
    sp::MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      // Remap the stored (sorted) coefficients to this call's share order.
      std::vector<Fp> out(xs.size());
      for (std::size_t j = 0; j < xs.size(); ++j) {
        for (const auto& [abscissa, coeff] : it->second.coeffs) {
          if (abscissa == xs[j].value()) {
            out[j] = coeff;
            break;
          }
        }
      }
      lagrange_hits().inc();
      crypto::secure_wipe(key);
      return out;
    }
  }

  // Compute outside the lock — racing callers on the same key derive the
  // identical basis, and the second insert is a no-op.
  std::vector<Fp> out = compute(field, xs, at);

  {
    sp::MutexLock lock(mutex_);
    if (map_.find(key) == map_.end()) {
      Entry entry;
      entry.coeffs.reserve(xs.size());
      for (std::size_t j = 0; j < xs.size(); ++j) {
        entry.coeffs.emplace_back(xs[j].value(), out[j]);
      }
      std::sort(entry.coeffs.begin(), entry.coeffs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      map_.emplace(key, std::move(entry));
      fifo_.push_back(key);
      lagrange_builds().inc();
      while (map_.size() > capacity_ && !fifo_.empty()) {
        auto victim = map_.find(fifo_.front());
        if (victim != map_.end()) {
          wipe_entry(victim->second);
          map_.erase(victim);
        }
        crypto::secure_wipe(fifo_.front());
        fifo_.pop_front();
      }
    }
  }
  crypto::secure_wipe(key);
  return out;
}

std::size_t LagrangeCache::entries() const {
  sp::MutexLock lock(mutex_);
  return map_.size();
}

}  // namespace sp::sss
