#include "sss/shamir.hpp"

#include <set>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::sss {

Shamir::Shamir(FpCtxPtr field)
    : field_(std::move(field)), lagrange_(std::make_unique<LagrangeCache>()) {
  if (!field_) throw std::invalid_argument("Shamir: null field");
}

std::vector<Share> Shamir::split(const BigInt& secret, std::size_t k, std::size_t n,
                                 crypto::Drbg& rng) const {
  if (k == 0 || k > n) throw std::invalid_argument("Shamir::split: need 0 < k <= n");
  if (BigInt::from_u64(n) >= field_->p()) {
    throw std::invalid_argument("Shamir::split: n must be < p");
  }

  // Random polynomial P of degree k-1 with P(0) = secret.
  std::vector<Fp> coeffs;
  coeffs.reserve(k);
  coeffs.emplace_back(field_, secret);
  for (std::size_t i = 1; i < k; ++i) coeffs.push_back(Fp::random(field_, rng));

  // Random, distinct, non-zero abscissae.
  std::set<BigInt> used;
  std::vector<Share> shares;
  shares.reserve(n);
  while (shares.size() < n) {
    const Fp x = Fp::random_nonzero(field_, rng);
    if (!used.insert(x.value()).second) continue;
    // Horner evaluation.
    Fp y = coeffs.back();
    for (std::size_t i = coeffs.size() - 1; i-- > 0;) y = y * x + coeffs[i];
    shares.push_back(Share{x.value(), y.value()});
    y.wipe();
  }
  // The polynomial IS the secret (coeff 0 = M_O; the rest determine it given
  // k shares) — zeroise it before the vector's storage is freed.
  for (Fp& c : coeffs) c.wipe();
  return shares;
}

void Shamir::check_shares(std::span<const Share> shares) const {
  if (shares.empty()) throw std::invalid_argument("Shamir: no shares");
  std::set<BigInt> seen;
  for (const Share& s : shares) {
    if (!seen.insert(s.x.mod(field_->p())).second) {
      throw std::invalid_argument("Shamir: duplicate share abscissa");
    }
  }
}

BigInt Shamir::interpolate_at(std::span<const Share> shares, const BigInt& x) const {
  check_shares(shares);
  const Fp target(field_, x);
  std::vector<Fp> xs;
  xs.reserve(shares.size());
  for (const Share& s : shares) xs.emplace_back(field_, s.x);
  const std::vector<Fp> basis = lagrange_->basis(field_, xs, target);
  Fp acc = Fp::zero(field_);
  for (std::size_t j = 0; j < shares.size(); ++j) {
    Fp term = Fp(field_, shares[j].y) * basis[j];
    acc = acc + term;
    term.wipe();
  }
  return acc.value();
}

BigInt Shamir::interpolate_at_reference(std::span<const Share> shares, const BigInt& x) const {
  check_shares(shares);
  const Fp target(field_, x);
  Fp acc = Fp::zero(field_);
  for (std::size_t j = 0; j < shares.size(); ++j) {
    const Fp xj(field_, shares[j].x);
    Fp num = Fp::one(field_);
    Fp den = Fp::one(field_);
    for (std::size_t m = 0; m < shares.size(); ++m) {
      if (m == j) continue;
      const Fp xm(field_, shares[m].x);
      num = num * (target - xm);
      den = den * (xj - xm);
    }
    acc = acc + Fp(field_, shares[j].y) * num * den.inv();
  }
  return acc.value();
}

BigInt Shamir::reconstruct(std::span<const Share> shares) const {
  return interpolate_at(shares, BigInt{0});
}

Bytes Shamir::serialize(const Share& share) const {
  const std::size_t w = field_->byte_length();
  Bytes out = share.x.mod(field_->p()).to_bytes(w);
  Bytes y = share.y.mod(field_->p()).to_bytes(w);
  out.insert(out.end(), y.begin(), y.end());
  crypto::secure_wipe(y);
  return out;
}

Share Shamir::deserialize(std::span<const std::uint8_t> data) const {
  const std::size_t w = field_->byte_length();
  if (data.size() != 2 * w) throw std::invalid_argument("Shamir::deserialize: bad length");
  return Share{BigInt::from_bytes(data.first(w)), BigInt::from_bytes(data.subspan(w))};
}

}  // namespace sp::sss
