// Shamir (k, n) threshold secret sharing over F_p (paper §III-B).
//
// Construction 1 turns the object secret M_O = P(0) into n shares
// d_i = (s_i, P(s_i)) at random abscissae s_i; a receiver holding any k
// shares reconstructs P(0) by Lagrange interpolation, re-derives
// K_O = H(M_O), and decrypts the object. Fewer than k shares reveal
// nothing (information-theoretic security — exercised by an exhaustive
// small-field test).
#pragma once

#include <memory>
#include <vector>

#include "field/fp.hpp"
#include "sss/lagrange.hpp"

namespace sp::sss {

using crypto::BigInt;
using crypto::Bytes;
using field::Fp;
using field::FpCtxPtr;

/// One share (s_i, P(s_i)). Abscissae are never 0 (that would leak the
/// secret outright).
struct Share {
  BigInt x;
  BigInt y;

  friend bool operator==(const Share&, const Share&) = default;

  /// Zeroises both coordinates — a share is a secret fragment of M_O.
  void wipe() noexcept {
    x.wipe();
    y.wipe();
  }
};

class Shamir {
 public:
  /// `field` is the prime field F_p; p bounds both the secret and n.
  explicit Shamir(FpCtxPtr field);

  /// Splits `secret` (reduced mod p) into n shares with threshold k.
  /// Requires 0 < k <= n < p. Abscissae are random, distinct and non-zero —
  /// per the paper, "each s_i is chosen at random".
  [[nodiscard]] std::vector<Share> split(const BigInt& secret, std::size_t k, std::size_t n,
                                         crypto::Drbg& rng) const;

  /// Reconstructs P(0) from >= k shares via Lagrange interpolation. Throws
  /// std::invalid_argument on duplicate abscissae or empty input. Passing
  /// shares from a different polynomial yields an unrelated value (garbage),
  /// never an error — exactly the behaviour the access-control argument
  /// needs.
  [[nodiscard]] BigInt reconstruct(std::span<const Share> shares) const;

  /// Evaluates the implied polynomial at x (general interpolation); used by
  /// tests and by share-refresh extensions.
  ///
  /// PR 7: the Lagrange basis ℓ_j(x) — which depends only on the abscissae
  /// and x, not the secret ordinates — comes from a per-instance
  /// LagrangeCache, so repeated reconstructions of the same post (same
  /// share set, x = 0) cost k multiply-adds instead of an O(k²) loop with
  /// k inversions. Cache misses still batch: one Montgomery batch
  /// inversion replaces the per-share Fp::inv().
  [[nodiscard]] BigInt interpolate_at(std::span<const Share> shares, const BigInt& x) const;

  /// The original O(k²)-with-k-inversions double loop, kept as the
  /// equivalence oracle for the cached/batched interpolate_at().
  [[nodiscard]] BigInt interpolate_at_reference(std::span<const Share> shares,
                                                const BigInt& x) const;

  /// The per-instance basis cache (tests assert hit/cap behaviour).
  [[nodiscard]] const LagrangeCache& lagrange_cache() const { return *lagrange_; }

  /// Fixed-width wire encoding of one share: x || y (2 × field width).
  [[nodiscard]] Bytes serialize(const Share& share) const;
  [[nodiscard]] Share deserialize(std::span<const std::uint8_t> data) const;
  [[nodiscard]] std::size_t serialized_size() const { return 2 * field_->byte_length(); }

  [[nodiscard]] const FpCtxPtr& field() const { return field_; }

 private:
  /// Shared duplicate-abscissa validation for both interpolation paths.
  void check_shares(std::span<const Share> shares) const;

  FpCtxPtr field_;
  /// Behind unique_ptr so Shamir stays movable (the cache holds a mutex).
  std::unique_ptr<LagrangeCache> lagrange_;
};

}  // namespace sp::sss
