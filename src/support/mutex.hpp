// Annotated capability wrappers over the standard mutexes.
//
// sp::Mutex and sp::SharedMutex are the only lock types the rest of the tree
// may use (sp_lint rule `raw-mutex`); they carry SP_CAPABILITY so Clang's
// -Wthread-safety can check every access to SP_GUARDED_BY state. Locks are
// taken through the RAII guards:
//
//   sp::MutexLock   lock(mu);   // exclusive hold on sp::Mutex
//   sp::UniqueLock  lock(smu);  // exclusive hold on sp::SharedMutex
//   sp::SharedLock  lock(smu);  // shared hold on sp::SharedMutex
//
// MutexLock additionally satisfies BasicLockable so sp::CondVar (a wrapped
// std::condition_variable_any) can release/reacquire it around a wait; the
// analysis treats the capability as continuously held across wait(), which
// matches what the caller may assume after wait() returns.
//
// Bare .lock()/.unlock() calls outside src/support/ are rejected by sp_lint
// rule `bare-lock-call`; scope the guards instead.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "support/thread_annotations.hpp"

namespace sp {

/// Exclusive-only capability. Same cost as std::mutex; adds compile-time
/// checking of SP_GUARDED_BY members on Clang.
class SP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SP_ACQUIRE() { mu_.lock(); }
  void unlock() SP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the lock is held when it cannot prove it (used only
  /// in tests/diagnostics; a wrong assertion is a bug, not a suppression).
  void assert_held() const SP_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// Reader/writer capability. Shared holds allow concurrent readers; exclusive
/// holds are writer-only, as with std::shared_mutex.
class SP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SP_ACQUIRE() { mu_.lock(); }
  void unlock() SP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() SP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SP_RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() SP_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void assert_held() const SP_ASSERT_CAPABILITY(this) {}
  void assert_held_shared() const SP_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Exclusive RAII guard over sp::Mutex. Also BasicLockable (lock()/unlock()
/// re-take and drop the underlying mutex) so sp::CondVar::wait can park on
/// it; the held_ flag keeps the destructor correct either way.
class SP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for sp::CondVar. Only condition_variable_any calls
  // these (from inside libstdc++, where the analysis does not look); user
  // code scopes the guard instead of toggling it.
  void lock() SP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() SP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Exclusive (writer) RAII guard over sp::SharedMutex.
class SP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(SharedMutex& mu) SP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() SP_RELEASE() { mu_.unlock(); }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared (reader) RAII guard over sp::SharedMutex.
class SP_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) SP_ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~SharedLock() SP_RELEASE() { mu_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable that parks on a MutexLock. condition_variable_any's
/// internal unlock/relock runs through MutexLock's BasicLockable surface, so
/// no raw std::unique_lock is needed and the capability annotations survive.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Waits until notified. Callers re-test their predicate in an explicit
  /// `while` loop — predicate lambdas would be analyzed as separate functions
  /// and lose the capability context.
  void wait(MutexLock& lock) { cv_.wait(lock); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sp
