// Clang Thread Safety Analysis attribute macros.
//
// These expand to `__attribute__((...))` under Clang and to nothing elsewhere,
// so annotating a lock domain costs nothing on GCC builds while a Clang build
// with -Wthread-safety (the SP_THREAD_SAFETY CMake knob turns it into
// -Werror=thread-safety) proves at compile time that every access to guarded
// state happens under the right capability. The macro set mirrors the
// documented analysis surface: capabilities, scoped capabilities, guarded
// members, requires/acquire/release/try-acquire clauses, lock-ordering hints,
// and the (audited, greppable) SP_NO_THREAD_SAFETY_ANALYSIS escape.
//
// Convention in this tree: raw std::mutex/std::shared_mutex never appear
// outside src/support/ (sp_lint rule `raw-mutex` enforces this); code takes
// capabilities through sp::Mutex / sp::SharedMutex and the RAII guards in
// support/mutex.hpp, and annotates guarded members with SP_GUARDED_BY.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on non-Clang compilers
#endif

// Type annotations -----------------------------------------------------------

// Marks a class as a capability (a lock). The string names the capability
// kind in diagnostics ("mutex", "shared_mutex").
#define SP_CAPABILITY(x) SP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (std::lock_guard-style guards).
#define SP_SCOPED_CAPABILITY SP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Member annotations ---------------------------------------------------------

// The member may only be read/written while holding capability `x`
// (exclusively for writes, at least shared for reads).
#define SP_GUARDED_BY(x) SP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member: the pointee (not the pointer itself) is guarded by `x`.
#define SP_PT_GUARDED_BY(x) SP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Lock-ordering declarations: this capability must be acquired before/after
// the listed ones. Violations surface as negative-capability warnings.
#define SP_ACQUIRED_BEFORE(...) SP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SP_ACQUIRED_AFTER(...) SP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Function annotations -------------------------------------------------------

// Caller must hold the capability exclusively (REQUIRES) or at least shared
// (REQUIRES_SHARED) for the duration of the call; the function neither
// acquires nor releases it.
#define SP_REQUIRES(...) SP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SP_REQUIRES_SHARED(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The function acquires/releases the capability and holds it past the call
// boundary (lock()/unlock() members and scoped-guard constructors).
#define SP_ACQUIRE(...) SP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SP_ACQUIRE_SHARED(...) SP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define SP_RELEASE(...) SP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SP_RELEASE_SHARED(...) SP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (scoped guards whose destructor
// may drop an exclusive or a shared hold).
#define SP_RELEASE_GENERIC(...) SP_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

// try_lock-style functions: acquires the capability iff the return value
// equals the first argument.
#define SP_TRY_ACQUIRE(...) SP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define SP_TRY_ACQUIRE_SHARED(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock prevention for non-reentrant
// locks: public entry points that take the lock themselves).
#define SP_EXCLUDES(...) SP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; teaches the analysis a fact
// it cannot see (e.g. single-threaded startup).
#define SP_ASSERT_CAPABILITY(x) SP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define SP_ASSERT_SHARED_CAPABILITY(x) \
  SP_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

// The function returns a reference to the given capability (accessor for a
// member lock).
#define SP_RETURN_CAPABILITY(x) SP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Zero uses are allowed
// in src/core/ and src/osn/; anywhere else each use carries an inline
// justification comment. Greppable by design.
#define SP_NO_THREAD_SAFETY_ANALYSIS SP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
