// Hot-path serving cache (ROADMAP item 4): an admission-controlled sharded
// LRU over hot per-puzzle verification state, plus a negative cache for DH
// misses.
//
// What it holds (all keyed by post + puzzle epoch, see Session):
//   * kC1Sig — "the sharer's Schnorr signature on (URL, k, K_Z) verified"
//     markers, so a hot C1 post pays the two scalar multiplications once per
//     epoch instead of once per request.
//   * kC2Dem — the CP-ABE KEM/DEM key recovered by a successful Construction
//     2 access, so hot C2 posts skip deserialize + Reconstruct + KeyGen +
//     Decrypt (the pairing-heavy receiver phases) and the PK/MK downloads.
//   * kDhNegative — "URL authoritatively absent at the DH" markers, so a
//     revoked post fails fast instead of paying a round trip per retry.
//
// Correctness contract: Session consults the cache only AFTER the SP's
// Verify has granted the request, so a cache entry can shortcut work but can
// never flip a denial into a grant. Refresh/revocation bump the post's
// epoch (stale keys become unreachable) AND erase the post's key range
// (belt and suspenders — a stale grant is a correctness bug, not a perf
// bug). Values may be key material: every dropped value is secure_wipe()d.
//
// Shape: N independent shards (key-hash striped, one sp::Mutex each — the
// ShardedStore idiom), each an ordered std::map + intrusive LRU list.
// Ordered maps make per-post invalidation a lower_bound range erase; keys
// are "<post>\x1f<epoch>\x1f<class>[\x1f<suffix>]" so one prefix sweep
// clears every class. Admission is TinyLFU-style: a small per-shard
// frequency sketch; when a shard is full, a newcomer must be at least as
// popular as the LRU victim or it is rejected — one-hit wonders from the
// Zipf tail cannot wash out the hot head.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::core {

using crypto::Bytes;

/// Knobs for the serving cache (SessionConfig.cache; nullopt = no cache
/// tier, the pre-PR-10 serving path bit for bit).
struct CacheConfig {
  std::size_t capacity = 4096;          ///< max positive entries (all shards)
  std::size_t negative_capacity = 512;  ///< max DH-miss markers (all shards)
  std::size_t shards = 8;               ///< lock stripes (>= 1)
  bool admission = true;  ///< frequency-sketch admission at capacity
};

class ServeCache {
 public:
  /// Entry classes — metric labels and key segments. kDhNegative lives in
  /// the (valueless) negative maps; the others in the positive LRU.
  enum class Kind : std::size_t { kC1Sig = 0, kC2Dem = 1, kDhNegative = 2 };
  static constexpr std::size_t kKindCount = 3;

  explicit ServeCache(CacheConfig config);
  ~ServeCache();
  ServeCache(const ServeCache&) = delete;
  ServeCache& operator=(const ServeCache&) = delete;
  ServeCache(ServeCache&&) = delete;
  ServeCache& operator=(ServeCache&&) = delete;

  /// Canonical cache key. The epoch segment makes every refresh/revocation
  /// a whole-post key rotation even if an invalidation were missed; the
  /// suffix pins class-specific identity (e.g. the URL a signature covers).
  [[nodiscard]] static std::string key(std::string_view post_id, std::uint64_t epoch, Kind kind,
                                       std::string_view suffix = {});

  /// Positive lookup; a hit bumps LRU recency and the admission sketch.
  /// Returns a copy (the store may evict concurrently). `kind` labels the
  /// hit/miss series only — the key already encodes it.
  [[nodiscard]] std::optional<Bytes> get(const std::string& key, Kind kind);

  /// Insert (or refresh) a positive entry. At capacity the admission sketch
  /// may reject the newcomer instead of evicting the LRU victim; either
  /// way every dropped value is wiped.
  void put(const std::string& key, Kind kind, Bytes value);

  /// Negative-cache lookup: true = this URL is known absent.
  [[nodiscard]] bool negative_hit(const std::string& key);
  /// Record an authoritative DH miss (caller must have confirmed absence —
  /// an injected fault on a live blob must never land here).
  void negative_put(const std::string& key);

  /// Churn-driven invalidation: erase every entry (positive and negative,
  /// all epochs, all classes) for `post_id`. Returns entries erased.
  std::size_t invalidate_post(std::string_view post_id);

  /// Drop everything (wiping values).
  void clear();

  /// Point-in-time per-instance counters (global sp_cache_* series aggregate
  /// across instances; tests cross-check deltas against driven load).
  struct Stats {
    std::array<std::uint64_t, kKindCount> hits{};
    std::array<std::uint64_t, kKindCount> misses{};
    std::array<std::uint64_t, kKindCount> insertions{};
    std::uint64_t admission_rejected = 0;
    std::uint64_t evictions = 0;           ///< positive LRU evictions
    std::uint64_t negative_evictions = 0;  ///< negative FIFO evictions
    std::uint64_t invalidated = 0;         ///< entries erased by invalidate_post
    std::size_t entries = 0;
    std::size_t negative_entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t negative_size() const;
  /// Hard bounds actually enforced (per-shard rounding included): size()
  /// never exceeds capacity(), negative_size() never negative_capacity().
  [[nodiscard]] std::size_t capacity() const { return per_shard_ * shards_.size(); }
  [[nodiscard]] std::size_t negative_capacity() const {
    return negative_per_shard_ * shards_.size();
  }

 private:
  struct Entry;
  using Map = std::map<std::string, Entry>;
  struct Entry {
    Bytes value;
    std::list<Map::iterator>::iterator lru;  ///< position in Shard::lru
    std::uint8_t kind = 0;
  };

  /// One lock stripe. The admission sketch is two-hash min-count with
  /// saturating 4-bit-style counters, halved periodically so popularity ages.
  struct Shard {
    static constexpr std::size_t kSketchSlots = 1024;
    mutable sp::Mutex mu;
    Map entries SP_GUARDED_BY(mu);
    std::list<Map::iterator> lru SP_GUARDED_BY(mu);  ///< front = most recent
    std::map<std::string, std::list<std::string>::iterator> negative SP_GUARDED_BY(mu);
    std::list<std::string> negative_fifo SP_GUARDED_BY(mu);  ///< front = oldest
    std::array<std::uint8_t, kSketchSlots> sketch SP_GUARDED_BY(mu){};
    std::uint32_t sketch_ops SP_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;
  static void touch_sketch(Shard& shard) SP_REQUIRES(shard.mu);
  static void sketch_count(Shard& shard, std::string_view key, bool increment,
                           std::uint8_t* out_estimate) SP_REQUIRES(shard.mu);
  /// Erase one positive entry (wiping its value) with `it` valid in `shard`.
  void erase_entry(Shard& shard, Map::iterator it) SP_REQUIRES(shard.mu);

  CacheConfig config_;
  std::size_t per_shard_ = 0;
  std::size_t negative_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-instance stats (relaxed: counters, not synchronization).
  mutable std::array<std::atomic<std::uint64_t>, kKindCount> hits_{};
  mutable std::array<std::atomic<std::uint64_t>, kKindCount> misses_{};
  std::array<std::atomic<std::uint64_t>, kKindCount> insertions_{};
  std::atomic<std::uint64_t> admission_rejected_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> negative_evictions_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> negative_entries_{0};
};

}  // namespace sp::core
