// Construction 1 puzzle wire format (paper §V-A):
//
//   Z_O = { <q_1, H(a_1, K_Z), a_1 ⊕ d_1>, ..., <q_n, H(a_n, K_Z), a_n ⊕ d_n>,
//           n, k, K_Z, URL_O }
//
// plus the sharer's signature over the tamper-sensitive fields (URL_O, K_Z,
// k and the question/hash list) — the §VI-A countermeasure against a
// malicious SP mounting DoS by rewriting them.
#pragma once

#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::core {

using crypto::Bytes;

struct PuzzleEntry {
  std::string question;  ///< q_i — visible to everyone
  Bytes answer_hash;     ///< H(a_i, K_Z) — lets SP verify without learning a_i
  Bytes blinded_share;   ///< a_i ⊕ d_i — share unblinds only with the answer

  friend bool operator==(const PuzzleEntry&, const PuzzleEntry&) = default;
};

struct Puzzle {
  std::vector<PuzzleEntry> entries;  ///< n entries
  std::size_t threshold = 0;         ///< k = ζ_O
  Bytes puzzle_key;                  ///< K_Z
  std::string url;                   ///< URL_O at the storage host
  Bytes sharer_public_key;           ///< serialized Schnorr public key
  Bytes signature;                   ///< over signed_payload()

  [[nodiscard]] std::size_t n() const { return entries.size(); }

  /// The byte string the sharer signs (everything a malicious SP could
  /// usefully rewrite).
  [[nodiscard]] Bytes signed_payload() const;

  /// Wire format; its size is what the Fig. 10 sharer network model charges.
  [[nodiscard]] Bytes serialize() const;
  static Puzzle deserialize(std::span<const std::uint8_t> data);

  friend bool operator==(const Puzzle&, const Puzzle&) = default;
};

}  // namespace sp::core
