// End-to-end orchestration: runs Construction 1 / Construction 2 over the
// simulated OSN (SocialGraph + ServiceProvider + StorageHost) with the
// network/device cost model, producing exactly the local-vs-network delay
// decomposition of the paper's Figure 10.
//
// The session is the library's top-level convenience API — the examples and
// the benchmark harness both drive it — but every protocol step is also
// reachable individually through Construction1/Construction2 for callers
// that bring their own transport.
//
// Concurrency model (DESIGN.md §"Concurrent serving core" has the full
// story): the receiver-side path — access / access_with_retries /
// access_parallel — is const and reentrant; any number of threads may serve
// accesses concurrently, including while sharer-side writers (register_user,
// befriend, share_*, refresh) run. Writers are individually thread-safe but
// serialize against each other and against readers on the puzzle registry's
// shared_mutex where they must.
#pragma once

#include <map>
#include <memory>
#include <span>

#include "core/construction1.hpp"
#include "core/construction2.hpp"
#include "core/serve_cache.hpp"
#include "core/verify_queue.hpp"
#include "net/faults.hpp"
#include "net/simnet.hpp"
#include "obs/trace.hpp"
#include "osn/service_provider.hpp"
#include "osn/social_graph.hpp"
#include "osn/storage_host.hpp"
#include "storage/wal.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::core {

/// Which construction a share used (recorded per post).
enum class SchemeKind { kConstruction1, kConstruction2 };

struct ShareReceipt {
  std::string post_id;       ///< puzzle id hyperlinked on the sharer's feed
  net::CostLedger cost;      ///< sharer-side Fig. 10 decomposition
  std::size_t object_bytes = 0;
};

struct AccessResult {
  bool granted = false;      ///< SP-side Verify outcome
  std::optional<Bytes> object;  ///< decrypted object on full success
  net::CostLedger cost;      ///< receiver-side Fig. 10 decomposition
  /// Why the serving path failed, when it failed on infrastructure rather
  /// than knowledge (DESIGN.md "Fault model"). Never set on a clean denial.
  std::optional<net::ServeError> error;
  /// Serving attempts access_with_retries spent (fault retries + challenge
  /// draws; plain access() always reports 1).
  int attempts = 1;

  [[nodiscard]] bool success() const { return granted && object.has_value(); }
};

/// Durable SP/DH state rooted at `dir` (the SP persists under dir/sp, the
/// DH under dir/dh). Reopening a session on the same directory rebuilds
/// both hosts' stores from their WAL/segment pairs.
struct PersistenceConfig {
  std::string dir;
  storage::WalWriter::Fsync fsync = storage::WalWriter::Fsync::kBatch;
  std::uint64_t checkpoint_wal_bytes = 64ull << 20;
};

struct SessionConfig {
  ec::ParamPreset pairing_preset = ec::ParamPreset::kTest;
  net::LinkProfile link = net::wlan_80211n_to_ec2();
  std::string seed = "sp-session";
  /// Fault schedule for the serving stack; nullopt = fault-free (the
  /// pre-chaos behavior, bit for bit).
  std::optional<net::FaultPlan> faults;
  /// Retry/backoff/deadline policy applied by access_with_retries and
  /// access_parallel to transient faults.
  net::RetryPolicy retry;
  /// nullopt = in-memory hosts (the pre-persistence behavior, bit for bit).
  std::optional<PersistenceConfig> persistence;
  /// Hot-path serving cache (serve_cache.hpp): memoized C1 signature checks,
  /// C2 DEM keys, and DH-miss markers, keyed by post + epoch. nullopt = no
  /// cache tier (the pre-cache serving path, bit for bit). Refresh and
  /// revoke invalidate — a stale grant is a correctness bug.
  std::optional<CacheConfig> cache;
};

class Session {
 public:
  explicit Session(SessionConfig config);

  // ---- OSN management -------------------------------------------------
  [[nodiscard]] osn::UserId register_user(const std::string& name);
  void befriend(osn::UserId a, osn::UserId b);
  /// Twitter-style directed follow (see osn::Visibility::kPublic).
  void follow(osn::UserId follower, osn::UserId followee) { graph_.follow(follower, followee); }
  [[nodiscard]] const osn::SocialGraph& graph() const { return graph_; }
  [[nodiscard]] osn::ServiceProvider& service_provider() { return sp_; }
  [[nodiscard]] osn::StorageHost& storage_host() { return dh_; }

  // ---- sharing ---------------------------------------------------------
  /// Construction 1 share: Upload + DH store + SP record + feed post.
  /// `visibility` = kPublic posts the hyperlink Twitter-style: any registered
  /// user can attempt the puzzle — the context IS the access control.
  ShareReceipt share_c1(osn::UserId sharer, std::span<const std::uint8_t> object,
                        const Context& ctx, std::size_t k, std::size_t n,
                        const net::DeviceProfile& device,
                        osn::Visibility visibility = osn::Visibility::kFriends);

  /// Construction 2 share: Setup + Encrypt + Perturb + four-file upload.
  ShareReceipt share_c2(osn::UserId sharer, std::span<const std::uint8_t> object,
                        const Context& ctx, std::size_t k, const net::DeviceProfile& device,
                        osn::Visibility visibility = osn::Visibility::kFriends);

  /// Paper §VI-C collusion countermeasure: "Sharers can periodically modify
  /// the puzzle Z_O and/or the encryption key K_O (by re-encrypting the
  /// object)". Re-runs the sharer-side pipeline for an existing post with a
  /// fresh object secret, puzzle key and storage URL; the post id (and the
  /// feed hyperlink) stay stable, previously leaked shares become useless.
  /// Only the original sharer may refresh (throws std::logic_error
  /// otherwise). The sharer supplies the object and context again — neither
  /// is recoverable from the hosts, by design.
  ///
  /// Refresh is the single-writer path: it holds the puzzle registry's
  /// exclusive lock for the whole re-upload, so in-flight accesses always
  /// see either the old or the new puzzle, never a mix.
  ShareReceipt refresh(osn::UserId sharer, const std::string& post_id,
                       std::span<const std::uint8_t> object, const Context& ctx,
                       const net::DeviceProfile& device);

  /// Paper §V dynamic-context revocation: the sharer pulls the encrypted
  /// object from the DH, so granted verifications can no longer complete —
  /// in-flight and future accesses fail with kDhMiss until the sharer
  /// refresh()es the post with a fresh object/puzzle. Bumps the puzzle
  /// epoch and invalidates every cached entry for the post (the serving
  /// cache must never satisfy a request for a revoked object). Idempotent;
  /// only the original sharer may revoke (throws std::logic_error
  /// otherwise). The SP record stays: the puzzle is still displayed, the
  /// paper's ACL lives at the object, not the challenge.
  void revoke(osn::UserId sharer, const std::string& post_id);

  // ---- receiving -------------------------------------------------------
  /// Full receiver flow for a feed hyperlink. Enforces OSN visibility: only
  /// the sharer's friends reach the puzzle (throws std::logic_error
  /// otherwise — the paper delegates stranger-blocking to Facebook ACLs).
  /// Const and reentrant: safe to call from many threads at once.
  AccessResult access(osn::UserId receiver, const std::string& post_id,
                      const Knowledge& knowledge, const net::DeviceProfile& device) const;

  /// The unified retry loop (DESIGN.md "Fault model & retry semantics").
  /// Two independent retry budgets:
  ///  * challenge draws — Construction 1's DisplayPuzzle shows a random
  ///    r-subset of questions, so a receiver who knows enough answers overall
  ///    can still draw a challenge missing them (the web UI just reloads the
  ///    page); up to `max_draws` fresh challenges.
  ///  * transient faults — retried with the session's RetryPolicy
  ///    (exponential backoff, seeded jitter) until max_attempts or the
  ///    modeled deadline runs out (then error = kDeadlineExceeded).
  /// The returned ledger is the sum over every attempt, failed ones and
  /// backoff waits included; `attempts` reports how many were spent.
  AccessResult access_with_retries(osn::UserId receiver, const std::string& post_id,
                                   const Knowledge& knowledge,
                                   const net::DeviceProfile& device, int max_draws = 8) const;

  /// One receiver request inside an access_parallel batch.
  struct AccessRequest {
    osn::UserId receiver = 0;
    std::string post_id;
    Knowledge knowledge;
    net::DeviceProfile device = net::pc_profile();
    int max_draws = 1;  ///< challenge-draw budget (faults retry per RetryPolicy)
  };

  /// Fans a batch of access requests over a bounded-queue thread pool and
  /// returns one result per request, in request order. `num_threads` == 0
  /// picks hardware_concurrency (at least 1). A request that throws (unknown
  /// post, OSN ACL violation) poisons only its own slot: after the whole
  /// batch completes, the first captured exception is rethrown.
  std::vector<AccessResult> access_parallel(std::span<const AccessRequest> requests,
                                            std::size_t num_threads = 0) const;

  /// A user's view of their feed.
  [[nodiscard]] std::vector<osn::Post> feed_of(osn::UserId user) const {
    return graph_.feed_for(user);
  }

  [[nodiscard]] const Construction1& c1() const { return *c1_; }
  [[nodiscard]] const Construction2& c2() const { return *c2_; }
  [[nodiscard]] const ec::Curve& curve() const { return curve_; }
  /// The session's fault schedule (null when configured fault-free). Chaos
  /// tests use it to cross-check injected-fault counts and schedule digests.
  [[nodiscard]] const net::FaultInjector* fault_injector() const { return injector_.get(); }
  /// The serving cache (null when configured cache-free). Exposed for
  /// hit-rate reporting and the invariant suites; mutating it directly from
  /// outside the serving path voids the stale-grant guarantees.
  [[nodiscard]] ServeCache* serve_cache() const { return cache_.get(); }
  /// Current puzzle epoch for a post (bumped by refresh/revoke) — cache
  /// invariant tests pin that churn rotates it.
  [[nodiscard]] std::uint64_t puzzle_epoch(const std::string& post_id) const;

 private:
  struct StoredPuzzle {
    SchemeKind kind;
    osn::UserId sharer;
    osn::Visibility visibility = osn::Visibility::kFriends;
    // C1 state.
    std::optional<Puzzle> puzzle;
    // C2 state (what the SP holds: τ', PK, MK, URL).
    std::optional<Construction2::UploadResult> c2_files;
    std::string url;
    /// Bumped by refresh/revoke; part of every serving-cache key, so stale
    /// entries become unreachable even before invalidation sweeps them.
    std::uint64_t epoch = 0;
    /// True between revoke() and the restoring refresh(): the DH blob is
    /// gone, so there is no old URL to retire on refresh.
    bool revoked = false;
  };

  /// Forks a per-operation child DRBG under rng_mutex_ (Drbg::fork advances
  /// the parent stream, so unsynchronized forks would race). The child is
  /// exclusively owned by the calling operation — no further locking.
  crypto::Drbg fork_rng(const std::string& label) const SP_EXCLUDES(rng_mutex_);

  /// Body of access_with_retries under an externally owned root span:
  /// access_parallel pre-creates each request's "sp.request" root at submit
  /// time (so pool queue-wait spans land inside the request's trace) and
  /// the worker lambda keeps it alive until the pool's execution span has
  /// ended — the root must end last or pool.task would be sealed out.
  AccessResult access_with_retries_impl(osn::UserId receiver, const std::string& post_id,
                                        const Knowledge& knowledge,
                                        const net::DeviceProfile& device, int max_draws,
                                        obs::Span& root) const;

  // Both take `stored` as a reference into puzzles_, so the caller must keep
  // the registry shared-locked for the whole call — annotated, so Clang
  // rejects any future path that drops the lock before the access finishes.
  // `trace` is the request's span context; phase spans attach under it.
  // `post_id` keys the serving cache together with stored.epoch.
  AccessResult access_c1(const std::string& post_id, const StoredPuzzle& stored,
                         const Knowledge& knowledge, net::CostLedger& ledger, crypto::Drbg& rng,
                         net::FaultStream* faults, const obs::TraceContext& trace) const
      SP_REQUIRES_SHARED(puzzles_mutex_);
  AccessResult access_c2(const std::string& post_id, const StoredPuzzle& stored,
                         const Knowledge& knowledge, net::CostLedger& ledger, crypto::Drbg& rng,
                         net::FaultStream* faults, const obs::TraceContext& trace) const
      SP_REQUIRES_SHARED(puzzles_mutex_);

  SessionConfig config_;
  ec::Curve curve_;
  std::unique_ptr<Construction1> c1_;
  std::unique_ptr<Construction2> c2_;
  osn::SocialGraph graph_;
  osn::ServiceProvider sp_;
  osn::StorageHost dh_;
  net::Network network_;
  std::unique_ptr<net::FaultInjector> injector_;  ///< null = fault-free session
  mutable sp::Mutex rng_mutex_;
  mutable crypto::Drbg rng_ SP_GUARDED_BY(rng_mutex_);
  sp::Mutex keys_mutex_;  ///< guards user_keys_ lookups/inserts (nodes are stable)
  std::map<osn::UserId, sig::KeyPair> user_keys_ SP_GUARDED_BY(keys_mutex_);
  /// Readers (access*) hold this shared for the whole request so refresh
  /// can't mutate a puzzle out from under them; share_* take it exclusively
  /// only around registry insertion, refresh for its whole body.
  mutable sp::SharedMutex puzzles_mutex_;
  std::map<std::string, StoredPuzzle> puzzles_ SP_GUARDED_BY(puzzles_mutex_);  ///< SP-side protocol state
  /// Hot-path serving cache (null = cache-free session). Internally sharded
  /// and locked; accessed under the registry's shared lock on the serving
  /// path and its exclusive lock from refresh/revoke, so invalidation is
  /// never concurrent with a fill for the same request.
  mutable std::unique_ptr<ServeCache> cache_;
  /// Cross-request verification queue (PR 7): every access request's SP
  /// check set and CP-ABE leaf pairings run through this shared bounded
  /// pool. Declared last so it is destroyed first — after destruction no
  /// serving path can touch the members above, and all batches are waited
  /// within their request, so teardown never races live jobs.
  mutable std::unique_ptr<VerifyQueue> verify_queue_;
};

}  // namespace sp::core
