#include "core/serve_cache.hpp"

#include <algorithm>
#include <functional>

#include "crypto/secret.hpp"
#include "obs/metrics.hpp"

namespace sp::core {

namespace {

constexpr char kSep = '\x1f';  // unit separator: never appears in post ids

const char* kind_label(ServeCache::Kind kind) {
  switch (kind) {
    case ServeCache::Kind::kC1Sig:
      return "c1_sig";
    case ServeCache::Kind::kC2Dem:
      return "c2_dem";
    case ServeCache::Kind::kDhNegative:
      return "dh_negative";
  }
  return "unknown";
}

/// Process-wide sp_cache_* series (docs/OBSERVABILITY.md). Aggregated over
/// every ServeCache instance, SessionMetrics-style.
struct CacheMetrics {
  std::array<obs::Counter*, ServeCache::kKindCount> hit;
  std::array<obs::Counter*, ServeCache::kKindCount> miss;
  std::array<obs::Counter*, ServeCache::kKindCount> insert;
  obs::Counter& admission_rejected;
  obs::Counter& evictions_positive;
  obs::Counter& evictions_negative;
  obs::Counter& invalidated;
  obs::Gauge& entries_positive;
  obs::Gauge& entries_negative;

  static obs::Counter* req(ServeCache::Kind kind, const char* result) {
    return &obs::MetricsRegistry::global().counter(
        "sp_cache_requests_total", "Serving-cache lookups by entry class and result",
        {{"class", kind_label(kind)}, {"result", result}});
  }
  static obs::Counter* ins(ServeCache::Kind kind) {
    return &obs::MetricsRegistry::global().counter(
        "sp_cache_insertions_total", "Serving-cache entries admitted, by entry class",
        {{"class", kind_label(kind)}});
  }

  static CacheMetrics& get() {
    using Kind = ServeCache::Kind;
    auto& reg = obs::MetricsRegistry::global();
    static CacheMetrics m{
        {req(Kind::kC1Sig, "hit"), req(Kind::kC2Dem, "hit"), req(Kind::kDhNegative, "hit")},
        {req(Kind::kC1Sig, "miss"), req(Kind::kC2Dem, "miss"), req(Kind::kDhNegative, "miss")},
        {ins(Kind::kC1Sig), ins(Kind::kC2Dem), ins(Kind::kDhNegative)},
        reg.counter("sp_cache_admission_rejected_total",
                    "Inserts refused by the frequency-sketch admission policy"),
        reg.counter("sp_cache_evictions_total", "Serving-cache evictions",
                    {{"cache", "positive"}}),
        reg.counter("sp_cache_evictions_total", "", {{"cache", "negative"}}),
        reg.counter("sp_cache_invalidated_total",
                    "Entries erased by refresh/revocation churn invalidation"),
        reg.gauge("sp_cache_entries", "Live serving-cache entries", {{"cache", "positive"}}),
        reg.gauge("sp_cache_entries", "", {{"cache", "negative"}}),
    };
    return m;
  }
};

/// 64-bit mix (splitmix64 finalizer) for the sketch's second hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ServeCache::ServeCache(CacheConfig config) : config_(config) {
  const std::size_t n_shards = std::max<std::size_t>(1, config_.shards);
  per_shard_ = std::max<std::size_t>(1, (config_.capacity + n_shards - 1) / n_shards);
  negative_per_shard_ =
      std::max<std::size_t>(1, (config_.negative_capacity + n_shards - 1) / n_shards);
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

ServeCache::~ServeCache() { clear(); }

std::string ServeCache::key(std::string_view post_id, std::uint64_t epoch, Kind kind,
                            std::string_view suffix) {
  std::string k;
  k.reserve(post_id.size() + suffix.size() + 24);
  k.append(post_id);
  k.push_back(kSep);
  k.append(std::to_string(epoch));
  k.push_back(kSep);
  k.append(kind_label(kind));
  if (!suffix.empty()) {
    k.push_back(kSep);
    k.append(suffix);
  }
  return k;
}

ServeCache::Shard& ServeCache::shard_for(std::string_view key) const {
  const std::uint64_t h = mix64(std::hash<std::string_view>{}(key));
  return *shards_[h % shards_.size()];
}

void ServeCache::touch_sketch(Shard& shard) {
  // Aging: halve every counter once enough touches accumulate, so a burst
  // from last epoch cannot outvote the current working set forever.
  if (++shard.sketch_ops >= 8 * Shard::kSketchSlots) {
    for (std::uint8_t& c : shard.sketch) c = static_cast<std::uint8_t>(c >> 1);
    shard.sketch_ops /= 2;
  }
}

void ServeCache::sketch_count(Shard& shard, std::string_view key, bool increment,
                              std::uint8_t* out_estimate) {
  const std::uint64_t h = std::hash<std::string_view>{}(key);
  const std::size_t a = h % Shard::kSketchSlots;
  const std::size_t b = mix64(h) % Shard::kSketchSlots;
  const std::uint8_t estimate = std::min(shard.sketch[a], shard.sketch[b]);
  if (increment && estimate < 15) {
    // Conservative update: only the minimum counters grow, which keeps the
    // sketch's overestimates small.
    if (shard.sketch[a] == estimate) ++shard.sketch[a];
    if (shard.sketch[b] == estimate && (a != b || shard.sketch[b] <= estimate)) ++shard.sketch[b];
  }
  if (out_estimate != nullptr) *out_estimate = estimate;
}

void ServeCache::erase_entry(Shard& shard, Map::iterator it) {
  crypto::secure_wipe(it->second.value);
  shard.lru.erase(it->second.lru);
  shard.entries.erase(it);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  CacheMetrics::get().entries_positive.add(-1);
}

std::optional<Bytes> ServeCache::get(const std::string& key, Kind kind) {
  const auto k = static_cast<std::size_t>(kind);
  Shard& shard = shard_for(key);
  const sp::MutexLock lock(shard.mu);
  touch_sketch(shard);
  sketch_count(shard, key, /*increment=*/true, nullptr);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_[k].fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().miss[k]->inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
  hits_[k].fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().hit[k]->inc();
  return it->second.value;
}

void ServeCache::put(const std::string& key, Kind kind, Bytes value) {
  const auto k = static_cast<std::size_t>(kind);
  Shard& shard = shard_for(key);
  const sp::MutexLock lock(shard.mu);
  touch_sketch(shard);
  std::uint8_t newcomer_freq = 0;
  sketch_count(shard, key, /*increment=*/true, &newcomer_freq);

  if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
    // Refresh in place: wipe the superseded value, keep the LRU node.
    crypto::secure_wipe(it->second.value);
    it->second.value = std::move(value);
    it->second.kind = static_cast<std::uint8_t>(k);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    insertions_[k].fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().insert[k]->inc();
    return;
  }

  if (shard.entries.size() >= per_shard_) {
    const Map::iterator victim = shard.lru.back();
    if (config_.admission) {
      std::uint8_t victim_freq = 0;
      sketch_count(shard, victim->first, /*increment=*/false, &victim_freq);
      if (newcomer_freq < victim_freq) {
        // The resident is hotter: keep it, drop (and wipe) the newcomer.
        crypto::secure_wipe(value);
        admission_rejected_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().admission_rejected.inc();
        return;
      }
    }
    erase_entry(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().evictions_positive.inc();
  }

  const auto [it, inserted] = shard.entries.emplace(key, Entry{});
  it->second.value = std::move(value);
  it->second.kind = static_cast<std::uint8_t>(k);
  shard.lru.push_front(it);
  it->second.lru = shard.lru.begin();
  entries_.fetch_add(1, std::memory_order_relaxed);
  insertions_[k].fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().entries_positive.add(1);
  CacheMetrics::get().insert[k]->inc();
}

bool ServeCache::negative_hit(const std::string& key) {
  const auto k = static_cast<std::size_t>(Kind::kDhNegative);
  Shard& shard = shard_for(key);
  const sp::MutexLock lock(shard.mu);
  const bool hit = shard.negative.find(key) != shard.negative.end();
  (hit ? hits_[k] : misses_[k]).fetch_add(1, std::memory_order_relaxed);
  (hit ? CacheMetrics::get().hit[k] : CacheMetrics::get().miss[k])->inc();
  return hit;
}

void ServeCache::negative_put(const std::string& key) {
  const auto k = static_cast<std::size_t>(Kind::kDhNegative);
  Shard& shard = shard_for(key);
  const sp::MutexLock lock(shard.mu);
  if (shard.negative.find(key) != shard.negative.end()) return;
  if (shard.negative.size() >= negative_per_shard_) {
    // FIFO, not LRU: a miss marker is a fact with a lifetime (until the next
    // re-upload), not a popularity contest.
    const std::string& oldest = shard.negative_fifo.front();
    shard.negative.erase(oldest);
    shard.negative_fifo.pop_front();
    negative_entries_.fetch_sub(1, std::memory_order_relaxed);
    negative_evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().evictions_negative.inc();
    CacheMetrics::get().entries_negative.add(-1);
  }
  shard.negative_fifo.push_back(key);
  shard.negative.emplace(key, std::prev(shard.negative_fifo.end()));
  negative_entries_.fetch_add(1, std::memory_order_relaxed);
  insertions_[k].fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().entries_negative.add(1);
  CacheMetrics::get().insert[k]->inc();
}

std::size_t ServeCache::invalidate_post(std::string_view post_id) {
  std::string prefix(post_id);
  prefix.push_back(kSep);
  std::size_t erased = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const sp::MutexLock lock(shard.mu);
    for (auto it = shard.entries.lower_bound(prefix);
         it != shard.entries.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
      erase_entry(shard, it++);
      ++erased;
    }
    for (auto it = shard.negative.lower_bound(prefix);
         it != shard.negative.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
      shard.negative_fifo.erase(it->second);
      it = shard.negative.erase(it);
      negative_entries_.fetch_sub(1, std::memory_order_relaxed);
      CacheMetrics::get().entries_negative.add(-1);
      ++erased;
    }
  }
  if (erased > 0) {
    invalidated_.fetch_add(erased, std::memory_order_relaxed);
    CacheMetrics::get().invalidated.inc(erased);
  }
  return erased;
}

void ServeCache::clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const sp::MutexLock lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) erase_entry(shard, it++);
    const std::size_t negatives = shard.negative.size();
    shard.negative.clear();
    shard.negative_fifo.clear();
    if (negatives > 0) {
      negative_entries_.fetch_sub(negatives, std::memory_order_relaxed);
      CacheMetrics::get().entries_negative.add(-static_cast<std::int64_t>(negatives));
    }
  }
}

ServeCache::Stats ServeCache::stats() const {
  Stats s;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    s.hits[k] = hits_[k].load(std::memory_order_relaxed);
    s.misses[k] = misses_[k].load(std::memory_order_relaxed);
    s.insertions[k] = insertions_[k].load(std::memory_order_relaxed);
  }
  s.admission_rejected = admission_rejected_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.negative_evictions = negative_evictions_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.negative_entries = negative_entries_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ServeCache::size() const { return entries_.load(std::memory_order_relaxed); }

std::size_t ServeCache::negative_size() const {
  return negative_entries_.load(std::memory_order_relaxed);
}

}  // namespace sp::core
