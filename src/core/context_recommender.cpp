#include "core/context_recommender.hpp"

#include <algorithm>
#include <stdexcept>

namespace sp::core {

std::vector<Recommendation> ContextRecommender::recommend(const EventRecord& event) {
  std::vector<Recommendation> out;
  auto add = [&out](std::string q, std::string a, double guessability) {
    if (a.empty()) return;
    out.push_back(Recommendation{ContextPair{std::move(q), std::move(a)}, guessability});
  };

  // Guessability reflects how large the plausible answer domain is for an
  // outsider: city (small domain) is weak, specific participants or
  // activities (large domain, insider-only) are strong.
  add("Which city was \"" + event.title + "\" in?", event.city, 0.8);
  add("Which month was \"" + event.title + "\"?", event.month, 0.7);
  add("Who hosted \"" + event.title + "\"?", event.host, 0.5);
  add("Where exactly did \"" + event.title + "\" happen?", event.venue, 0.35);
  add("What did we eat at \"" + event.title + "\"?", event.food, 0.3);
  for (const std::string& activity : event.activities) {
    add("What did we do at \"" + event.title + "\"? (one activity)", activity, 0.2);
  }
  if (!event.participants.empty()) {
    add("Name one person who was at \"" + event.title + "\".", event.participants.front(), 0.25);
    if (event.participants.size() > 1) {
      add("Name another person who was at \"" + event.title + "\".", event.participants[1], 0.25);
    }
  }

  std::stable_sort(out.begin(), out.end(), [](const Recommendation& a, const Recommendation& b) {
    return a.guessability < b.guessability;
  });
  return out;
}

Context ContextRecommender::build_context(const EventRecord& event, std::size_t n) {
  const auto recs = recommend(event);
  if (recs.size() < n) {
    throw std::invalid_argument("ContextRecommender: event yields only " +
                                std::to_string(recs.size()) + " pairs, need " + std::to_string(n));
  }
  Context ctx;
  for (std::size_t i = 0; i < n; ++i) ctx.add(recs[i].pair.question, recs[i].pair.answer);
  return ctx;
}

}  // namespace sp::core
