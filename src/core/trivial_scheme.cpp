#include "core/trivial_scheme.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "crypto/secret.hpp"

namespace sp::core {

std::size_t TrivialScheme::SharedObject::wire_size() const {
  std::size_t size = salt.size() + ciphertext.size() + 8;
  for (const auto& q : questions) size += 4 + q.size();
  return size;
}

Bytes TrivialScheme::derive_key(const std::vector<std::string>& questions,
                                const std::vector<std::string>& answers,
                                std::span<const std::uint8_t> salt) {
  // HKDF over the concatenation of all (question, normalized answer) pairs,
  // with unambiguous framing.
  Bytes ikm;
  for (std::size_t i = 0; i < questions.size(); ++i) {
    const Bytes q = crypto::to_bytes(questions[i]);
    Bytes a = crypto::to_bytes(Context::normalize_answer(answers[i]));
    ikm.push_back(static_cast<std::uint8_t>(q.size() >> 8));
    ikm.push_back(static_cast<std::uint8_t>(q.size()));
    ikm.insert(ikm.end(), q.begin(), q.end());
    ikm.push_back(static_cast<std::uint8_t>(a.size() >> 8));
    ikm.push_back(static_cast<std::uint8_t>(a.size()));
    ikm.insert(ikm.end(), a.begin(), a.end());
    crypto::secure_wipe(a);
  }
  Bytes okm = crypto::hkdf(ikm, salt, crypto::to_bytes("sp-trivial-scheme"), 32);
  crypto::secure_wipe(ikm);  // the IKM embeds every answer verbatim
  return okm;
}

TrivialScheme::SharedObject TrivialScheme::share(std::span<const std::uint8_t> object,
                                                 const Context& ctx, crypto::Drbg& rng) {
  if (ctx.empty()) throw std::invalid_argument("TrivialScheme::share: empty context");
  SharedObject out;
  out.salt = rng.bytes(16);
  std::vector<std::string> answers;
  for (const auto& p : ctx.pairs()) {
    out.questions.push_back(p.question);
    answers.push_back(p.answer);
  }
  Bytes key = derive_key(out.questions, answers, out.salt);
  out.ciphertext = crypto::seal(key, rng.bytes(16), object);
  crypto::secure_wipe(key);
  return out;
}

std::optional<Bytes> TrivialScheme::access(const SharedObject& shared,
                                           const Knowledge& knowledge) {
  std::vector<std::string> answers;
  for (const auto& q : shared.questions) {
    const auto a = knowledge.recall(q);
    if (!a) return std::nullopt;  // cannot even form the key material
    answers.push_back(*a);
  }
  Bytes key = derive_key(shared.questions, answers, shared.salt);
  std::optional<Bytes> object;
  try {
    object = crypto::open(key, shared.ciphertext);
  } catch (const std::runtime_error&) {
    object = std::nullopt;  // any single wrong answer garbles the key
  }
  crypto::secure_wipe(key);
  return object;
}

}  // namespace sp::core
