// Context model (paper §IV-A): the context C_O of a shared object O is a set
// of N question–answer pairs {<q_1,a_1>, ..., <q_N,a_N>}; each question
// defines a domain and its answer takes one value. A receiver "knows" the
// context when she can answer at least ζ_O = k of the questions.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"

namespace sp::core {

using crypto::Bytes;

struct ContextPair {
  std::string question;
  std::string answer;

  friend bool operator==(const ContextPair&, const ContextPair&) = default;
};

/// C_O: the full context a sharer attaches to an object.
class Context {
 public:
  Context() = default;
  explicit Context(std::vector<ContextPair> pairs);

  [[nodiscard]] const std::vector<ContextPair>& pairs() const { return pairs_; }
  [[nodiscard]] std::size_t size() const { return pairs_.size(); }
  [[nodiscard]] bool empty() const { return pairs_.empty(); }
  void add(std::string question, std::string answer);

  /// Answer for a question, if present.
  [[nodiscard]] std::optional<std::string> answer_of(const std::string& question) const;

  /// Answers are normalized before hashing so "Pizza " and "pizza" match —
  /// the paper's web forms implicitly did this; an exact-match deployment
  /// would frustrate legitimate receivers. Lowercases ASCII and trims
  /// surrounding whitespace.
  static std::string normalize_answer(std::string_view answer);

 private:
  std::vector<ContextPair> pairs_;
};

/// A receiver's knowledge: what she would answer per question (possibly
/// wrong, possibly missing). This is the R_O membership model — a user is in
/// R_O iff her knowledge matches >= ζ_O of the context answers.
class Knowledge {
 public:
  Knowledge() = default;
  explicit Knowledge(std::map<std::string, std::string> answers) : answers_(std::move(answers)) {}

  void learn(std::string question, std::string answer);
  [[nodiscard]] std::optional<std::string> recall(const std::string& question) const;
  [[nodiscard]] const std::map<std::string, std::string>& answers() const { return answers_; }

  /// How many of `ctx`'s pairs this knowledge answers correctly (after
  /// normalization).
  [[nodiscard]] std::size_t correct_count(const Context& ctx) const;

  /// Builds knowledge covering exactly `correct` randomly chosen pairs of
  /// `ctx`, with every other question answered wrongly — the workload
  /// generator for threshold experiments.
  static Knowledge partial(const Context& ctx, std::size_t correct, crypto::Drbg& rng);
  /// Full knowledge of a context.
  static Knowledge full(const Context& ctx);

 private:
  std::map<std::string, std::string> answers_;
};

}  // namespace sp::core
