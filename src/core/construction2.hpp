// Construction 2 (paper §V-B): CP-ABE social puzzles.
//
// Sharer: builds the height-1 access tree τ (root threshold k over N
// question/answer leaves), runs CP-ABE Setup + Encrypt, perturbs τ into τ'
// (answers → hashes) and swaps it into the ciphertext, then uploads
// {details = τ' + metadata, PK, MK} to the SP and CT' to the DH. The paper's
// Implementation 2 moves these as four separate files over cURL — the wire
// structs below preserve that decomposition because it dominates Fig. 10's
// I2 network delay.
//
// SP: displays the questions of τ'; Verify matches the receiver's hashed
// answers against the leaf hashes; on >= k matches releases URL_O (CT' at
// the DH) plus PK and MK.
//
// Receiver: downloads CT', Reconstructs τ̂ by substituting her answers for
// matching hashes, runs KeyGen(MK, S) with her answer attributes, Decrypts.
#pragma once

#include <optional>

#include "abe/cpabe.hpp"
#include "core/context.hpp"

namespace sp::core {

class VerifyQueue;

class Construction2 {
 public:
  explicit Construction2(const ec::Curve& curve);

  // ---------------------------------------------------------------- sharer
  /// The four uploads of the paper's Implementation 2 (plus the sealed
  /// object, which rides inside the ciphertext file as a hybrid payload).
  struct UploadResult {
    abe::AccessTree perturbed_tree;  ///< τ' — "details.txt" body
    Bytes public_key;                ///< PK file
    Bytes master_key;                ///< MK file (paper: SP shares with all users)
    Bytes ciphertext;                ///< CT' + sealed object, destined for DH
    std::size_t threshold = 0;       ///< k, displayed with the puzzle

    /// Bytes moved sharer -> SP (details + PK + MK).
    [[nodiscard]] std::size_t sp_upload_size() const;
  };
  [[nodiscard]] UploadResult upload(std::span<const std::uint8_t> object, const Context& ctx,
                                    std::size_t k, crypto::Drbg& rng) const;

  // -------------------------------------------------------------------- SP
  struct Challenge {
    std::vector<std::string> questions;
    std::size_t threshold = 0;

    [[nodiscard]] std::size_t wire_size() const;
  };
  [[nodiscard]] static Challenge display_puzzle(const abe::AccessTree& perturbed_tree,
                                                std::size_t threshold);

  /// The receiver's response: unkeyed answer hashes, one per question (the
  /// paper's Implementation 2 hashes with SHA-1; we use the same SHA-256
  /// hash that Perturb used so SP-side matching is a string compare).
  struct Response {
    std::vector<std::string> answer_hashes;  ///< hex, aligned with questions

    [[nodiscard]] std::size_t wire_size() const;
  };
  [[nodiscard]] static Response answer_puzzle(const Challenge& challenge,
                                              const Knowledge& knowledge);

  /// Verify: count matches against τ' leaf hashes; on >= k release URL + PK
  /// + MK (the receiver needs both to run KeyGen/Decrypt locally).
  struct VerifyReply {
    bool granted = false;
    std::string url;

    [[nodiscard]] std::size_t wire_size(const UploadResult& stored) const;
  };
  /// With a VerifyQueue, the leaf-hash check set runs as one job through
  /// the cross-request queue; null keeps the inline path, bit for bit.
  [[nodiscard]] static VerifyReply verify(const abe::AccessTree& perturbed_tree,
                                          std::size_t threshold, const Challenge& challenge,
                                          const Response& response, const std::string& url,
                                          VerifyQueue* queue = nullptr);

  // -------------------------------------------------------------- receiver
  /// Reconstruct + KeyGen + Decrypt. Returns the object plaintext, or
  /// nullopt when fewer than k answers match / decryption fails. `runner`
  /// (optional) executes the batched decrypt's independent per-leaf Miller
  /// loops — Session passes its VerifyQueue so concurrent requests share
  /// one bounded pool; empty runs them inline.
  /// `dem_key_out` (optional) receives the recovered KEM/DEM key, but only
  /// when the whole access succeeded — a fault anywhere in the pipeline
  /// leaves it untouched, so callers can never memoize a poisoned key.
  /// Callers own wiping it (it decrypts the object for the life of the
  /// puzzle epoch).
  [[nodiscard]] std::optional<Bytes> access(const Bytes& ciphertext_file,
                                            const Bytes& public_key_file,
                                            const Bytes& master_key_file,
                                            const Knowledge& knowledge, crypto::Drbg& rng,
                                            const abe::CpAbe::ParallelRunner& runner = {},
                                            Bytes* dem_key_out = nullptr) const;

  /// The memoized fast path (Session's serving cache): open the sealed
  /// envelope riding in `ciphertext_file` with an already-recovered DEM key,
  /// skipping deserialize + Reconstruct + KeyGen + Decrypt entirely. Returns
  /// nullopt on a malformed file or failed authentication — a corrupted
  /// delivery fails closed exactly like the full path.
  [[nodiscard]] static std::optional<Bytes> open_sealed(const Bytes& ciphertext_file,
                                                        std::span<const std::uint8_t> dem_key);

  [[nodiscard]] const abe::CpAbe& scheme() const { return scheme_; }

 private:
  abe::CpAbe scheme_;
};

}  // namespace sp::core
