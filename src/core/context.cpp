#include "core/context.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <stdexcept>

#include "crypto/secret.hpp"

namespace sp::core {

namespace {
// An answer that normalizes to "" is rejected outright: Construction 1
// blinds each Shamir share by XOR-cycling it with the normalized answer, and
// xor_cycle with an empty key is the identity — the share would reach the SP
// *unblinded* inside the public puzzle Z_O.
void require_usable_answer(const std::string& answer) {
  if (Context::normalize_answer(answer).empty()) {
    throw std::invalid_argument(
        "Context: answer normalizes to empty (would leave its share unblinded)");
  }
}
}  // namespace

Context::Context(std::vector<ContextPair> pairs) : pairs_(std::move(pairs)) {
  for (const auto& p : pairs_) {
    if (p.question.empty()) throw std::invalid_argument("Context: empty question");
    require_usable_answer(p.answer);
  }
}

void Context::add(std::string question, std::string answer) {
  if (question.empty()) throw std::invalid_argument("Context: empty question");
  require_usable_answer(answer);
  pairs_.push_back(ContextPair{std::move(question), std::move(answer)});
}

std::optional<std::string> Context::answer_of(const std::string& question) const {
  for (const auto& p : pairs_) {
    if (p.question != question) continue;
    return p.answer;
  }
  return std::nullopt;
}

std::string Context::normalize_answer(std::string_view answer) {
  std::size_t begin = 0, end = answer.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(answer[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(answer[end - 1]))) --end;
  std::string out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(answer[i]))));
  }
  return out;
}

void Knowledge::learn(std::string question, std::string answer) {
  answers_[std::move(question)] = std::move(answer);
}

std::optional<std::string> Knowledge::recall(const std::string& question) const {
  const auto it = answers_.find(question);
  if (it == answers_.end()) return std::nullopt;
  return it->second;
}

std::size_t Knowledge::correct_count(const Context& ctx) const {
  std::size_t n = 0;
  for (const auto& p : ctx.pairs()) {
    const auto mine = recall(p.question);
    if (!mine) continue;
    // Compare normalized answers in constant time: even receiver-local code
    // should never branch byte-by-byte on answer content, and the secret
    // lint holds every answer comparison to the same bar.
    std::string a = Context::normalize_answer(*mine);
    std::string b = Context::normalize_answer(p.answer);
    if (crypto::ct_equal(std::string_view{a}, std::string_view{b})) ++n;
    crypto::secure_wipe(a);
    crypto::secure_wipe(b);
  }
  return n;
}

Knowledge Knowledge::partial(const Context& ctx, std::size_t correct, crypto::Drbg& rng) {
  if (correct > ctx.size()) throw std::invalid_argument("Knowledge::partial: correct > N");
  std::vector<std::size_t> order(ctx.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with the seeded DRBG.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }
  Knowledge k;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const auto& pair = ctx.pairs()[order[i]];
    if (i < correct) {
      k.learn(pair.question, pair.answer);
    } else {
      k.learn(pair.question, pair.answer + "-wrong-" + std::to_string(rng.uniform(1000)));
    }
  }
  return k;
}

Knowledge Knowledge::full(const Context& ctx) {
  Knowledge k;
  for (const auto& p : ctx.pairs()) k.learn(p.question, p.answer);
  return k;
}

}  // namespace sp::core
