#include "core/puzzle.hpp"

#include <stdexcept>

namespace sp::core {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t& off) {
  if (off + 4 > data.size()) throw std::invalid_argument("Puzzle: truncated");
  const std::uint32_t v = (std::uint32_t{data[off]} << 24) | (std::uint32_t{data[off + 1]} << 16) |
                          (std::uint32_t{data[off + 2]} << 8) | std::uint32_t{data[off + 3]};
  off += 4;
  return v;
}

void put_blob(Bytes& out, std::span<const std::uint8_t> blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

Bytes get_blob(std::span<const std::uint8_t> data, std::size_t& off) {
  const std::uint32_t len = get_u32(data, off);
  if (off + len > data.size()) throw std::invalid_argument("Puzzle: truncated blob");
  Bytes blob(data.begin() + static_cast<std::ptrdiff_t>(off),
             data.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return blob;
}

}  // namespace

Bytes Puzzle::signed_payload() const {
  // Only the fields a receiver eventually holds (URL_O, k, K_Z) — the
  // paper's countermeasure signs exactly the components whose tampering
  // causes silent DoS. Blinded-share tampering is detected downstream by
  // the authenticated decryption failing.
  Bytes out;
  put_blob(out, crypto::to_bytes(url));
  put_u32(out, static_cast<std::uint32_t>(threshold));
  put_blob(out, puzzle_key);
  return out;
}

Bytes Puzzle::serialize() const {
  Bytes out;
  put_blob(out, crypto::to_bytes(url));
  put_u32(out, static_cast<std::uint32_t>(threshold));
  put_blob(out, puzzle_key);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const PuzzleEntry& e : entries) {
    put_blob(out, crypto::to_bytes(e.question));
    put_blob(out, e.answer_hash);
    put_blob(out, e.blinded_share);
  }
  put_blob(out, sharer_public_key);
  put_blob(out, signature);
  return out;
}

Puzzle Puzzle::deserialize(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  Puzzle p;
  p.url = crypto::to_string(get_blob(data, off));
  p.threshold = get_u32(data, off);
  p.puzzle_key = get_blob(data, off);
  const std::uint32_t n = get_u32(data, off);
  for (std::uint32_t i = 0; i < n; ++i) {
    PuzzleEntry e;
    e.question = crypto::to_string(get_blob(data, off));
    e.answer_hash = get_blob(data, off);
    e.blinded_share = get_blob(data, off);
    p.entries.push_back(std::move(e));
  }
  p.sharer_public_key = get_blob(data, off);
  p.signature = get_blob(data, off);
  if (off != data.size()) throw std::invalid_argument("Puzzle: trailing bytes");
  return p;
}

}  // namespace sp::core
