#include "core/verify_queue.hpp"

#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::core {

namespace {

/// Queue-wide instruments (docs/OBSERVABILITY.md catalog).
struct QueueMetrics {
  obs::Histogram& batch_size;
  obs::Gauge& depth;
  obs::Counter& jobs;
  obs::Counter& batches;
  obs::Histogram& wait_phase;

  static QueueMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static QueueMetrics m{
        // Unit is jobs-per-batch, not time or bytes — the catalog-suffix
        // rule doesn't apply (name fixed by the batch-verify design).
        reg.histogram("sp_verify_batch_size",  // sp-lint: allow(metric-name)
                      "Verification jobs contributed per request batch",
                      {1, 2, 4, 8, 16, 32, 64, 128}),
        reg.gauge("sp_verify_queue_depth", "Verification jobs queued and not yet running"),
        reg.counter("sp_verify_jobs_total", "Verification jobs executed through the queue"),
        reg.counter("sp_verify_batches_total", "Request batches waited on"),
        reg.histogram("sp_phase_latency_ms", "Per-phase serving latency",
                      obs::Histogram::default_latency_bounds_ms(), {{"phase", "verify.wait"}}),
    };
    return m;
  }
};

}  // namespace

VerifyQueue::VerifyQueue(std::size_t num_threads)
    : pool_(num_threads != 0 ? num_threads
                             : std::max<std::size_t>(1, std::thread::hardware_concurrency()),
            /*queue_capacity=*/1024) {}

VerifyQueue::~VerifyQueue() {
  // ThreadPool::shutdown drains every drain-token already submitted, and
  // each token runs (or finds already help-drained) its task, so no queued
  // job is dropped. Batches created from this queue must have completed —
  // Session destroys the queue after the serving paths.
  pool_.shutdown();
}

VerifyQueue::Batch VerifyQueue::batch() { return Batch(*this); }

VerifyQueue::Batch::Batch(VerifyQueue& owner)
    : owner_(&owner), state_(std::make_shared<BatchState>()) {}

VerifyQueue::Batch::~Batch() {
  if (state_ && !waited_) wait_done();
}

void VerifyQueue::Batch::add(Job job) {
  {
    const sp::MutexLock lock(state_->mutex);
    ++state_->outstanding;
  }
  ++added_;
  Task task{std::move(job), state_, obs::Tracer::current(), 0, 0};
  if (task.ctx.sampled()) {
    // Reserve the job's span id now so wait()'s span (and any cross-request
    // viewer) can link to it before the job has even started running.
    task.reserved_id = obs::reserve_span_id(task.ctx);
    task.enqueue_ns = obs::Tracer::now_ns();
    job_links_.push_back(obs::SpanLink{task.ctx.trace_id(), task.reserved_id});
  }
  owner_->enqueue(std::move(task));
}

void VerifyQueue::Batch::wait_done() noexcept {
  // Help-drain: run queued tasks (any batch's) until the queue is empty,
  // then park. Every task also has a pool drain-token, so parking cannot
  // strand work even when this thread drains nothing.
  for (;;) {
    {
      sp::MutexLock lock(state_->mutex);
      if (state_->outstanding == 0) return;
    }
    if (owner_->run_one()) continue;
    sp::MutexLock lock(state_->mutex);
    while (state_->outstanding != 0) state_->done.wait(lock);
    return;
  }
}

void VerifyQueue::Batch::wait() {
  QueueMetrics& metrics = QueueMetrics::get();
  metrics.batches.inc();
  metrics.batch_size.observe(static_cast<double>(added_));
  {
    obs::Span wait_span(obs::Tracer::current(), "verify.wait");
    if (wait_span.recording()) {
      wait_span.add_attr("jobs", static_cast<std::int64_t>(added_));
      for (const obs::SpanLink& link : job_links_) wait_span.add_link(link);
    }
    const obs::TraceSpan span(metrics.wait_phase);
    wait_done();
  }
  waited_ = true;
  const sp::MutexLock lock(state_->mutex);
  if (state_->first_error) std::rethrow_exception(state_->first_error);
}

void VerifyQueue::run(std::span<const Job> jobs) {
  Batch b = batch();
  for (const Job& job : jobs) b.add(job);
  b.wait();
}

std::function<void(std::span<const VerifyQueue::Job>)> VerifyQueue::runner() {
  return [this](std::span<const Job> jobs) { run(jobs); };
}

std::size_t VerifyQueue::queue_depth() const {
  const sp::MutexLock lock(mutex_);
  return queue_.size();
}

void VerifyQueue::enqueue(Task task) {
  std::size_t depth = 0;
  {
    const sp::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  QueueMetrics::get().depth.set(static_cast<std::int64_t>(depth));
  // One drain token per task: some worker eventually runs every job that a
  // waiting request doesn't help-drain first.
  pool_.submit([this] { (void)run_one(); });
}

bool VerifyQueue::run_one() {
  Task task;
  {
    const sp::MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    QueueMetrics::get().depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  QueueMetrics::get().jobs.inc();
  std::exception_ptr error;
  {
    // The job span lives in the ORIGIN request's trace (start = enqueue
    // time, so queue wait is visible inside it) under its pre-reserved id.
    // When a different sampled request help-drains this job, a link to the
    // runner's span records who actually burned the CPU.
    obs::Span job_span(task.ctx, "verify.job", task.enqueue_ns, task.reserved_id);
    if (job_span.recording()) {
      const obs::TraceContext runner = obs::Tracer::current();
      if (runner.sampled() && !(runner.trace_id() == task.ctx.trace_id())) {
        job_span.add_link(runner.trace_id(), runner.span_id());
      }
    }
    const obs::ContextGuard guard(job_span.context());
    try {
      task.job();
    } catch (...) {
      error = std::current_exception();
      job_span.set_status(obs::SpanStatus::kTransientFault);
    }
  }
  const sp::MutexLock lock(task.state->mutex);
  if (error && !task.state->first_error) task.state->first_error = error;
  if (--task.state->outstanding == 0) task.state->done.notify_all();
  return true;
}

}  // namespace sp::core
