// Construction 1 (paper §V-A): Shamir-secret-sharing social puzzles.
//
// Roles and subroutines map 1:1 to the paper:
//   Sharer    — Upload(O, k, n)
//   SP        — DisplayPuzzle(Z_O), Verify(u, h_σ(1..r))
//   Receiver  — AnswerPuzzle(q_σ(1..r), K_Z), Access(...)
//
// Every message is a plain struct with a wire size, so the session layer can
// charge the network model with the exact bytes the protocol moves.
#pragma once

#include <optional>

#include "core/context.hpp"
#include "core/puzzle.hpp"
#include "crypto/secret.hpp"
#include "ec/curve.hpp"
#include "sig/schnorr.hpp"
#include "sss/shamir.hpp"

namespace sp::core {

class VerifyQueue;

class Construction1 {
 public:
  /// `field` hosts the Shamir arithmetic; `sig_curve` hosts the sharer
  /// signatures (the DoS countermeasure). Both outlive this object.
  Construction1(field::FpCtxPtr field, const ec::Curve& sig_curve);

  // ---------------------------------------------------------------- sharer
  struct UploadResult {
    Puzzle puzzle;            ///< Z_O, destined for the SP
    Bytes encrypted_object;   ///< O_{K_O}, destined for the DH (url unset yet)
  };

  /// Upload: derives M_O, K_O = H(M_O), encrypts O, splits M_O into n
  /// shares, blinds each with its answer, and assembles Z_O (unsigned). The
  /// caller stores `encrypted_object` at the DH, patches `puzzle.url` with
  /// the returned URL_O, then calls sign_puzzle — the signature binds the
  /// URL, which only exists after the DH store (paper's upload-then-link
  /// flow). `sharer_keys` is accepted here for interface stability but the
  /// signing happens in sign_puzzle.
  [[nodiscard]] UploadResult upload(std::span<const std::uint8_t> object, const Context& ctx,
                                    std::size_t k, std::size_t n, const sig::KeyPair& sharer_keys,
                                    crypto::Drbg& rng) const;

  /// (Re)signs a puzzle after its URL is known.
  void sign_puzzle(Puzzle& puzzle, const sig::KeyPair& sharer_keys) const;
  /// Receiver-side signature check (detects SP tampering with URL/K_Z/...).
  [[nodiscard]] bool verify_puzzle_signature(const Puzzle& puzzle) const;

  // -------------------------------------------------------------------- SP
  /// What DisplayPuzzle shows a user: r questions (k <= r <= n) in a random
  /// permutation σ, plus K_Z.
  struct Challenge {
    std::vector<std::size_t> indices;  ///< σ: positions into puzzle.entries
    std::vector<std::string> questions;
    std::size_t threshold = 0;  ///< k (displayed so users know the bar)
    Bytes puzzle_key;           ///< K_Z

    [[nodiscard]] std::size_t wire_size() const;
  };
  [[nodiscard]] static Challenge display_puzzle(const Puzzle& puzzle, crypto::Drbg& rng);

  /// Verify: SP matches the response hashes against the stored H(a_i, K_Z).
  /// On >= k matches it releases, per matched question, the blinded share
  /// and index, plus URL_O; otherwise it "does not send anything".
  struct GrantedShare {
    std::size_t index = 0;  ///< position into puzzle.entries (σ(j))
    Bytes blinded_share;
  };
  struct VerifyReply {
    bool granted = false;
    std::vector<GrantedShare> shares;
    std::string url;

    [[nodiscard]] std::size_t wire_size() const;
  };
  /// With a VerifyQueue, the salted-hash check set runs as one job through
  /// the cross-request queue (bounded concurrency, batch metrics); null
  /// keeps the inline path, bit for bit.
  [[nodiscard]] static VerifyReply verify(const Puzzle& puzzle, const Challenge& challenge,
                                          std::span<const Bytes> response_hashes,
                                          VerifyQueue* queue = nullptr);

  // -------------------------------------------------------------- receiver
  /// H(a, K_Z): keyed answer hash. SHA3-256(a_norm || 0x1f || K_Z), matching
  /// the paper's CryptoJS-SHA3-over-concatenation.
  [[nodiscard]] static Bytes answer_hash(const std::string& answer, const Bytes& puzzle_key);

  /// AnswerPuzzle: hash of the receiver's (normalized) answer for every
  /// displayed question; unknown questions get a fixed "no idea" hash so the
  /// response length never leaks which questions the user can answer.
  struct Response {
    std::vector<Bytes> hashes;  ///< one per challenge question

    [[nodiscard]] std::size_t wire_size() const;
  };
  [[nodiscard]] static Response answer_puzzle(const Challenge& challenge,
                                              const Knowledge& knowledge);

  /// Access: unblind the granted shares with the receiver's answers,
  /// Lagrange-reconstruct M_O, derive K_O, decrypt. Returns nullopt when the
  /// grant is too small or the decryption authenticator rejects (wrong
  /// answers / tampered object).
  [[nodiscard]] std::optional<Bytes> access(const Puzzle& puzzle, const Challenge& challenge,
                                            const VerifyReply& reply, const Knowledge& knowledge,
                                            std::span<const std::uint8_t> encrypted_object) const;

  [[nodiscard]] const field::FpCtxPtr& field() const { return field_; }

 private:
  /// K_O = H(M_O). Wipes the fixed-width encoding of M_O it hashes; the
  /// caller owns wiping m_o itself (BigInt::wipe) once done with it.
  [[nodiscard]] static crypto::SecretBytes derive_object_key(const crypto::BigInt& m_o,
                                                             const field::FpCtxPtr& field);

  field::FpCtxPtr field_;
  sss::Shamir shamir_;
  sig::Schnorr schnorr_;
};

}  // namespace sp::core
