// Cross-request verification queue (PR 7 tentpole, part 3).
//
// Concurrent access requests all funnel their CPU-bound verification work —
// the SP's salted-hash check sets (Construction 1/2 Verify) and the
// per-leaf Miller loops of a batched CP-ABE decrypt — through one shared
// queue drained by a small worker pool, instead of each request threading
// its own. That gives the serving stack:
//
//   * bounded verify concurrency: the pool size caps how many pairing-heavy
//     jobs run at once no matter how many requests are in flight, so a
//     burst degrades into queueing (visible on sp_verify_queue_depth)
//     rather than into core-thrashing oversubscription;
//   * cross-request batching: jobs from different access_parallel sessions
//     interleave in one queue, and sp_verify_batch_size records how much
//     work each request contributed per drain;
//   * failure isolation: a job that throws (fault injection, corrupted
//     input) fails only its OWN batch — Batch::wait() rethrows the batch's
//     first error; unrelated requests sharing the queue are untouched.
//
// Execution model: VerifyQueue owns the task deque; the embedded ThreadPool
// receives one drain token per job, so every job is eventually run by a
// worker. Batch::wait() additionally HELP-DRAINS: the waiting request
// thread pops and runs queued tasks (its own or other batches') until the
// queue is empty, then parks on the batch's condition variable. Waiters
// therefore make progress even with a single worker, and there is no
// deadlock window: pool workers only ever run leaf jobs, never wait on a
// batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::core {

class VerifyQueue {
 public:
  /// One unit of verification work. Jobs may throw — the exception is
  /// captured and rethrown from the owning Batch::wait(), failing only
  /// that batch.
  using Job = std::function<void()>;

  /// `num_threads` == 0 picks hardware_concurrency (at least 1).
  explicit VerifyQueue(std::size_t num_threads = 0);
  ~VerifyQueue();
  VerifyQueue(const VerifyQueue&) = delete;
  VerifyQueue& operator=(const VerifyQueue&) = delete;

  /// Per-batch completion state, shared by the batch handle and every one of
  /// its queued tasks (tasks may outlive the handle only in program-exit
  /// teardown; shared_ptr keeps them safe regardless).
  struct BatchState {
    sp::Mutex mutex;
    sp::CondVar done;
    std::size_t outstanding SP_GUARDED_BY(mutex) = 0;
    std::exception_ptr first_error SP_GUARDED_BY(mutex);
  };

  /// One request's slice of the queue: add jobs, then wait. Move-only.
  class Batch {
   public:
    Batch(Batch&&) noexcept = default;
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;
    Batch& operator=(Batch&&) = delete;
    /// Blocks (without throwing) if wait() was never called, so queued jobs
    /// never run against destroyed captures.
    ~Batch();

    /// Enqueues one job. Must not be called after wait().
    void add(Job job);

    /// Help-drains the shared queue, then blocks until every job of THIS
    /// batch finished; rethrows the batch's first job exception. Records
    /// sp_verify_batch_size and the verify.wait phase span.
    void wait();

    /// Jobs added so far.
    [[nodiscard]] std::size_t size() const { return added_; }

   private:
    friend class VerifyQueue;
    explicit Batch(VerifyQueue& owner);

    void wait_done() noexcept;  ///< completion barrier, no rethrow

    VerifyQueue* owner_;
    std::shared_ptr<BatchState> state_;
    std::size_t added_ = 0;
    bool waited_ = false;
    /// Pre-reserved span ids of this batch's jobs: wait()'s verify.wait span
    /// links to every contributing job span, even those still unrecorded
    /// (reserve_span_id allocates the id before the job runs).
    std::vector<obs::SpanLink> job_links_;
  };

  /// Opens a new batch bound to this queue.
  [[nodiscard]] Batch batch();

  /// Convenience: runs `jobs` as one batch and waits. Shaped to slot
  /// directly into ec::Pairing::Runner / abe::CpAbe::ParallelRunner via
  /// runner() below.
  void run(std::span<const Job> jobs);

  /// A copyable closure over run() for APIs that take a parallel-executor
  /// hook (the batched CP-ABE decrypt). Must not outlive this queue.
  [[nodiscard]] std::function<void(std::span<const Job>)> runner();

  /// Tasks queued and not yet picked up (monitoring; also exported as the
  /// sp_verify_queue_depth gauge).
  [[nodiscard]] std::size_t queue_depth() const SP_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t num_threads() const { return pool_.num_threads(); }

 private:
  struct Task {
    Job job;
    std::shared_ptr<BatchState> state;
    obs::TraceContext ctx;           ///< origin request's context at add()
    std::uint64_t reserved_id = 0;   ///< pre-reserved verify.job span id
    std::uint64_t enqueue_ns = 0;    ///< queue-entry time (sampled tasks)
  };

  void enqueue(Task task) SP_EXCLUDES(mutex_);
  /// Pops and runs one task; false when the queue was empty. Runs the job
  /// outside the queue lock.
  bool run_one() SP_EXCLUDES(mutex_);

  mutable sp::Mutex mutex_;
  std::deque<Task> queue_ SP_GUARDED_BY(mutex_);
  ThreadPool pool_;
};

}  // namespace sp::core
