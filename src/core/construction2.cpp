#include "core/construction2.hpp"

#include <stdexcept>

#include "core/verify_queue.hpp"
#include "crypto/modes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::core {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t& off) {
  if (off + 4 > data.size()) throw std::invalid_argument("Construction2: truncated");
  const std::uint32_t v = (std::uint32_t{data[off]} << 24) | (std::uint32_t{data[off + 1]} << 16) |
                          (std::uint32_t{data[off + 2]} << 8) | std::uint32_t{data[off + 3]};
  off += 4;
  return v;
}

void put_blob(Bytes& out, const Bytes& blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

Bytes get_blob(std::span<const std::uint8_t> data, std::size_t& off) {
  const std::uint32_t len = get_u32(data, off);
  if (off + len > data.size()) throw std::invalid_argument("Construction2: truncated blob");
  Bytes blob(data.begin() + static_cast<std::ptrdiff_t>(off),
             data.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return blob;
}

}  // namespace

Construction2::Construction2(const ec::Curve& curve) : scheme_(curve) {}

std::size_t Construction2::UploadResult::sp_upload_size() const {
  return perturbed_tree.serialize().size() + public_key.size() + master_key.size() + 8;
}

Construction2::UploadResult Construction2::upload(std::span<const std::uint8_t> object,
                                                  const Context& ctx, std::size_t k,
                                                  crypto::Drbg& rng) const {
  if (ctx.size() < 2) {
    // Matches the paper's observation that "CP-ABE does not support (1,1)":
    // a one-leaf tree is legal in our tree code, but the paper's evaluation
    // starts at N = 2; we enforce the same envelope for fidelity.
    throw std::invalid_argument("Construction2::upload: need N >= 2 context pairs");
  }
  if (k == 0 || k > ctx.size()) {
    throw std::invalid_argument("Construction2::upload: need 0 < k <= N");
  }

  // τ: height-1 tree over normalized answers.
  std::vector<std::pair<std::string, std::string>> qa;
  qa.reserve(ctx.size());
  for (const ContextPair& p : ctx.pairs()) {
    qa.emplace_back(p.question, Context::normalize_answer(p.answer));
  }
  const abe::AccessTree tau = abe::AccessTree::puzzle_policy(qa, k);

  // Per-object Setup (the paper's sharer runs cpabe-setup per share).
  auto [pk, mk] = scheme_.setup(rng);
  auto [ct, dem_key] = scheme_.encrypt_key(pk, tau, rng);

  // Perturb: the ciphertext carries τ', never τ (surveillance resistance).
  const abe::AccessTree tau_prime = tau.perturb();
  const abe::Ciphertext ct_prime = abe::CpAbe::swap_policy(std::move(ct), tau_prime);

  // Hybrid payload: CT' plus the sealed object under the KEM key.
  const Bytes iv = rng.bytes(16);
  Bytes ct_file;
  put_blob(ct_file, scheme_.serialize(ct_prime));
  put_blob(ct_file, crypto::seal(dem_key, iv, object));

  UploadResult out;
  out.perturbed_tree = tau_prime;
  out.public_key = scheme_.serialize(pk);
  out.master_key = scheme_.serialize(mk);
  out.ciphertext = std::move(ct_file);
  out.threshold = k;
  return out;
}

std::size_t Construction2::Challenge::wire_size() const {
  std::size_t size = 8;
  for (const auto& q : questions) size += 4 + q.size();
  return size;
}

Construction2::Challenge Construction2::display_puzzle(const abe::AccessTree& perturbed_tree,
                                                       std::size_t threshold) {
  Challenge ch;
  ch.threshold = threshold;
  for (const auto& [id, leaf] : perturbed_tree.leaves()) {
    ch.questions.push_back(leaf->leaf->question);
  }
  return ch;
}

std::size_t Construction2::Response::wire_size() const {
  std::size_t size = 4;
  for (const auto& h : answer_hashes) size += 4 + h.size();
  return size;
}

Construction2::Response Construction2::answer_puzzle(const Challenge& challenge,
                                                     const Knowledge& knowledge) {
  Response resp;
  for (const std::string& q : challenge.questions) {
    const auto answer = knowledge.recall(q);
    if (answer) {
      resp.answer_hashes.push_back(abe::hash_answer(Context::normalize_answer(*answer)));
    } else {
      resp.answer_hashes.push_back(abe::hash_answer("\x01\x02sp-unknown-answer\x03"));
    }
  }
  return resp;
}

std::size_t Construction2::VerifyReply::wire_size(const UploadResult& stored) const {
  if (!granted) return 1;
  // URL + PK + MK travel back to the receiver (paper: "the server gives
  // access to message.txt.cpabe, master_key, and pub_key files").
  return 1 + url.size() + stored.public_key.size() + stored.master_key.size();
}

Construction2::VerifyReply Construction2::verify(const abe::AccessTree& perturbed_tree,
                                                 std::size_t threshold,
                                                 const Challenge& challenge,
                                                 const Response& response,
                                                 const std::string& url,
                                                 VerifyQueue* queue) {
  // Protocol-shape errors stay on the caller's thread (see Construction1).
  if (response.answer_hashes.size() != challenge.questions.size()) {
    throw std::invalid_argument("Construction2::verify: response/challenge length mismatch");
  }
  std::size_t matches = 0;
  const auto check_set = [&matches, &perturbed_tree, &challenge, &response] {
    const auto leaves = perturbed_tree.leaves();
    for (std::size_t i = 0; i < challenge.questions.size(); ++i) {
      for (const auto& [id, leaf] : leaves) {
        if (leaf->leaf->question == challenge.questions[i] && leaf->leaf->perturbed &&
            crypto::ct_equal(leaf->leaf->answer, response.answer_hashes[i])) {
          ++matches;
          break;
        }
      }
    }
  };
  if (queue != nullptr) {
    VerifyQueue::Batch batch = queue->batch();
    batch.add(check_set);
    batch.wait();
  } else {
    check_set();
  }
  VerifyReply reply;
  if (matches >= threshold) {
    reply.granted = true;
    reply.url = url;
  }
  return reply;
}

std::optional<Bytes> Construction2::access(const Bytes& ciphertext_file,
                                           const Bytes& public_key_file,
                                           const Bytes& master_key_file,
                                           const Knowledge& knowledge, crypto::Drbg& rng,
                                           const abe::CpAbe::ParallelRunner& runner,
                                           Bytes* dem_key_out) const {
  abe::PublicKey pk;
  abe::MasterKey mk;
  abe::Ciphertext ct;
  Bytes envelope;
  try {
    pk = scheme_.deserialize_public_key(public_key_file);
    mk = scheme_.deserialize_master_key(master_key_file);
    std::size_t off = 0;
    ct = scheme_.deserialize_ciphertext(get_blob(ciphertext_file, off));
    envelope = get_blob(ciphertext_file, off);
    if (off != ciphertext_file.size()) return std::nullopt;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }

  // Phase histograms for the paper's receiver-side I2 decomposition
  // (Fig. 10(d)): reconstruct / keygen / decrypt are the three local phases
  // a production receiver would alert on. Registered once, process-wide.
  struct Phases {
    obs::Histogram& reconstruct;
    obs::Histogram& keygen;
    obs::Histogram& decrypt;
  };
  static Phases phases{
      obs::MetricsRegistry::global().histogram("sp_phase_latency_ms",
                                               "Per-phase serving latency",
                                               obs::Histogram::default_latency_bounds_ms(),
                                               {{"phase", "c2.reconstruct"}}),
      obs::MetricsRegistry::global().histogram("sp_phase_latency_ms", "",
                                               obs::Histogram::default_latency_bounds_ms(),
                                               {{"phase", "c2.keygen"}}),
      obs::MetricsRegistry::global().histogram("sp_phase_latency_ms", "",
                                               obs::Histogram::default_latency_bounds_ms(),
                                               {{"phase", "c2.decrypt"}}),
  };

  // Reconstruct τ̂ from τ' with the receiver's normalized answers.
  obs::TraceSpan reconstruct_span(phases.reconstruct);
  std::map<std::string, std::string> claimed;
  for (const auto& [q, a] : knowledge.answers()) claimed[q] = Context::normalize_answer(a);
  const auto [tau_hat, recovered] = ct.policy.reconstruct(claimed);
  if (recovered == 0) return std::nullopt;
  const abe::Ciphertext ct_hat = abe::CpAbe::swap_policy(std::move(ct), tau_hat);
  reconstruct_span.stop();

  // KeyGen with the recovered leaf attributes (publicly known algorithm +
  // MK, per the paper).
  obs::TraceSpan keygen_span(phases.keygen);
  std::vector<std::string> attrs;
  for (const auto& [id, leaf] : tau_hat.leaves()) {
    if (!leaf->leaf->perturbed) attrs.push_back(leaf->leaf->canonical());
  }
  const abe::PrivateKey sk = scheme_.keygen(mk, attrs, rng);
  keygen_span.stop();

  obs::TraceSpan decrypt_span(phases.decrypt);
  const auto dem_key = scheme_.decrypt_key(pk, sk, ct_hat, runner);
  if (!dem_key) return std::nullopt;
  try {
    Bytes object = crypto::open(*dem_key, envelope);
    // Only a key that authenticated the envelope leaves this function: the
    // GCM tag proves it is THE object key, so memoizing it is safe.
    if (dem_key_out != nullptr) *dem_key_out = *dem_key;
    return object;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

std::optional<Bytes> Construction2::open_sealed(const Bytes& ciphertext_file,
                                                std::span<const std::uint8_t> dem_key) {
  try {
    std::size_t off = 0;
    // Skip CT' (first blob) without copying it — the memoized path never
    // touches the CP-ABE body.
    const std::uint32_t ct_len = get_u32(ciphertext_file, off);
    if (off + ct_len > ciphertext_file.size()) return std::nullopt;
    off += ct_len;
    const Bytes envelope = get_blob(ciphertext_file, off);
    if (off != ciphertext_file.size()) return std::nullopt;
    return crypto::open(dem_key, envelope);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // malformed file
  } catch (const std::runtime_error&) {
    return std::nullopt;  // envelope failed authentication
  }
}

}  // namespace sp::core
