// Fixed-size worker pool with a BOUNDED work queue — the execution engine
// behind Session::access_parallel and the concurrent load harness.
//
// The queue bound is the back-pressure mechanism a serving front-end needs:
// when all workers are busy and the queue is full, `submit` blocks the
// producer instead of letting the backlog (and its memory) grow without
// limit. A production ingress would shed load at this point; the simulation
// prefers blocking so batches always complete.
//
// Lifecycle: workers start in the constructor; `shutdown()` (idempotent,
// called by the destructor) drains everything already submitted and joins
// them. Concurrent shutdown() calls all block until the join completes —
// "shutdown returned" always means "no worker is running". A `submit` racing
// or following shutdown throws std::runtime_error — a serving front-end must
// hear about dropped work, not lose it silently.
//
// All queue/lifecycle state is guarded by one sp::Mutex and annotated for
// Clang's thread-safety analysis; condition waits are explicit while-loops on
// sp::CondVar so the analysis sees the capability held across the re-test.
//
// Observability: every pool reports into the process-wide MetricsRegistry —
// queue-depth / in-flight / worker-count gauges, task + rejection counters
// and a task-latency histogram (docs/OBSERVABILITY.md catalog). The
// `queue_depth()` / `in_flight()` / `num_threads()` accessors expose the
// same numbers for direct harness assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced). `queue_capacity` bounds
  /// the number of tasks waiting for a worker (>= 1 enforced).
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 64);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is at capacity. Tasks must not
  /// throw — wrap fallible work and capture its std::exception_ptr. Throws
  /// std::runtime_error if the pool is shutting down (including a submitter
  /// woken from a full-queue wait by shutdown) — never drops work silently.
  void submit(std::function<void()> task) SP_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void wait_idle() SP_EXCLUDES(mutex_);

  /// Drains submitted tasks, joins the workers, rejects future submits.
  /// Idempotent and safe to race: every caller (including the destructor)
  /// blocks until the workers are actually joined.
  void shutdown() SP_EXCLUDES(mutex_);

  // ---- introspection (each takes the pool mutex; monitoring-path) ----
  /// Tasks waiting for a worker.
  [[nodiscard]] std::size_t queue_depth() const SP_EXCLUDES(mutex_);
  /// Tasks currently executing on a worker.
  [[nodiscard]] std::size_t in_flight() const SP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }
  [[nodiscard]] std::size_t thread_count() const { return num_threads_; }

 private:
  /// A queued task plus the submitter's trace context: the async-propagation
  /// hop. Workers re-install the context (and record queue wait + execution
  /// spans in the originating trace) before running the function, so code
  /// inside the task reaches its request's trace via Tracer::current().
  struct QueuedTask {
    std::function<void()> fn;
    obs::TraceContext ctx;
    std::uint64_t enqueue_ns = 0;  ///< only stamped when ctx is sampled
  };

  void worker_loop() SP_EXCLUDES(mutex_);

  mutable sp::Mutex mutex_;
  sp::CondVar queue_has_space_;  ///< signaled when a task is popped
  sp::CondVar queue_has_work_;   ///< signaled when a task is pushed
  sp::CondVar all_done_;         ///< signaled when pending_ hits 0
  sp::CondVar join_done_cv_;     ///< signaled once the workers are joined
  std::deque<QueuedTask> queue_ SP_GUARDED_BY(mutex_);
  std::size_t queue_capacity_;  ///< immutable after construction
  std::size_t pending_ SP_GUARDED_BY(mutex_) = 0;  ///< queued + executing
  bool stopping_ SP_GUARDED_BY(mutex_) = false;
  bool join_started_ SP_GUARDED_BY(mutex_) = false;  ///< a shutdown() owns the join
  bool join_done_ SP_GUARDED_BY(mutex_) = false;     ///< that join has completed
  std::size_t num_threads_ = 0;  ///< immutable after construction
  std::vector<std::thread> workers_ SP_GUARDED_BY(mutex_);
};

}  // namespace sp::core
