// Fixed-size worker pool with a BOUNDED work queue — the execution engine
// behind Session::access_parallel and the concurrent load harness.
//
// The queue bound is the back-pressure mechanism a serving front-end needs:
// when all workers are busy and the queue is full, `submit` blocks the
// producer instead of letting the backlog (and its memory) grow without
// limit. A production ingress would shed load at this point; the simulation
// prefers blocking so batches always complete.
//
// Lifecycle: workers start in the constructor; `shutdown()` (idempotent,
// called by the destructor) drains everything already submitted and joins
// them. A `submit` racing or following shutdown throws std::runtime_error —
// a serving front-end must hear about dropped work, not lose it silently.
//
// Observability: every pool reports into the process-wide MetricsRegistry —
// queue-depth / in-flight / worker-count gauges, task + rejection counters
// and a task-latency histogram (docs/OBSERVABILITY.md catalog). The
// `queue_depth()` / `in_flight()` / `num_threads()` accessors expose the
// same numbers for direct harness assertions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sp::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced). `queue_capacity` bounds
  /// the number of tasks waiting for a worker (>= 1 enforced).
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 64);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is at capacity. Tasks must not
  /// throw — wrap fallible work and capture its std::exception_ptr. Throws
  /// std::runtime_error if the pool is shutting down (including a submitter
  /// woken from a full-queue wait by shutdown) — never drops work silently.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Drains submitted tasks, joins the workers, rejects future submits.
  /// Idempotent; called by the destructor.
  void shutdown();

  // ---- introspection (each takes the pool mutex; monitoring-path) ----
  /// Tasks waiting for a worker.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Tasks currently executing on a worker.
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }
  [[nodiscard]] std::size_t thread_count() const { return num_threads_; }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable queue_has_space_;  ///< signaled when a task is popped
  std::condition_variable queue_has_work_;   ///< signaled when a task is pushed
  std::condition_variable all_done_;         ///< signaled when pending_ hits 0
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t pending_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
  bool joined_ = false;
  std::size_t num_threads_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace sp::core
