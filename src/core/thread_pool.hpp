// Fixed-size worker pool with a BOUNDED work queue — the execution engine
// behind Session::access_parallel and the concurrent load harness.
//
// The queue bound is the back-pressure mechanism a serving front-end needs:
// when all workers are busy and the queue is full, `submit` blocks the
// producer instead of letting the backlog (and its memory) grow without
// limit. A production ingress would shed load at this point; the simulation
// prefers blocking so batches always complete.
//
// Lifecycle: workers start in the constructor and are joined in the
// destructor after draining everything already submitted. `wait_idle` lets a
// caller reuse the pool across batches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sp::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced). `queue_capacity` bounds
  /// the number of tasks waiting for a worker (>= 1 enforced).
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 64);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is at capacity. Tasks must not
  /// throw — wrap fallible work and capture its std::exception_ptr.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable queue_has_space_;  ///< signaled when a task is popped
  std::condition_variable queue_has_work_;   ///< signaled when a task is pushed
  std::condition_variable all_done_;         ///< signaled when in_flight_ hits 0
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sp::core
