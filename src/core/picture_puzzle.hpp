// Picture-based puzzles — the paper's §VIII future-work feature ("support
// for non-textual data, picture-based puzzles").
//
// A picture question shows the receiver a set of candidate images ("which of
// these was the birthday cake?"); the answer is the image itself. We reduce
// this to the existing string-answer machinery: the canonical answer is the
// hex SHA-256 of the chosen image's bytes, so picture questions compose
// freely with text questions inside one Context and work with both
// constructions unchanged. Decoys travel with the puzzle (they're public —
// like the questions); the correct image's hash is never distinguishable
// from the decoys' hashes without solving the puzzle.
#pragma once

#include <string>
#include <vector>

#include "core/context.hpp"

namespace sp::core {

/// One picture question: a prompt plus candidate images (correct + decoys).
class PictureQuestion {
 public:
  /// `candidates` are the images shown to receivers (order randomized by
  /// the caller/UI); `correct_index` selects the true answer. Throws on
  /// empty candidates, out-of-range index, or duplicate images (a duplicate
  /// of the correct image would make two choices "right" — reject early).
  PictureQuestion(std::string prompt, std::vector<Bytes> candidates,
                  std::size_t correct_index);

  [[nodiscard]] const std::string& prompt() const { return prompt_; }
  [[nodiscard]] const std::vector<Bytes>& candidates() const { return candidates_; }

  /// The canonical answer string fed into Context: hash of the image bytes.
  [[nodiscard]] static std::string answer_for_image(std::span<const std::uint8_t> image);

  /// The ContextPair this question contributes to a puzzle.
  [[nodiscard]] ContextPair to_context_pair() const;

  /// Receiver side: "I remember this one" — returns the Knowledge entry for
  /// choosing `candidate_index`.
  [[nodiscard]] std::pair<std::string, std::string> choose(std::size_t candidate_index) const;

 private:
  std::string prompt_;
  std::vector<Bytes> candidates_;
  std::size_t correct_index_;
};

/// Convenience: builds a Context mixing picture and text questions.
Context build_picture_context(const std::vector<PictureQuestion>& pictures,
                              const std::vector<ContextPair>& text_pairs = {});

}  // namespace sp::core
