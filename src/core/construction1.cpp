#include "core/construction1.hpp"

#include <stdexcept>

#include "core/verify_queue.hpp"
#include "crypto/modes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha3.hpp"

namespace sp::core {

using crypto::BigInt;
using crypto::Drbg;

Construction1::Construction1(field::FpCtxPtr field, const ec::Curve& sig_curve)
    : field_(std::move(field)),
      shamir_(field_),
      schnorr_(sig_curve, sig_curve.hash_to_group(crypto::to_bytes("sp-schnorr-g"))) {}

crypto::SecretBytes Construction1::derive_object_key(const BigInt& m_o,
                                                     const field::FpCtxPtr& field) {
  // K_O = H(M_O) (paper); fixed-width encoding so leading zeros don't alias.
  Bytes m_bytes = m_o.to_bytes(field->byte_length());
  crypto::SecretBytes k_o{crypto::Sha256::hash(m_bytes)};
  crypto::secure_wipe(m_bytes);
  return k_o;
}

Bytes Construction1::answer_hash(const std::string& answer, const Bytes& puzzle_key) {
  std::string normalized = Context::normalize_answer(answer);
  Bytes input = crypto::to_bytes(normalized);
  input.push_back(0x1f);
  input.insert(input.end(), puzzle_key.begin(), puzzle_key.end());
  Bytes digest = crypto::Sha3_256::hash(input);
  // The hash input embeds the cleartext answer and K_Z.
  crypto::secure_wipe(input);
  crypto::secure_wipe(normalized);
  return digest;
}

Construction1::UploadResult Construction1::upload(std::span<const std::uint8_t> object,
                                                  const Context& ctx, std::size_t k,
                                                  std::size_t n, const sig::KeyPair& sharer_keys,
                                                  Drbg& rng) const {
  if (n == 0 || n > ctx.size()) {
    throw std::invalid_argument("Construction1::upload: need 0 < n <= N context pairs");
  }
  if (k == 0 || k > n) throw std::invalid_argument("Construction1::upload: need 0 < k <= n");

  // Object-specific secret M_O = P(0), chosen uniformly at random.
  auto rb = [&rng](std::size_t len) { return rng.bytes(len); };
  BigInt m_o = BigInt::random_below(field_->p(), rb);
  const crypto::SecretBytes k_o = derive_object_key(m_o, field_);

  // O_{K_O} = E(O, K_O): authenticated AES envelope (the paper uses raw
  // AES-CBC; authentication lets wrong keys fail loudly instead of
  // producing garbage).
  const Bytes iv = rng.bytes(16);
  Bytes encrypted = crypto::seal(k_o.span(), iv, object);

  // n shares of M_O. The sharer is done with the secret itself after this.
  const auto shares = shamir_.split(m_o, k, n, rng);
  m_o.wipe();

  Puzzle puzzle;
  puzzle.threshold = k;
  puzzle.puzzle_key = rng.bytes(16);  // K_Z
  for (std::size_t i = 0; i < n; ++i) {
    const ContextPair& pair = ctx.pairs()[i];
    PuzzleEntry entry;
    entry.question = pair.question;
    entry.answer_hash = answer_hash(pair.answer, puzzle.puzzle_key);
    Bytes share_wire = shamir_.serialize(shares[i]);
    Bytes answer_bytes = crypto::to_bytes(Context::normalize_answer(pair.answer));
    // Context already rejects empty normalized answers, but this layer is
    // reachable with a hand-built Context object too — and an empty blinding
    // key makes xor_cycle the identity, publishing the share in cleartext.
    if (answer_bytes.empty()) {
      crypto::secure_wipe(share_wire);
      throw std::invalid_argument(
          "Construction1::upload: answer normalizes to empty; share would be unblinded");
    }
    entry.blinded_share = crypto::xor_cycle(share_wire, answer_bytes);
    // The unblinded share and cleartext answer must not outlive the loop.
    crypto::secure_wipe(share_wire);
    crypto::secure_wipe(answer_bytes);
    puzzle.entries.push_back(std::move(entry));
  }
  // The signature binds URL_O, which the caller only learns after storing
  // the object at the DH — so signing is the caller's last step
  // (sign_puzzle), not ours. Returning unsigned keeps the signing scalar
  // multiplication out of Upload's measured cost exactly once.
  (void)sharer_keys;
  return UploadResult{std::move(puzzle), std::move(encrypted)};
}

void Construction1::sign_puzzle(Puzzle& puzzle, const sig::KeyPair& sharer_keys) const {
  puzzle.sharer_public_key = schnorr_.serialize_public(sharer_keys.public_key);
  puzzle.signature = schnorr_.serialize(schnorr_.sign(sharer_keys, puzzle.signed_payload()));
}

bool Construction1::verify_puzzle_signature(const Puzzle& puzzle) const {
  try {
    const ec::Point pk = schnorr_.deserialize_public(puzzle.sharer_public_key);
    const sig::Signature sig = schnorr_.deserialize(puzzle.signature);
    return schnorr_.verify(pk, puzzle.signed_payload(), sig);
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::size_t Construction1::Challenge::wire_size() const {
  std::size_t size = 8 + puzzle_key.size();
  for (const auto& q : questions) size += 4 + q.size();
  size += 8 * indices.size();
  return size;
}

Construction1::Challenge Construction1::display_puzzle(const Puzzle& puzzle, Drbg& rng) {
  const std::size_t n = puzzle.n();
  const std::size_t k = puzzle.threshold;
  if (k == 0 || k > n) throw std::invalid_argument("display_puzzle: malformed puzzle");
  // Random r with k <= r <= n, then a random permutation prefix of length r.
  const std::size_t r = k + rng.uniform(n - k + 1);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.uniform(i)]);
  Challenge ch;
  ch.threshold = k;
  ch.puzzle_key = puzzle.puzzle_key;
  for (std::size_t i = 0; i < r; ++i) {
    ch.indices.push_back(order[i]);
    ch.questions.push_back(puzzle.entries[order[i]].question);
  }
  return ch;
}

std::size_t Construction1::Response::wire_size() const {
  std::size_t size = 4;
  for (const auto& h : hashes) size += 4 + h.size();
  return size;
}

Construction1::Response Construction1::answer_puzzle(const Challenge& challenge,
                                                     const Knowledge& knowledge) {
  Response resp;
  for (const std::string& q : challenge.questions) {
    const auto answer = knowledge.recall(q);
    if (answer) {
      resp.hashes.push_back(answer_hash(*answer, challenge.puzzle_key));
    } else {
      // Fixed-size dummy so the response shape doesn't leak which questions
      // the receiver recognizes. The control characters keep it outside any
      // plausible real answer space.
      resp.hashes.push_back(answer_hash("\x01\x02sp-unknown-answer\x03", challenge.puzzle_key));
    }
  }
  return resp;
}

std::size_t Construction1::VerifyReply::wire_size() const {
  std::size_t size = 5 + url.size();
  for (const auto& s : shares) size += 8 + 4 + s.blinded_share.size();
  return size;
}

Construction1::VerifyReply Construction1::verify(const Puzzle& puzzle, const Challenge& challenge,
                                                 std::span<const Bytes> response_hashes,
                                                 VerifyQueue* queue) {
  // Malformed-request check stays on the caller's thread — a length
  // mismatch is a protocol error, not a verification outcome, so it must
  // not poison a queue batch.
  if (response_hashes.size() != challenge.questions.size()) {
    throw std::invalid_argument("Construction1::verify: response/challenge length mismatch");
  }
  VerifyReply reply;
  const auto check_set = [&reply, &puzzle, &challenge, response_hashes] {
    for (std::size_t j = 0; j < challenge.indices.size(); ++j) {
      const std::size_t idx = challenge.indices[j];
      const PuzzleEntry& entry = puzzle.entries.at(idx);
      if (crypto::ct_equal(entry.answer_hash, response_hashes[j])) {
        reply.shares.push_back(GrantedShare{idx, entry.blinded_share});
      }
    }
  };
  if (queue != nullptr) {
    // One job = this request's whole check set: the queue batches ACROSS
    // requests, not within one (a hash compare is too small to split).
    VerifyQueue::Batch batch = queue->batch();
    batch.add(check_set);
    batch.wait();
  } else {
    check_set();
  }
  if (reply.shares.size() >= puzzle.threshold) {
    reply.granted = true;
    reply.url = puzzle.url;
  } else {
    // "the SP does not send anything" — clear partial results.
    reply.shares.clear();
  }
  return reply;
}

std::optional<Bytes> Construction1::access(const Puzzle& puzzle, const Challenge& challenge,
                                           const VerifyReply& reply, const Knowledge& knowledge,
                                           std::span<const std::uint8_t> encrypted_object) const {
  if (!reply.granted || reply.shares.size() < puzzle.threshold) return std::nullopt;
  std::vector<sss::Share> shares;
  for (const GrantedShare& granted : reply.shares) {
    if (shares.size() == puzzle.threshold) break;
    // Find the question this index was displayed under.
    std::string question;
    for (std::size_t j = 0; j < challenge.indices.size(); ++j) {
      if (challenge.indices[j] == granted.index) {
        question = challenge.questions[j];
        break;
      }
    }
    const auto answer = knowledge.recall(question);
    if (!answer) return std::nullopt;  // SP granted an index we can't unblind
    Bytes answer_bytes = crypto::to_bytes(Context::normalize_answer(*answer));
    Bytes share_wire = crypto::xor_cycle(granted.blinded_share, answer_bytes);
    crypto::secure_wipe(answer_bytes);
    try {
      shares.push_back(shamir_.deserialize(share_wire));
    } catch (const std::invalid_argument&) {
      crypto::secure_wipe(share_wire);
      return std::nullopt;
    }
    crypto::secure_wipe(share_wire);
  }
  if (shares.size() < puzzle.threshold) return std::nullopt;
  BigInt m_o;
  try {
    m_o = shamir_.reconstruct(shares);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  const crypto::SecretBytes k_o = derive_object_key(m_o, field_);
  m_o.wipe();
  for (sss::Share& s : shares) {
    s.x.wipe();
    s.y.wipe();
  }
  try {
    return crypto::open(k_o.span(), encrypted_object);
  } catch (const std::runtime_error&) {
    return std::nullopt;  // wrong key (bad answers) or tampered object
  }
}

}  // namespace sp::core
