#include "core/picture_puzzle.hpp"

#include <set>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::core {

PictureQuestion::PictureQuestion(std::string prompt, std::vector<Bytes> candidates,
                                 std::size_t correct_index)
    : prompt_(std::move(prompt)), candidates_(std::move(candidates)),
      correct_index_(correct_index) {
  if (prompt_.empty()) throw std::invalid_argument("PictureQuestion: empty prompt");
  if (candidates_.size() < 2) {
    throw std::invalid_argument("PictureQuestion: need at least 2 candidate images");
  }
  if (correct_index_ >= candidates_.size()) {
    throw std::invalid_argument("PictureQuestion: correct_index out of range");
  }
  std::set<std::string> seen;
  for (const Bytes& img : candidates_) {
    if (img.empty()) throw std::invalid_argument("PictureQuestion: empty image");
    if (!seen.insert(answer_for_image(img)).second) {
      throw std::invalid_argument("PictureQuestion: duplicate candidate image");
    }
  }
}

std::string PictureQuestion::answer_for_image(std::span<const std::uint8_t> image) {
  return "img:" + crypto::to_hex(crypto::Sha256::hash(image));
}

ContextPair PictureQuestion::to_context_pair() const {
  return ContextPair{prompt_, answer_for_image(candidates_[correct_index_])};
}

std::pair<std::string, std::string> PictureQuestion::choose(std::size_t candidate_index) const {
  if (candidate_index >= candidates_.size()) {
    throw std::invalid_argument("PictureQuestion::choose: index out of range");
  }
  return {prompt_, answer_for_image(candidates_[candidate_index])};
}

Context build_picture_context(const std::vector<PictureQuestion>& pictures,
                              const std::vector<ContextPair>& text_pairs) {
  Context ctx;
  for (const PictureQuestion& pq : pictures) {
    const ContextPair pair = pq.to_context_pair();
    ctx.add(pair.question, pair.answer);
  }
  for (const ContextPair& pair : text_pairs) ctx.add(pair.question, pair.answer);
  return ctx;
}

}  // namespace sp::core
