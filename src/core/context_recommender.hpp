// Automated client-side context recommendation — one of the paper's listed
// future-work features ("automated client-side context recommendations").
//
// Given a structured event record (what a mobile client knows about a
// gathering: venue, time, participants, activities), suggest ready-made
// question/answer pairs so sharers don't have to invent puzzles by hand.
#pragma once

#include <string>
#include <vector>

#include "core/context.hpp"

namespace sp::core {

/// What a client device can auto-capture about an event.
struct EventRecord {
  std::string title;                      ///< e.g. "Sarah's birthday dinner"
  std::string venue;                      ///< e.g. "Luigi's Trattoria"
  std::string city;
  std::string month;                      ///< coarse time ("june")
  std::string host;
  std::vector<std::string> participants;  ///< first names
  std::vector<std::string> activities;    ///< e.g. "karaoke"
  std::string food;                       ///< e.g. "lasagna"
};

struct Recommendation {
  ContextPair pair;
  /// Heuristic guessability score in [0,1]: higher = easier for outsiders
  /// to guess (e.g. "which city?" is weaker than "who sang first?").
  double guessability = 0.0;
};

class ContextRecommender {
 public:
  /// Suggests pairs from every populated field, weakest-guessability first.
  [[nodiscard]] static std::vector<Recommendation> recommend(const EventRecord& event);

  /// Picks the `n` hardest-to-guess recommendations as a Context; throws
  /// std::invalid_argument when fewer than n are derivable.
  [[nodiscard]] static Context build_context(const EventRecord& event, std::size_t n);
};

}  // namespace sp::core
