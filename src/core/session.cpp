#include "core/session.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_pool.hpp"

namespace sp::core {

using net::CpuTimer;

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      curve_(ec::preset_params(config_.pairing_preset)),
      c1_(std::make_unique<Construction1>(
          // Shamir field = the pairing base field: one parameter set drives
          // both constructions, as one security level should.
          curve_.fp(), curve_)),
      c2_(std::make_unique<Construction2>(curve_)),
      network_(config_.link, crypto::Drbg(config_.seed + "-net")),
      rng_(config_.seed + "-session") {}

crypto::Drbg Session::fork_rng(const std::string& label) const {
  const std::lock_guard<std::mutex> lock(rng_mutex_);
  return rng_.fork(label);
}

osn::UserId Session::register_user(const std::string& name) {
  const osn::UserId id = graph_.add_user(name);
  crypto::Drbg key_rng = fork_rng("user-keys-" + std::to_string(id));
  // Emplace straight into the map (no intermediate KeyPair copy that would
  // leave an unwiped secret on the stack); keygen under the lock is fine —
  // registration is rare compared to serving.
  const std::lock_guard<std::mutex> lock(keys_mutex_);
  user_keys_.emplace(id, sig::Schnorr(curve_, curve_.hash_to_group(crypto::to_bytes("sp-schnorr-g")))
                             .keygen(key_rng));
  return id;
}

void Session::befriend(osn::UserId a, osn::UserId b) { graph_.befriend(a, b); }

ShareReceipt Session::share_c1(osn::UserId sharer, std::span<const std::uint8_t> object,
                               const Context& ctx, std::size_t k, std::size_t n,
                               const net::DeviceProfile& device, osn::Visibility visibility) {
  // Map nodes are stable and keys are never erased, so the reference stays
  // valid after the lookup lock drops.
  const sig::KeyPair* keys = nullptr;
  {
    const std::lock_guard<std::mutex> lock(keys_mutex_);
    keys = &user_keys_.at(sharer);
  }
  crypto::Drbg op_rng = fork_rng("share-c1");
  net::CostLedger ledger(device);

  // -- local: Upload subroutine (crypto) --------------------------------
  CpuTimer timer;
  auto result = c1_->upload(object, ctx, k, n, *keys, op_rng);
  ledger.add_local_measured(timer.elapsed_ms());

  // -- network: store O_{K_O} at the DH ---------------------------------
  ledger.add_network(network_.transfer_ms(result.encrypted_object.size()));
  ledger.add_bytes(result.encrypted_object.size());
  const std::string url = dh_.store(std::move(result.encrypted_object));

  // -- local: patch URL_O and re-sign (DoS countermeasure) --------------
  timer.reset();
  result.puzzle.url = url;
  c1_->sign_puzzle(result.puzzle, *keys);
  const Bytes record = result.puzzle.serialize();
  ledger.add_local_measured(timer.elapsed_ms());

  // -- network: upload Z_O to the SP ------------------------------------
  ledger.add_network(network_.transfer_ms(record.size()));
  ledger.add_bytes(record.size());
  const std::string post_id = sp_.store_record(record);

  StoredPuzzle stored;
  stored.kind = SchemeKind::kConstruction1;
  stored.sharer = sharer;
  stored.visibility = visibility;
  stored.puzzle = std::move(result.puzzle);
  stored.url = url;
  {
    const std::unique_lock<std::shared_mutex> lock(puzzles_mutex_);
    puzzles_.emplace(post_id, std::move(stored));
  }

  graph_.post(osn::Post{sharer, post_id, "shared a social puzzle", visibility});
  return ShareReceipt{post_id, ledger, object.size()};
}

ShareReceipt Session::share_c2(osn::UserId sharer, std::span<const std::uint8_t> object,
                               const Context& ctx, std::size_t k,
                               const net::DeviceProfile& device, osn::Visibility visibility) {
  crypto::Drbg op_rng = fork_rng("share-c2");
  net::CostLedger ledger(device);

  // -- local: Setup + Encrypt + Perturb (the heavy CP-ABE work) ----------
  CpuTimer timer;
  auto files = c2_->upload(object, ctx, k, op_rng);
  ledger.add_local_measured(timer.elapsed_ms());

  // -- network: the paper's four cURL uploads (details, pub, master -> SP;
  //    ciphertext -> DH). Each file is a separately spawned cURL HTTPS
  //    request (cold connection: DNS + TCP + TLS ≈ 3 round trips), which is
  //    the "additional overhead caused by the cURL library" the paper blames
  //    for I2's network delay. C1's single warm-browser XHR pays 1.
  constexpr int kColdCurlRoundTrips = 3;
  const Bytes details = files.perturbed_tree.serialize();
  for (const std::size_t bytes :
       {details.size(), files.public_key.size(), files.master_key.size()}) {
    ledger.add_network(network_.transfer_ms(bytes, kColdCurlRoundTrips));
    ledger.add_bytes(bytes);
  }
  ledger.add_network(network_.transfer_ms(files.ciphertext.size(), kColdCurlRoundTrips));
  ledger.add_bytes(files.ciphertext.size());
  const std::string url = dh_.store(files.ciphertext);

  // SP view: τ' + PK + MK (it never sees τ or the object).
  sp_.observe("c2-details", details);
  sp_.observe("c2-public-key", files.public_key);
  sp_.observe("c2-master-key", files.master_key);

  StoredPuzzle stored;
  stored.kind = SchemeKind::kConstruction2;
  stored.sharer = sharer;
  stored.visibility = visibility;
  stored.c2_files = std::move(files);
  stored.url = url;

  const std::string post_id = sp_.store_record(details);
  {
    const std::unique_lock<std::shared_mutex> lock(puzzles_mutex_);
    puzzles_.emplace(post_id, std::move(stored));
  }
  graph_.post(osn::Post{sharer, post_id, "shared a social puzzle (ABE)", visibility});
  return ShareReceipt{post_id, ledger, object.size()};
}

ShareReceipt Session::refresh(osn::UserId sharer, const std::string& post_id,
                              std::span<const std::uint8_t> object, const Context& ctx,
                              const net::DeviceProfile& device) {
  // Single-writer path: exclusive for the whole body so concurrent accesses
  // see the old puzzle until the new one (record, blob, registry entry) is
  // complete. See DESIGN.md for the lock order.
  const std::unique_lock<std::shared_mutex> registry_lock(puzzles_mutex_);
  auto it = puzzles_.find(post_id);
  if (it == puzzles_.end()) throw std::out_of_range("Session::refresh: unknown post " + post_id);
  StoredPuzzle& stored = it->second;
  if (stored.sharer != sharer) {
    throw std::logic_error("Session::refresh: only the original sharer can refresh");
  }

  const std::string old_url = stored.url;
  net::CostLedger ledger(device);
  crypto::Drbg op_rng = fork_rng("refresh-" + post_id);

  if (stored.kind == SchemeKind::kConstruction1) {
    const sig::KeyPair* keys = nullptr;
    {
      const std::lock_guard<std::mutex> lock(keys_mutex_);
      keys = &user_keys_.at(sharer);
    }
    const std::size_t k = stored.puzzle->threshold;
    const std::size_t n = stored.puzzle->n();

    CpuTimer timer;
    auto result = c1_->upload(object, ctx, k, n, *keys, op_rng);
    ledger.add_local_measured(timer.elapsed_ms());

    ledger.add_network(network_.transfer_ms(result.encrypted_object.size()));
    ledger.add_bytes(result.encrypted_object.size());
    const std::string url = dh_.store(std::move(result.encrypted_object));

    timer.reset();
    result.puzzle.url = url;
    c1_->sign_puzzle(result.puzzle, *keys);
    const Bytes record = result.puzzle.serialize();
    ledger.add_local_measured(timer.elapsed_ms());

    ledger.add_network(network_.transfer_ms(record.size()));
    ledger.add_bytes(record.size());
    sp_.replace_record(post_id, record);

    stored.puzzle = std::move(result.puzzle);
    stored.url = url;
  } else {
    const std::size_t k = stored.c2_files->threshold;

    CpuTimer timer;
    auto files = c2_->upload(object, ctx, k, op_rng);
    ledger.add_local_measured(timer.elapsed_ms());

    constexpr int kColdCurlRoundTrips = 3;
    const Bytes details = files.perturbed_tree.serialize();
    for (const std::size_t bytes :
         {details.size(), files.public_key.size(), files.master_key.size()}) {
      ledger.add_network(network_.transfer_ms(bytes, kColdCurlRoundTrips));
      ledger.add_bytes(bytes);
    }
    ledger.add_network(network_.transfer_ms(files.ciphertext.size(), kColdCurlRoundTrips));
    ledger.add_bytes(files.ciphertext.size());
    const std::string url = dh_.store(files.ciphertext);

    sp_.observe("c2-details", details);
    sp_.observe("c2-public-key", files.public_key);
    sp_.observe("c2-master-key", files.master_key);
    sp_.replace_record(post_id, details);

    stored.c2_files = std::move(files);
    stored.url = url;
  }

  // Retire the stale ciphertext so leaked keys can't fetch it later.
  dh_.remove(old_url);
  return ShareReceipt{post_id, ledger, object.size()};
}

AccessResult Session::access(osn::UserId receiver, const std::string& post_id,
                             const Knowledge& knowledge, const net::DeviceProfile& device) const {
  // Shared for the whole request: many accesses proceed in parallel, while
  // refresh (exclusive) waits for in-flight requests and blocks new ones.
  const std::shared_lock<std::shared_mutex> registry_lock(puzzles_mutex_);
  const auto it = puzzles_.find(post_id);
  if (it == puzzles_.end()) throw std::out_of_range("Session::access: unknown post " + post_id);
  const StoredPuzzle& stored = it->second;
  // OSN-level ACL for friends-only posts; public (Twitter-style) posts rely
  // on the puzzle alone — "the context-based access mechanism will add a
  // layer of privacy protection" (§I).
  if (stored.visibility == osn::Visibility::kFriends && receiver != stored.sharer &&
      !graph_.are_friends(receiver, stored.sharer)) {
    throw std::logic_error("Session::access: receiver is not in the sharer's network");
  }
  net::CostLedger ledger(device);
  crypto::Drbg op_rng = fork_rng("access-" + post_id);
  if (stored.kind == SchemeKind::kConstruction1) {
    return access_c1(stored, knowledge, ledger, op_rng);
  }
  return access_c2(stored, knowledge, ledger, op_rng);
}

AccessResult Session::access_with_retries(osn::UserId receiver, const std::string& post_id,
                                          const Knowledge& knowledge,
                                          const net::DeviceProfile& device, int max_draws) const {
  if (max_draws < 1) throw std::invalid_argument("access_with_retries: max_draws >= 1");
  AccessResult result;
  for (int draw = 0; draw < max_draws; ++draw) {
    result = access(receiver, post_id, knowledge, device);
    if (result.success()) break;
  }
  return result;
}

std::vector<AccessResult> Session::access_parallel(std::span<const AccessRequest> requests,
                                                   std::size_t num_threads) const {
  std::vector<AccessResult> results(requests.size());
  if (requests.empty()) return results;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, requests.size());
  std::vector<std::exception_ptr> errors(requests.size());
  {
    // Queue bound = 2x workers: enough to keep every worker fed while the
    // submitting thread applies back-pressure instead of buffering the
    // whole batch.
    ThreadPool pool(num_threads, 2 * num_threads);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      pool.submit([this, &requests, &results, &errors, i] {
        try {
          const AccessRequest& req = requests[i];
          results[i] = access(req.receiver, req.post_id, req.knowledge, req.device);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return results;
}

AccessResult Session::access_c1(const StoredPuzzle& stored, const Knowledge& knowledge,
                                net::CostLedger& ledger, crypto::Drbg& rng) const {
  const Puzzle& puzzle = *stored.puzzle;

  // -- SP: DisplayPuzzle; network: challenge download -------------------
  const auto challenge = Construction1::display_puzzle(puzzle, rng);
  ledger.add_network(network_.transfer_ms(challenge.wire_size()));
  ledger.add_bytes(challenge.wire_size());

  // -- receiver local: AnswerPuzzle (hashing) ----------------------------
  CpuTimer timer;
  const auto response = Construction1::answer_puzzle(challenge, knowledge);
  ledger.add_local_measured(timer.elapsed_ms());

  // -- network: response up, reply down (one exchange) -------------------
  // The SP's observation log gets everything the receiver sends.
  for (const Bytes& h : response.hashes) sp_.observe("c1-response-hash", h);
  const auto reply = Construction1::verify(puzzle, challenge, response.hashes);
  ledger.add_network(
      network_.transfer_ms(response.wire_size() + reply.wire_size()));
  ledger.add_bytes(response.wire_size() + reply.wire_size());

  AccessResult result;
  result.granted = reply.granted;
  if (!reply.granted) {
    result.cost = ledger;
    return result;
  }

  // -- receiver local: verify the sharer's signature on (URL, k, K_Z) ----
  timer.reset();
  Puzzle verified_view = puzzle;  // fields as received from the SP
  verified_view.url = reply.url;
  const bool sig_ok = c1_->verify_puzzle_signature(verified_view);
  ledger.add_local_measured(timer.elapsed_ms());
  if (!sig_ok) {
    result.granted = false;
    result.cost = ledger;
    return result;
  }

  // -- network: download O_{K_O} from the DH -----------------------------
  Bytes encrypted;
  try {
    encrypted = dh_.fetch(reply.url);
  } catch (const std::out_of_range&) {
    result.cost = ledger;
    return result;  // malicious SP pointed at a missing object
  }
  ledger.add_network(network_.transfer_ms(encrypted.size()));
  ledger.add_bytes(encrypted.size());

  // -- receiver local: Access (unblind, Lagrange, decrypt) --------------
  timer.reset();
  result.object = c1_->access(puzzle, challenge, reply, knowledge, encrypted);
  ledger.add_local_measured(timer.elapsed_ms());
  result.cost = ledger;
  return result;
}

AccessResult Session::access_c2(const StoredPuzzle& stored, const Knowledge& knowledge,
                                net::CostLedger& ledger, crypto::Drbg& rng) const {
  const auto& files = *stored.c2_files;

  // -- network: download details (τ' questions) --------------------------
  const auto challenge = Construction2::display_puzzle(files.perturbed_tree, files.threshold);
  ledger.add_network(network_.transfer_ms(challenge.wire_size()));
  ledger.add_bytes(challenge.wire_size());

  // -- receiver local: hash answers --------------------------------------
  CpuTimer timer;
  const auto response = Construction2::answer_puzzle(challenge, knowledge);
  ledger.add_local_measured(timer.elapsed_ms());

  for (const std::string& h : response.answer_hashes) {
    sp_.observe("c2-response-hash", crypto::to_bytes(h));
  }
  const auto reply = Construction2::verify(files.perturbed_tree, files.threshold, challenge,
                                           response, stored.url);
  ledger.add_network(network_.transfer_ms(response.wire_size() + reply.wire_size(files)));
  ledger.add_bytes(response.wire_size() + reply.wire_size(files));

  AccessResult result;
  result.granted = reply.granted;
  if (!reply.granted) {
    result.cost = ledger;
    return result;
  }

  // -- network: three file downloads (CT' from DH; PK, MK from SP), again
  //    one cold cURL connection each in the paper's Qt receiver -----------
  constexpr int kColdCurlRoundTrips = 3;
  Bytes ciphertext;
  try {
    ciphertext = dh_.fetch(reply.url);
  } catch (const std::out_of_range&) {
    result.cost = ledger;
    return result;
  }
  ledger.add_network(network_.transfer_ms(ciphertext.size(), kColdCurlRoundTrips));
  ledger.add_bytes(ciphertext.size());
  ledger.add_network(network_.transfer_ms(files.public_key.size(), kColdCurlRoundTrips));
  ledger.add_bytes(files.public_key.size());
  ledger.add_network(network_.transfer_ms(files.master_key.size(), kColdCurlRoundTrips));
  ledger.add_bytes(files.master_key.size());

  // -- receiver local: Reconstruct + KeyGen + Decrypt --------------------
  timer.reset();
  result.object = c2_->access(ciphertext, files.public_key, files.master_key, knowledge, rng);
  ledger.add_local_measured(timer.elapsed_ms());
  result.cost = ledger;
  return result;
}

}  // namespace sp::core
